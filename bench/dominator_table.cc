#include "dominator_table.h"

#include <cstdio>

#include "core/assoc_table.h"
#include "core/classifier.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/svm.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

struct BaselineScores {
  double svm = 0.0;
  double mlp = 0.0;
  double logistic = 0.0;
};

struct BaselineModels {
  ml::SvmConfig svm;
  ml::MlpConfig mlp;
  ml::LogisticRegressionConfig logistic;

  BaselineModels() {
    svm.epochs = 12;
    mlp.hidden_units = 10;
    mlp.epochs = 18;
    logistic.epochs = 40;
  }
};

double ScoreOne(const ml::Dataset& train, const ml::Dataset& test,
                const BaselineModels& models, double* svm_out,
                double* mlp_out, double* log_out) {
  auto svm = ml::LinearSvm::Train(train, models.svm);
  HM_CHECK_OK(svm.status());
  auto svm_preds = svm->Predict(test.features);
  HM_CHECK_OK(svm_preds.status());
  *svm_out = *ml::Accuracy(*svm_preds, test.labels);

  auto mlp = ml::Mlp::Train(train, models.mlp);
  HM_CHECK_OK(mlp.status());
  auto mlp_preds = mlp->Predict(test.features);
  HM_CHECK_OK(mlp_preds.status());
  *mlp_out = *ml::Accuracy(*mlp_preds, test.labels);

  auto logistic = ml::LogisticRegression::Train(train, models.logistic);
  HM_CHECK_OK(logistic.status());
  auto log_preds = logistic->Predict(test.features);
  HM_CHECK_OK(log_preds.status());
  *log_out = *ml::Accuracy(*log_preds, test.labels);
  return 0.0;
}

/// "raw" protocol: baselines train on the raw in-sample observations
/// restricted to dominator features. Stronger than what the paper used;
/// kept as --baseline-protocol=raw for the honest-comparison ablation.
BaselineScores EvaluateBaselinesRaw(const core::Database& train,
                                    const core::Database& test,
                                    const std::vector<core::AttrId>& features,
                                    const std::vector<char>& in_dom) {
  BaselineModels models;
  std::vector<double> svm_acc;
  std::vector<double> mlp_acc;
  std::vector<double> log_acc;
  for (core::AttrId target = 0; target < train.num_attributes(); ++target) {
    if (in_dom[target]) continue;
    auto train_data = ml::MakeClassificationDataset(train, features, target);
    auto test_data = ml::MakeClassificationDataset(test, features, target);
    HM_CHECK_OK(train_data.status());
    HM_CHECK_OK(test_data.status());
    double svm = 0.0;
    double mlp = 0.0;
    double logistic = 0.0;
    ScoreOne(*train_data, *test_data, models, &svm, &mlp, &logistic);
    svm_acc.push_back(svm);
    mlp_acc.push_back(mlp);
    log_acc.push_back(logistic);
  }
  return BaselineScores{Mean(svm_acc), Mean(mlp_acc), Mean(log_acc)};
}

/// The paper's protocol (Section 5.5): for each target Y, the baseline
/// training set is built from the association tables of the hyperedges
/// e = ({A1, A2}, {Y}) with A1, A2 in the dominator — each AT row becomes
/// one data point whose features are the one-hot tail value assignment and
/// whose class is the row's most frequent value y* of Y. The trained model
/// then classifies the out-sample days (full dominator evidence).
BaselineScores EvaluateBaselinesPaperProtocol(
    const core::DirectedHypergraph& graph, const core::Database& train,
    const core::Database& test, const std::vector<core::AttrId>& features,
    const std::vector<char>& in_dom) {
  BaselineModels models;
  const size_t k = train.num_values();
  const size_t width = features.size() * k + 1;
  std::vector<size_t> feature_slot(train.num_attributes(), width);
  for (size_t f = 0; f < features.size(); ++f) {
    feature_slot[features[f]] = f * k;
  }

  std::vector<double> svm_acc;
  std::vector<double> mlp_acc;
  std::vector<double> log_acc;
  for (core::AttrId target = 0; target < train.num_attributes(); ++target) {
    if (in_dom[target]) continue;
    // Collect AT rows of dominator-tailed pair hyperedges into the target.
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    for (core::EdgeId id : graph.InEdgeIds(target)) {
      const core::Hyperedge& e = graph.edge(id);
      if (e.tail_size() != 2) continue;
      if (!in_dom[e.tail[0]] || !in_dom[e.tail[1]]) continue;
      auto table = core::AssociationTable::Build(
          train, {e.tail[0], e.tail[1]}, target);
      HM_CHECK_OK(table.status());
      for (core::ValueId va = 0; va < k; ++va) {
        for (core::ValueId vb = 0; vb < k; ++vb) {
          const core::AssocTableRow& row = table->RowFor({va, vb});
          if (row.tail_count == 0) continue;
          std::vector<double> x(width, 0.0);
          x[feature_slot[e.tail[0]] + va] = 1.0;
          x[feature_slot[e.tail[1]] + vb] = 1.0;
          x[width - 1] = 1.0;
          rows.push_back(std::move(x));
          labels.push_back(row.best_head_value);
        }
      }
    }
    if (rows.empty()) {
      // No usable hyperedge: the baselines degenerate to chance on this
      // target (the paper does not describe a fallback).
      svm_acc.push_back(1.0 / static_cast<double>(k));
      mlp_acc.push_back(1.0 / static_cast<double>(k));
      log_acc.push_back(1.0 / static_cast<double>(k));
      continue;
    }
    ml::Dataset train_data;
    train_data.num_classes = k;
    train_data.features = Matrix::FromRows(rows);
    train_data.labels = std::move(labels);
    auto test_data = ml::MakeClassificationDataset(test, features, target);
    HM_CHECK_OK(test_data.status());
    double svm = 0.0;
    double mlp = 0.0;
    double logistic = 0.0;
    ScoreOne(train_data, *test_data, models, &svm, &mlp, &logistic);
    svm_acc.push_back(svm);
    mlp_acc.push_back(mlp);
    log_acc.push_back(logistic);
  }
  return BaselineScores{Mean(svm_acc), Mean(mlp_acc), Mean(log_acc)};
}

void RunConfig(const BenchOptions& options,
               const core::HypergraphConfig& config,
               DominatorAlgorithm algorithm, bool paper_protocol,
               TablePrinter* table) {
  // In-sample: every year but the last; out-sample: the last year
  // (the paper trains Jan 1996 - Dec 2008 and tests 2009).
  int first = options.market.first_year;
  int last = first + static_cast<int>(options.market.num_years) - 1;
  auto panel = market::SimulateMarket(options.market);
  HM_CHECK_OK(panel.status());
  auto split =
      core::DiscretizeTrainTest(*panel, config.k, first, last - 1, last, last);
  HM_CHECK_OK(split.status());
  core::BuildStats stats;
  auto graph = core::BuildAssociationHypergraph(split->train, config, &stats);
  HM_CHECK_OK(graph.status());

  const double fractions[] = {0.40, 0.30, 0.20};
  for (double fraction : fractions) {
    auto threshold = graph->WeightQuantileThreshold(fraction);
    HM_CHECK_OK(threshold.status());
    core::DominatorConfig dom_config;
    dom_config.acv_threshold = *threshold;
    Stopwatch timer;
    auto dominator =
        algorithm == DominatorAlgorithm::kAlg5GreedyDS
            ? core::ComputeDominatorGreedyDS(*graph, {}, dom_config)
            : core::ComputeDominatorSetCover(*graph, {}, dom_config);
    HM_CHECK_OK(dominator.status());
    double dominator_seconds = timer.ElapsedSeconds();

    auto in_sample = core::EvaluateAssociationClassifier(
        *graph, split->train, split->train, dominator->dominator);
    auto out_sample = core::EvaluateAssociationClassifier(
        *graph, split->train, split->test, dominator->dominator);
    HM_CHECK_OK(in_sample.status());
    HM_CHECK_OK(out_sample.status());

    BaselineScores baselines;
    if (!options.skip_baselines) {
      std::vector<char> in_dom(split->train.num_attributes(), 0);
      for (core::VertexId v : dominator->dominator) in_dom[v] = 1;
      std::vector<core::AttrId> features;
      for (core::AttrId a = 0; a < split->train.num_attributes(); ++a) {
        if (in_dom[a]) features.push_back(a);
      }
      HM_CHECK(!features.empty());
      baselines = paper_protocol
                      ? EvaluateBaselinesPaperProtocol(
                            *graph, split->train, split->test, features,
                            in_dom)
                      : EvaluateBaselinesRaw(split->train, split->test,
                                             features, in_dom);
    }

    table->AddRow({
        ConfigName(config),
        StrFormat("%.2f (top %.0f%%)", *threshold, fraction * 100.0),
        std::to_string(dominator->dominator.size()),
        StrFormat("%.0f", dominator->fraction_covered * 100.0),
        FormatDouble(in_sample->mean_confidence, 3),
        FormatDouble(out_sample->mean_confidence, 3),
        options.skip_baselines ? "-" : FormatDouble(baselines.svm, 3),
        options.skip_baselines ? "-" : FormatDouble(baselines.mlp, 3),
        options.skip_baselines ? "-" : FormatDouble(baselines.logistic, 3),
        StrFormat("%.2fs", dominator_seconds),
    });
  }
  table->AddSeparator();
}

}  // namespace

void RunDominatorTable(const BenchOptions& options,
                       DominatorAlgorithm algorithm) {
  // The paper trains the Weka baselines on association-table rows
  // (Section 5.5); --baseline-protocol=raw trains them on the raw
  // in-sample days instead (a strictly stronger baseline, see
  // EXPERIMENTS.md).
  const bool paper_protocol = options.baseline_protocol != "raw";
  std::printf("baseline protocol: %s\n",
              paper_protocol ? "paper (association-table rows, Section 5.5)"
                             : "raw (train on raw in-sample days)");
  TablePrinter table({"Config", "ACV-threshold", "Dominator size",
                      "% covered", "ABC in-sample", "ABC out-sample", "SVM",
                      "MLP", "Logistic", "dominator time"});
  if (options.run_c1) {
    RunConfig(options, core::ConfigC1(), algorithm, paper_protocol, &table);
  }
  if (options.run_c2) {
    RunConfig(options, core::ConfigC2(), algorithm, paper_protocol, &table);
  }
  std::printf("%s\n", table.ToString().c_str());
  const bool alg5 = algorithm == DominatorAlgorithm::kAlg5GreedyDS;
  std::printf(
      "paper (346 series): %s; C1 dominator sizes 13/15/22 covering "
      "99/95/94%%, ABC in-sample ~0.64-0.65, out-sample ~0.72, SVM "
      "0.49-0.55, MLP ~0.72, Logistic 0.49-0.54; C2 sizes 20-31, baselines "
      "degrade with k=5 while ABC stays ~0.65/0.72.\n",
      alg5 ? "Table 5.3 (Algorithm 5)" : "Table 5.4 (Algorithm 6)");
  std::printf(
      "shape to check: small dominators covering most series; ABC beats "
      "the paper-protocol baselines; baselines collapse from C1 to C2 "
      "while ABC stays well above chance (1/3 for C1, 1/5 for C2).\n");
}

}  // namespace hypermine::bench
