/// Ablation for Enhancements 1 and 2 of Algorithm 6 (Algorithms 7 and 8):
/// Enhancement 1 tie-breaks toward fewer new dominator vertices (smaller
/// dominators), Enhancement 2 prunes exhausted tail sets (faster
/// iterations). Also compares against Algorithm 5.
#include <cstdio>

#include "common.h"
#include "util/logging.h"
#include "core/dominator.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void Run(const BenchOptions& options) {
  core::MarketExperiment experiment = MustSetUp(options, core::ConfigC1());
  auto threshold = experiment.graph.WeightQuantileThreshold(0.40);
  HM_CHECK_OK(threshold.status());

  TablePrinter table({"algorithm", "enh.1", "enh.2", "dominator size",
                      "% covered", "time"});
  struct Variant {
    bool enhancement1;
    bool enhancement2;
  };
  const Variant variants[] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  for (const Variant& variant : variants) {
    core::DominatorConfig config;
    config.acv_threshold = *threshold;
    config.enhancement1 = variant.enhancement1;
    config.enhancement2 = variant.enhancement2;
    Stopwatch timer;
    auto result =
        core::ComputeDominatorSetCover(experiment.graph, {}, config);
    HM_CHECK_OK(result.status());
    table.AddRow({"Algorithm 6", variant.enhancement1 ? "on" : "off",
                  variant.enhancement2 ? "on" : "off",
                  std::to_string(result->dominator.size()),
                  StrFormat("%.0f", result->fraction_covered * 100.0),
                  StrFormat("%.3fs", timer.ElapsedSeconds())});
  }
  table.AddSeparator();
  {
    core::DominatorConfig config;
    config.acv_threshold = *threshold;
    Stopwatch timer;
    auto result =
        core::ComputeDominatorGreedyDS(experiment.graph, {}, config);
    HM_CHECK_OK(result.status());
    table.AddRow({"Algorithm 5", "-", "-",
                  std::to_string(result->dominator.size()),
                  StrFormat("%.0f", result->fraction_covered * 100.0),
                  StrFormat("%.3fs", timer.ElapsedSeconds())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper shape (Tables 5.3 vs 5.4): Algorithm 5 finds slightly smaller "
      "dominators than Algorithm 6 at the same threshold; the enhancements "
      "aim at smaller dominators (enh.1) and faster iterations (enh.2).\n");
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_ablation_enhancements",
      "Algorithm 6 Enhancements 1 & 2 ablation (Algorithms 7-8)");
  Run(options);
  return 0;
}
