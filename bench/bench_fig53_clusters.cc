/// Reproduces Figure 5.3: t-clustering of the financial time-series in the
/// similarity graph (Definition 3.13) with t = number of sub-sectors, first
/// center from the Technology sector (the largest). Reports the clustering
/// quality statistics of Section 5.3.2: mean cluster diameter vs overall
/// mean distance, metric-property verification, and sector purity of the
/// large clusters.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "approx/metric.h"
#include "common.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "core/export.h"
#include "core/export.h"
#include "core/similarity.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void Run(const BenchOptions& options) {
  core::MarketExperiment experiment = MustSetUp(options, core::ConfigC1());
  auto sg = core::SimilarityGraph::Build(experiment.graph);
  HM_CHECK_OK(sg.status());

  // Verify the metric properties experimentally, as the thesis does before
  // invoking the Gonzalez 2-approximation guarantee (Section 5.3.2).
  approx::MetricCheck check = approx::CheckMetricProperties(
      sg->size(), sg->DistanceFn(), 1e-9);
  std::printf("metric check of d(A1,A2) = 1 - (in-sim + out-sim)/2: %s\n",
              check.ToString().c_str());

  // t = total number of sub-sectors present (104 at paper scale).
  size_t t = market::DistinctSubSectors(experiment.panel.tickers);
  t = std::min(t, sg->size() - 1);
  // First center from Technology, the sector with the most series.
  size_t first_center = 0;
  for (size_t i = 0; i < sg->size(); ++i) {
    if (experiment.panel.tickers[i].sector == market::Sector::kTechnology) {
      first_center = i;
      break;
    }
  }
  auto clustering = core::ClusterSimilarAttributes(*sg, t, first_center);
  HM_CHECK_OK(clustering.status());

  // Cluster sizes and per-cluster sector purity.
  std::vector<std::vector<size_t>> members(clustering->centers.size());
  for (size_t i = 0; i < sg->size(); ++i) {
    members[clustering->assignment[i]].push_back(i);
  }
  std::vector<double> diameters;
  for (const auto& cluster : members) {
    double diameter = 0.0;
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        diameter = std::max(diameter, sg->Distance(cluster[i], cluster[j]));
      }
    }
    if (cluster.size() > 1) diameters.push_back(diameter);
  }

  std::printf("\nclusters: t=%zu over %zu series; %zu non-singleton\n", t,
              sg->size(), diameters.size());
  if (!diameters.empty()) {
    PrintPaperComparison("mean cluster diameter", Mean(diameters), "0.83");
  }
  PrintPaperComparison("overall mean distance in SG_S", sg->MeanDistance(),
                       "0.89");

  // Clusters of size > threshold, as Figure 5.3 displays size > 6.
  size_t display_min = sg->size() >= 200 ? 7 : 3;
  TablePrinter table(
      {"cluster", "size", "center", "dominant sector", "purity"});
  std::vector<size_t> order(members.size());
  for (size_t c = 0; c < members.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&members](size_t a, size_t b) {
    return members[a].size() > members[b].size();
  });
  size_t shown = 0;
  for (size_t c : order) {
    if (members[c].size() < display_min || shown >= 12) continue;
    std::map<market::Sector, size_t> sector_counts;
    for (size_t i : members[c]) {
      ++sector_counts[experiment.panel.tickers[i].sector];
    }
    auto dominant = std::max_element(
        sector_counts.begin(), sector_counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    table.AddRow(
        {std::to_string(shown + 1), std::to_string(members[c].size()),
         experiment.panel.tickers[members[c][0]].symbol +
             " [" +
             experiment.panel
                 .tickers[sg->members()[clustering
                                            ->centers[c]]]
                 .symbol +
             "]",
         market::SectorName(dominant->first),
         FormatDouble(static_cast<double>(dominant->second) /
                          static_cast<double>(members[c].size()),
                      2)});
    ++shown;
  }
  std::printf("\nlargest clusters (Figure 5.3 shows clusters of size > 6; "
              "paper: largest cluster of size 29 is all-Technology):\n%s",
              table.ToString().c_str());

  // Emit the actual figure as Graphviz DOT (render with `neato -Tpng`).
  std::vector<core::ClusterNode> nodes;
  for (size_t i = 0; i < sg->size(); ++i) {
    const market::Ticker& ticker = experiment.panel.tickers[i];
    nodes.push_back({ticker.symbol, market::SectorCode(ticker.sector)});
  }
  const char* dot_path = "fig53_clusters.dot";
  HM_CHECK_OK(core::WriteClustersDot(*sg, *clustering, nodes, display_min,
                                     dot_path));
  std::printf("\nwrote %s (render: neato -Tpng %s -o fig53.png)\n", dot_path,
              dot_path);
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_fig53_clusters",
      "Figure 5.3 clusters of financial time-series (C1), Section 5.3.2");
  Run(options);
  return 0;
}
