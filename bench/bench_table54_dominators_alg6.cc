/// Reproduces Table 5.4: like Table 5.3 but with dominators computed by
/// Algorithm 6 (the set-cover adaptation) including Enhancements 1 and 2
/// (Algorithms 7 and 8).
#include "dominator_table.h"

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_table54_dominators_alg6",
      "Table 5.4 dominators via Algorithm 6 (+ Enhancements 1 & 2)");
  RunDominatorTable(options, DominatorAlgorithm::kAlg6SetCover);
  return 0;
}
