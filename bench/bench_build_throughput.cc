// Model-construction throughput harness (ISSUE 2): wall time of serial vs
// parallel BuildAssociationHypergraph, candidate-evaluation rate, and the
// fused-vs-per-pair edge-kernel speedup, on a synthetic correlated
// database. Emits BENCH_build.json so the construction-path perf
// trajectory is tracked the same way BENCH_serve.json tracks serving.
//
//   ./bench_build_throughput [--attrs=192] [--rows=4000] [--k=3]
//       [--threads=0 (hardware)] [--repeat=3] [--out=BENCH_build.json]
//       [--smoke]
//
// --smoke shrinks the workload to CI scale and checks correctness only
// (serial/parallel bit-identity, fused-kernel agreement); speedups are
// reported, never asserted — a 1-core container legitimately shows ~1x.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "build_info.h"
#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hypermine {
namespace {

/// Synthetic database with both single-attribute correlation (copies, so
/// directed edges clear γ) and two-parent structure (sum of the previous
/// two attributes mod k, which neither parent predicts alone, so 2-to-1
/// candidates beat their constituent edges) — both builder stages do real
/// work.
core::Database MakeDatabase(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<core::ValueId>> columns(
      n, std::vector<core::ValueId>(m));
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t a = 0; a < n; ++a) names.push_back("X" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      double r = rng.NextDouble();
      if (a >= 2 && r < 0.45) {
        columns[a][o] = static_cast<core::ValueId>(
            (columns[a - 1][o] + columns[a - 2][o]) % k);
      } else if (a >= 1 && r < 0.7) {
        columns[a][o] = columns[a - 1][o];
      } else {
        columns[a][o] = static_cast<core::ValueId>(rng.NextBounded(k));
      }
    }
  }
  auto db = core::DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

/// Best-of-`repeat` build wall time; the graph/stats of the last run are
/// returned for the bit-identity check.
double TimedBuild(const core::Database& db, core::HypergraphConfig config,
                  size_t repeat, core::DirectedHypergraph* out_graph,
                  core::BuildStats* out_stats) {
  double best = 0.0;
  for (size_t r = 0; r < repeat; ++r) {
    Stopwatch timer;
    auto graph = core::BuildAssociationHypergraph(db, config, out_stats);
    double seconds = timer.ElapsedSeconds();
    HM_CHECK_OK(graph.status());
    if (r == 0 || seconds < best) best = seconds;
    if (r + 1 == repeat) *out_graph = std::move(graph).value();
  }
  return best;
}

void CheckIdentical(const core::DirectedHypergraph& a,
                    const core::DirectedHypergraph& b,
                    const core::BuildStats& sa, const core::BuildStats& sb) {
  HM_CHECK_EQ(a.num_edges(), b.num_edges());
  for (core::EdgeId id = 0; id < a.num_edges(); ++id) {
    const core::Hyperedge& ea = a.edge(id);
    const core::Hyperedge& eb = b.edge(id);
    HM_CHECK_EQ(ea.head, eb.head);
    HM_CHECK_EQ(ea.tail[0], eb.tail[0]);
    HM_CHECK_EQ(ea.tail[1], eb.tail[1]);
    HM_CHECK_EQ(ea.weight, eb.weight);
  }
  HM_CHECK_EQ(sa.edges_kept, sb.edges_kept);
  HM_CHECK_EQ(sa.pairs_kept, sb.pairs_kept);
  HM_CHECK_EQ(sa.pair_candidates, sb.pair_candidates);
  HM_CHECK_EQ(sa.mean_edge_acv, sb.mean_edge_acv);
  HM_CHECK_EQ(sa.mean_pair_acv, sb.mean_pair_acv);
}

struct KernelStats {
  double per_pair_ms = 0.0;
  double fused_byte_ms = 0.0;
  /// The builder's fast path: bit-plane packing + plane block kernel
  /// (packing time included).
  double fused_ms = 0.0;
  double speedup = 0.0;
};

/// Times the full n×n stage-1 ACV matrix three ways — per-pair
/// AcvEdgeKernel calls, the fused byte block kernel, and the fused
/// bit-plane block kernel (the builder's small-k fast path, timed
/// including PackValuePlanes) — verifying all agree bit-exactly. For
/// k > kMaxPlaneKernelValues the plane pass is skipped (the builder
/// wouldn't use it either) and the byte block kernel is the fused path.
KernelStats RunKernelComparison(const core::Database& db, size_t repeat) {
  const size_t n = db.num_attributes();
  const size_t m = db.num_observations();
  const size_t k = db.num_values();
  const size_t block = core::BuildHeadBlockSize(k);
  const bool use_planes = k <= core::kMaxPlaneKernelValues;

  std::vector<double> per_pair(n * n, 0.0);
  std::vector<double> fused_byte(n * n, 0.0);
  std::vector<double> fused_plane(n * n, 0.0);

  KernelStats stats;
  for (size_t r = 0; r < repeat; ++r) {
    Stopwatch unfused_timer;
    for (size_t h = 0; h < n; ++h) {
      const core::ValueId* head_col =
          db.column(static_cast<core::AttrId>(h)).data();
      for (size_t a = 0; a < n; ++a) {
        if (a == h) continue;
        per_pair[a * n + h] = core::AcvEdgeKernel(
            db.column(static_cast<core::AttrId>(a)).data(), head_col, m, k);
      }
    }
    double unfused_ms = unfused_timer.ElapsedMillis();

    Stopwatch byte_timer;
    {
      std::vector<size_t> scratch(core::AcvEdgeBlockScratchSize(block, k));
      std::vector<const core::ValueId*> heads(block);
      std::vector<double> out(block);
      for (size_t h0 = 0; h0 < n; h0 += block) {
        const size_t width = std::min(block, n - h0);
        for (size_t j = 0; j < width; ++j) {
          heads[j] = db.column(static_cast<core::AttrId>(h0 + j)).data();
        }
        for (size_t a = 0; a < n; ++a) {
          core::AcvEdgeBlockKernel(
              db.column(static_cast<core::AttrId>(a)).data(), heads.data(),
              width, m, k, scratch.data(), out.data());
          for (size_t j = 0; j < width; ++j) {
            fused_byte[a * n + h0 + j] = out[j];
          }
        }
      }
    }
    double byte_ms = byte_timer.ElapsedMillis();

    Stopwatch plane_timer;
    if (use_planes) {
      const size_t per_col = core::ValuePlanesSize(k, m);
      std::vector<uint64_t> planes(n * per_col);
      for (size_t a = 0; a < n; ++a) {
        core::PackValuePlanes(db.column(static_cast<core::AttrId>(a)).data(),
                              m, k, &planes[a * per_col]);
      }
      std::vector<const uint64_t*> heads(block);
      std::vector<double> out(block);
      for (size_t h0 = 0; h0 < n; h0 += block) {
        const size_t width = std::min(block, n - h0);
        for (size_t j = 0; j < width; ++j) {
          heads[j] = &planes[(h0 + j) * per_col];
        }
        for (size_t a = 0; a < n; ++a) {
          core::AcvEdgeBlockKernel(&planes[a * per_col], heads.data(),
                                   width, m, k, out.data());
          for (size_t j = 0; j < width; ++j) {
            fused_plane[a * n + h0 + j] = out[j];
          }
        }
      }
    }
    double plane_ms = use_planes ? plane_timer.ElapsedMillis() : byte_ms;

    if (r == 0 || unfused_ms < stats.per_pair_ms) {
      stats.per_pair_ms = unfused_ms;
    }
    if (r == 0 || byte_ms < stats.fused_byte_ms) {
      stats.fused_byte_ms = byte_ms;
    }
    if (r == 0 || plane_ms < stats.fused_ms) stats.fused_ms = plane_ms;
  }

  for (size_t h = 0; h < n; ++h) {
    for (size_t a = 0; a < n; ++a) {
      if (a == h) continue;
      HM_CHECK_EQ(per_pair[a * n + h], fused_byte[a * n + h]);
      if (use_planes) {
        HM_CHECK_EQ(per_pair[a * n + h], fused_plane[a * n + h]);
      }
    }
  }
  stats.speedup =
      stats.fused_ms > 0.0 ? stats.per_pair_ms / stats.fused_ms : 0.0;
  return stats;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  const bool smoke = flags.GetBool("smoke", false);
  auto positive = [&flags](const char* name, int64_t fallback) {
    int64_t value = flags.GetInt(name, fallback);
    HM_CHECK_GT(value, 0);
    return static_cast<size_t>(value);
  };
  const size_t attrs = positive("attrs", smoke ? 28 : 192);
  const size_t rows = positive("rows", smoke ? 500 : 4000);
  const size_t k = positive("k", 3);
  const size_t repeat = positive("repeat", smoke ? 1 : 3);
  const int64_t threads_flag = flags.GetInt("threads", 0);
  HM_CHECK_GE(threads_flag, 0);
  size_t threads = static_cast<size_t>(threads_flag);
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  const std::string out_path = flags.GetString("out", "BENCH_build.json");

  std::printf("bench_build_throughput: %zu attrs x %zu rows, k=%zu, "
              "%zu build threads (%zu hardware), repeat=%zu%s\n",
              attrs, rows, k, threads, ThreadPool::HardwareThreads(),
              repeat, smoke ? ", --smoke" : "");

  core::Database db = MakeDatabase(attrs, rows, k, 20120401);
  core::HypergraphConfig config = core::ConfigC1();
  config.k = k;

  core::DirectedHypergraph serial_graph =
      *core::DirectedHypergraph::CreateAnonymous(1);
  core::DirectedHypergraph parallel_graph =
      *core::DirectedHypergraph::CreateAnonymous(1);
  core::BuildStats serial_stats, parallel_stats;

  config.num_threads = 1;
  const double serial_s =
      TimedBuild(db, config, repeat, &serial_graph, &serial_stats);
  config.num_threads = threads;
  const double parallel_s =
      TimedBuild(db, config, repeat, &parallel_graph, &parallel_stats);

  // The headline guarantee: parallel output is bit-identical to serial.
  CheckIdentical(serial_graph, parallel_graph, serial_stats, parallel_stats);

  const size_t candidates =
      parallel_stats.edge_candidates + parallel_stats.pair_candidates;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double cps =
      parallel_s > 0.0 ? static_cast<double>(candidates) / parallel_s : 0.0;

  KernelStats kernel = RunKernelComparison(db, repeat);

  std::printf("model: %zu directed edges + %zu pair edges from %zu "
              "candidates\n",
              serial_stats.edges_kept, serial_stats.pairs_kept, candidates);
  std::printf("%-28s %10s\n", "configuration", "seconds");
  std::printf("%-28s %10.3f\n", "serial (1 thread)", serial_s);
  std::string label = StrFormat("parallel (%zu threads)", threads);
  std::printf("%-28s %10.3f\n", label.c_str(), parallel_s);
  std::printf("build speedup: %.2fx (%zu hardware threads); "
              "%.0f candidates/sec; builds bit-identical\n",
              speedup, ThreadPool::HardwareThreads(), cps);
  std::printf("stage-1 kernel: per-pair %.2f ms, fused byte %.2f ms, "
              "fused bit-plane %.2f ms incl. packing (%.2fx vs per-pair, "
              "all bit-identical)\n",
              kernel.per_pair_ms, kernel.fused_byte_ms, kernel.fused_ms,
              kernel.speedup);

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"build_throughput\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"build_type\": \"%s\",\n"
      "  \"attrs\": %zu,\n"
      "  \"rows\": %zu,\n"
      "  \"k\": %zu,\n"
      "  \"repeat\": %zu,\n"
      "  \"smoke\": %s,\n"
      "  \"hardware_threads\": %zu,\n"
      "  \"edge_candidates\": %zu,\n"
      "  \"pair_candidates\": %zu,\n"
      "  \"edges_kept\": %zu,\n"
      "  \"pairs_kept\": %zu,\n"
      "  \"serial\": {\"seconds\": %.4f},\n"
      "  \"parallel\": {\"threads\": %zu, \"seconds\": %.4f},\n"
      "  \"build_speedup\": %.3f,\n"
      "  \"candidates_per_sec\": %.0f,\n"
      "  \"fused_kernel\": {\"per_pair_ms\": %.3f, \"fused_byte_ms\": %.3f, "
      "\"fused_ms\": %.3f, \"speedup\": %.3f},\n"
      "  \"deterministic\": true\n"
      "}\n",
      bench::GitSha(), bench::BuildType(), attrs, rows, k, repeat,
      smoke ? "true" : "false", ThreadPool::HardwareThreads(),
      parallel_stats.edge_candidates, parallel_stats.pair_candidates,
      parallel_stats.edges_kept, parallel_stats.pairs_kept, serial_s,
      threads, parallel_s, speedup, cps, kernel.per_pair_ms,
      kernel.fused_byte_ms, kernel.fused_ms, kernel.speedup);
  HM_CHECK_OK(WriteStringToFile(out_path, json));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
