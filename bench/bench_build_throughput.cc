// Model-construction throughput harness (ISSUE 2): wall time of serial vs
// parallel BuildAssociationHypergraph, candidate-evaluation rate, and the
// fused-vs-per-pair edge-kernel speedup, on a synthetic correlated
// database. Emits BENCH_build.json so the construction-path perf
// trajectory is tracked the same way BENCH_serve.json tracks serving.
//
//   ./bench_build_throughput [--attrs=192] [--rows=4000] [--k=3]
//       [--threads=0 (hardware)] [--repeat=3] [--out=BENCH_build.json]
//       [--smoke] [--simd=scalar|avx2|avx512] [--export-csv=PATH]
//       [--large] [--large-attrs=100000] [--large-rows=256]
//
// --smoke shrinks the workload to CI scale and checks correctness only
// (serial/parallel bit-identity, fused-kernel agreement); speedups are
// reported, never asserted — a 1-core container legitimately shows ~1x.
//
// --simd forces the kernel dispatch tier for the whole run; every
// supported tier is additionally timed (and checked bit-identical) in the
// stage-1 kernel comparison regardless. --export-csv writes the serial
// build's hypergraph CSV, the artifact CI diffs across --simd runs.
//
// --large adds the wide-id workload: a >=100k-attribute database (well
// past the old 0xFFFE-vertex cap) with per-tier sampled stage-1
// candidate throughput, the plane-artifact pack-vs-reuse speedup, and a
// wide-graph snapshot round-trip.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "build_info.h"
#include "common.h"
#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "core/export.h"
#include "core/simd.h"
#include "core/value_planes.h"
#include "serve/plane_artifact.h"
#include "serve/snapshot.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hypermine {
namespace {

/// Synthetic database with both single-attribute correlation (copies, so
/// directed edges clear γ) and two-parent structure (sum of the previous
/// two attributes mod k, which neither parent predicts alone, so 2-to-1
/// candidates beat their constituent edges) — both builder stages do real
/// work.
core::Database MakeDatabase(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<core::ValueId>> columns(
      n, std::vector<core::ValueId>(m));
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t a = 0; a < n; ++a) names.push_back("X" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      double r = rng.NextDouble();
      if (a >= 2 && r < 0.45) {
        columns[a][o] = static_cast<core::ValueId>(
            (columns[a - 1][o] + columns[a - 2][o]) % k);
      } else if (a >= 1 && r < 0.7) {
        columns[a][o] = columns[a - 1][o];
      } else {
        columns[a][o] = static_cast<core::ValueId>(rng.NextBounded(k));
      }
    }
  }
  auto db = core::DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

/// Best-of-`repeat` build wall time; the graph/stats of the last run are
/// returned for the bit-identity check.
double TimedBuild(const core::Database& db, core::HypergraphConfig config,
                  size_t repeat, core::DirectedHypergraph* out_graph,
                  core::BuildStats* out_stats) {
  double best = 0.0;
  for (size_t r = 0; r < repeat; ++r) {
    Stopwatch timer;
    auto graph = core::BuildAssociationHypergraph(db, config, out_stats);
    double seconds = timer.ElapsedSeconds();
    HM_CHECK_OK(graph.status());
    if (r == 0 || seconds < best) best = seconds;
    if (r + 1 == repeat) *out_graph = std::move(graph).value();
  }
  return best;
}

void CheckIdentical(const core::DirectedHypergraph& a,
                    const core::DirectedHypergraph& b,
                    const core::BuildStats& sa, const core::BuildStats& sb) {
  HM_CHECK_EQ(a.num_edges(), b.num_edges());
  for (core::EdgeId id = 0; id < a.num_edges(); ++id) {
    const core::Hyperedge& ea = a.edge(id);
    const core::Hyperedge& eb = b.edge(id);
    HM_CHECK_EQ(ea.head, eb.head);
    HM_CHECK_EQ(ea.tail[0], eb.tail[0]);
    HM_CHECK_EQ(ea.tail[1], eb.tail[1]);
    HM_CHECK_EQ(ea.weight, eb.weight);
  }
  HM_CHECK_EQ(sa.edges_kept, sb.edges_kept);
  HM_CHECK_EQ(sa.pairs_kept, sb.pairs_kept);
  HM_CHECK_EQ(sa.pair_candidates, sb.pair_candidates);
  HM_CHECK_EQ(sa.mean_edge_acv, sb.mean_edge_acv);
  HM_CHECK_EQ(sa.mean_pair_acv, sb.mean_pair_acv);
}

struct TierTiming {
  const char* tier = "";
  /// Plane block kernel pass over the full stage-1 matrix (packing
  /// excluded — the per-tier comparison isolates the kernel itself).
  double plane_ms = 0.0;
  double speedup_vs_scalar = 0.0;
};

struct KernelStats {
  double per_pair_ms = 0.0;
  double fused_byte_ms = 0.0;
  /// The builder's fast path: bit-plane packing + plane block kernel
  /// (packing time included), on the active dispatch tier.
  double fused_ms = 0.0;
  double speedup = 0.0;
  /// One entry per simd::SupportedTiers() member, in ascending tier
  /// order; empty when k is beyond the plane-kernel regime.
  std::vector<TierTiming> tiers;
};

/// Times the full n×n stage-1 ACV matrix three ways — per-pair
/// AcvEdgeKernel calls, the fused byte block kernel, and the fused
/// bit-plane block kernel (the builder's small-k fast path, timed
/// including PackValuePlanes) — verifying all agree bit-exactly. For
/// k > kMaxPlaneKernelValues the plane pass is skipped (the builder
/// wouldn't use it either) and the byte block kernel is the fused path.
KernelStats RunKernelComparison(const core::Database& db, size_t repeat) {
  const size_t n = db.num_attributes();
  const size_t m = db.num_observations();
  const size_t k = db.num_values();
  const size_t block = core::BuildHeadBlockSize(k);
  const bool use_planes = k <= core::kMaxPlaneKernelValues;

  std::vector<double> per_pair(n * n, 0.0);
  std::vector<double> fused_byte(n * n, 0.0);
  std::vector<double> fused_plane(n * n, 0.0);

  KernelStats stats;
  for (size_t r = 0; r < repeat; ++r) {
    Stopwatch unfused_timer;
    for (size_t h = 0; h < n; ++h) {
      const core::ValueId* head_col =
          db.column(static_cast<core::AttrId>(h)).data();
      for (size_t a = 0; a < n; ++a) {
        if (a == h) continue;
        per_pair[a * n + h] = core::AcvEdgeKernel(
            db.column(static_cast<core::AttrId>(a)).data(), head_col, m, k);
      }
    }
    double unfused_ms = unfused_timer.ElapsedMillis();

    Stopwatch byte_timer;
    {
      std::vector<size_t> scratch(core::AcvEdgeBlockScratchSize(block, k));
      std::vector<const core::ValueId*> heads(block);
      std::vector<double> out(block);
      for (size_t h0 = 0; h0 < n; h0 += block) {
        const size_t width = std::min(block, n - h0);
        for (size_t j = 0; j < width; ++j) {
          heads[j] = db.column(static_cast<core::AttrId>(h0 + j)).data();
        }
        for (size_t a = 0; a < n; ++a) {
          core::AcvEdgeBlockKernel(
              db.column(static_cast<core::AttrId>(a)).data(), heads.data(),
              width, m, k, scratch.data(), out.data());
          for (size_t j = 0; j < width; ++j) {
            fused_byte[a * n + h0 + j] = out[j];
          }
        }
      }
    }
    double byte_ms = byte_timer.ElapsedMillis();

    Stopwatch plane_timer;
    if (use_planes) {
      const size_t per_col = core::ValuePlanesSize(k, m);
      std::vector<uint64_t> planes(n * per_col);
      for (size_t a = 0; a < n; ++a) {
        core::PackValuePlanes(db.column(static_cast<core::AttrId>(a)).data(),
                              m, k, &planes[a * per_col]);
      }
      std::vector<const uint64_t*> heads(block);
      std::vector<double> out(block);
      for (size_t h0 = 0; h0 < n; h0 += block) {
        const size_t width = std::min(block, n - h0);
        for (size_t j = 0; j < width; ++j) {
          heads[j] = &planes[(h0 + j) * per_col];
        }
        for (size_t a = 0; a < n; ++a) {
          core::AcvEdgeBlockKernel(&planes[a * per_col], heads.data(),
                                   width, m, k, out.data());
          for (size_t j = 0; j < width; ++j) {
            fused_plane[a * n + h0 + j] = out[j];
          }
        }
      }
    }
    double plane_ms = use_planes ? plane_timer.ElapsedMillis() : byte_ms;

    if (r == 0 || unfused_ms < stats.per_pair_ms) {
      stats.per_pair_ms = unfused_ms;
    }
    if (r == 0 || byte_ms < stats.fused_byte_ms) {
      stats.fused_byte_ms = byte_ms;
    }
    if (r == 0 || plane_ms < stats.fused_ms) stats.fused_ms = plane_ms;
  }

  for (size_t h = 0; h < n; ++h) {
    for (size_t a = 0; a < n; ++a) {
      if (a == h) continue;
      HM_CHECK_EQ(per_pair[a * n + h], fused_byte[a * n + h]);
      if (use_planes) {
        HM_CHECK_EQ(per_pair[a * n + h], fused_plane[a * n + h]);
      }
    }
  }
  stats.speedup =
      stats.fused_ms > 0.0 ? stats.per_pair_ms / stats.fused_ms : 0.0;

  // Per-tier plane kernel pass: every dispatch tier this host supports is
  // timed on the same matrix and checked bit-identical against the
  // per-pair oracle (packing happens once, outside the timers).
  if (use_planes) {
    const size_t per_col = core::ValuePlanesSize(k, m);
    std::vector<uint64_t> planes(n * per_col);
    for (size_t a = 0; a < n; ++a) {
      core::PackValuePlanes(db.column(static_cast<core::AttrId>(a)).data(),
                            m, k, &planes[a * per_col]);
    }
    std::vector<const uint64_t*> heads(block);
    std::vector<double> out(block);
    std::vector<double> tier_acv(n * n, 0.0);
    for (core::simd::Tier tier : core::simd::SupportedTiers()) {
      const core::simd::Ops& ops = core::simd::OpsForTier(tier);
      TierTiming timing;
      timing.tier = ops.name;
      for (size_t r = 0; r < repeat; ++r) {
        Stopwatch timer;
        for (size_t h0 = 0; h0 < n; h0 += block) {
          const size_t width = std::min(block, n - h0);
          for (size_t j = 0; j < width; ++j) {
            heads[j] = &planes[(h0 + j) * per_col];
          }
          for (size_t a = 0; a < n; ++a) {
            core::AcvEdgeBlockKernel(&planes[a * per_col], heads.data(),
                                     width, m, k, ops, out.data());
            for (size_t j = 0; j < width; ++j) {
              tier_acv[a * n + h0 + j] = out[j];
            }
          }
        }
        double ms = timer.ElapsedMillis();
        if (r == 0 || ms < timing.plane_ms) timing.plane_ms = ms;
      }
      for (size_t h = 0; h < n; ++h) {
        for (size_t a = 0; a < n; ++a) {
          if (a != h) HM_CHECK_EQ(per_pair[a * n + h], tier_acv[a * n + h]);
        }
      }
      stats.tiers.push_back(timing);
    }
    const double scalar_ms = stats.tiers.front().plane_ms;
    for (TierTiming& timing : stats.tiers) {
      timing.speedup_vs_scalar =
          timing.plane_ms > 0.0 ? scalar_ms / timing.plane_ms : 0.0;
    }
  }
  return stats;
}

struct LargeTierThroughput {
  const char* tier = "";
  double candidates_per_sec = 0.0;
};

struct LargeStats {
  size_t attrs = 0;
  size_t rows = 0;
  size_t sampled_tails = 0;
  size_t sampled_heads = 0;
  double pack_ms = 0.0;
  double reuse_lookup_ms = 0.0;
  /// Per-sweep-iteration cost ratio: (pack + kernels) / (reuse + kernels)
  /// on the active tier — what a gamma sweep over this database saves per
  /// build by reusing the plane artifact.
  double pack_reuse_speedup = 0.0;
  std::vector<LargeTierThroughput> tiers;
  bool wide_snapshot_ok = false;
};

/// The >=100k-vertex workload. A full O(n^2) stage-1 pass over 100k
/// attributes is ~1e10 candidate evaluations — days on one core — so the
/// per-tier throughput is measured on a sampled slice (every sample size
/// is reported; nothing is silently capped) while packing, artifact reuse,
/// and the wide-id graph/snapshot round-trip run on the full database.
LargeStats RunLargeMode(size_t attrs, size_t rows, size_t k,
                        size_t repeat) {
  HM_CHECK_GT(attrs, 0xFFFEu);  // the point is to exceed the old cap
  HM_CHECK_LE(k, core::kMaxPlaneKernelValues);
  LargeStats stats;
  stats.attrs = attrs;
  stats.rows = rows;

  std::printf("large mode: generating %zu attrs x %zu rows...\n", attrs,
              rows);
  core::Database db = MakeDatabase(attrs, rows, k, 20120402);

  // Pack-vs-reuse through the serve-layer cache: the first lookup packs,
  // the second hits the in-memory artifact.
  serve::PlaneCache cache;
  Stopwatch pack_timer;
  std::shared_ptr<const core::ValuePlanes> planes = cache.GetOrPack(db);
  stats.pack_ms = pack_timer.ElapsedMillis();
  Stopwatch reuse_timer;
  planes = cache.GetOrPack(db);
  stats.reuse_lookup_ms = reuse_timer.ElapsedMillis();
  HM_CHECK_EQ(cache.stats().packs, size_t{1});
  HM_CHECK_EQ(cache.stats().memory_hits, size_t{1});

  // Sampled stage-1 slice: a handful of tails against a head prefix.
  stats.sampled_tails = std::min<size_t>(32, attrs);
  stats.sampled_heads = std::min<size_t>(4096, attrs);
  const size_t m = db.num_observations();
  const size_t block = core::BuildHeadBlockSize(k);
  std::vector<const uint64_t*> heads(block);
  std::vector<double> out(block);
  std::vector<double> scalar_acv(stats.sampled_tails * stats.sampled_heads);
  double active_kernel_ms = 0.0;
  for (core::simd::Tier tier : core::simd::SupportedTiers()) {
    const core::simd::Ops& ops = core::simd::OpsForTier(tier);
    std::vector<double> tier_acv(stats.sampled_tails * stats.sampled_heads);
    double best_ms = 0.0;
    for (size_t r = 0; r < repeat; ++r) {
      Stopwatch timer;
      for (size_t h0 = 0; h0 < stats.sampled_heads; h0 += block) {
        const size_t width = std::min(block, stats.sampled_heads - h0);
        for (size_t j = 0; j < width; ++j) {
          heads[j] = planes->planes_of(h0 + j);
        }
        for (size_t t = 0; t < stats.sampled_tails; ++t) {
          core::AcvEdgeBlockKernel(planes->planes_of(t), heads.data(),
                                   width, m, k, ops, out.data());
          for (size_t j = 0; j < width; ++j) {
            tier_acv[t * stats.sampled_heads + h0 + j] = out[j];
          }
        }
      }
      double ms = timer.ElapsedMillis();
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    if (tier == core::simd::Tier::kScalar) {
      scalar_acv = tier_acv;
    } else {
      // Bit-identity across tiers, at scale.
      for (size_t i = 0; i < tier_acv.size(); ++i) {
        HM_CHECK_EQ(tier_acv[i], scalar_acv[i]);
      }
    }
    if (ops.tier == core::simd::ActiveOps().tier) {
      active_kernel_ms = best_ms;
    }
    const double candidates =
        static_cast<double>(stats.sampled_tails * stats.sampled_heads);
    stats.tiers.push_back(
        {ops.name, best_ms > 0.0 ? candidates / (best_ms / 1000.0) : 0.0});
  }
  stats.pack_reuse_speedup =
      (stats.reuse_lookup_ms + active_kernel_ms) > 0.0
          ? (stats.pack_ms + active_kernel_ms) /
                (stats.reuse_lookup_ms + active_kernel_ms)
          : 0.0;

  // Wide-id graph + snapshot round-trip: ids past the old 16-bit cap
  // index correctly and survive serialization.
  auto graph = core::DirectedHypergraph::CreateAnonymous(attrs);
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 1, 0.25).status());
  HM_CHECK_OK(graph->AddEdge({0x10000}, 1, 0.75).status());
  HM_CHECK_OK(graph
                  ->AddEdge({0x10000, static_cast<core::VertexId>(attrs - 1)},
                            2, 0.5)
                  .status());
  const std::string snap = serve::SerializeSnapshot(*graph);
  auto reloaded = serve::DeserializeSnapshot(snap);
  HM_CHECK_OK(reloaded.status());
  core::VertexId wide_tail[] = {0x10000};
  auto found = reloaded->FindEdge(wide_tail, 1);
  HM_CHECK(found.has_value());
  HM_CHECK_EQ(reloaded->edge(*found).weight, 0.75);
  core::VertexId low_tail[] = {0};
  HM_CHECK_EQ(reloaded->edge(*reloaded->FindEdge(low_tail, 1)).weight, 0.25);
  stats.wide_snapshot_ok = true;
  return stats;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  const bool smoke = flags.GetBool("smoke", false);
  auto positive = [&flags](const char* name, int64_t fallback) {
    int64_t value = flags.GetInt(name, fallback);
    HM_CHECK_GT(value, 0);
    return static_cast<size_t>(value);
  };
  const size_t attrs = positive("attrs", smoke ? 28 : 192);
  const size_t rows = positive("rows", smoke ? 500 : 4000);
  const size_t k = positive("k", 3);
  const size_t repeat = positive("repeat", smoke ? 1 : 3);
  const int64_t threads_flag = flags.GetInt("threads", 0);
  HM_CHECK_GE(threads_flag, 0);
  size_t threads = static_cast<size_t>(threads_flag);
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  const std::string out_path = flags.GetString("out", "BENCH_build.json");
  const std::string export_csv = flags.GetString("export-csv", "");
  const bool large = flags.GetBool("large", false);
  const size_t large_attrs = positive("large-attrs", 100000);
  const size_t large_rows = positive("large-rows", 256);
  const char* simd = bench::ApplySimdFlag(flags);

  std::printf("bench_build_throughput: %zu attrs x %zu rows, k=%zu, "
              "%zu build threads (%zu hardware), repeat=%zu, simd=%s%s%s\n",
              attrs, rows, k, threads, ThreadPool::HardwareThreads(),
              repeat, simd, smoke ? ", --smoke" : "",
              large ? ", --large" : "");

  core::Database db = MakeDatabase(attrs, rows, k, 20120401);
  core::HypergraphConfig config = core::ConfigC1();
  config.k = k;

  core::DirectedHypergraph serial_graph =
      *core::DirectedHypergraph::CreateAnonymous(1);
  core::DirectedHypergraph parallel_graph =
      *core::DirectedHypergraph::CreateAnonymous(1);
  core::BuildStats serial_stats, parallel_stats;

  config.num_threads = 1;
  const double serial_s =
      TimedBuild(db, config, repeat, &serial_graph, &serial_stats);
  config.num_threads = threads;
  const double parallel_s =
      TimedBuild(db, config, repeat, &parallel_graph, &parallel_stats);

  // The headline guarantee: parallel output is bit-identical to serial.
  CheckIdentical(serial_graph, parallel_graph, serial_stats, parallel_stats);

  const size_t candidates =
      parallel_stats.edge_candidates + parallel_stats.pair_candidates;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double cps =
      parallel_s > 0.0 ? static_cast<double>(candidates) / parallel_s : 0.0;

  KernelStats kernel = RunKernelComparison(db, repeat);

  std::printf("model: %zu directed edges + %zu pair edges from %zu "
              "candidates\n",
              serial_stats.edges_kept, serial_stats.pairs_kept, candidates);
  std::printf("%-28s %10s\n", "configuration", "seconds");
  std::printf("%-28s %10.3f\n", "serial (1 thread)", serial_s);
  std::string label = StrFormat("parallel (%zu threads)", threads);
  std::printf("%-28s %10.3f\n", label.c_str(), parallel_s);
  std::printf("build speedup: %.2fx (%zu hardware threads); "
              "%.0f candidates/sec; builds bit-identical\n",
              speedup, ThreadPool::HardwareThreads(), cps);
  std::printf("stage-1 kernel: per-pair %.2f ms, fused byte %.2f ms, "
              "fused bit-plane %.2f ms incl. packing (%.2fx vs per-pair, "
              "all bit-identical)\n",
              kernel.per_pair_ms, kernel.fused_byte_ms, kernel.fused_ms,
              kernel.speedup);
  for (const TierTiming& tier : kernel.tiers) {
    std::printf("  tier %-8s plane kernel %8.2f ms (%.2fx vs scalar)\n",
                tier.tier, tier.plane_ms, tier.speedup_vs_scalar);
  }

  if (!export_csv.empty()) {
    HM_CHECK_OK(core::WriteHypergraphCsv(serial_graph, export_csv));
    std::printf("exported hypergraph CSV to %s\n", export_csv.c_str());
  }

  LargeStats large_stats;
  if (large) {
    large_stats = RunLargeMode(large_attrs, large_rows, k, repeat);
    std::printf("large mode (%zu attrs x %zu rows): pack %.1f ms, reuse "
                "lookup %.3f ms, pack-reuse sweep speedup %.2fx; sampled "
                "%zu tails x %zu heads:\n",
                large_stats.attrs, large_stats.rows, large_stats.pack_ms,
                large_stats.reuse_lookup_ms,
                large_stats.pack_reuse_speedup, large_stats.sampled_tails,
                large_stats.sampled_heads);
    for (const LargeTierThroughput& tier : large_stats.tiers) {
      std::printf("  tier %-8s %12.0f candidates/sec\n", tier.tier,
                  tier.candidates_per_sec);
    }
    std::printf("  wide-id snapshot round-trip: %s\n",
                large_stats.wide_snapshot_ok ? "ok" : "FAILED");
  }

  std::string tier_json;
  for (const TierTiming& tier : kernel.tiers) {
    tier_json += StrFormat(
        "%s\n    {\"tier\": \"%s\", \"plane_ms\": %.3f, "
        "\"speedup_vs_scalar\": %.3f}",
        tier_json.empty() ? "" : ",", tier.tier, tier.plane_ms,
        tier.speedup_vs_scalar);
  }
  std::string large_json = "null";
  if (large) {
    std::string large_tier_json;
    for (const LargeTierThroughput& tier : large_stats.tiers) {
      large_tier_json += StrFormat(
          "%s\n      {\"tier\": \"%s\", \"candidates_per_sec\": %.0f}",
          large_tier_json.empty() ? "" : ",", tier.tier,
          tier.candidates_per_sec);
    }
    large_json = StrFormat(
        "{\n"
        "    \"attrs\": %zu,\n"
        "    \"rows\": %zu,\n"
        "    \"sampled_tails\": %zu,\n"
        "    \"sampled_heads\": %zu,\n"
        "    \"pack_ms\": %.3f,\n"
        "    \"reuse_lookup_ms\": %.3f,\n"
        "    \"pack_reuse_speedup\": %.3f,\n"
        "    \"tiers\": [%s\n    ],\n"
        "    \"wide_snapshot_ok\": %s\n"
        "  }",
        large_stats.attrs, large_stats.rows, large_stats.sampled_tails,
        large_stats.sampled_heads, large_stats.pack_ms,
        large_stats.reuse_lookup_ms, large_stats.pack_reuse_speedup,
        large_tier_json.c_str(),
        large_stats.wide_snapshot_ok ? "true" : "false");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"build_throughput\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"build_type\": \"%s\",\n"
      "  \"attrs\": %zu,\n"
      "  \"rows\": %zu,\n"
      "  \"k\": %zu,\n"
      "  \"repeat\": %zu,\n"
      "  \"smoke\": %s,\n"
      "  \"simd\": \"%s\",\n"
      "  \"hardware_threads\": %zu,\n"
      "  \"edge_candidates\": %zu,\n"
      "  \"pair_candidates\": %zu,\n"
      "  \"edges_kept\": %zu,\n"
      "  \"pairs_kept\": %zu,\n"
      "  \"serial\": {\"seconds\": %.4f},\n"
      "  \"parallel\": {\"threads\": %zu, \"seconds\": %.4f},\n"
      "  \"build_speedup\": %.3f,\n"
      "  \"candidates_per_sec\": %.0f,\n"
      "  \"fused_kernel\": {\"per_pair_ms\": %.3f, \"fused_byte_ms\": %.3f, "
      "\"fused_ms\": %.3f, \"speedup\": %.3f},\n"
      "  \"simd_tiers\": [%s\n  ],\n"
      "  \"large\": %s,\n"
      "  \"deterministic\": true\n"
      "}\n",
      bench::GitSha(), bench::BuildType(), attrs, rows, k, repeat,
      smoke ? "true" : "false", simd, ThreadPool::HardwareThreads(),
      parallel_stats.edge_candidates, parallel_stats.pair_candidates,
      parallel_stats.edges_kept, parallel_stats.pairs_kept, serial_s,
      threads, parallel_s, speedup, cps, kernel.per_pair_ms,
      kernel.fused_byte_ms, kernel.fused_ms, kernel.speedup,
      tier_json.c_str(), large_json.c_str());
  HM_CHECK_OK(WriteStringToFile(out_path, json));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
