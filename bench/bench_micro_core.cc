/// google-benchmark microbenchmarks for the core kernels: ACV counting,
/// hypergraph construction, similarity, dominators, and the classifier.
#include <benchmark/benchmark.h>

#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "core/classifier.h"
#include "core/dominator.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::core {
namespace {

Database MakeDb(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ValueId>> columns(n, std::vector<ValueId>(m));
  std::vector<std::string> names;
  for (size_t a = 0; a < n; ++a) names.push_back("X" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      columns[a][o] = (a > 0 && rng.NextBernoulli(0.6))
                          ? columns[a - 1][o]
                          : static_cast<ValueId>(rng.NextBounded(k));
    }
  }
  auto db = DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

const MarketExperiment& SharedExperiment() {
  static const MarketExperiment* experiment = [] {
    market::MarketConfig config;
    config.num_series = 60;
    config.num_years = 4;
    config.seed = 7;
    auto ex = SetUpMarketExperiment(config, ConfigC1());
    HM_CHECK_OK(ex.status());
    return new MarketExperiment(std::move(ex).value());
  }();
  return *experiment;
}

void BM_AcvEdgeKernel(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Database db = MakeDb(2, m, 3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AcvEdgeKernel(db.column(0).data(),
                                           db.column(1).data(), m, 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_AcvEdgeKernel)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_AcvPairKernel(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Database db = MakeDb(3, m, 3, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AcvPairKernel(db.column(0).data(), db.column(1).data(),
                      db.column(2).data(), m, 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_AcvPairKernel)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BuildAssociationHypergraph(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database db = MakeDb(n, 1000, 3, 13);
  for (auto _ : state) {
    auto graph = BuildAssociationHypergraph(db, ConfigC1());
    HM_CHECK_OK(graph.status());
    benchmark::DoNotOptimize(graph->num_edges());
  }
}
BENCHMARK(BM_BuildAssociationHypergraph)->Arg(16)->Arg(32)->Arg(64);

void BM_AssociationTableBuild(benchmark::State& state) {
  Database db = MakeDb(3, static_cast<size_t>(state.range(0)), 5, 14);
  for (auto _ : state) {
    auto table = AssociationTable::Build(db, {0, 1}, 2);
    HM_CHECK_OK(table.status());
    benchmark::DoNotOptimize(table->acv());
  }
}
BENCHMARK(BM_AssociationTableBuild)->Arg(1024)->Arg(8192);

void BM_PairwiseSimilarity(benchmark::State& state) {
  const MarketExperiment& experiment = SharedExperiment();
  size_t i = 0;
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(i % experiment.graph.num_vertices());
    VertexId b = static_cast<VertexId>((i * 7 + 1) %
                                       experiment.graph.num_vertices());
    benchmark::DoNotOptimize(OutSimilarity(experiment.graph, a, b));
    benchmark::DoNotOptimize(InSimilarity(experiment.graph, a, b));
    ++i;
  }
}
BENCHMARK(BM_PairwiseSimilarity);

void BM_DominatorAlg5(benchmark::State& state) {
  const MarketExperiment& experiment = SharedExperiment();
  DominatorConfig config;
  config.acv_threshold =
      experiment.graph.WeightQuantileThreshold(0.4).value();
  for (auto _ : state) {
    auto result = ComputeDominatorGreedyDS(experiment.graph, {}, config);
    HM_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->dominator.size());
  }
}
BENCHMARK(BM_DominatorAlg5);

void BM_DominatorAlg6(benchmark::State& state) {
  const MarketExperiment& experiment = SharedExperiment();
  DominatorConfig config;
  config.acv_threshold =
      experiment.graph.WeightQuantileThreshold(0.4).value();
  for (auto _ : state) {
    auto result = ComputeDominatorSetCover(experiment.graph, {}, config);
    HM_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->dominator.size());
  }
}
BENCHMARK(BM_DominatorAlg6);

void BM_ClassifierPredict(benchmark::State& state) {
  const MarketExperiment& experiment = SharedExperiment();
  DominatorConfig dom_config;
  dom_config.acv_threshold =
      experiment.graph.WeightQuantileThreshold(0.4).value();
  auto dominator =
      ComputeDominatorSetCover(experiment.graph, {}, dom_config);
  HM_CHECK_OK(dominator.status());
  auto classifier = AssociationClassifier::Create(&experiment.graph,
                                                  &experiment.database);
  HM_CHECK_OK(classifier.status());
  std::vector<char> in_dom(experiment.database.num_attributes(), 0);
  for (VertexId v : dominator->dominator) in_dom[v] = 1;
  AttrId target = 0;
  while (target < experiment.database.num_attributes() && in_dom[target]) {
    ++target;
  }
  std::vector<int16_t> evidence(experiment.database.num_attributes(),
                                AssociationClassifier::kUnknown);
  size_t o = 0;
  for (auto _ : state) {
    for (AttrId a = 0; a < experiment.database.num_attributes(); ++a) {
      evidence[a] = in_dom[a] ? experiment.database.value(
                                    o % experiment.database.num_observations(), a)
                              : AssociationClassifier::kUnknown;
    }
    auto prediction = classifier->Predict(evidence, target);
    HM_CHECK_OK(prediction.status());
    benchmark::DoNotOptimize(prediction->value);
    ++o;
  }
}
BENCHMARK(BM_ClassifierPredict);

}  // namespace
}  // namespace hypermine::core
