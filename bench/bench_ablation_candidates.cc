/// Ablation for the candidate-generation choice documented in DESIGN.md:
/// restricting 2-to-1 candidates to pairs of γ-significant sources (the
/// default) versus enumerating all attribute pairs (the literal reading of
/// Section 3.2.1). Runs at reduced scale because the unrestricted
/// enumeration is O(n^3 m).
#include <cstdio>

#include "common.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void Run(BenchOptions options) {
  // Cap the universe so the unrestricted build stays tractable.
  options.market.num_series = std::min<size_t>(options.market.num_series, 60);
  auto panel = market::SimulateMarket(options.market);
  HM_CHECK_OK(panel.status());
  auto db = core::DiscretizePanel(*panel, 3);
  HM_CHECK_OK(db.status());

  TablePrinter table({"candidates", "pair candidates", "2-to-1 kept",
                      "mean pair ACV", "build time"});
  size_t restricted_kept = 0;
  size_t unrestricted_kept = 0;
  for (bool restricted : {true, false}) {
    core::HypergraphConfig config = core::ConfigC1();
    config.restrict_pairs_to_edges = restricted;
    core::BuildStats stats;
    Stopwatch timer;
    auto graph = core::BuildAssociationHypergraph(*db, config, &stats);
    HM_CHECK_OK(graph.status());
    (restricted ? restricted_kept : unrestricted_kept) =
        graph->NumPairEdges();
    table.AddRow({restricted ? "gamma-significant sources (default)"
                             : "all pairs (literal Sec. 3.2.1)",
                  std::to_string(stats.pair_candidates),
                  std::to_string(stats.pairs_kept),
                  FormatDouble(stats.mean_pair_acv, 3),
                  StrFormat("%.2fs", stats.elapsed_seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  double recall = unrestricted_kept == 0
                      ? 1.0
                      : static_cast<double>(restricted_kept) /
                            static_cast<double>(unrestricted_kept);
  std::printf("restricted candidate recall of unrestricted hyperedges: "
              "%.1f%% (the restriction loses only pairs whose members were "
              "individually insignificant)\n",
              recall * 100.0);
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_ablation_candidates",
      "DESIGN.md candidate-restriction ablation (Section 3.2.1)");
  Run(options);
  return 0;
}
