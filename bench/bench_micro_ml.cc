/// google-benchmark microbenchmarks for the Weka-substitute baselines used
/// by Tables 5.3/5.4 (training and prediction cost per target).
#include <benchmark/benchmark.h>

#include "ml/dataset.h"
#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/perceptron.h"
#include "ml/svm.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

Dataset MakeData(size_t rows, size_t one_hot_groups, size_t k,
                 uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = k;
  const size_t width = one_hot_groups * k + 1;
  data.features = Matrix(rows, width, 0.0);
  data.labels.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    size_t label = rng.NextBounded(k);
    for (size_t g = 0; g < one_hot_groups; ++g) {
      // Features correlate with the label 70% of the time.
      size_t v = rng.NextBernoulli(0.7) ? label : rng.NextBounded(k);
      data.features.At(r, g * k + v) = 1.0;
    }
    data.features.At(r, width - 1) = 1.0;
    data.labels[r] = static_cast<int>(label);
  }
  return data;
}

void BM_SvmTrain(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)), 15, 3, 1);
  SvmConfig config;
  config.epochs = 12;
  for (auto _ : state) {
    auto model = LinearSvm::Train(data, config);
    HM_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model->num_classes());
  }
}
BENCHMARK(BM_SvmTrain)->Arg(512)->Arg(2048);

void BM_MlpTrain(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)), 15, 3, 2);
  MlpConfig config;
  config.hidden_units = 10;
  config.epochs = 18;
  for (auto _ : state) {
    auto model = Mlp::Train(data, config);
    HM_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model->num_classes());
  }
}
BENCHMARK(BM_MlpTrain)->Arg(512)->Arg(2048);

void BM_LogisticTrain(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)), 15, 3, 3);
  LogisticRegressionConfig config;
  config.epochs = 40;
  for (auto _ : state) {
    auto model = LogisticRegression::Train(data, config);
    HM_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model->num_classes());
  }
}
BENCHMARK(BM_LogisticTrain)->Arg(512)->Arg(2048);

void BM_PerceptronTrain(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)), 15, 3, 4);
  PerceptronConfig config;
  config.max_epochs = 25;
  for (auto _ : state) {
    auto model = MulticlassPerceptron::Train(data, config);
    HM_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model->num_classes());
  }
}
BENCHMARK(BM_PerceptronTrain)->Arg(512)->Arg(2048);

void BM_BatchPredict(benchmark::State& state) {
  Dataset data = MakeData(2048, 15, 3, 5);
  auto model = LinearSvm::Train(data);
  HM_CHECK_OK(model.status());
  for (auto _ : state) {
    auto preds = model->Predict(data.features);
    HM_CHECK_OK(preds.status());
    benchmark::DoNotOptimize(preds->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_BatchPredict);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  Matrix points(static_cast<size_t>(state.range(0)), 8);
  for (size_t r = 0; r < points.rows(); ++r) {
    for (size_t c = 0; c < points.cols(); ++c) {
      points.At(r, c) = rng.NextGaussian() + (r % 4) * 3.0;
    }
  }
  KMeansConfig config;
  config.k = 4;
  for (auto _ : state) {
    auto result = KMeans(points, config);
    HM_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->inertia);
  }
}
BENCHMARK(BM_KMeans)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace hypermine::ml
