/// Ablation for Section 5.1.2's parameter-choice rationale: the chosen
/// gamma values are "stable" — slight perturbations should not change the
/// numbers of directed edges and 2-to-1 hyperedges significantly.
#include <cstdio>

#include "common.h"
#include "core/value_planes.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void Run(const BenchOptions& options) {
  auto panel = market::SimulateMarket(options.market);
  HM_CHECK_OK(panel.status());
  auto db = core::DiscretizePanel(*panel, 3);
  HM_CHECK_OK(db.status());

  // Ten builds over one database: pack the value planes once and reuse the
  // artifact for every gamma setting (the workload the plane artifact
  // exists for; each build skips its packing pass).
  const core::ValuePlanes planes = core::PackDatabasePlanes(*db);

  TablePrinter table({"gamma_edge", "gamma_hyper", "edges", "2-to-1",
                      "mean edge ACV", "mean pair ACV"});
  const double edge_gammas[] = {1.05, 1.10, 1.15, 1.20, 1.25};
  for (double gamma_edge : edge_gammas) {
    core::HypergraphConfig config = core::ConfigC1();
    config.gamma_edge = gamma_edge;
    core::BuildStats stats;
    auto graph = core::BuildAssociationHypergraph(*db, config, &stats,
                                                  nullptr, &planes);
    HM_CHECK_OK(graph.status());
    table.AddRow({FormatDouble(gamma_edge, 2),
                  FormatDouble(config.gamma_hyper, 2),
                  std::to_string(graph->NumDirectedEdges()),
                  std::to_string(graph->NumPairEdges()),
                  FormatDouble(stats.mean_edge_acv, 3),
                  FormatDouble(stats.mean_pair_acv, 3)});
  }
  table.AddSeparator();
  const double hyper_gammas[] = {1.01, 1.03, 1.05, 1.08, 1.12};
  for (double gamma_hyper : hyper_gammas) {
    core::HypergraphConfig config = core::ConfigC1();
    config.gamma_hyper = gamma_hyper;
    core::BuildStats stats;
    auto graph = core::BuildAssociationHypergraph(*db, config, &stats,
                                                  nullptr, &planes);
    HM_CHECK_OK(graph.status());
    table.AddRow({FormatDouble(config.gamma_edge, 2),
                  FormatDouble(gamma_hyper, 2),
                  std::to_string(graph->NumDirectedEdges()),
                  std::to_string(graph->NumPairEdges()),
                  FormatDouble(stats.mean_edge_acv, 3),
                  FormatDouble(stats.mean_pair_acv, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape to check: edge counts move smoothly (no cliff at the chosen "
      "1.15/1.05), matching the 'stable values' rationale of Section "
      "5.1.2.\n");
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(argc, argv, "bench_ablation_gamma",
                                        "Section 5.1.2 gamma stability");
  Run(options);
  return 0;
}
