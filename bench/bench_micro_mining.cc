/// google-benchmark comparison of the classic frequent-itemset miners:
/// Apriori (candidate generation) vs FP-Growth (prefix-tree projection),
/// plus rule generation and the quantitative bridge.
#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "mining/quantitative.h"
#include "mining/rules.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::mining {
namespace {

TransactionSet MakeTxns(size_t num_items, size_t count, double density,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ItemId>> raw(count);
  for (auto& txn : raw) {
    for (ItemId item = 0; item < num_items; ++item) {
      // Blocks of correlated items make multi-level itemsets frequent.
      double p = (item % 4 == 0) ? density * 1.5 : density;
      if (rng.NextBernoulli(p)) txn.push_back(item);
    }
  }
  auto txns = MakeTransactionSet(num_items, raw);
  HM_CHECK_OK(txns.status());
  return std::move(txns).value();
}

void BM_Apriori(benchmark::State& state) {
  TransactionSet txns =
      MakeTxns(static_cast<size_t>(state.range(0)), 500, 0.25, 3);
  AprioriConfig config;
  config.min_support = 0.10;
  config.max_size = 3;
  for (auto _ : state) {
    auto frequent = Apriori(txns, config);
    HM_CHECK_OK(frequent.status());
    benchmark::DoNotOptimize(frequent->size());
  }
}
BENCHMARK(BM_Apriori)->Arg(16)->Arg(32)->Arg(64);

void BM_FpGrowth(benchmark::State& state) {
  TransactionSet txns =
      MakeTxns(static_cast<size_t>(state.range(0)), 500, 0.25, 3);
  FpGrowthConfig config;
  config.min_support = 0.10;
  config.max_size = 3;
  for (auto _ : state) {
    auto frequent = FpGrowth(txns, config);
    HM_CHECK_OK(frequent.status());
    benchmark::DoNotOptimize(frequent->size());
  }
}
BENCHMARK(BM_FpGrowth)->Arg(16)->Arg(32)->Arg(64);

void BM_RuleGeneration(benchmark::State& state) {
  TransactionSet txns = MakeTxns(32, 500, 0.25, 5);
  FpGrowthConfig fp;
  fp.min_support = 0.08;
  fp.max_size = 3;
  auto frequent = FpGrowth(txns, fp);
  HM_CHECK_OK(frequent.status());
  RuleConfig config;
  config.min_confidence = 0.5;
  for (auto _ : state) {
    auto rules = GenerateRules(*frequent, txns.size(), config);
    HM_CHECK_OK(rules.status());
    benchmark::DoNotOptimize(rules->size());
  }
}
BENCHMARK(BM_RuleGeneration);

void BM_MineQuantitativeRules(benchmark::State& state) {
  market::MarketConfig market_config;
  market_config.num_series = 16;
  market_config.num_years = 2;
  auto panel = market::SimulateMarket(market_config);
  HM_CHECK_OK(panel.status());
  auto db = core::DiscretizePanel(*panel, 3);
  HM_CHECK_OK(db.status());
  QuantitativeConfig config;
  config.min_support = 0.10;
  config.min_confidence = 0.45;
  config.max_rule_size = 3;
  config.use_fpgrowth = state.range(0) == 1;
  for (auto _ : state) {
    auto rules = MineQuantitativeRules(*db, config);
    HM_CHECK_OK(rules.status());
    benchmark::DoNotOptimize(rules->size());
  }
}
BENCHMARK(BM_MineQuantitativeRules)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("fpgrowth");

}  // namespace
}  // namespace hypermine::mining
