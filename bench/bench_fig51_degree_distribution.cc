/// Reproduces Figure 5.1: the weighted in-degree and out-degree
/// distributions of the association hypergraph (configuration C1), plus the
/// top-25 sector-concentration statistics of Section 5.2 (72% of the top-25
/// in-degrees in producer-like sectors; 84% of the top-25 out-degrees in
/// consumer-like sectors).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "util/string_util.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

struct DegreeEntry {
  core::VertexId vertex;
  double value;
};

void PrintTop(const core::MarketExperiment& experiment,
              std::vector<DegreeEntry> degrees, const char* label,
              market::Role focus_role, const char* paper_claim) {
  std::sort(degrees.begin(), degrees.end(),
            [](const DegreeEntry& a, const DegreeEntry& b) {
              return a.value > b.value;
            });
  size_t top = std::min<size_t>(25, degrees.size());
  TablePrinter table({"rank", "series", "sector", "role", label});
  size_t focus_hits = 0;
  for (size_t i = 0; i < top; ++i) {
    const market::Ticker& ticker =
        experiment.panel.tickers[degrees[i].vertex];
    focus_hits += ticker.role == focus_role ? 1 : 0;
    if (i < 10) {
      table.AddRow({std::to_string(i + 1), ticker.symbol,
                    market::SectorCode(ticker.sector),
                    market::RoleName(ticker.role),
                    FormatDouble(degrees[i].value, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("  top-%zu %s share of '%s' series: %.0f%%  (paper: %s)\n\n",
              top, label, market::RoleName(focus_role),
              100.0 * static_cast<double>(focus_hits) /
                  static_cast<double>(top),
              paper_claim);
}

void Run(const BenchOptions& options) {
  core::MarketExperiment experiment =
      MustSetUp(options, core::ConfigC1());
  const core::DirectedHypergraph& graph = experiment.graph;

  std::vector<DegreeEntry> in_degrees;
  std::vector<DegreeEntry> out_degrees;
  std::vector<double> in_values;
  std::vector<double> out_values;
  for (core::VertexId v = 0; v < graph.num_vertices(); ++v) {
    double in = graph.WeightedInDegree(v);
    double out = graph.WeightedOutDegree(v);
    in_degrees.push_back({v, in});
    out_degrees.push_back({v, out});
    in_values.push_back(in);
    out_values.push_back(out);
  }

  std::printf("(a) weighted in-degree distribution: %s\n",
              Summarize(in_values).ToString().c_str());
  Histogram in_hist(0.0, Max(in_values) + 1e-9, 12);
  in_hist.AddAll(in_values);
  std::printf("%s\n", in_hist.ToString().c_str());
  PrintTop(experiment, in_degrees, "in-degree", market::Role::kProducer,
           "72% of top-25 from BM/E/SV-real-estate (producers)");

  std::printf("(b) weighted out-degree distribution: %s\n",
              Summarize(out_values).ToString().c_str());
  Histogram out_hist(0.0, Max(out_values) + 1e-9, 12);
  out_hist.AddAll(out_values);
  std::printf("%s\n", out_hist.ToString().c_str());
  PrintTop(experiment, out_degrees, "out-degree", market::Role::kConsumer,
           "84% of top-25 from H/SV/T (consumers)");

  // The paper singles out XOM and GT (high in-degree) and PG, JNJ (high
  // out-degree) among the selected series.
  std::printf("selected-series degrees (Section 5.2 call-outs):\n");
  for (const std::string& symbol : SelectedSeries()) {
    auto idx = experiment.database.AttributeIndex(symbol);
    if (!idx.ok()) continue;
    std::printf("  %-5s in=%8.1f  out=%8.1f\n", symbol.c_str(),
                graph.WeightedInDegree(*idx), graph.WeightedOutDegree(*idx));
  }
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_fig51_degree_distribution",
      "Figure 5.1 weighted degree distributions, Section 5.2 top-25 claims");
  Run(options);
  return 0;
}
