/// Reproduces Table 5.3: dominator size / coverage and mean classification
/// confidence of the association-based classifier and the SVM / MLP /
/// logistic-regression baselines, with dominators computed by Algorithm 5
/// (the graph-dominating-set adaptation).
#include "dominator_table.h"

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_table53_dominators_alg5",
      "Table 5.3 dominators via Algorithm 5 + classifier comparison");
  RunDominatorTable(options, DominatorAlgorithm::kAlg5GreedyDS);
  return 0;
}
