#ifndef HYPERMINE_BENCH_COMMON_H_
#define HYPERMINE_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/builder.h"
#include "core/pipeline.h"
#include "market/market_sim.h"
#include "util/flags.h"

namespace hypermine::bench {

/// Scale and configuration shared by every table/figure harness. Defaults
/// run on one core in seconds; --full switches to the paper's scale
/// (346 series x 15 years, Jan 1995 - Dec 2009).
struct BenchOptions {
  market::MarketConfig market;
  bool run_c1 = true;
  bool run_c2 = true;
  bool skip_baselines = false;
  /// "paper" (association-table rows, Section 5.5) or "raw" (train on raw
  /// in-sample observations; stronger than the paper's baselines).
  std::string baseline_protocol = "paper";
  /// Worker threads for hypergraph construction (HypergraphConfig::
  /// num_threads); 0 = hardware concurrency. Builds are bit-identical at
  /// any thread count, so this only changes wall time — pass --threads=1
  /// for reproducible timing on CI/1-core containers.
  size_t build_threads = 0;

  /// Parses --series, --years, --seed, --full, --config=c1|c2|both,
  /// --threads, --skip-baselines, --baseline-protocol=paper|raw.
  static BenchOptions FromFlags(const FlagParser& flags);
};

/// Parses argv and prints the run header (scale, seed, configs).
BenchOptions ParseBenchArgs(int argc, char** argv, const char* bench_name,
                            const char* paper_anchor);

/// Applies --simd=scalar|avx2|avx512 for the whole process: forces the ACV
/// kernel dispatch tier (clamped to what this host supports, so requesting
/// avx512 on an avx2 machine runs avx2, not a crash). An unrecognized value
/// is fatal — a bench silently measuring the wrong tier is worse than an
/// error. Without the flag the environment/auto-detected tier stands.
/// Returns the name of the tier actually active.
const char* ApplySimdFlag(const FlagParser& flags);

/// The 11 series of Tables 5.1/5.2, one per sector (Conglomerates has no
/// selected row in the paper either).
const std::vector<std::string>& SelectedSeries();

/// Sets up market + discretized database + hypergraph for one config.
core::MarketExperiment MustSetUp(const BenchOptions& options,
                                 const core::HypergraphConfig& config);

/// "C1" / "C2" label helper.
std::string ConfigName(const core::HypergraphConfig& config);

/// Formats a hyperedge like the paper's tables: "HES (E), SLB (E) -> XOM".
std::string FormatEdgeWithSectors(const core::MarketExperiment& experiment,
                                  core::EdgeId id);

/// Prints a line comparing a measured value against what the paper reports.
void PrintPaperComparison(const std::string& metric, double measured,
                          const std::string& paper_value);

/// p-th percentile (0..1) of an ascending-sorted latency sample; 0 on an
/// empty sample. Shared by the serving/net throughput harnesses so p50/p99
/// are computed identically everywhere.
double PercentileMs(const std::vector<double>& sorted_ms, double p);

}  // namespace hypermine::bench

#endif  // HYPERMINE_BENCH_COMMON_H_
