/// Reproduces the model-size statistics of Section 5.1.2: number of
/// directed edges and 2-to-1 directed hyperedges and their mean ACVs, for
/// configurations C1 and C2.
#include <cstdio>

#include "common.h"

namespace hypermine::bench {
namespace {

void RunConfig(const BenchOptions& options,
               const core::HypergraphConfig& config) {
  core::MarketExperiment experiment = MustSetUp(options, config);
  std::printf("--- configuration %s (k=%zu, gamma_edge=%.2f, "
              "gamma_hyper=%.2f) ---\n",
              ConfigName(config).c_str(), config.k, config.gamma_edge,
              config.gamma_hyper);
  std::printf("  build: %s\n", experiment.stats.ToString().c_str());
  const bool c1 = config.k == 3;
  PrintPaperComparison(
      "directed edges",
      static_cast<double>(experiment.graph.NumDirectedEdges()),
      c1 ? "106,475 at 346 series" : "109,810 at 346 series");
  PrintPaperComparison(
      "2-to-1 directed hyperedges",
      static_cast<double>(experiment.graph.NumPairEdges()),
      c1 ? "157,412 at 346 series" : "274,048 at 346 series");
  PrintPaperComparison("mean ACV of directed edges",
                       experiment.graph.MeanDirectedEdgeWeight(),
                       c1 ? "0.436" : "0.288");
  PrintPaperComparison("mean ACV of 2-to-1 hyperedges",
                       experiment.graph.MeanPairEdgeWeight(),
                       c1 ? "0.437" : "0.288");
  double candidate_share =
      experiment.stats.edge_candidates == 0
          ? 0.0
          : static_cast<double>(experiment.stats.edges_kept) /
                static_cast<double>(experiment.stats.edge_candidates);
  PrintPaperComparison("gamma-significant edge share", candidate_share,
                       "~0.89 (106,475 of 119,370)");
  std::printf("\n");
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_model_stats", "Section 5.1.2 model statistics");
  if (options.run_c1) RunConfig(options, hypermine::core::ConfigC1());
  if (options.run_c2) RunConfig(options, hypermine::core::ConfigC2());
  return 0;
}
