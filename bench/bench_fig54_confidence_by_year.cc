/// Reproduces Figure 5.4: the classification-confidence distribution of
/// the association-based classifier over expanding training windows. The
/// training set grows one year at a time (the paper starts at 1996); the
/// out-sample is always the year right after the window. Panels (a) and (b)
/// use dominators from Algorithm 5 and Algorithm 6 respectively.
#include <cstdio>

#include "common.h"
#include "core/classifier.h"
#include "core/dominator.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void RunPanel(const BenchOptions& options, bool use_alg6) {
  auto panel = market::SimulateMarket(options.market);
  HM_CHECK_OK(panel.status());
  const core::HypergraphConfig config = core::ConfigC1();
  int first = options.market.first_year;
  int last = first + static_cast<int>(options.market.num_years) - 1;

  std::printf("(%c) dominator from Algorithm %s\n", use_alg6 ? 'b' : 'a',
              use_alg6 ? "6 (set-cover adaptation)"
                       : "5 (dominating-set adaptation)");
  TablePrinter table({"train window", "test year", "dominator", "ABC in",
                      "ABC out"});
  // Expanding windows: train [first .. year], test year+1.
  for (int year = first + 1; year < last; ++year) {
    auto split =
        core::DiscretizeTrainTest(*panel, config.k, first, year, year + 1,
                                  year + 1);
    HM_CHECK_OK(split.status());
    auto graph = core::BuildAssociationHypergraph(split->train, config);
    HM_CHECK_OK(graph.status());
    // Threshold at the top 40% of hyperedges, the Figure 5.4 setting
    // (ACV-threshold 0.45 for the paper's C1 model).
    auto threshold = graph->WeightQuantileThreshold(0.40);
    HM_CHECK_OK(threshold.status());
    core::DominatorConfig dom_config;
    dom_config.acv_threshold = *threshold;
    auto dominator =
        use_alg6 ? core::ComputeDominatorSetCover(*graph, {}, dom_config)
                 : core::ComputeDominatorGreedyDS(*graph, {}, dom_config);
    HM_CHECK_OK(dominator.status());
    if (dominator->dominator.empty()) continue;
    auto in_sample = core::EvaluateAssociationClassifier(
        *graph, split->train, split->train, dominator->dominator);
    auto out_sample = core::EvaluateAssociationClassifier(
        *graph, split->train, split->test, dominator->dominator);
    HM_CHECK_OK(in_sample.status());
    HM_CHECK_OK(out_sample.status());
    table.AddRow({StrFormat("%d - %d", first, year),
                  std::to_string(year + 1),
                  std::to_string(dominator->dominator.size()),
                  FormatDouble(in_sample->mean_confidence, 3),
                  FormatDouble(out_sample->mean_confidence, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_fig54_confidence_by_year",
      "Figure 5.4 in-/out-sample confidence across expanding windows (C1)");
  RunPanel(options, /*use_alg6=*/false);
  RunPanel(options, /*use_alg6=*/true);
  std::printf(
      "paper: mean classification confidence stays within 0.60-0.75 on "
      "both in-sample and out-sample data across all windows.\n");
  return 0;
}
