// End-to-end throughput of the TCP front-end (net::Server + net::Client)
// against the same api::Engine queried in-process: what does the wire —
// framing, syscalls, name resolution both ways — cost relative to the
// engine ceiling? Emits BENCH_net.json for the perf trajectory.
//
// The --idle-connections=N mode is the multiplexing proof: N idle,
// never-written clients (N ≫ the server's worker pool) are held open
// while the full-rate pipelined measurement runs again; an event-loop
// server should sustain ≈ the no-idle qps, where a thread-per-connection
// server could not even accept them.
//
// The --reactors=N axis shards the server's event loop over N reactor
// threads (see docs/architecture.md, multi-reactor section); the bench
// always appends a small multi-reactor sweep driven by *forked* client
// processes — one process per client, pingpong over its own connection —
// so the load generator scales past one client process's scheduler and
// the recorded per-reactor qps is not generator-bound. `num_reactors` is
// part of the workload key in BENCH_net.json (tools/check_bench.py):
// single- and multi-reactor baselines never get compared to each other.
//
//   ./bench_net_throughput [--vertices=2000] [--edges=50000]
//       [--queries=20000] [--clients=4] [--pipeline=64] [--threads=4]
//       [--server-threads=4] [--reactors=1] [--fork-clients]
//       [--idle-connections=0] [--out=BENCH_net.json] [--smoke]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "bench/common.h"
#include "build_info.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/testutil.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypermine {
namespace {

using bench::PercentileMs;

/// The query mix of bench_serve_throughput, converted to names — the only
/// form the wire accepts (ids are per-model).
std::vector<api::QueryRequest> NamedQueries(size_t n, size_t vertices) {
  std::vector<api::QueryRequest> requests;
  requests.reserve(n);
  for (const serve::Query& query :
       serve::RandomServeQueries(n, vertices, 7, /*k=*/10,
                                 /*reach_every=*/16, /*reach_min_acv=*/0.8)) {
    api::QueryRequest request;
    request.names.reserve(query.items.size());
    for (core::VertexId v : query.items) {
      request.names.push_back(StrFormat("v%u", unsigned{v}));
    }
    request.k = query.k;
    request.kind = query.kind == serve::Query::Kind::kTopK
                       ? api::QueryRequest::Kind::kTopK
                       : api::QueryRequest::Kind::kReachable;
    request.min_acv = query.min_acv;
    requests.push_back(std::move(request));
  }
  return requests;
}

double InProcessQps(api::Engine* engine,
                    const std::vector<api::QueryRequest>& requests,
                    size_t batch_size) {
  Stopwatch total;
  for (size_t begin = 0; begin < requests.size(); begin += batch_size) {
    size_t end = std::min(requests.size(), begin + batch_size);
    std::vector<api::QueryRequest> batch(requests.begin() + begin,
                                         requests.begin() + end);
    std::vector<StatusOr<api::QueryResponse>> responses =
        engine->QueryBatch(batch);
    for (const auto& response : responses) HM_CHECK_OK(response.status());
  }
  return static_cast<double>(requests.size()) / total.ElapsedSeconds();
}

struct NetStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t answered = 0;
};

/// Lifts the open-descriptor soft limit toward the hard limit so
/// --idle-connections can hold thousands of sockets (plus the server's
/// side of each) on stock shells.
void EnsureFdHeadroom(size_t wanted) {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= wanted) return;
  limit.rlim_cur = std::min<rlim_t>(limit.rlim_max, wanted);
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

NetStats NetQps(uint16_t port, const std::vector<api::QueryRequest>& requests,
                size_t num_clients, size_t pipeline) {
  std::vector<std::vector<double>> round_ms(num_clients);
  std::atomic<uint64_t> answered{0};
  Stopwatch total;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", port, 2000);
      HM_CHECK_OK(client.status());
      // Client c takes the c-th stripe so every query is sent exactly once.
      for (size_t begin = c * pipeline; begin < requests.size();
           begin += num_clients * pipeline) {
        size_t end = std::min(requests.size(), begin + pipeline);
        std::vector<api::QueryRequest> chunk(requests.begin() + begin,
                                             requests.begin() + end);
        Stopwatch round;
        auto responses = client->QueryMany(chunk);
        round_ms[c].push_back(round.ElapsedMillis());
        HM_CHECK_OK(responses.status());
        HM_CHECK_EQ(responses->size(), chunk.size());
        for (const net::WireResponse& response : *responses) {
          HM_CHECK(response.code == StatusCode::kOk);
        }
        answered.fetch_add(responses->size());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  double seconds = total.ElapsedSeconds();

  NetStats stats;
  stats.answered = answered.load();
  stats.qps = static_cast<double>(stats.answered) / seconds;
  std::vector<double> all_ms;
  for (const auto& per_client : round_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  stats.p50_ms = PercentileMs(all_ms, 0.50);
  stats.p99_ms = PercentileMs(all_ms, 0.99);
  return stats;
}

/// The multi-process load generator: the pingpong client shape — each
/// client is a forked *process* owning one connection, pipelining its
/// stripe of the query list and timing each round — so client-side work
/// never shares a scheduler (or a malloc arena, or a stop-the-world
/// anything) with its siblings. Each child streams its answered count and
/// raw round latencies back through a pipe; the parent reaps and merges.
/// The data per child (~a few KB of doubles) fits a pipe buffer, so
/// children never block on a parent that reads them in order.
NetStats ForkNetQps(uint16_t port,
                    const std::vector<api::QueryRequest>& requests,
                    size_t num_clients, size_t pipeline) {
  struct Child {
    pid_t pid = -1;
    int pipe_fd = -1;
  };
  std::vector<Child> children(num_clients);
  Stopwatch total;
  for (size_t c = 0; c < num_clients; ++c) {
    int fds[2];
    HM_CHECK_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    HM_CHECK_GE(pid, 0);
    if (pid == 0) {
      // Child: distinct exit codes instead of HM_CHECK so a failure is
      // attributable from the parent's waitpid status without interleaving
      // two processes' stderr.
      ::close(fds[0]);
      auto client = net::Client::Connect("127.0.0.1", port, 2000);
      if (!client.ok()) ::_exit(2);
      std::vector<double> round_ms;
      uint64_t answered = 0;
      for (size_t begin = c * pipeline; begin < requests.size();
           begin += num_clients * pipeline) {
        size_t end = std::min(requests.size(), begin + pipeline);
        std::vector<api::QueryRequest> chunk(requests.begin() + begin,
                                             requests.begin() + end);
        Stopwatch round;
        auto responses = client->QueryMany(chunk);
        round_ms.push_back(round.ElapsedMillis());
        if (!responses.ok() || responses->size() != chunk.size()) ::_exit(3);
        for (const net::WireResponse& response : *responses) {
          if (response.code != StatusCode::kOk) ::_exit(4);
        }
        answered += responses->size();
      }
      const uint64_t rounds = round_ms.size();
      auto write_all = [&fds](const void* data, size_t size) {
        const char* p = static_cast<const char*>(data);
        while (size > 0) {
          const ssize_t n = ::write(fds[1], p, size);
          if (n <= 0) ::_exit(5);
          p += n;
          size -= static_cast<size_t>(n);
        }
      };
      write_all(&answered, sizeof(answered));
      write_all(&rounds, sizeof(rounds));
      write_all(round_ms.data(), rounds * sizeof(double));
      ::_exit(0);
    }
    ::close(fds[1]);
    children[c] = Child{pid, fds[0]};
  }

  NetStats stats;
  std::vector<double> all_ms;
  for (Child& child : children) {
    auto read_all = [&child](void* data, size_t size) {
      char* p = static_cast<char*>(data);
      while (size > 0) {
        const ssize_t n = ::read(child.pipe_fd, p, size);
        HM_CHECK_GT(n, 0);
        p += n;
        size -= static_cast<size_t>(n);
      }
    };
    uint64_t answered = 0;
    uint64_t rounds = 0;
    read_all(&answered, sizeof(answered));
    read_all(&rounds, sizeof(rounds));
    std::vector<double> child_ms(rounds);
    if (rounds > 0) read_all(child_ms.data(), rounds * sizeof(double));
    ::close(child.pipe_fd);
    int wstatus = 0;
    HM_CHECK_EQ(::waitpid(child.pid, &wstatus, 0), child.pid);
    HM_CHECK(WIFEXITED(wstatus));
    HM_CHECK_EQ(WEXITSTATUS(wstatus), 0);
    stats.answered += answered;
    all_ms.insert(all_ms.end(), child_ms.begin(), child_ms.end());
  }
  const double seconds = total.ElapsedSeconds();
  stats.qps = static_cast<double>(stats.answered) / seconds;
  std::sort(all_ms.begin(), all_ms.end());
  stats.p50_ms = PercentileMs(all_ms, 0.50);
  stats.p99_ms = PercentileMs(all_ms, 0.99);
  return stats;
}

int Main(int argc, char** argv) {
  // The reactor narrates accepts/closes at kInfo now; keep the bench
  // tables clean without hiding real warnings.
  internal_logging::SetMinLogSeverity(
      internal_logging::LogSeverity::kWarning);
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  const bool smoke = flags.GetBool("smoke", false);
  auto positive = [&flags](const char* name, int64_t fallback) {
    int64_t value = flags.GetInt(name, fallback);
    HM_CHECK_GT(value, 0);
    return static_cast<size_t>(value);
  };
  const size_t vertices = positive("vertices", smoke ? 300 : 2000);
  const size_t edges = positive("edges", smoke ? 3000 : 50000);
  const size_t num_queries = positive("queries", smoke ? 2000 : 20000);
  const size_t num_clients = positive("clients", 4);
  const size_t pipeline = positive("pipeline", 64);
  const size_t threads = positive("threads", 4);
  // The server's batch-execution pool. Deliberately small (≤ 8 in the
  // recorded runs): the whole point of the event loop is that
  // connections, idle or not, do not consume workers.
  const size_t server_threads = positive("server-threads", 4);
  // 0 = one reactor per hardware thread (resolved by the server; the
  // resolved count is what lands in the JSON workload key).
  const int64_t reactors_flag = flags.GetInt("reactors", 1);
  HM_CHECK_GE(reactors_flag, 0);
  const bool fork_clients = flags.GetBool("fork-clients", false);
  const int64_t idle_connections_flag = flags.GetInt("idle-connections", 0);
  HM_CHECK_GE(idle_connections_flag, 0);
  const size_t idle_connections = static_cast<size_t>(idle_connections_flag);
  const std::string out_path = flags.GetString("out", "BENCH_net.json");

  std::printf("bench_net_throughput: %zu vertices, %zu edges, %zu queries "
              "(%zu %s clients x pipeline %zu, server pool %zu, "
              "%lld reactor(s), %zu idle)\n",
              vertices, edges, num_queries, num_clients,
              fork_clients ? "forked" : "threaded", pipeline, server_threads,
              static_cast<long long>(reactors_flag), idle_connections);

  core::DirectedHypergraph graph =
      serve::RandomServeGraph(vertices, edges, 42);
  std::shared_ptr<const api::Model> model =
      api::Model::FromGraph(std::move(graph), {});
  model->index();  // build eagerly so neither side pays it mid-measurement

  // Cache off on both sides: this harness measures the transport against
  // the compute path, not cache hit luck.
  api::EngineOptions engine_options;
  engine_options.num_threads = threads;
  engine_options.cache_capacity = 0;
  api::Engine engine(model, engine_options);

  std::vector<api::QueryRequest> requests =
      NamedQueries(num_queries, vertices);
  const double inproc_qps = InProcessQps(&engine, requests, pipeline);

  net::ServerOptions server_options;
  server_options.max_batch = pipeline;
  server_options.num_threads = server_threads;
  server_options.num_reactors = static_cast<size_t>(reactors_flag);
  server_options.max_connections =
      std::max<size_t>(4096, idle_connections + num_clients + 64);
  // A private registry so the per-stage histograms cover exactly this
  // run's traffic (and the bench never perturbs the process default).
  metrics::Registry registry;
  server_options.registry = &registry;
  EnsureFdHeadroom(2 * (idle_connections + num_clients) + 64);
  auto server = net::Server::Start(&engine, server_options);
  HM_CHECK_OK(server.status());
  const size_t num_reactors = (*server)->num_reactors();

  auto run_load = [&](uint16_t port) {
    return fork_clients ? ForkNetQps(port, requests, num_clients, pipeline)
                        : NetQps(port, requests, num_clients, pipeline);
  };

  // Pass 1: pipelined traffic alone — the multiplexing baseline.
  NetStats net = run_load((*server)->port());
  HM_CHECK_EQ(net.answered, num_queries);  // zero dropped over the wire

  // Pass 2 (--idle-connections=N): the same traffic with N idle clients
  // parked on the same reactor. None of them is ever written to; all of
  // them must still be connected afterwards.
  NetStats idle_net;
  double idle_ratio = 0.0;
  if (idle_connections > 0) {
    std::vector<net::Socket> parked;
    parked.reserve(idle_connections);
    for (size_t i = 0; i < idle_connections; ++i) {
      auto socket =
          net::Socket::Connect("127.0.0.1", (*server)->port(), 2000);
      HM_CHECK_OK(socket.status());
      parked.push_back(std::move(*socket));
    }
    // connect() returning only proves the kernel queued the socket; wait
    // until the reactor has actually accepted all of them so the idle
    // pass measures steady-state coexistence, not accept-storm overlap.
    for (int spin = 0; spin < 1000; ++spin) {
      if ((*server)->stats().connections_accepted >=
          num_clients + idle_connections) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    idle_net = run_load((*server)->port());
    HM_CHECK_EQ(idle_net.answered, num_queries);
    idle_ratio = net.qps > 0 ? idle_net.qps / net.qps : 0.0;
    // Still connected: a poll on each parked socket must see silence,
    // not a hangup (the reactor never reaped or starved them).
    for (net::Socket& socket : parked) {
      HM_CHECK(!socket.Readable(0));
    }
  }

  net::ServerStats server_stats = (*server)->stats();
  // Per-stage wire latency (docs/observability.md): where a round trip's
  // time went — reactor-to-worker queue wait, engine batch execution,
  // response write-drain. Snapshots are taken before Stop so they cover
  // exactly the measured traffic.
  const metrics::Histogram::Snapshot queue_wait =
      registry.GetHistogram("hypermine_net_queue_wait_seconds")
          ->TakeSnapshot();
  const metrics::Histogram::Snapshot engine_batch =
      registry.GetHistogram("hypermine_engine_batch_seconds")
          ->TakeSnapshot();
  const metrics::Histogram::Snapshot write_drain =
      registry.GetHistogram("hypermine_net_write_drain_seconds")
          ->TakeSnapshot();
  (*server)->Stop();

  // Multi-reactor sweep: a fresh server per reactor count, always driven
  // by forked clients so generator contention never masks a server-side
  // scaling difference. `reactors_hit` counts reactors that accepted at
  // least one connection — under SO_REUSEPORT the kernel's flow hash
  // picks the listener, so with few clients the spread is best-effort.
  struct SweepPoint {
    size_t num_reactors = 0;
    NetStats net;
    size_t reactors_hit = 0;
  };
  std::vector<SweepPoint> sweep;
  const std::vector<size_t> sweep_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};
  for (size_t reactor_count : sweep_counts) {
    net::ServerOptions sweep_options = server_options;
    sweep_options.num_reactors = reactor_count;
    auto sweep_server = net::Server::Start(&engine, sweep_options);
    HM_CHECK_OK(sweep_server.status());
    SweepPoint point;
    point.num_reactors = (*sweep_server)->num_reactors();
    point.net = ForkNetQps((*sweep_server)->port(), requests, num_clients,
                           pipeline);
    HM_CHECK_EQ(point.net.answered, num_queries);
    const net::ServerStats sweep_stats = (*sweep_server)->stats();
    for (const net::ReactorStats& reactor : sweep_stats.per_reactor) {
      if (reactor.connections_accepted > 0) ++point.reactors_hit;
    }
    (*sweep_server)->Stop();
    sweep.push_back(point);
  }

  const double wire_cost =
      net.qps > 0 ? inproc_qps / net.qps : 0.0;
  std::printf("%-22s %12s %10s %10s\n", "configuration", "queries/s",
              "p50 ms", "p99 ms");
  std::printf("%-22s %12.0f %10s %10s\n", "in-process engine", inproc_qps,
              "-", "-");
  std::printf("%-22s %12.0f %10.3f %10.3f\n", "over TCP loopback", net.qps,
              net.p50_ms, net.p99_ms);
  if (idle_connections > 0) {
    std::printf("%-22s %12.0f %10.3f %10.3f   (%.1f%% of no-idle qps)\n",
                StrFormat("+ %zu idle conns", idle_connections).c_str(),
                idle_net.qps, idle_net.p50_ms, idle_net.p99_ms,
                100.0 * idle_ratio);
  }
  std::printf("wire cost: %.2fx engine qps; server saw %llu batches for "
              "%llu queries (avg coalesce %.1f)\n",
              wire_cost,
              static_cast<unsigned long long>(server_stats.batches),
              static_cast<unsigned long long>(server_stats.queries_answered),
              server_stats.batches > 0
                  ? static_cast<double>(server_stats.queries_answered) /
                        static_cast<double>(server_stats.batches)
                  : 0.0);
  std::printf("%-22s %10s %10s\n", "stage latency", "p50 ms", "p99 ms");
  std::printf("%-22s %10.3f %10.3f\n", "queue wait",
              1e3 * queue_wait.Percentile(0.50),
              1e3 * queue_wait.Percentile(0.99));
  std::printf("%-22s %10.3f %10.3f\n", "engine batch",
              1e3 * engine_batch.Percentile(0.50),
              1e3 * engine_batch.Percentile(0.99));
  std::printf("%-22s %10.3f %10.3f\n", "write drain",
              1e3 * write_drain.Percentile(0.50),
              1e3 * write_drain.Percentile(0.99));
  std::printf("%-22s %12s %10s %10s %8s\n", "reactor sweep (forked)",
              "queries/s", "p50 ms", "p99 ms", "hit");
  for (const SweepPoint& point : sweep) {
    std::printf("%-22s %12.0f %10.3f %10.3f %5zu/%zu\n",
                StrFormat("%zu reactor(s)", point.num_reactors).c_str(),
                point.net.qps, point.net.p50_ms, point.net.p99_ms,
                point.reactors_hit, point.num_reactors);
  }

  std::string idle_json = "null";
  if (idle_connections > 0) {
    idle_json = StrFormat(
        "{\"connections\": %zu, \"qps\": %.1f, \"p50_round_ms\": %.3f, "
        "\"p99_round_ms\": %.3f, \"answered\": %llu, "
        "\"ratio_vs_no_idle\": %.3f}",
        idle_connections, idle_net.qps, idle_net.p50_ms, idle_net.p99_ms,
        static_cast<unsigned long long>(idle_net.answered), idle_ratio);
  }
  std::string sweep_json = "[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    sweep_json += StrFormat(
        "%s\n    {\"num_reactors\": %zu, \"qps\": %.1f, "
        "\"p50_round_ms\": %.3f, \"p99_round_ms\": %.3f, "
        "\"answered\": %llu, \"reactors_hit\": %zu}",
        i == 0 ? "" : ",", sweep[i].num_reactors, sweep[i].net.qps,
        sweep[i].net.p50_ms, sweep[i].net.p99_ms,
        static_cast<unsigned long long>(sweep[i].net.answered),
        sweep[i].reactors_hit);
  }
  sweep_json += "\n  ]";
  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"net_throughput\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"build_type\": \"%s\",\n"
      "  \"vertices\": %zu,\n"
      "  \"edges\": %zu,\n"
      "  \"queries\": %zu,\n"
      "  \"clients\": %zu,\n"
      "  \"pipeline\": %zu,\n"
      "  \"server_threads\": %zu,\n"
      "  \"num_reactors\": %zu,\n"
      "  \"load_generator\": \"%s\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"in_process\": {\"qps\": %.1f},\n"
      "  \"net\": {\"qps\": %.1f, \"p50_round_ms\": %.3f, "
      "\"p99_round_ms\": %.3f, \"answered\": %llu, \"dropped\": 0},\n"
      "  \"idle\": %s,\n"
      "  \"multi_reactor\": %s,\n"
      "  \"server\": {\"batches\": %llu, \"avg_coalesce\": %.2f, "
      "\"frames_coalesced\": %llu, \"queue_depth_peak\": %zu},\n"
      "  \"stage_latency_ms\": {\n"
      "    \"queue_wait\": {\"p50\": %.4f, \"p99\": %.4f},\n"
      "    \"engine_batch\": {\"p50\": %.4f, \"p99\": %.4f},\n"
      "    \"write_drain\": {\"p50\": %.4f, \"p99\": %.4f}\n"
      "  },\n"
      "  \"wire_cost_factor\": %.3f\n"
      "}\n",
      bench::GitSha(), bench::BuildType(), vertices, edges, num_queries,
      num_clients, pipeline, server_threads, num_reactors,
      fork_clients ? "processes" : "threads",
      std::thread::hardware_concurrency(),
      inproc_qps, net.qps, net.p50_ms, net.p99_ms,
      static_cast<unsigned long long>(net.answered), idle_json.c_str(),
      sweep_json.c_str(),
      static_cast<unsigned long long>(server_stats.batches),
      server_stats.batches > 0
          ? static_cast<double>(server_stats.queries_answered) /
                static_cast<double>(server_stats.batches)
          : 0.0,
      static_cast<unsigned long long>(server_stats.frames_coalesced),
      server_stats.queue_depth_peak,
      1e3 * queue_wait.Percentile(0.50), 1e3 * queue_wait.Percentile(0.99),
      1e3 * engine_batch.Percentile(0.50),
      1e3 * engine_batch.Percentile(0.99),
      1e3 * write_drain.Percentile(0.50),
      1e3 * write_drain.Percentile(0.99),
      wire_cost);
  HM_CHECK_OK(WriteStringToFile(out_path, json));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
