/// Reproduces Figure 5.2: in-similarity and out-similarity (Definition
/// 3.11) against Euclidean similarity (Section 5.3.1) for configuration C1.
/// The paper's point: Euclidean similarity barely differentiates series
/// pairs, while the association-based measures spread them out.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/similarity.h"
#include "market/euclidean.h"
#include "market/series.h"
#include "util/stats.h"

namespace hypermine::bench {
namespace {

/// Text scatter: rows = similarity buckets, cols = Euclidean buckets.
void PrintScatter(const std::vector<double>& xs,
                  const std::vector<double>& ys, const char* x_label) {
  constexpr size_t kBuckets = 10;
  size_t grid[kBuckets][kBuckets] = {};
  for (size_t i = 0; i < xs.size(); ++i) {
    size_t bx = std::min(kBuckets - 1,
                         static_cast<size_t>(xs[i] * kBuckets));
    size_t by = std::min(kBuckets - 1,
                         static_cast<size_t>(ys[i] * kBuckets));
    ++grid[by][bx];
  }
  std::printf("  Euclidean similarity (rows, 1.0 at top) vs %s (cols)\n",
              x_label);
  for (size_t by = kBuckets; by-- > 0;) {
    std::printf("  %3.1f |", (static_cast<double>(by) + 0.5) / kBuckets);
    for (size_t bx = 0; bx < kBuckets; ++bx) {
      size_t c = grid[by][bx];
      std::printf("%c", c == 0 ? '.' : (c < 10 ? '+' : (c < 100 ? 'o' : '#')));
    }
    std::printf("|\n");
  }
  std::printf("        0.0 ...... 1.0\n");
}

void Run(const BenchOptions& options) {
  core::MarketExperiment experiment = MustSetUp(options, core::ConfigC1());
  const size_t n = experiment.graph.num_vertices();

  // Delta series for the Euclidean measure.
  std::vector<std::vector<double>> deltas(n);
  for (size_t i = 0; i < n; ++i) {
    deltas[i] =
        market::DeltaSeries(experiment.panel.series[i].closes).value();
  }

  std::vector<double> in_sims;
  std::vector<double> out_sims;
  std::vector<double> euclid;
  for (core::VertexId a = 0; a < n; ++a) {
    for (core::VertexId b = a + 1; b < n; ++b) {
      in_sims.push_back(core::InSimilarity(experiment.graph, a, b));
      out_sims.push_back(core::OutSimilarity(experiment.graph, a, b));
      euclid.push_back(
          market::EuclideanSimilarity(deltas[a], deltas[b]).value());
    }
  }

  std::printf("(a) in-similarity vs Euclidean similarity (%zu pairs)\n",
              in_sims.size());
  PrintScatter(in_sims, euclid, "in-similarity");
  std::printf("\n(b) out-similarity vs Euclidean similarity\n");
  PrintScatter(out_sims, euclid, "out-similarity");

  std::printf("\nspread comparison (the paper's differentiation claim):\n");
  std::printf("  in-similarity  %s\n", Summarize(in_sims).ToString().c_str());
  std::printf("  out-similarity %s\n",
              Summarize(out_sims).ToString().c_str());
  std::printf("  Euclidean      %s\n", Summarize(euclid).ToString().c_str());
  double in_spread = Percentile(in_sims, 90.0) - Percentile(in_sims, 10.0);
  double out_spread =
      Percentile(out_sims, 90.0) - Percentile(out_sims, 10.0);
  double es_spread = Percentile(euclid, 90.0) - Percentile(euclid, 10.0);
  PrintPaperComparison("in-sim p90-p10 spread", in_spread,
                       "wide (values span most of [0,1])");
  PrintPaperComparison("out-sim p90-p10 spread", out_spread, "wide");
  PrintPaperComparison("Euclidean p90-p10 spread", es_spread,
                       "narrow (ES does not differentiate pairs)");
  std::printf("  shape holds: %s\n",
              (in_spread > es_spread && out_spread > es_spread) ? "YES"
                                                                : "NO");
  std::printf("  rank correlation in-sim vs ES: %.3f, out-sim vs ES: %.3f "
              "(the paper's point: ES is nearly unrelated to association similarity)\n",
              SpearmanCorrelation(in_sims, euclid),
              SpearmanCorrelation(out_sims, euclid));
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_fig52_similarity_vs_euclidean",
      "Figure 5.2 association similarity vs Euclidean similarity");
  Run(options);
  return 0;
}
