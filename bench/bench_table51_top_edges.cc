/// Reproduces Table 5.1: for each selected financial time-series (one per
/// sector), the directed edge and the 2-to-1 directed hyperedge with the
/// highest ACV, for configurations C1 and C2.
#include <cstdio>
#include <optional>

#include "common.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

struct BestEdges {
  std::optional<core::EdgeId> edge;
  std::optional<core::EdgeId> pair;
};

BestEdges FindBest(const core::DirectedHypergraph& graph,
                   core::VertexId head) {
  BestEdges best;
  double best_edge = -1.0;
  double best_pair = -1.0;
  for (core::EdgeId id : graph.InEdgeIds(head)) {
    const core::Hyperedge& e = graph.edge(id);
    if (e.tail_size() == 1 && e.weight > best_edge) {
      best_edge = e.weight;
      best.edge = id;
    } else if (e.tail_size() == 2 && e.weight > best_pair) {
      best_pair = e.weight;
      best.pair = id;
    }
  }
  return best;
}

void RunConfig(const BenchOptions& options,
               const core::HypergraphConfig& config) {
  core::MarketExperiment experiment = MustSetUp(options, config);
  TablePrinter table({"Time-series", "Config", "Top directed edge",
                      "Top 2-to-1 directed hyperedge"});
  for (const std::string& symbol : SelectedSeries()) {
    auto idx = experiment.database.AttributeIndex(symbol);
    if (!idx.ok()) continue;
    BestEdges best = FindBest(experiment.graph, *idx);
    const market::Ticker& ticker = experiment.panel.tickers[*idx];
    table.AddRow(
        {symbol + " (" + market::SectorCode(ticker.sector) + ")",
         ConfigName(config),
         best.edge ? FormatEdgeWithSectors(experiment, *best.edge) : "-",
         best.pair ? FormatEdgeWithSectors(experiment, *best.pair) : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Shape check mirrored from the paper: top partners are predominantly
  // same-sector (e.g. CVX (E) -> XOM (E); HES, SLB -> XOM).
  size_t rows = 0;
  size_t same_sector_edge = 0;
  for (const std::string& symbol : SelectedSeries()) {
    auto idx = experiment.database.AttributeIndex(symbol);
    if (!idx.ok()) continue;
    BestEdges best = FindBest(experiment.graph, *idx);
    if (!best.edge) continue;
    ++rows;
    const core::Hyperedge& e = experiment.graph.edge(*best.edge);
    if (experiment.panel.tickers[e.tail[0]].sector ==
        experiment.panel.tickers[e.head].sector) {
      ++same_sector_edge;
    }
  }
  if (rows > 0) {
    std::printf("  same-sector share of top directed edges: %zu/%zu "
                "(paper: 8/11 for C1)\n\n",
                same_sector_edge, rows);
  }
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options =
      ParseBenchArgs(argc, argv, "bench_table51_top_edges",
                     "Table 5.1 top directed edge / 2-to-1 hyperedge per "
                     "selected series");
  if (options.run_c1) RunConfig(options, hypermine::core::ConfigC1());
  if (options.run_c2) RunConfig(options, hypermine::core::ConfigC2());
  return 0;
}
