/// Reproduces Table 5.2: for each selected series, the 2-to-1 directed
/// hyperedge with the highest ACV next to its two constituent directed
/// edges — showing that combining two predictors beats either alone
/// (e.g. HES, SLB -> XOM at 0.58 vs 0.55 and 0.54 in the paper).
#include <cstdio>

#include "common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hypermine::bench {
namespace {

void RunConfig(const BenchOptions& options,
               const core::HypergraphConfig& config) {
  core::MarketExperiment experiment = MustSetUp(options, config);
  const core::DirectedHypergraph& graph = experiment.graph;

  TablePrinter table({"Time-series", "Config", "Top 2-to-1 hyperedge",
                      "Directed edge 1", "Directed edge 2"});
  std::vector<double> gains;
  for (const std::string& symbol : SelectedSeries()) {
    auto idx = experiment.database.AttributeIndex(symbol);
    if (!idx.ok()) continue;
    // Best pair into this head.
    core::EdgeId best_pair = 0;
    double best_weight = -1.0;
    for (core::EdgeId id : graph.InEdgeIds(*idx)) {
      const core::Hyperedge& e = graph.edge(id);
      if (e.tail_size() == 2 && e.weight > best_weight) {
        best_weight = e.weight;
        best_pair = id;
      }
    }
    if (best_weight < 0.0) continue;
    const core::Hyperedge& pair = graph.edge(best_pair);

    auto edge_cell = [&](core::VertexId tail) {
      std::vector<core::VertexId> t = {tail};
      auto found = graph.FindEdge(t, *idx);
      double weight =
          found ? graph.edge(*found).weight : 0.0;  // may be sub-threshold
      std::string label = graph.vertex_name(tail) + " -> " + symbol;
      if (found) {
        gains.push_back(pair.weight - weight);
        return label + " (" + FormatDouble(weight, 2) + ")";
      }
      return label + " (below gamma)";
    };
    table.AddRow({symbol, ConfigName(config),
                  FormatEdgeWithSectors(experiment, best_pair) + " (" +
                      FormatDouble(pair.weight, 2) + ")",
                  edge_cell(pair.tail[0]), edge_cell(pair.tail[1])});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (!gains.empty()) {
    PrintPaperComparison("mean ACV gain of pair over constituent edge",
                         Mean(gains),
                         ConfigName(config) == "C1"
                             ? "~0.03 (e.g. 0.58 vs 0.55/0.54 for XOM)"
                             : "~0.04 (e.g. 0.37 vs 0.33/0.31 for XOM)");
    std::printf("  (positive gain on every row is guaranteed: gamma_hyper "
                "> 1 admits only pairs that beat both edges)\n\n");
  }
}

}  // namespace
}  // namespace hypermine::bench

int main(int argc, char** argv) {
  using namespace hypermine::bench;
  BenchOptions options = ParseBenchArgs(
      argc, argv, "bench_table52_hyperedge_vs_edges",
      "Table 5.2 top 2-to-1 hyperedge vs constituent directed edges");
  if (options.run_c1) RunConfig(options, hypermine::core::ConfigC1());
  if (options.run_c2) RunConfig(options, hypermine::core::ConfigC2());
  return 0;
}
