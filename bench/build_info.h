#ifndef HYPERMINE_BENCH_BUILD_INFO_H_
#define HYPERMINE_BENCH_BUILD_INFO_H_

#include "util/build_info.h"

namespace hypermine::bench {

/// Compile-time provenance for the BENCH_*.json artifacts. The stamp now
/// lives on the hypermine library (util/build_info.h) so api::Model shares
/// it; these wrappers keep the bench call sites stable.

inline const char* GitSha() { return hypermine::GitSha(); }

inline const char* BuildType() { return hypermine::BuildType(); }

}  // namespace hypermine::bench

#endif  // HYPERMINE_BENCH_BUILD_INFO_H_
