#ifndef HYPERMINE_BENCH_BUILD_INFO_H_
#define HYPERMINE_BENCH_BUILD_INFO_H_

namespace hypermine::bench {

/// Compile-time provenance for the BENCH_*.json artifacts: the root
/// CMakeLists stamps HYPERMINE_GIT_SHA (configure-time `git rev-parse`)
/// and HYPERMINE_BUILD_TYPE onto hypermine_bench_common, so perf records
/// are attributable to a commit and an optimization level across PRs.

inline const char* GitSha() {
#ifdef HYPERMINE_GIT_SHA
  return HYPERMINE_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* BuildType() {
#ifdef HYPERMINE_BUILD_TYPE
  return HYPERMINE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace hypermine::bench

#endif  // HYPERMINE_BENCH_BUILD_INFO_H_
