#ifndef HYPERMINE_BENCH_DOMINATOR_TABLE_H_
#define HYPERMINE_BENCH_DOMINATOR_TABLE_H_

#include "common.h"
#include "core/dominator.h"

namespace hypermine::bench {

/// Which greedy dominator algorithm a table uses (Table 5.3 = Algorithm 5,
/// Table 5.4 = Algorithm 6 with Enhancements 1 and 2).
enum class DominatorAlgorithm { kAlg5GreedyDS, kAlg6SetCover };

/// Runs the full Table 5.3/5.4 protocol (Sections 5.4 and 5.5):
///  - split the panel into in-sample (all years but the last) and
///    out-sample (last year), discretized independently per Section 5.1.1;
///  - build the association hypergraph on the in-sample window;
///  - for ACV thresholds keeping the top 40/30/20% of hyperedges, compute a
///    dominator, then report its size, percent covered, and the mean
///    classification confidence of the association-based classifier on both
///    windows plus the SVM / multilayer-perceptron / logistic-regression
///    baselines (Weka substitutes) on the out-sample window.
void RunDominatorTable(const BenchOptions& options,
                       DominatorAlgorithm algorithm);

}  // namespace hypermine::bench

#endif  // HYPERMINE_BENCH_DOMINATOR_TABLE_H_
