// Serving-path throughput harness over the api façade: snapshot load time,
// rule-index build time, then queries/sec and batch latency of api::Engine,
// single- vs multi-threaded, plus a cache-enabled pass and the hot-swap
// latency of Engine::Swap. Emits BENCH_serve.json for the perf trajectory.
//
//   ./bench_serve_throughput [--vertices=2000] [--edges=50000]
//       [--queries=20000] [--batch=256] [--threads=4]
//       [--out=BENCH_serve.json]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "bench/common.h"
#include "build_info.h"
#include "serve/snapshot.h"
#include "serve/testutil.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypermine {
namespace {

struct RunStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
};

using bench::PercentileMs;

std::vector<api::QueryRequest> Convert(
    const std::vector<serve::Query>& queries) {
  std::vector<api::QueryRequest> requests;
  requests.reserve(queries.size());
  for (const serve::Query& query : queries) {
    api::QueryRequest request;
    request.items = query.items;
    request.k = query.k;
    request.kind = query.kind == serve::Query::Kind::kTopK
                       ? api::QueryRequest::Kind::kTopK
                       : api::QueryRequest::Kind::kReachable;
    request.min_acv = query.min_acv;
    requests.push_back(std::move(request));
  }
  return requests;
}

RunStats RunEngine(std::shared_ptr<const api::Model> model,
                   const std::vector<api::QueryRequest>& requests,
                   size_t num_threads, size_t batch_size,
                   size_t cache_capacity) {
  api::EngineOptions options;
  options.num_threads = num_threads;
  options.cache_capacity = cache_capacity;
  api::Engine engine(std::move(model), options);

  std::vector<double> batch_ms;
  Stopwatch total;
  for (size_t begin = 0; begin < requests.size(); begin += batch_size) {
    size_t end = std::min(requests.size(), begin + batch_size);
    std::vector<api::QueryRequest> batch(requests.begin() + begin,
                                         requests.begin() + end);
    Stopwatch per_batch;
    std::vector<StatusOr<api::QueryResponse>> responses =
        engine.QueryBatch(batch);
    batch_ms.push_back(per_batch.ElapsedMillis());
    HM_CHECK_EQ(responses.size(), batch.size());
    for (const auto& response : responses) HM_CHECK_OK(response.status());
  }
  double seconds = total.ElapsedSeconds();

  RunStats stats;
  stats.qps = static_cast<double>(requests.size()) / seconds;
  std::sort(batch_ms.begin(), batch_ms.end());
  stats.p50_ms = PercentileMs(batch_ms, 0.50);
  stats.p99_ms = PercentileMs(batch_ms, 0.99);
  api::CacheStats cache = engine.cache_stats();
  uint64_t lookups = cache.hits + cache.misses;
  stats.hit_rate = lookups == 0
                       ? 0.0
                       : static_cast<double>(cache.hits) /
                             static_cast<double>(lookups);
  return stats;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  auto positive = [&flags](const char* name, int64_t fallback) {
    int64_t value = flags.GetInt(name, fallback);
    HM_CHECK_GT(value, 0);
    return static_cast<size_t>(value);
  };
  const size_t vertices = positive("vertices", 2000);
  const size_t edges = positive("edges", 50000);
  const size_t num_queries = positive("queries", 20000);
  const size_t batch = positive("batch", 256);
  const size_t threads = positive("threads", 4);
  const std::string out_path =
      flags.GetString("out", "BENCH_serve.json");

  std::printf("bench_serve_throughput: %zu vertices, %zu edges, %zu queries "
              "(batch %zu)\n",
              vertices, edges, num_queries, batch);

  core::DirectedHypergraph graph =
      serve::RandomServeGraph(vertices, edges, 42);
  const std::string snap_path = "/tmp/bench_serve.snap";
  api::ModelSpec spec;
  spec.provenance.source = "bench_serve_throughput random graph";
  HM_CHECK_OK(serve::WriteSnapshot(graph, spec, snap_path));

  Stopwatch load_timer;
  auto model = api::Model::FromSnapshot(snap_path);
  HM_CHECK_OK(model.status());
  const double load_ms = load_timer.ElapsedMillis();
  auto snap_bytes = ReadFileToString(snap_path);
  HM_CHECK_OK(snap_bytes.status());

  Stopwatch index_timer;
  const serve::RuleIndex& index = (*model)->index();  // lazy first build
  const double index_ms = index_timer.ElapsedMillis();
  std::printf("snapshot: %zu bytes, load %.1f ms; rule index: %zu tail "
              "sets, build %.1f ms\n",
              snap_bytes->size(), load_ms, index.num_tail_sets(), index_ms);

  std::vector<api::QueryRequest> requests =
      Convert(serve::RandomServeQueries(num_queries, vertices, 7, /*k=*/10,
                                        /*reach_every=*/16,
                                        /*reach_min_acv=*/0.8));

  RunStats single = RunEngine(*model, requests, 1, batch, /*cache=*/0);
  RunStats multi = RunEngine(*model, requests, threads, batch, /*cache=*/0);
  RunStats cached = RunEngine(*model, requests, threads, batch,
                              /*cache=*/4096);
  const double speedup = single.qps > 0 ? multi.qps / single.qps : 0.0;

  // Hot-swap latency: how long Engine::Swap holds up a caller (pointer
  // swap + stale-entry purge of a full cache).
  api::EngineOptions swap_options;
  swap_options.num_threads = threads;
  api::Engine swap_engine(*model, swap_options);
  for (size_t begin = 0; begin < requests.size() && begin < 4096;
       begin += batch) {
    size_t end = std::min({requests.size(), begin + batch, size_t{4096}});
    swap_engine.QueryBatch(std::vector<api::QueryRequest>(
        requests.begin() + begin, requests.begin() + end));
  }
  auto model_b = api::Model::FromSnapshot(snap_path);
  HM_CHECK_OK(model_b.status());
  Stopwatch swap_timer;
  swap_engine.Swap(*model_b);
  const double swap_ms = swap_timer.ElapsedMillis();

  std::printf("%-22s %12s %10s %10s %9s\n", "configuration", "queries/s",
              "p50 ms", "p99 ms", "hit rate");
  std::printf("%-22s %12.0f %10.3f %10.3f %9s\n", "1 thread, no cache",
              single.qps, single.p50_ms, single.p99_ms, "-");
  std::string multi_label = StrFormat("%zu threads, no cache", threads);
  std::printf("%-22s %12.0f %10.3f %10.3f %9s\n", multi_label.c_str(),
              multi.qps, multi.p50_ms, multi.p99_ms, "-");
  std::printf("%-22s %12.0f %10.3f %10.3f %8.1f%%\n", "with cache",
              cached.qps, cached.p50_ms, cached.p99_ms,
              100.0 * cached.hit_rate);
  std::printf("multi-thread speedup: %.2fx (%zu hardware threads "
              "available); hot swap %.3f ms\n",
              speedup, static_cast<size_t>(
                           std::thread::hardware_concurrency()),
              swap_ms);

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"serve_throughput\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"build_type\": \"%s\",\n"
      "  \"vertices\": %zu,\n"
      "  \"edges\": %zu,\n"
      "  \"queries\": %zu,\n"
      "  \"batch_size\": %zu,\n"
      "  \"snapshot_bytes\": %zu,\n"
      "  \"snapshot_load_ms\": %.3f,\n"
      "  \"index_build_ms\": %.3f,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"single_thread\": {\"qps\": %.1f, \"p50_batch_ms\": %.3f, "
      "\"p99_batch_ms\": %.3f},\n"
      "  \"multi_thread\": {\"threads\": %zu, \"qps\": %.1f, "
      "\"p50_batch_ms\": %.3f, \"p99_batch_ms\": %.3f},\n"
      "  \"multi_thread_speedup\": %.3f,\n"
      "  \"cached\": {\"qps\": %.1f, \"hit_rate\": %.4f},\n"
      "  \"hot_swap_ms\": %.3f\n"
      "}\n",
      bench::GitSha(), bench::BuildType(), vertices, edges, num_queries,
      batch, snap_bytes->size(), load_ms,
      index_ms, std::thread::hardware_concurrency(), single.qps,
      single.p50_ms, single.p99_ms, threads, multi.qps, multi.p50_ms,
      multi.p99_ms, speedup, cached.qps, cached.hit_rate, swap_ms);
  HM_CHECK_OK(WriteStringToFile(out_path, json));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
