#include "common.h"

#include <algorithm>
#include <cstdio>

#include "core/simd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::bench {

BenchOptions BenchOptions::FromFlags(const FlagParser& flags) {
  BenchOptions options;
  options.market.num_series =
      static_cast<size_t>(flags.GetInt("series", 100));
  options.market.num_years =
      static_cast<size_t>(flags.GetInt("years", 8));
  options.market.seed = static_cast<uint64_t>(flags.GetInt("seed", 20120401));
  if (flags.GetBool("full", false)) {
    // The paper's data set: 346 S&P 500 series, Jan 1995 - Dec 2009.
    options.market.num_series = 346;
    options.market.num_years = 15;
  }
  std::string config = ToLower(flags.GetString("config", "both"));
  options.run_c1 = config == "both" || config == "c1";
  options.run_c2 = config == "both" || config == "c2";
  options.skip_baselines = flags.GetBool("skip-baselines", false);
  options.baseline_protocol =
      ToLower(flags.GetString("baseline-protocol", "paper"));
  int64_t threads = flags.GetInt("threads", 0);
  HM_CHECK_GE(threads, 0);
  options.build_threads = static_cast<size_t>(threads);
  return options;
}

BenchOptions ParseBenchArgs(int argc, char** argv, const char* bench_name,
                            const char* paper_anchor) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  BenchOptions options = BenchOptions::FromFlags(flags);
  const char* simd = ApplySimdFlag(flags);
  std::printf("=== %s (%s) ===\n", bench_name, paper_anchor);
  std::printf(
      "scale: %zu series x %zu years (seed %llu), simd=%s; flags: --series "
      "--years --seed --full --config=c1|c2|both --threads=N (0 = hardware) "
      "--simd=scalar|avx2|avx512\n\n",
      options.market.num_series, options.market.num_years,
      static_cast<unsigned long long>(options.market.seed), simd);
  return options;
}

const char* ApplySimdFlag(const FlagParser& flags) {
  const std::string requested = flags.GetString("simd", "");
  if (!requested.empty()) {
    auto tier = core::simd::ParseTier(requested);
    if (!tier.has_value()) {
      HM_LOG_FATAL << "--simd=" << requested
                   << " is not a tier (scalar, avx2, avx512)";
    }
    core::simd::ForceActiveTier(*tier);
  }
  return core::simd::ActiveOps().name;
}

const std::vector<std::string>& SelectedSeries() {
  static const std::vector<std::string>& series =
      *new std::vector<std::string>{
          "EMN", "HON", "GT", "PG", "XOM", "AIG",
          "JNJ", "JCP", "INTC", "FDX", "TE",
      };
  return series;
}

core::MarketExperiment MustSetUp(const BenchOptions& options,
                                 const core::HypergraphConfig& config) {
  core::HypergraphConfig build_config = config;
  build_config.num_threads = options.build_threads;
  auto experiment =
      core::SetUpMarketExperiment(options.market, build_config);
  HM_CHECK_OK(experiment.status());
  return std::move(experiment).value();
}

std::string ConfigName(const core::HypergraphConfig& config) {
  return config.k == 3 ? "C1" : (config.k == 5 ? "C2" : "custom");
}

std::string FormatEdgeWithSectors(const core::MarketExperiment& experiment,
                                  core::EdgeId id) {
  const core::Hyperedge& e = experiment.graph.edge(id);
  std::string out;
  for (size_t i = 0; i < e.tail_size(); ++i) {
    if (i > 0) out += ", ";
    core::VertexId v = e.tail[i];
    out += experiment.graph.vertex_name(v);
    out += StrFormat(" (%s)",
                     market::SectorCode(experiment.panel.tickers[v].sector));
  }
  out += " -> " + experiment.graph.vertex_name(e.head);
  return out;
}

void PrintPaperComparison(const std::string& metric, double measured,
                          const std::string& paper_value) {
  std::printf("  %-46s measured %-8.3f paper: %s\n", metric.c_str(), measured,
              paper_value.c_str());
}

double PercentileMs(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

}  // namespace hypermine::bench
