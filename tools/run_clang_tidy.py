#!/usr/bin/env python3
"""Runs clang-tidy over the project using compile_commands.json.

Stdlib-only driver for the curated .clang-tidy check set
(docs/static_analysis.md). It exists because the stock run-clang-tidy
wrapper is not always installed alongside the binary, and because we want
deterministic file selection: every translation unit in
compile_commands.json whose source lives under src/, tools/, bench/ or
examples/ (tests are gtest-macro heavy and excluded by default; opt in
with --include-tests).

Exit codes:
  0  clean (or nothing to do)
  1  clang-tidy reported findings (WarningsAsErrors promotes all of them)
  2  setup problem: no compile_commands.json, or no usable binary and
     --require was passed

Without --require, a missing clang-tidy binary is a SKIP (exit 0) with a
notice — the container this repo builds in ships only g++, while CI
installs clang-tidy and passes --require so the job cannot silently
degrade into a no-op.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--jobs N] [--require]
                          [--include-tests] [--binary clang-tidy-18]
                          [paths ...]

Positional paths filter the file list to those prefixes (repo-relative),
e.g. `tools/run_clang_tidy.py src/net` after touching the net layer.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_PREFIXES = ("src/", "tools/", "bench/", "examples/")

# Newest first; bare "clang-tidy" last so an explicit versioned install
# wins over a distro alternatives shim.
CANDIDATE_BINARIES = tuple(
    f"clang-tidy-{version}" for version in range(21, 13, -1)
) + ("clang-tidy",)


def find_binary(explicit):
    if explicit:
        return shutil.which(explicit)
    for name in CANDIDATE_BINARIES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return None, path
    with open(path, encoding="utf-8") as f:
        return json.load(f), path


def select_files(commands, include_tests, path_filters):
    prefixes = DEFAULT_PREFIXES + (("tests/",) if include_tests else ())
    selected = []
    seen = set()
    for entry in commands:
        source = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(source, REPO_ROOT)
        if rel.startswith(".."):
            continue  # generated or external TU
        if not rel.startswith(prefixes):
            continue
        if path_filters and not rel.startswith(tuple(path_filters)):
            continue
        if source not in seen:
            seen.add(source)
            selected.append(source)
    return sorted(selected)


def run_one(args):
    binary, build_dir, source = args
    result = subprocess.run(
        [binary, "-p", build_dir, "--quiet", source],
        capture_output=True,
        text=True,
        check=False,
    )
    return source, result.returncode, result.stdout, result.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is unavailable")
    parser.add_argument("--include-tests", action="store_true")
    parser.add_argument("--binary", default=None,
                        help="clang-tidy executable to use")
    parser.add_argument("paths", nargs="*",
                        help="repo-relative path prefixes to restrict to")
    options = parser.parse_args()

    binary = find_binary(options.binary)
    if binary is None:
        message = "run_clang_tidy: no clang-tidy binary on PATH"
        if options.require:
            print(message, file=sys.stderr)
            return 2
        print(f"{message}; skipping (CI runs this with --require)")
        return 0

    commands, path = load_compile_commands(options.build_dir)
    if commands is None:
        print(
            f"run_clang_tidy: {path} not found — configure first:\n"
            "  cmake -B build -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is on "
            "by default)",
            file=sys.stderr,
        )
        return 2

    files = select_files(commands, options.include_tests, options.paths)
    if not files:
        print("run_clang_tidy: no translation units matched")
        return 0

    print(f"run_clang_tidy: {binary} over {len(files)} files "
          f"({options.jobs} jobs)")
    failures = 0
    with multiprocessing.Pool(options.jobs) as pool:
        jobs = [(binary, options.build_dir, source) for source in files]
        for source, code, stdout, stderr in pool.imap_unordered(run_one, jobs):
            rel = os.path.relpath(source, REPO_ROOT)
            if code != 0:
                failures += 1
                print(f"FAIL {rel}")
                if stdout.strip():
                    print(stdout.rstrip())
                if stderr.strip():
                    print(stderr.rstrip(), file=sys.stderr)
            else:
                print(f"  ok {rel}")
    if failures:
        print(f"run_clang_tidy: {failures}/{len(files)} files with findings",
              file=sys.stderr)
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
