#include <map>
#include <string>
#include <algorithm>
// Ad-hoc tuning harness: prints mean weighted in/out degree by role for a
// parameter candidate, then a year-sliced model sweep through api::Model
// (one shared builder pool across all windows).
#include <cstdio>
#include <vector>
#include "api/model.h"
#include "core/pipeline.h"
#include "serve/plane_artifact.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace hypermine;


// Top-quartile role concentration (the paper's "top 25" statistic).
static void TopShare(const hypermine::core::MarketExperiment& ex, bool use_in) {
  using namespace hypermine;
  std::vector<std::pair<double, market::Role>> deg;
  for (core::VertexId v = 0; v < ex.graph.num_vertices(); ++v) {
    double d = use_in ? ex.graph.WeightedInDegree(v) : ex.graph.WeightedOutDegree(v);
    deg.push_back({d, ex.panel.tickers[v].role});
  }
  std::sort(deg.begin(), deg.end(), [](auto&a, auto&b){return a.first>b.first;});
  size_t top = deg.size()/4; size_t p=0,c=0,n=0;
  for (size_t i=0;i<top;++i) {
    if (deg[i].second==market::Role::kProducer) ++p;
    else if (deg[i].second==market::Role::kConsumer) ++c; else ++n;
  }
  printf("top%zu %s: P=%zu C=%zu N=%zu\n", top, use_in?"in ":"out", p, c, n);
}


static void PairDiag(const hypermine::core::MarketExperiment& ex) {
  using namespace hypermine;
  auto rolechar = [&](core::VertexId v){
    switch (ex.panel.tickers[v].role) {
      case market::Role::kProducer: return 'P';
      case market::Role::kConsumer: return 'C';
      default: return 'N';
    }
  };
  // edge ACV means by (tail_role, head_role); pair mass by tail role.
  std::map<std::string,std::pair<double,size_t>> edge_stats;
  std::map<char,double> pair_mass, edge_mass;
  std::map<char,size_t> head_pairs;
  for (const auto& e : ex.graph.edges()) {
    if (e.tail_size()==1) {
      std::string key = {rolechar(e.tail[0]), rolechar(e.head)};
      edge_stats[key].first += e.weight; edge_stats[key].second++;
      edge_mass[rolechar(e.tail[0])] += e.weight;
    } else {
      for (size_t i=0;i<e.tail_size();++i) pair_mass[rolechar(e.tail[i])] += e.weight/2;
      head_pairs[rolechar(e.head)]++;
    }
  }
  for (auto& [k,v] : edge_stats) printf("  edge %s: n=%zu mean=%.3f\n", k.c_str(), v.second, v.first/v.second);
  printf("  edge out-mass: P=%.0f C=%.0f N=%.0f\n", edge_mass['P'], edge_mass['C'], edge_mass['N']);
  printf("  pair out-mass: P=%.0f C=%.0f N=%.0f | pairs into heads P=%zu C=%zu N=%zu\n",
         pair_mass['P'], pair_mass['C'], pair_mass['N'], head_pairs['P'], head_pairs['C'], head_pairs['N']);
}

int main(int argc, char** argv) {
  market::MarketConfig mc;
  mc.num_series = 60; mc.num_years = 5; mc.seed = 2012;
  if (argc > 1) {
    // argv: pm pd ps pu pi pq cm cd cs cu ci
    double* slots[] = {&mc.producer.market,&mc.producer.demand,&mc.producer.sector,&mc.producer.subsector,&mc.producer.idiosyncratic,&mc.producer.quantization,
                       &mc.consumer.market,&mc.consumer.demand,&mc.consumer.sector,&mc.consumer.subsector,&mc.consumer.idiosyncratic,
                       &mc.neutral.market,&mc.neutral.demand,&mc.neutral.sector,&mc.neutral.subsector,&mc.neutral.idiosyncratic,
                       &mc.demand_spread,&mc.idio_spread};
    for (int i = 1; i < argc && i <= 18; ++i) *slots[i-1] = atof(argv[i]);
  }
  auto ex = core::SetUpMarketExperiment(mc, core::ConfigC1());
  if (!ex.ok()) { printf("error: %s\n", ex.status().ToString().c_str()); return 1; }
  std::vector<double> pin, cin, nin, pout, cout_, nout;
  for (core::VertexId v = 0; v < ex->graph.num_vertices(); ++v) {
    double in = ex->graph.WeightedInDegree(v), out = ex->graph.WeightedOutDegree(v);
    switch (ex->panel.tickers[v].role) {
      case market::Role::kProducer: pin.push_back(in); pout.push_back(out); break;
      case market::Role::kConsumer: cin.push_back(in); cout_.push_back(out); break;
      default: nin.push_back(in); nout.push_back(out);
    }
  }
  printf("edges=%zu pairs=%zu meanACV=%.3f/%.3f\n", ex->graph.NumDirectedEdges(), ex->graph.NumPairEdges(), ex->graph.MeanDirectedEdgeWeight(), ex->graph.MeanPairEdgeWeight());
  printf("in : P=%.1f C=%.1f N=%.1f\n", Mean(pin), Mean(cin), Mean(nin));
  printf("out: P=%.1f C=%.1f N=%.1f\n", Mean(pout), Mean(cout_), Mean(nout));
  PairDiag(*ex);
  TopShare(*ex, true);
  TopShare(*ex, false);

  // Gamma sweep over the full-window database: the value planes are packed
  // once into the cache and every build reuses the artifact (the repeated
  // same-database workload serve::PlaneCache exists for).
  {
    serve::PlaneCache plane_cache;
    Stopwatch sweep_timer;
    printf("gamma sweep (shared plane artifact):\n");
    for (double gamma_edge : {1.05, 1.10, 1.15, 1.20, 1.25}) {
      auto planes = plane_cache.GetOrPack(ex->database);
      core::HypergraphConfig config = core::ConfigC1();
      config.gamma_edge = gamma_edge;
      auto graph = core::BuildAssociationHypergraph(
          ex->database, config, nullptr, nullptr, planes.get());
      if (!graph.ok()) {
        printf("  gamma %.2f: %s\n", gamma_edge,
               graph.status().ToString().c_str());
        continue;
      }
      printf("  gamma %.2f: edges=%zu pairs=%zu\n", gamma_edge,
             graph->NumDirectedEdges(), graph->NumPairEdges());
    }
    auto cache_stats = plane_cache.stats();
    printf("  plane cache: %zu pack, %zu reuse (%.2fs total)\n",
           cache_stats.packs, cache_stats.memory_hits,
           sweep_timer.ElapsedSeconds());
  }

  // Year-sliced sweep: one model per expanding train window, all built on
  // a single shared ThreadPool (no per-build thread spin-up — the builder
  // pool-reuse path of api::Model::Build).
  ThreadPool pool;
  api::ModelSpec spec;
  spec.config = core::ConfigC1();
  spec.discretization = "equi-depth terciles of daily deltas (k=3)";
  spec.provenance.source = StrFormat(
      "market sim: %zu series, %zu years, seed %llu", mc.num_series,
      mc.num_years, static_cast<unsigned long long>(mc.seed));
  int first = mc.first_year;
  int last = first + static_cast<int>(mc.num_years) - 1;
  printf("year sweep (shared pool, %zu workers):\n", pool.num_threads());
  for (int year = first; year < last; ++year) {
    auto split = core::DiscretizeTrainTest(ex->panel, 3, first, year,
                                           year + 1, year + 1);
    if (!split.ok()) {
      printf("  %d: %s\n", year, split.status().ToString().c_str());
      continue;
    }
    auto model = api::Model::Build(split->train, spec, &pool);
    if (!model.ok()) {
      printf("  %d: %s\n", year, model.status().ToString().c_str());
      continue;
    }
    printf("  train %d-%d: v%llu edges=%zu pairs=%zu (%.2fs)\n", first,
           year, static_cast<unsigned long long>((*model)->version()),
           (*model)->graph().NumDirectedEdges(),
           (*model)->graph().NumPairEdges(),
           (*model)->stats().elapsed_seconds);
  }
  return 0;
}
