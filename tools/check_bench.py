#!/usr/bin/env python3
"""Bench-regression gate: fails when a fresh BENCH_*.json falls more than
--threshold (default 30%) below the committed baseline's throughput.

Usage: check_bench.py [--threshold=0.30] BASELINE=FRESH [BASELINE=FRESH ...]

e.g.  check_bench.py BENCH_build.json=/tmp/fresh_build.json \\
                     BENCH_net.json=/tmp/fresh_net.json

Policy (see docs/ci.md):
  - Throughput is compared ONLY when `hardware_threads` and the workload
    shape match between baseline and fresh run — a 4-core CI runner is
    not comparable to the 1-core container the baseline was recorded on,
    and a --smoke run is not comparable to a full-size one. Mismatches
    SKIP the comparison (with a note), they do not fail.
  - Structure is validated ALWAYS: a bench that stopped emitting its
    metric fails the gate even when the comparison is skipped, so a
    broken emitter cannot hide behind a hardware mismatch.
  - A regression fails; an improvement is reported and passes. The gate
    is deliberately loose (30%) because the numbers come from shared CI
    runners — it catches "the event loop got 10x slower", not 2% drift.

Stdlib only: this runs in CI and in environments where nothing can be
pip-installed.
"""
import json
import sys
from pathlib import Path

# bench name -> (dotted path to the throughput metric, human unit)
METRICS = {
    "build_throughput": ("candidates_per_sec", "candidates/s"),
    "net_throughput": ("net.qps", "wire qps"),
    "serve_throughput": ("multi_thread.qps", "engine qps"),
}

# bench name -> keys that define the workload shape; a compare only makes
# sense when every one of them matches.
WORKLOAD_KEYS = {
    # "simd" makes the gate tier-aware: a --simd=scalar run is a different
    # workload from an avx512 one and the two are never compared.
    "build_throughput": ("attrs", "rows", "k", "smoke", "simd"),
    "net_throughput": ("vertices", "edges", "queries", "clients",
                       "pipeline", "num_reactors"),
    "serve_throughput": ("vertices", "edges", "queries"),
}

# bench name -> (p50 path, p99 path) pairs. Latency percentiles are never
# compared against the baseline (they are workload- and host-shaped), but
# whenever a document carries one it must be well-formed: both ends of
# the pair present, numeric, positive, and p50 <= p99. A pair that is
# entirely absent is fine (older baselines predate stage histograms).
LATENCY_PAIRS = {
    "net_throughput": (
        ("net.p50_round_ms", "net.p99_round_ms"),
        ("idle.p50_round_ms", "idle.p99_round_ms"),
        ("stage_latency_ms.queue_wait.p50",
         "stage_latency_ms.queue_wait.p99"),
        ("stage_latency_ms.engine_batch.p50",
         "stage_latency_ms.engine_batch.p99"),
        ("stage_latency_ms.write_drain.p50",
         "stage_latency_ms.write_drain.p99"),
    ),
    "serve_throughput": (
        ("single_thread.p50_batch_ms", "single_thread.p99_batch_ms"),
        ("multi_thread.p50_batch_ms", "multi_thread.p99_batch_ms"),
    ),
}


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_build_structure(path, doc, bench):
    """Structure checks specific to build_throughput: the SIMD dispatch
    fields are validated unconditionally — in every document, whether or
    not the throughput comparison runs — so an emitter that stops
    recording its tier cannot hide behind a workload mismatch."""
    if bench != "build_throughput":
        return []
    failures = []
    simd = doc.get("simd")
    if not isinstance(simd, str) or not simd:
        failures.append(f"{path}: 'simd' missing or not a tier name "
                        f"({simd!r})")
    tiers = doc.get("simd_tiers")
    if not isinstance(tiers, list) or not tiers:
        failures.append(f"{path}: 'simd_tiers' missing or empty ({tiers!r})")
    else:
        for i, entry in enumerate(tiers):
            if (not isinstance(entry, dict)
                    or not isinstance(entry.get("tier"), str)
                    or not is_number(entry.get("plane_ms"))
                    or entry.get("plane_ms") <= 0
                    or not is_number(entry.get("speedup_vs_scalar"))
                    or entry.get("speedup_vs_scalar") <= 0):
                failures.append(f"{path}: simd_tiers[{i}] malformed "
                                f"({entry!r})")
    if "large" not in doc:
        failures.append(f"{path}: 'large' key absent (must be null or the "
                        f"wide-id workload record)")
    elif doc["large"] is not None:
        large = doc["large"]
        for key in ("attrs", "rows", "sampled_tails", "sampled_heads",
                    "pack_ms", "reuse_lookup_ms", "pack_reuse_speedup"):
            if not is_number(large.get(key)) or large.get(key) <= 0:
                failures.append(f"{path}: large.{key} missing or "
                                f"non-positive ({large.get(key)!r})")
        if large.get("wide_snapshot_ok") is not True:
            failures.append(f"{path}: large.wide_snapshot_ok is not true — "
                            f"the wide-id snapshot round-trip failed")
        ltiers = large.get("tiers")
        if not isinstance(ltiers, list) or not ltiers:
            failures.append(f"{path}: large.tiers missing or empty "
                            f"({ltiers!r})")
        else:
            for i, entry in enumerate(ltiers):
                if (not isinstance(entry, dict)
                        or not isinstance(entry.get("tier"), str)
                        or not is_number(entry.get("candidates_per_sec"))
                        or entry.get("candidates_per_sec") <= 0):
                    failures.append(f"{path}: large.tiers[{i}] malformed "
                                    f"({entry!r})")
    return failures


def check_latencies(path, doc, bench):
    """Returns failure strings for malformed p50/p99 latency fields."""
    failures = []
    for p50_key, p99_key in LATENCY_PAIRS.get(bench, ()):
        p50 = dig(doc, p50_key)
        p99 = dig(doc, p99_key)
        if p50 is None and p99 is None:
            continue  # pair absent entirely: an older document, not a bug
        broken = False
        for key, value in ((p50_key, p50), (p99_key, p99)):
            if (not isinstance(value, (int, float))
                    or isinstance(value, bool) or value <= 0):
                failures.append(f"{path}: latency {key!r} missing or "
                                f"non-positive ({value!r})")
                broken = True
        if not broken and p50 > p99:
            failures.append(f"{path}: {p50_key} ({p50}) exceeds {p99_key} "
                            f"({p99}) — percentiles are inverted")
    return failures


def dig(doc, dotted):
    value = doc
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle), None
    except FileNotFoundError:
        return None, f"{path}: file not found"
    except json.JSONDecodeError as error:
        return None, f"{path}: not valid JSON ({error})"


def check_pair(baseline_path, fresh_path, threshold):
    """Returns a list of failure strings (empty = this pair passes)."""
    failures = []
    baseline, error = load(baseline_path)
    if error:
        return [error]
    fresh, error = load(fresh_path)
    if error:
        return [error]

    bench = baseline.get("bench")
    if bench not in METRICS:
        return [f"{baseline_path}: unknown bench kind {bench!r}"]
    if fresh.get("bench") != bench:
        return [f"{fresh_path}: bench kind {fresh.get('bench')!r} does not "
                f"match baseline {bench!r}"]

    metric_path, unit = METRICS[bench]
    base_value = dig(baseline, metric_path)
    fresh_value = dig(fresh, metric_path)
    # Structural validation is unconditional: a missing metric is a
    # broken emitter, never a skip.
    for path, value in ((baseline_path, base_value),
                        (fresh_path, fresh_value)):
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(
                f"{path}: metric {metric_path!r} missing or non-positive "
                f"({value!r})")
    # Latency percentiles are part of the structure check too: validated
    # in both documents whenever present, never compared across them.
    failures.extend(check_latencies(baseline_path, baseline, bench))
    failures.extend(check_latencies(fresh_path, fresh, bench))
    failures.extend(check_build_structure(baseline_path, baseline, bench))
    failures.extend(check_build_structure(fresh_path, fresh, bench))
    if failures:
        return failures

    base_hw = baseline.get("hardware_threads")
    fresh_hw = fresh.get("hardware_threads")
    if base_hw != fresh_hw:
        print(f"  SKIP  {bench}: hardware_threads {fresh_hw} != baseline "
              f"{base_hw} (not comparable; structure validated)")
        return []
    mismatched = [key for key in WORKLOAD_KEYS[bench]
                  if baseline.get(key) != fresh.get(key)]
    if mismatched:
        print(f"  SKIP  {bench}: workload shape differs on "
              f"{', '.join(mismatched)} (not comparable; structure "
              f"validated)")
        return []

    floor = base_value * (1.0 - threshold)
    ratio = fresh_value / base_value
    verdict = "FAIL" if fresh_value < floor else "ok"
    print(f"  {verdict:5} {bench}: {fresh_value:,.0f} {unit} vs baseline "
          f"{base_value:,.0f} ({100.0 * ratio:.1f}%, floor "
          f"{100.0 * (1.0 - threshold):.0f}%)")
    if fresh_value < floor:
        failures.append(
            f"{fresh_path}: {bench} regressed to {100.0 * ratio:.1f}% of "
            f"baseline {baseline_path} (allowed floor "
            f"{100.0 * (1.0 - threshold):.0f}%)")
    return failures


def main(argv):
    threshold = 0.30
    pairs = []
    for arg in argv:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
            if not 0.0 < threshold < 1.0:
                print(f"--threshold must be in (0, 1), got {threshold}")
                return 2
        elif "=" in arg:
            baseline, fresh = arg.split("=", 1)
            pairs.append((Path(baseline), Path(fresh)))
        else:
            print(__doc__)
            return 2
    if not pairs:
        print(__doc__)
        return 2

    print(f"bench gate: threshold {100.0 * threshold:.0f}%")
    failures = []
    for baseline_path, fresh_path in pairs:
        failures.extend(check_pair(baseline_path, fresh_path, threshold))
    if failures:
        print("\nbench gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
