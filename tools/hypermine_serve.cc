// Serving CLI over the hypermine::api façade: loads a model, answers
// association queries, and hot-swaps the live model without restarting.
//
//   # Convert between CSV exports and binary snapshots. Snapshot output
//   # carries a ModelSpec provenance trailer (format v2); provenance found
//   # in the input is reported and preserved.
//   hypermine_serve --convert --in=model.csv --out=model.snap
//
//   # Serve top-k / reachability queries from stdin, one query per line:
//   # comma-separated vertex names, e.g. "HES,SLB". Lines starting with
//   # '!' are commands:
//   #   !reload <path>   hot-swap the live model (async, verify-then-swap
//   #                    with rollback; see docs/robustness.md)
//   #   !drain           stop accepting query connections, finish work
//   #   !info            print the live model's version and provenance
//   #   !stats           print the /statusz JSON (docs/observability.md)
//   hypermine_serve --snapshot=model.snap --k=5
//   hypermine_serve --snapshot=model.snap --mode=reach --min_acv=0.4
//
//   # Additionally serve the framed TCP protocol (docs/protocol.md) on
//   # 127.0.0.1:<port> — drive it with hypermine_client. The stdin loop
//   # keeps running: !reload hot-swaps the model under live connections.
//   # The process serves until stdin reaches EOF. --admin-port adds the
//   # HTTP admin plane (GET /metrics, /healthz, /statusz) on a second
//   # port, multiplexed on the same reactor thread.
//   hypermine_serve --snapshot=model.snap --listen=7654 --admin-port=7655
//
//   # Write the Chapter 3 demo snapshot (and an answer-flipping variant,
//   # used by the CI reload smoke).
//   hypermine_serve --make-demo --out=a.snap --variant-out=b.snap
//
//   # End-to-end smoke test: build -> snapshot -> reload -> query -> swap.
//   hypermine_serve --selftest
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "core/discretize.h"
#include "net/server.h"
#include "serve/snapshot.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hypermine {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintProvenance(const api::ModelSpec& spec) {
  const api::ModelProvenance& p = spec.provenance;
  if (p.empty() && spec.discretization.empty()) {
    std::printf("  provenance: (none recorded; v1 snapshot or CSV)\n");
    return;
  }
  std::printf("  provenance: git_sha=%s",
              p.git_sha.empty() ? "?" : p.git_sha.c_str());
  if (p.created_unix != 0) {
    std::printf(" created_unix=%llu",
                static_cast<unsigned long long>(p.created_unix));
  }
  if (!p.source.empty()) std::printf(" source=\"%s\"", p.source.c_str());
  if (!p.note.empty()) std::printf(" note=\"%s\"", p.note.c_str());
  std::printf("\n");
  if (!spec.discretization.empty()) {
    std::printf("  discretization: %s\n", spec.discretization.c_str());
    // Only meaningful when a real spec was recorded — for CSV inputs the
    // config holds defaults, not the parameters the model was built with.
    std::printf("  gammas: edge=%.3f hyper=%.3f (k=%zu)\n",
                spec.config.gamma_edge, spec.config.gamma_hyper,
                spec.config.k);
  }
}

int RunConvert(const FlagParser& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "usage: hypermine_serve --convert --in=X --out=Y\n");
    return 1;
  }
  auto model = api::Model::FromFile(in);
  if (!model.ok()) return Fail(model.status());
  const api::Model& live = **model;
  api::ModelSpec spec = live.spec();
  if (spec.provenance.empty() && !EndsWith(out, ".csv")) {
    // CSV inputs (and v1 snapshots) carry no provenance; stamp the
    // conversion itself so the output snapshot is attributable. Written
    // via the snapshot layer directly — re-wrapping the graph in a new
    // Model would deep-copy it just to attach the stamp.
    spec.provenance.source = "converted from " + in;
    spec.provenance.git_sha = GitSha();
  }
  Status status = EndsWith(out, ".csv")
                      ? live.ExportCsv(out)
                      : serve::WriteSnapshot(live.graph(), spec, out);
  if (!status.ok()) return Fail(status);
  std::printf("converted %s -> %s (%zu vertices, %zu edges)\n", in.c_str(),
              out.c_str(), live.num_vertices(), live.num_edges());
  PrintProvenance(spec);
  return 0;
}

/// Reads a positive integer flag, failing loudly on zero/negative values
/// instead of letting a huge size_t reach the engine.
bool GetPositive(const FlagParser& flags, const std::string& name,
                 int64_t fallback, size_t* out) {
  int64_t value = flags.GetInt(name, fallback);
  if (value <= 0) {
    std::fprintf(stderr, "error: --%s must be positive (got %lld)\n",
                 name.c_str(), static_cast<long long>(value));
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

void PrintResponse(const StatusOr<api::QueryResponse>& response,
                   const api::Model& model) {
  if (!response.ok()) {
    std::printf("  error: %s\n", response.status().ToString().c_str());
    return;
  }
  for (const serve::RankedConsequent& r : response->ranked) {
    std::printf("  %s  acv=%.4f%s\n",
                model.graph().vertex_name(r.head).c_str(), r.acv,
                response->from_cache ? "  (cached)" : "");
  }
  if (!response->closure.empty()) {
    std::string names;
    for (core::VertexId v : response->closure) {
      if (!names.empty()) names += ", ";
      names += model.graph().vertex_name(v);
    }
    std::printf("  closure: {%s}\n", names.c_str());
  }
  if (response->ranked.empty() && response->closure.empty()) {
    std::printf("  (no consequents)\n");
  }
}

/// Runs one hot reload through api::ReloadEngineFromFile and reports the
/// outcome — called on the reload pool, never on the stdin/reactor thread
/// (snapshot IO and the index build block for a large model). Outcome
/// counters land in the default registry so /metrics and !stats show how
/// often reloads succeed, fail to load, or go live and get rolled back.
void RunReload(api::Engine* engine, const std::string& path) {
  Stopwatch timer;
  const api::ReloadReport report = api::ReloadEngineFromFile(engine, path);
  metrics::Registry& registry = metrics::DefaultRegistry();
  registry
      .GetCounter("hypermine_reloads_total",
                  "Hot reload attempts via !reload.")
      ->Increment();
  if (report.rolled_back) {
    registry
        .GetCounter("hypermine_reload_rollbacks_total",
                    "Reloads that went live, failed the post-swap probe, "
                    "and were rolled back.")
        ->Increment();
  }
  if (!report.status.ok()) {
    registry
        .GetCounter("hypermine_reload_failures_total",
                    "Reloads that did not leave a new model serving.")
        ->Increment();
    std::printf(report.rolled_back
                    ? "reload rolled back (serving v%llu again): %s\n"
                    : "reload failed (still serving v%llu): %s\n",
                static_cast<unsigned long long>(report.old_version),
                report.status.ToString().c_str());
    std::fflush(stdout);
    return;
  }
  std::shared_ptr<const api::Model> live = engine->model();
  std::printf("reloaded %s in %.1f ms: %s\n", path.c_str(),
              timer.ElapsedMillis(), live->ToString().c_str());
  PrintProvenance(live->spec());
  std::fflush(stdout);
}

/// Handles a '!' command line in serve mode. Unknown commands and failed
/// reloads are reported, not fatal — the serving loop keeps going. Acks
/// are flushed eagerly: with stdout redirected to a file (CI smokes poll
/// it for the "reloaded" line while the process is alive), stdio is
/// block-buffered and an unflushed ack would sit invisible for minutes.
///
/// `!reload` is asynchronous: the line is acknowledged immediately and the
/// load runs on `reload_pool` (one thread, so concurrent !reload lines
/// serialize — api::ReloadEngineFromFile requires it) while stdin queries
/// and the TCP front-end keep answering on the old model.
void RunCommand(const std::string& line, api::Engine* engine,
                net::Server* server, ThreadPool* reload_pool) {
  if (line == "!stats") {
    // The same JSON document GET /statusz serves, so operators without
    // curl (or without --admin-port) read identical numbers on stdin.
    std::printf("%s", net::StatuszJson(engine, server, nullptr).c_str());
    std::fflush(stdout);
    return;
  }
  if (line == "!info") {
    std::shared_ptr<const api::Model> live = engine->model();
    std::printf("%s\n", live->ToString().c_str());
    PrintProvenance(live->spec());
    std::fflush(stdout);
    return;
  }
  if (line == "!drain") {
    if (server == nullptr) {
      std::printf("!drain needs --listen (no TCP front-end to drain)\n");
      std::fflush(stdout);
      return;
    }
    server->Drain();
    std::printf(
        "draining: refusing new query connections, finishing in-flight "
        "work; /healthz now answers 503\n");
    std::fflush(stdout);
    return;
  }
  if (line.rfind("!reload ", 0) == 0) {
    const std::string path = Trim(line.substr(8));
    reload_pool->Submit([engine, path] { RunReload(engine, path); });
    std::printf("reload of %s started\n", path.c_str());
    std::fflush(stdout);
    return;
  }
  std::printf(
      "unknown command %s (try !info, !stats, !drain or !reload <path>)\n",
      line.c_str());
  std::fflush(stdout);
}

int RunServe(const FlagParser& flags) {
  if (flags.Has("log-level")) {
    internal_logging::LogSeverity severity;
    if (!internal_logging::ParseLogSeverity(
            flags.GetString("log-level", ""), &severity)) {
      std::fprintf(stderr,
                   "error: --log-level must be info, warning or error\n");
      return 1;
    }
    internal_logging::SetMinLogSeverity(severity);
  }
  const std::string path = flags.GetString("snapshot", "");
  Stopwatch load_timer;
  auto model = api::Model::FromFile(path);
  if (!model.ok()) return Fail(model.status());
  // Force the lazy index now so "loaded" means "ready to answer" — the
  // first query must not silently pay the index-build cost.
  const size_t tail_sets = (*model)->index().num_tail_sets();
  std::fprintf(stderr, "loaded %s in %.1f ms: %s, %zu tail sets\n",
               path.c_str(), load_timer.ElapsedMillis(),
               (*model)->ToString().c_str(), tail_sets);

  api::EngineOptions options;
  api::QueryRequest request;
  if (!GetPositive(flags, "threads", 1, &options.num_threads) ||
      !GetPositive(flags, "k", 10, &request.k)) {
    return 1;
  }
  api::Engine engine(*model, options);
  // One thread so queued !reload lines run in order (ReloadEngineFromFile
  // requires serialized reloads). Declared after the engine: the pool is
  // destroyed first, draining any queued reload while the engine it
  // captures is still alive.
  ThreadPool reload_pool(1);

  request.min_acv = flags.GetDouble("min_acv", 0.0);
  request.kind = flags.GetString("mode", "topk") == "reach"
                     ? api::QueryRequest::Kind::kReachable
                     : api::QueryRequest::Kind::kTopK;

  // Optional TCP front-end over the same engine: stdin commands (!reload)
  // and socket queries share the model slot, so a swap issued here is
  // observed by every connected client with zero dropped queries.
  std::unique_ptr<net::Server> server;
  if (flags.Has("listen")) {
    const int64_t port = flags.GetInt("listen", 0);
    if (port < 0 || port > 0xFFFF) {
      std::fprintf(stderr, "error: --listen port out of range\n");
      return 1;
    }
    net::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(port);
    server_options.max_queries_per_connection = static_cast<uint64_t>(
        std::max<int64_t>(0, flags.GetInt("quota", 0)));
    const int64_t max_connections =
        flags.GetInt("max-connections",
                     static_cast<int64_t>(server_options.max_connections));
    if (max_connections <= 0) {
      std::fprintf(stderr, "error: --max-connections must be positive\n");
      return 1;
    }
    server_options.max_connections = static_cast<size_t>(max_connections);
    const int64_t idle_ms = flags.GetInt("idle-timeout-ms", 0);
    if (idle_ms < 0) {
      std::fprintf(stderr, "error: --idle-timeout-ms must be >= 0\n");
      return 1;
    }
    server_options.idle_timeout_ms = static_cast<int>(idle_ms);
    const int64_t queue_wait_ms = flags.GetInt("max-queue-wait-ms", 0);
    if (queue_wait_ms < 0) {
      std::fprintf(stderr, "error: --max-queue-wait-ms must be >= 0\n");
      return 1;
    }
    server_options.max_queue_wait_ms = static_cast<int>(queue_wait_ms);
    const int64_t stall_ms = flags.GetInt("stall-timeout-ms", 0);
    if (stall_ms < 0) {
      std::fprintf(stderr, "error: --stall-timeout-ms must be >= 0\n");
      return 1;
    }
    server_options.stall_timeout_ms = static_cast<int>(stall_ms);
    const int64_t reactors = flags.GetInt("reactors", 1);
    if (reactors < 0) {
      std::fprintf(stderr, "error: --reactors must be >= 0\n");
      return 1;
    }
    server_options.num_reactors = static_cast<size_t>(reactors);
    if (flags.Has("admin-port")) {
      const int64_t admin_port = flags.GetInt("admin-port", -1);
      if (admin_port < 0 || admin_port > 0xFFFF) {
        std::fprintf(stderr, "error: --admin-port out of range\n");
        return 1;
      }
      server_options.admin_port = static_cast<int>(admin_port);
    }
    auto started = net::Server::Start(&engine, server_options);
    if (!started.ok()) return Fail(started.status());
    server = std::move(*started);
    std::fprintf(stderr,
                 "listening on 127.0.0.1:%u (protocol v%u, %zu "
                 "reactor%s, up to %zu connections)\n",
                 unsigned{server->port()}, unsigned{net::kProtocolVersion},
                 server->num_reactors(),
                 server->num_reactors() == 1 ? "" : "s",
                 server_options.max_connections);
    if (server->admin_port() != 0) {
      std::fprintf(stderr,
                   "admin plane on 127.0.0.1:%u (GET /metrics, /healthz, "
                   "/statusz)\n",
                   unsigned{server->admin_port()});
    }
  } else if (flags.Has("admin-port")) {
    std::fprintf(stderr, "error: --admin-port requires --listen\n");
    return 1;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line[0] == '!') {
      RunCommand(line, &engine, server.get(), &reload_pool);
      continue;
    }
    request.names.clear();
    for (const std::string& raw : Split(line, ',')) {
      std::string name = Trim(raw);
      if (!name.empty()) request.names.push_back(std::move(name));
    }
    if (request.names.empty()) {
      std::printf("  (no vertices in query)\n");
      continue;
    }
    // Pin the model for printing: names in the answer must be resolved
    // against the model that produced it, which a concurrent !reload in a
    // future async front-end could otherwise change under us.
    std::shared_ptr<const api::Model> live = engine.model();
    PrintResponse(engine.Query(request), *live);
  }
  return 0;
}

/// Builds the Chapter 3 patient-database model (same data as
/// examples/quickstart.cpp) through the api with full provenance.
StatusOr<std::shared_ptr<const api::Model>> BuildDemoModel(
    size_t num_threads) {
  const std::vector<std::vector<double>> raw = {
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    HM_ASSIGN_OR_RETURN(columns[attr],
                        core::FloorDivDiscretize(series, 10.0));
  }
  HM_ASSIGN_OR_RETURN(
      core::Database db,
      core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns));
  api::ModelSpec spec;
  spec.config = core::ConfigC1();
  spec.config.k = db.num_values();
  spec.config.num_threads = num_threads;
  spec.discretization = "floor(value / 10) per Table 3.2";
  spec.provenance.source = "chapter-3 patient database (8 observations)";
  return api::Model::Build(db, std::move(spec));
}

/// The demo model with every weight w replaced by 1 - w: same vertices and
/// edges, reversed ACV ranking, so swapping it in flips top-k answers —
/// which is exactly what the CI reload smoke asserts.
std::shared_ptr<const api::Model> InvertDemoModel(const api::Model& base) {
  auto graph =
      core::DirectedHypergraph::Create(base.graph().vertex_names());
  HM_CHECK_OK(graph.status());
  for (const core::Hyperedge& e : base.graph().edges()) {
    std::vector<core::VertexId> tail(e.TailSpan().begin(),
                                     e.TailSpan().end());
    HM_CHECK_OK(
        graph->AddEdge(std::move(tail), e.head, 1.0 - e.weight).status());
  }
  api::ModelSpec spec = base.spec();
  spec.provenance.note = "demo variant: weights inverted (w -> 1 - w)";
  return api::Model::FromGraph(std::move(graph).value(), std::move(spec));
}

int RunMakeDemo(const FlagParser& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: hypermine_serve --make-demo --out=a.snap "
                 "[--variant-out=b.snap]\n");
    return 1;
  }
  auto model = BuildDemoModel(0);
  if (!model.ok()) return Fail(model.status());
  Status written = (*model)->SaveSnapshot(out);
  if (!written.ok()) return Fail(written);
  std::printf("wrote demo snapshot %s (%zu vertices, %zu edges)\n",
              out.c_str(), (*model)->num_vertices(), (*model)->num_edges());
  const std::string variant_out = flags.GetString("variant-out", "");
  if (!variant_out.empty()) {
    std::shared_ptr<const api::Model> variant = InvertDemoModel(**model);
    written = variant->SaveSnapshot(variant_out);
    if (!written.ok()) return Fail(written);
    std::printf("wrote variant snapshot %s (inverted weights)\n",
                variant_out.c_str());
  }
  return 0;
}

int RunSelfTest(const FlagParser& flags) {
  auto built = BuildDemoModel(
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("threads", 0))));
  if (!built.ok()) return Fail(built.status());
  const std::string path = "/tmp/hypermine_selftest.snap";
  Status written = (*built)->SaveSnapshot(path);
  if (!written.ok()) return Fail(written);
  auto model = api::Model::FromSnapshot(path);
  if (!model.ok()) return Fail(model.status());
  HM_CHECK_EQ((*model)->num_edges(), (*built)->num_edges());
  HM_CHECK_EQ((*model)->num_vertices(), (*built)->num_vertices());
  // The spec trailer must survive the round trip.
  HM_CHECK((*model)->spec().provenance.source ==
           (*built)->spec().provenance.source);
  HM_CHECK((*model)->spec().provenance.git_sha ==
           (*built)->spec().provenance.git_sha);

  api::Engine engine(*model);
  std::printf("selftest: %zu vertices, %zu edges round-tripped through %s\n",
              (*model)->num_vertices(), (*model)->num_edges(), path.c_str());
  PrintProvenance((*model)->spec());
  std::vector<api::QueryRequest> batch;
  for (core::VertexId v = 0;
       v < static_cast<core::VertexId>((*model)->num_vertices()); ++v) {
    api::QueryRequest request;
    request.items = {v};
    request.k = 3;
    batch.push_back(std::move(request));
  }
  std::vector<StatusOr<api::QueryResponse>> responses =
      engine.QueryBatch(batch);
  for (size_t i = 0; i < responses.size(); ++i) {
    std::printf("top-3 for {%s}:\n",
                (*model)->graph().vertex_name(batch[i].items[0]).c_str());
    PrintResponse(responses[i], **model);
  }
  api::QueryRequest closure;
  closure.items = {0};
  closure.kind = api::QueryRequest::Kind::kReachable;
  closure.min_acv = 0.3;
  std::printf("forward closure of {%s} at min_acv=0.3:\n",
              (*model)->graph().vertex_name(0).c_str());
  PrintResponse(engine.Query(closure), **model);

  // Hot swap: the inverted-weight variant must answer with a different
  // ranking under the new model version, and the old cache must not leak
  // into it.
  api::QueryRequest probe;
  probe.names = {"A"};
  probe.k = 3;
  auto before = engine.Query(probe);
  HM_CHECK_OK(before.status());
  std::shared_ptr<const api::Model> variant = InvertDemoModel(**model);
  engine.Swap(variant);
  auto after = engine.Query(probe);
  HM_CHECK_OK(after.status());
  HM_CHECK(after->model_version == variant->version());
  HM_CHECK(!after->from_cache);
  HM_CHECK(!(before->ranked == after->ranked));
  std::printf("hot swap OK: v%llu -> v%llu flips the ranking for {A}\n",
              static_cast<unsigned long long>(before->model_version),
              static_cast<unsigned long long>(after->model_version));
  std::printf("selftest OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.GetBool("selftest", false)) return RunSelfTest(flags);
  if (flags.GetBool("convert", false)) return RunConvert(flags);
  if (flags.GetBool("make-demo", false)) return RunMakeDemo(flags);
  if (!flags.GetString("snapshot", "").empty()) return RunServe(flags);
  std::fprintf(stderr,
               "usage:\n"
               "  hypermine_serve --convert --in=model.{csv,snap} "
               "--out=model.{csv,snap}\n"
               "  hypermine_serve --snapshot=model.snap [--k=N] "
               "[--threads=N] [--mode=topk|reach] [--min_acv=X]\n"
               "      [--log-level=info|warning|error]\n"
               "      [--listen=PORT [--admin-port=PORT] [--reactors=N] "
               "[--quota=N] [--max-connections=N]\n"
               "       [--idle-timeout-ms=N] [--max-queue-wait-ms=N] "
               "[--stall-timeout-ms=N]]\n"
               "    stdin: vertex-name queries; !reload <path> hot-swaps "
               "the model (async, rollback on a bad snapshot);\n"
               "    !drain refuses new query connections and flips "
               "/healthz to 503; !info prints provenance;\n"
               "    !stats prints the /statusz JSON\n"
               "    --listen additionally serves the framed TCP protocol "
               "on 127.0.0.1:PORT (see hypermine_client);\n"
               "    --admin-port adds GET /metrics, /healthz, /statusz "
               "(docs/observability.md) on a second port;\n"
               "    --reactors=N shards the serving path over N event-"
               "loop threads (0 = one per hardware thread)\n"
               "  hypermine_serve --make-demo --out=a.snap "
               "[--variant-out=b.snap]\n"
               "  hypermine_serve --selftest [--threads=N]\n");
  return 1;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
