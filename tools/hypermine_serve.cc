// Serving CLI: loads a model snapshot and answers association queries.
//
//   # Convert a CSV export to a binary snapshot (and back).
//   hypermine_serve --convert --in=model.csv --out=model.snap
//
//   # Serve top-k / reachability queries from stdin, one query per line:
//   # comma-separated vertex names, e.g. "HES,SLB".
//   hypermine_serve --snapshot=model.snap --k=5
//   hypermine_serve --snapshot=model.snap --mode=reach --min_acv=0.4
//
//   # End-to-end smoke test: builds the Chapter 3 patient-database model,
//   # snapshots it, reloads, and queries through the engine.
//   hypermine_serve --selftest
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/builder.h"
#include "core/discretize.h"
#include "core/export.h"
#include "serve/engine.h"
#include "serve/rule_index.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypermine {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunConvert(const FlagParser& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "usage: hypermine_serve --convert --in=X --out=Y\n");
    return 1;
  }
  auto graph = serve::LoadHypergraph(in);
  if (!graph.ok()) return Fail(graph.status());
  Status status = EndsWith(out, ".csv")
                      ? core::WriteHypergraphCsv(*graph, out)
                      : serve::WriteSnapshot(*graph, out);
  if (!status.ok()) return Fail(status);
  std::printf("converted %s -> %s (%zu vertices, %zu edges)\n", in.c_str(),
              out.c_str(), graph->num_vertices(), graph->num_edges());
  return 0;
}

using NameIndex = std::unordered_map<std::string, core::VertexId>;

NameIndex BuildNameIndex(const core::DirectedHypergraph& graph) {
  NameIndex index;
  index.reserve(graph.num_vertices());
  for (core::VertexId v = 0; v < graph.num_vertices(); ++v) {
    index.emplace(graph.vertex_name(v), v);
  }
  return index;
}

/// Resolves comma-separated names to vertex ids; unknown names are
/// reported and skipped.
std::vector<core::VertexId> ParseItems(const std::string& line,
                                       const NameIndex& names) {
  std::vector<core::VertexId> items;
  for (const std::string& raw : Split(line, ',')) {
    std::string name = Trim(raw);
    if (name.empty()) continue;
    auto it = names.find(name);
    if (it == names.end()) {
      std::fprintf(stderr, "unknown vertex: %s\n", name.c_str());
      continue;
    }
    items.push_back(it->second);
  }
  return items;
}

/// Reads a positive integer flag, failing loudly on zero/negative values
/// instead of letting a huge size_t reach the engine.
bool GetPositive(const FlagParser& flags, const std::string& name,
                 int64_t fallback, size_t* out) {
  int64_t value = flags.GetInt(name, fallback);
  if (value <= 0) {
    std::fprintf(stderr, "error: --%s must be positive (got %lld)\n",
                 name.c_str(), static_cast<long long>(value));
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

void PrintResult(const serve::QueryResult& result,
                 const core::DirectedHypergraph& graph) {
  if (!result.status.ok()) {
    std::printf("  error: %s\n", result.status.ToString().c_str());
    return;
  }
  for (const serve::RankedConsequent& r : result.ranked) {
    std::printf("  %s  acv=%.4f%s\n", graph.vertex_name(r.head).c_str(),
                r.acv, result.from_cache ? "  (cached)" : "");
  }
  if (!result.closure.empty()) {
    std::string names;
    for (core::VertexId v : result.closure) {
      if (!names.empty()) names += ", ";
      names += graph.vertex_name(v);
    }
    std::printf("  closure: {%s}\n", names.c_str());
  }
  if (result.ranked.empty() && result.closure.empty()) {
    std::printf("  (no consequents)\n");
  }
}

int RunServe(const FlagParser& flags) {
  const std::string path = flags.GetString("snapshot", "");
  Stopwatch load_timer;
  auto graph = serve::LoadHypergraph(path);
  if (!graph.ok()) return Fail(graph.status());
  serve::RuleIndex index = serve::RuleIndex::Build(*graph);
  std::fprintf(stderr,
               "loaded %s in %.1f ms: %zu vertices, %zu edges, "
               "%zu tail sets\n",
               path.c_str(), load_timer.ElapsedMillis(),
               graph->num_vertices(), graph->num_edges(),
               index.num_tail_sets());
  serve::EngineOptions options;
  serve::Query query;
  if (!GetPositive(flags, "threads", 1, &options.num_threads) ||
      !GetPositive(flags, "k", 10, &query.k)) {
    return 1;
  }
  serve::QueryEngine engine(std::move(index), options);

  query.min_acv = flags.GetDouble("min_acv", 0.0);
  query.kind = flags.GetString("mode", "topk") == "reach"
                   ? serve::Query::Kind::kReachable
                   : serve::Query::Kind::kTopK;

  const NameIndex names = BuildNameIndex(*graph);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    query.items = ParseItems(line, names);
    if (query.items.empty()) {
      std::printf("  (no known vertices in query)\n");
      continue;
    }
    PrintResult(engine.QueryOne(query), *graph);
  }
  return 0;
}

/// Builds the Chapter 3 patient-database hypergraph (same data as
/// examples/quickstart.cpp) with `num_threads` build workers (0 =
/// hardware concurrency; the result is bit-identical either way).
StatusOr<core::DirectedHypergraph> BuildDemoGraph(size_t num_threads) {
  const std::vector<std::vector<double>> raw = {
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    HM_ASSIGN_OR_RETURN(columns[attr],
                        core::FloorDivDiscretize(series, 10.0));
  }
  HM_ASSIGN_OR_RETURN(
      core::Database db,
      core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns));
  core::HypergraphConfig config = core::ConfigC1();
  config.k = db.num_values();
  config.num_threads = num_threads;
  return core::BuildAssociationHypergraph(db, config);
}

int RunSelfTest(const FlagParser& flags) {
  auto graph = BuildDemoGraph(
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("threads", 0))));
  if (!graph.ok()) return Fail(graph.status());
  const std::string path = "/tmp/hypermine_selftest.snap";
  Status written = serve::WriteSnapshot(*graph, path);
  if (!written.ok()) return Fail(written);
  auto reloaded = serve::ReadSnapshot(path);
  if (!reloaded.ok()) return Fail(reloaded.status());
  HM_CHECK_EQ(reloaded->num_edges(), graph->num_edges());
  HM_CHECK_EQ(reloaded->num_vertices(), graph->num_vertices());

  serve::QueryEngine engine(serve::RuleIndex::Build(*reloaded));
  std::printf("selftest: %zu vertices, %zu edges round-tripped through %s\n",
              reloaded->num_vertices(), reloaded->num_edges(), path.c_str());
  std::vector<serve::Query> batch;
  for (core::VertexId v = 0; v < reloaded->num_vertices(); ++v) {
    batch.push_back({{v}, 3, serve::Query::Kind::kTopK, 0.0});
  }
  std::vector<serve::QueryResult> results = engine.QueryBatch(batch);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("top-3 for {%s}:\n",
                reloaded->vertex_name(batch[i].items[0]).c_str());
    PrintResult(results[i], *reloaded);
  }
  serve::Query closure{{0}, 0, serve::Query::Kind::kReachable, 0.3};
  std::printf("forward closure of {%s} at min_acv=0.3:\n",
              reloaded->vertex_name(0).c_str());
  PrintResult(engine.QueryOne(closure), *reloaded);
  std::printf("selftest OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.GetBool("selftest", false)) return RunSelfTest(flags);
  if (flags.GetBool("convert", false)) return RunConvert(flags);
  if (!flags.GetString("snapshot", "").empty()) return RunServe(flags);
  std::fprintf(stderr,
               "usage:\n"
               "  hypermine_serve --convert --in=model.{csv,snap} "
               "--out=model.{csv,snap}\n"
               "  hypermine_serve --snapshot=model.snap [--k=N] "
               "[--threads=N] [--mode=topk|reach] [--min_acv=X]\n"
               "  hypermine_serve --selftest [--threads=N]\n");
  return 1;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
