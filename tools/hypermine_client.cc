// Command-line client for a hypermine_serve --listen server. Reads queries
// from stdin in exactly the stdin-serving format (one query per line,
// comma-separated vertex names) and prints answers in exactly the
// stdin-serving format — so `hypermine_client` output diffs cleanly against
// `hypermine_serve --snapshot=...` output on the same queries, which is how
// the CI smoke asserts wire answers match in-process answers byte for byte.
//
//   printf 'A\nC\n' | hypermine_client --port=7654 --k=3
//   hypermine_client --port=7654 --mode=reach --min_acv=0.4
//   hypermine_client --port=7654 --query=HES,SLB        # one-shot
//
// --retry-ms=N keeps retrying the initial connect for N ms (scripts that
// start the server and the client concurrently). --verbose prints each
// answer's model version, which the CI reload smoke uses to assert a hot
// swap flipped the served model.
//
// --timeout-ms=N bounds each query call (including retries and reconnects)
// and --retries=N re-issues queries that hit a transport fault or a
// kUnavailable load-shed, with jittered exponential backoff — see
// docs/robustness.md. --verbose additionally prints the client's
// retry/reconnect counters on stderr at exit.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace hypermine {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Mirrors hypermine_serve's PrintResponse byte for byte (names are
/// already resolved server-side).
void PrintResponse(const net::WireResponse& response, bool verbose) {
  if (response.code != StatusCode::kOk) {
    std::printf("  error: %s\n", response.ToStatus().ToString().c_str());
    return;
  }
  for (const net::WireConsequent& r : response.ranked) {
    std::printf("  %s  acv=%.4f%s\n", r.name.c_str(), r.acv,
                response.from_cache ? "  (cached)" : "");
  }
  if (!response.closure.empty()) {
    std::string names;
    for (const std::string& name : response.closure) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    std::printf("  closure: {%s}\n", names.c_str());
  }
  if (response.ranked.empty() && response.closure.empty()) {
    std::printf("  (no consequents)\n");
  }
  if (verbose) {
    std::printf("  model_version: %llu\n",
                static_cast<unsigned long long>(response.model_version));
  }
}

/// With --verbose, reports the retry-layer counters on stderr so scripts
/// (and the CI chaos smoke) can see how hard the client had to work —
/// stdout stays byte-identical to hypermine_serve's answers either way.
void PrintClientStats(const net::Client& client, bool verbose) {
  if (!verbose) return;
  const net::ClientStats& stats = client.stats();
  std::fprintf(stderr,
               "client stats: retries=%llu reconnects=%llu "
               "deadline_exceeded=%llu unavailable=%llu\n",
               static_cast<unsigned long long>(stats.retries),
               static_cast<unsigned long long>(stats.reconnects),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.unavailable));
}

/// Parses one stdin line / --query value into the request's name list.
bool ParseNames(const std::string& line, api::QueryRequest* request) {
  request->names.clear();
  for (const std::string& raw : Split(line, ',')) {
    std::string name = Trim(raw);
    if (!name.empty()) request->names.push_back(std::move(name));
  }
  return !request->names.empty();
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 0xFFFF) {
    std::fprintf(
        stderr,
        "usage: hypermine_client --port=N [--host=127.0.0.1] [--k=N]\n"
        "         [--mode=topk|reach] [--min_acv=X] [--retry-ms=N]\n"
        "         [--timeout-ms=N] [--retries=N] [--query=A,B] [--verbose]\n"
        "  stdin: one query per line, comma-separated vertex names\n"
        "  --timeout-ms bounds each call; --retries re-issues transport\n"
        "  faults and kUnavailable sheds with exponential backoff\n");
    return 1;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int retry_ms = static_cast<int>(flags.GetInt("retry-ms", 0));
  const int64_t timeout_ms = flags.GetInt("timeout-ms", 0);
  const int64_t retries = flags.GetInt("retries", 0);
  if (timeout_ms < 0 || retries < 0) {
    std::fprintf(stderr,
                 "error: --timeout-ms and --retries must be >= 0\n");
    return 1;
  }

  api::QueryRequest request;
  request.k = static_cast<size_t>(flags.GetInt("k", 10));
  request.min_acv = flags.GetDouble("min_acv", 0.0);
  request.kind = flags.GetString("mode", "topk") == "reach"
                     ? api::QueryRequest::Kind::kReachable
                     : api::QueryRequest::Kind::kTopK;
  const bool verbose = flags.GetBool("verbose", false);

  auto client =
      net::Client::Connect(host, static_cast<uint16_t>(port), retry_ms);
  if (!client.ok()) return Fail(client.status());
  net::CallOptions call_options;
  call_options.deadline_ms = static_cast<int>(timeout_ms);
  call_options.max_retries = static_cast<int>(retries);
  client->set_call_options(call_options);

  const std::string one_shot = flags.GetString("query", "");
  if (!one_shot.empty()) {
    if (!ParseNames(one_shot, &request)) {
      std::printf("  (no vertices in query)\n");
      return 1;
    }
    auto response = client->Query(request);
    PrintClientStats(*client, verbose);
    if (!response.ok()) return Fail(response.status());
    PrintResponse(*response, verbose);
    return response->code == StatusCode::kOk ? 0 : 1;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line[0] == '!') {
      // Commands (!reload, !info) act on the server process's stdin, not
      // the wire; refuse loudly rather than query for a vertex named "!x".
      std::printf("  (commands are not supported over the wire)\n");
      continue;
    }
    if (!ParseNames(line, &request)) {
      std::printf("  (no vertices in query)\n");
      continue;
    }
    auto response = client->Query(request);
    if (!response.ok()) {
      PrintClientStats(*client, verbose);
      return Fail(response.status());
    }
    PrintResponse(*response, verbose);
  }
  PrintClientStats(*client, verbose);
  return 0;
}

}  // namespace
}  // namespace hypermine

int main(int argc, char** argv) { return hypermine::Main(argc, argv); }
