#!/usr/bin/env python3
"""Fails when a relative markdown link points at a file that does not exist.

Usage: check_links.py [file-or-dir ...]   (default: README.md and docs/,
relative to the repository root, which is assumed to be this script's
parent directory's parent)

Only relative links are checked — http(s)/mailto links would make CI
flaky on network weather, and pure #anchors are section references within
the same page. Link targets may carry a #fragment; only the path part
must exist. Stdlib only: this runs in CI and in environments where
nothing can be pip-installed.
"""
import re
import sys
from pathlib import Path

# [text](target) — target captured up to the first unescaped ')'; markdown
# images ![alt](target) match the same pattern via their trailing part.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def links_in(path: Path):
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        yield from LINK_RE.findall(line)


def check(paths):
    markdown_files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            markdown_files.extend(sorted(path.glob("*.md")))
        else:
            markdown_files.append(path)

    broken = []
    for md in markdown_files:
        for target in links_in(md):
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (md.parent / relative).exists():
                broken.append(f"{md}: broken link -> {target}")
    return broken


def main(argv):
    root = Path(__file__).resolve().parent.parent
    paths = argv[1:] or [root / "README.md", root / "docs"]
    broken = check(paths)
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
