#!/usr/bin/env python3
"""Checks project invariants the compiler cannot see (docs/static_analysis.md).

Stdlib-only; runs as the `lint_invariants` ctest entry and in CI's docs
job. Checks:

  status-codes   StatusCode values are dense (0..N, no gaps — they ride
                 the wire, so renumbering breaks deployed clients) and
                 every code documented in docs/protocol.md matches the
                 enum's value.
  metrics        Every metric name registered via GetCounter/GetGauge/
                 GetHistogram is registered as exactly one kind and its
                 base name is documented in docs/observability.md.
  reactor        Reactor-owned files never block: no sleeps and no
                 blocking ReadFull/WriteFull socket helpers on the event
                 loop thread.
  includes       Header include guards follow HYPERMINE_<PATH>_H_;
                 <mutex>/<condition_variable> are included only by the
                 sanctioned wrappers (everyone else goes through
                 util/mutex.h, where the thread safety annotations live).
  suppressions   Every HM_NO_THREAD_SAFETY_ANALYSIS carries a one-line
                 justification comment.
  intrinsics     Vendor intrinsic headers (<immintrin.h> and friends) are
                 included only by src/core/simd.cc; everything else calls
                 through the core/simd.h dispatch table.

`--selftest` replays every fixture under tests/lint/fixtures/ — a known-
bad mini-tree plus an EXPECT file naming the error it must provoke — and
fails if any fixture passes clean. A linter whose checks cannot fail is
the quietest form of rot.

Exit codes: 0 clean, 1 findings (or selftest failure), 2 setup problem.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files whose code runs on (or is driven by) the reactor thread. Blocking
# here stalls every connection at once.
REACTOR_FILES = (
    "src/net/event_loop.cc",
    "src/net/event_loop.h",
    "src/net/server.cc",
    "src/net/reactor.cc",
    "src/net/reactor.h",
    "src/net/connection.cc",
    "src/net/connection.h",
    "src/net/http.cc",
    "src/net/http.h",
)

BLOCKING_PATTERNS = (
    (re.compile(r"\bsleep_for\s*\("), "std::this_thread::sleep_for"),
    (re.compile(r"\bsleep\s*\("), "sleep()"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
    (re.compile(r"\bReadFull\s*\("), "blocking Socket::ReadFull"),
    (re.compile(r"\bWriteFull\s*\("), "blocking Socket::WriteFull"),
)

# The only files allowed to include the raw primitives: the annotated
# wrapper itself, and api/model.h for std::once_flag (call_once is a
# discipline the analysis cannot express; see the comment there).
RAW_MUTEX_ALLOWED = ("src/util/mutex.h", "src/api/model.h")

# The only file allowed to include vendor intrinsic headers: the runtime
# SIMD dispatch unit. Everyone else calls through core/simd.h's function
# table, so ISA-specific code cannot leak into portable translation units
# (and a stray -mavx flag cannot silently change codegen elsewhere).
INTRINSICS_ALLOWED = ("src/core/simd.cc",)
INTRINSIC_INCLUDE = re.compile(
    r"\s*#include\s+<((?:[a-z0-9_]*intrin|immintrin|x86intrin|arm_neon)"
    r"[a-z0-9_]*\.h)>")

METRIC_CALL = re.compile(
    r"Get(Counter|Gauge|Histogram)\s*\(\s*\"((?:[^\"\\]|\\.)+)\"")
METRIC_CALL_FMT = re.compile(
    r"Get(Counter|Gauge|Histogram)\s*\(\s*StrFormat\s*\(\s*"
    r"\"((?:[^\"\\]|\\.)+)\"")

ENUM_BLOCK = re.compile(r"enum\s+class\s+StatusCode\s*\{(.*?)\};", re.S)
ENUM_VALUE = re.compile(r"\bk([A-Za-z0-9]+)\s*=\s*(\d+)")
DOC_CODE_ROW = re.compile(r"^\|\s*`([A-Z_]+)`\s*\|\s*(\d+)\s*\|", re.M)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def strip_line_comments(text):
    return re.sub(r"//[^\n]*", "", text)


def walk_sources(root, subdirs, suffixes):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(suffixes):
                    yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def camel_to_screaming(name):
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).upper()


def check_status_codes(root):
    errors = []
    status_h = os.path.join(root, "src/util/status.h")
    if not os.path.isfile(status_h):
        return errors
    block = ENUM_BLOCK.search(strip_line_comments(read(status_h)))
    if block is None:
        return ["status-codes: src/util/status.h has no StatusCode enum"]
    codes = {}
    for name, value in ENUM_VALUE.findall(block.group(1)):
        value = int(value)
        if value in codes.values():
            errors.append(
                f"status-codes: value {value} assigned twice (k{name})")
        codes[name] = value
    values = sorted(codes.values())
    if values != list(range(len(values))):
        errors.append(
            "status-codes: StatusCode values are not dense 0..N "
            f"(got {values}); wire stability forbids gaps and renumbering")

    protocol_md = os.path.join(root, "docs/protocol.md")
    if os.path.isfile(protocol_md):
        screaming = {camel_to_screaming(n): v for n, v in codes.items()}
        for doc_name, doc_value in DOC_CODE_ROW.findall(read(protocol_md)):
            if doc_name == "CODE":  # a table header exemplar, not a code
                continue
            if doc_name not in screaming:
                errors.append(
                    f"status-codes: docs/protocol.md documents `{doc_name}` "
                    "which is not in the StatusCode enum")
            elif screaming[doc_name] != int(doc_value):
                errors.append(
                    f"status-codes: docs/protocol.md says {doc_name} = "
                    f"{doc_value} but src/util/status.h says "
                    f"{screaming[doc_name]}")
    return errors


def check_metrics(root):
    errors = []
    doc_path = os.path.join(root, "docs/observability.md")
    doc_text = read(doc_path) if os.path.isfile(doc_path) else None
    kinds = {}  # base name -> {kind: [files]}
    for path in walk_sources(root, ("src", "tools", "bench"), (".cc", ".h")):
        text = strip_line_comments(read(path))
        for pattern in (METRIC_CALL, METRIC_CALL_FMT):
            for kind, name in pattern.findall(text):
                base = name.split("{")[0]
                if not base.startswith("hypermine_"):
                    continue  # doc snippets and test-local registries
                kinds.setdefault(base, {}).setdefault(kind, []).append(
                    rel(root, path))
    for base in sorted(kinds):
        by_kind = kinds[base]
        if len(by_kind) > 1:
            sites = ", ".join(
                f"{kind} in {'/'.join(sorted(set(files)))}"
                for kind, files in sorted(by_kind.items()))
            errors.append(
                f"metrics: {base} is registered as more than one kind "
                f"({sites}); one name, one meaning")
        if doc_text is not None and base not in doc_text:
            files = sorted(
                {f for file_list in by_kind.values() for f in file_list})
            errors.append(
                f"metrics: {base} (registered in {', '.join(files)}) is not "
                "documented in docs/observability.md")
    return errors


def check_reactor_blocking(root):
    errors = []
    for rel_path in REACTOR_FILES:
        path = os.path.join(root, rel_path)
        if not os.path.isfile(path):
            continue
        for lineno, line in enumerate(read(path).splitlines(), start=1):
            code = strip_line_comments(line)
            for pattern, label in BLOCKING_PATTERNS:
                if pattern.search(code):
                    errors.append(
                        f"reactor: {rel_path}:{lineno} calls {label} on a "
                        "reactor-owned path; the event loop must never "
                        "block")
    return errors


def check_includes(root):
    errors = []
    for path in walk_sources(root, ("src",), (".h",)):
        rel_path = rel(root, path)
        text = read(path)
        inner = rel_path[len("src/"):]
        expected = ("HYPERMINE_"
                    + re.sub(r"[/.]", "_", inner).upper() + "_")
        guard = re.search(r"#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text)
        if guard is None:
            errors.append(f"includes: {rel_path} has no include guard")
        elif guard.group(1) != expected or guard.group(2) != expected:
            errors.append(
                f"includes: {rel_path} guard is {guard.group(1)}, "
                f"want {expected}")
    for path in walk_sources(root, ("src",), (".h", ".cc")):
        rel_path = rel(root, path)
        if rel_path in RAW_MUTEX_ALLOWED:
            continue
        for lineno, line in enumerate(read(path).splitlines(), start=1):
            if re.match(r"\s*#include\s+<(mutex|condition_variable)>", line):
                errors.append(
                    f"includes: {rel_path}:{lineno} includes the raw "
                    "primitive; use util/mutex.h (annotated wrappers) "
                    "instead")
    return errors


def check_suppressions(root):
    errors = []
    for path in walk_sources(root, ("src",), (".h", ".cc")):
        rel_path = rel(root, path)
        if rel_path == "src/util/thread_annotations.h":
            continue  # the definition site
        lines = read(path).splitlines()
        for lineno, line in enumerate(lines, start=1):
            if "HM_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            previous = lines[lineno - 2] if lineno >= 2 else ""
            if "justification:" in line or "justification:" in previous:
                continue
            errors.append(
                f"suppressions: {rel_path}:{lineno} uses "
                "HM_NO_THREAD_SAFETY_ANALYSIS without a '// justification:' "
                "comment on the same or preceding line")
    return errors


def check_intrinsics(root):
    errors = []
    for path in walk_sources(root, ("src", "tools", "bench"),
                             (".h", ".cc")):
        rel_path = rel(root, path)
        if rel_path in INTRINSICS_ALLOWED:
            continue
        for lineno, line in enumerate(read(path).splitlines(), start=1):
            match = INTRINSIC_INCLUDE.match(line)
            if match:
                errors.append(
                    f"intrinsics: {rel_path}:{lineno} includes "
                    f"<{match.group(1)}> directly; raw SIMD intrinsics live "
                    "only in src/core/simd.cc behind the dispatch table")
    return errors


CHECKS = (
    check_status_codes,
    check_metrics,
    check_reactor_blocking,
    check_includes,
    check_suppressions,
    check_intrinsics,
)


def run_checks(root):
    errors = []
    for check in CHECKS:
        errors.extend(check(root))
    return errors


def selftest():
    fixtures_dir = os.path.join(REPO_ROOT, "tests/lint/fixtures")
    if not os.path.isdir(fixtures_dir):
        print(f"lint_invariants --selftest: {fixtures_dir} missing",
              file=sys.stderr)
        return 2
    failures = 0
    cases = sorted(
        name for name in os.listdir(fixtures_dir)
        if os.path.isdir(os.path.join(fixtures_dir, name)))
    if not cases:
        print("lint_invariants --selftest: no fixtures", file=sys.stderr)
        return 2
    for case in cases:
        case_root = os.path.join(fixtures_dir, case)
        expect_path = os.path.join(case_root, "EXPECT")
        if not os.path.isfile(expect_path):
            print(f"FAIL {case}: fixture has no EXPECT file")
            failures += 1
            continue
        expected = read(expect_path).strip()
        errors = run_checks(case_root)
        if any(expected in error for error in errors):
            print(f"  ok {case}: provoked '{expected}'")
        else:
            print(f"FAIL {case}: expected an error containing '{expected}', "
                  f"got {errors or 'a clean pass'}")
            failures += 1
    if failures:
        print(f"lint_invariants --selftest: {failures}/{len(cases)} fixtures "
              "did not provoke their error", file=sys.stderr)
        return 1
    print(f"lint_invariants --selftest: {len(cases)} fixtures ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="tree to lint (default: the repo)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify every known-bad fixture still fails")
    options = parser.parse_args()
    if options.selftest:
        return selftest()
    errors = run_checks(options.root)
    for error in errors:
        print(error)
    if errors:
        print(f"lint_invariants: {len(errors)} finding(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
