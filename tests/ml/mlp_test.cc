#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

TEST(MlpTest, LearnsXor) {
  // XOR needs the hidden layer: linear models cannot fit it.
  Dataset data;
  data.num_classes = 2;
  data.features = Matrix::FromRows(
      {{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}});
  data.labels = {0, 1, 1, 0};
  MlpConfig config;
  config.hidden_units = 8;
  config.epochs = 3000;
  config.learning_rate = 0.2;
  config.seed = 4;
  auto model = Mlp::Train(data, config);
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(*preds, data.labels);
}

TEST(MlpTest, SeparatesGaussianClusters) {
  Rng rng(44);
  Dataset data;
  data.num_classes = 3;
  const size_t per_class = 60;
  data.features = Matrix(3 * per_class, 3);
  data.labels.resize(3 * per_class);
  const double cx[3] = {0.0, 3.0, -3.0};
  const double cy[3] = {3.0, -2.0, -2.0};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      data.features.At(row, 0) = cx[c] + rng.NextGaussian() * 0.5;
      data.features.At(row, 1) = cy[c] + rng.NextGaussian() * 0.5;
      data.features.At(row, 2) = 1.0;
      data.labels[row] = static_cast<int>(c);
    }
  }
  MlpConfig config;
  config.hidden_units = 12;
  config.epochs = 60;
  auto model = Mlp::Train(data, config);
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(*Accuracy(*preds, data.labels), 0.95);
}

TEST(MlpTest, ProbabilitiesFormDistribution) {
  Dataset data;
  data.num_classes = 2;
  data.features = Matrix::FromRows({{0, 0, 1}, {1, 1, 1}});
  data.labels = {0, 1};
  auto model = Mlp::Train(data);
  ASSERT_TRUE(model.ok());
  std::vector<double> proba = model->PredictProba(data.features.RowPtr(0));
  double total = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MlpTest, DeterministicForSeed) {
  Dataset data;
  data.num_classes = 2;
  data.features = Matrix::FromRows({{0, 0, 1}, {1, 1, 1}, {0, 1, 1}});
  data.labels = {0, 1, 0};
  MlpConfig config;
  config.seed = 9;
  auto a = Mlp::Train(data, config);
  auto b = Mlp::Train(data, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  double probe[3] = {0.5, 0.5, 1.0};
  EXPECT_EQ(a->PredictProba(probe), b->PredictProba(probe));
}

TEST(MlpTest, Validations) {
  Dataset empty;
  empty.num_classes = 2;
  EXPECT_FALSE(Mlp::Train(empty).ok());
  Dataset data;
  data.num_classes = 1;
  data.features = Matrix(2, 2, 1.0);
  data.labels = {0, 0};
  EXPECT_FALSE(Mlp::Train(data).ok());
  data.num_classes = 2;
  MlpConfig config;
  config.hidden_units = 0;
  EXPECT_FALSE(Mlp::Train(data, config).ok());
  auto model = Mlp::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(Matrix(1, 9)).ok());
}

}  // namespace
}  // namespace hypermine::ml
