#include "ml/linear_regression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hypermine::ml {
namespace {

TEST(LinearRegressionTest, RecoversExactLine) {
  // y = 3*x - 2, features [x, 1].
  Matrix x = Matrix::FromRows({{0, 1}, {1, 1}, {2, 1}, {3, 1}});
  std::vector<double> y = {-2.0, 1.0, 4.0, 7.0};
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model->weights()[1], -2.0, 1e-6);
  auto mse = model->MeanSquaredError(x, y);
  ASSERT_TRUE(mse.ok());
  EXPECT_NEAR(*mse, 0.0, 1e-9);
}

TEST(LinearRegressionTest, NoisyDataApproximatesTruth) {
  Rng rng(10);
  const size_t n = 400;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextGaussian();
    double b = rng.NextGaussian();
    x.At(i, 0) = a;
    x.At(i, 1) = b;
    x.At(i, 2) = 1.0;
    y[i] = 2.0 * a - 0.5 * b + 1.0 + rng.NextGaussian() * 0.05;
  }
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model->weights()[1], -0.5, 0.05);
  EXPECT_NEAR(model->weights()[2], 1.0, 0.05);
}

TEST(LinearRegressionTest, PredictMatrix) {
  Matrix x = Matrix::FromRows({{1.0, 1.0}, {2.0, 1.0}});
  auto model = LinearRegression::Fit(x, {3.0, 5.0});
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(Matrix::FromRows({{4.0, 1.0}}));
  ASSERT_TRUE(preds.ok());
  EXPECT_NEAR((*preds)[0], 9.0, 1e-6);
}

TEST(LinearRegressionTest, Validations) {
  EXPECT_FALSE(LinearRegression::Fit(Matrix(), {}).ok());
  EXPECT_FALSE(LinearRegression::Fit(Matrix(2, 2), {1.0}).ok());
  Matrix x = Matrix::FromRows({{1.0, 1.0}, {2.0, 1.0}});
  auto model = LinearRegression::Fit(x, {1.0, 2.0});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(Matrix(1, 5)).ok());
  EXPECT_FALSE(model->MeanSquaredError(Matrix(1, 2), {}).ok());
}

TEST(LinearRegressionTest, DiscreteTargetsAreBadFit) {
  // Section 2.3.1's point: regression on discrete class values produces
  // out-of-domain predictions; verify the failure mode is observable.
  Matrix x = Matrix::FromRows(
      {{0.0, 1.0}, {0.5, 1.0}, {1.0, 1.0}, {1.5, 1.0}, {2.0, 1.0}});
  std::vector<double> y = {0.0, 2.0, 0.0, 2.0, 1.0};  // jumpy class ids
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  auto mse = model->MeanSquaredError(x, y);
  ASSERT_TRUE(mse.ok());
  EXPECT_GT(*mse, 0.3);
}

}  // namespace
}  // namespace hypermine::ml
