#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "core/discretize.h"

namespace hypermine::ml {
namespace {

core::Database SmallDb() {
  auto db = core::DatabaseFromColumns({"A", "B", "T"}, 3,
                                      {{0, 1, 2}, {2, 0, 1}, {1, 1, 0}});
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

TEST(DatasetTest, OneHotLayoutWithBias) {
  core::Database db = SmallDb();
  auto data = MakeClassificationDataset(db, {0, 1}, 2, /*add_bias=*/true);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 3u);
  EXPECT_EQ(data->num_features(), 2 * 3 + 1);
  EXPECT_EQ(data->num_classes, 3u);
  // Row 0: A=0 -> slot 0; B=2 -> slot 3+2=5; bias last.
  const double* row = data->features.RowPtr(0);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[5], 1.0);
  EXPECT_DOUBLE_EQ(row[6], 1.0);
  EXPECT_EQ(data->labels[0], 1);
  EXPECT_EQ(data->labels[2], 0);
}

TEST(DatasetTest, NoBiasOption) {
  core::Database db = SmallDb();
  auto data = MakeClassificationDataset(db, {0}, 2, /*add_bias=*/false);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_features(), 3u);
}

TEST(DatasetTest, EachRowSumsToFeatureCountPlusBias) {
  core::Database db = SmallDb();
  auto data = MakeClassificationDataset(db, {0, 1}, 2, true);
  ASSERT_TRUE(data.ok());
  for (size_t r = 0; r < data->num_rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < data->num_features(); ++c) {
      sum += data->features.At(r, c);
    }
    EXPECT_DOUBLE_EQ(sum, 3.0);  // 2 one-hot + bias
  }
}

TEST(DatasetTest, Validations) {
  core::Database db = SmallDb();
  EXPECT_FALSE(MakeClassificationDataset(db, {}, 2).ok());
  EXPECT_FALSE(MakeClassificationDataset(db, {0, 0}, 2).ok());
  EXPECT_FALSE(MakeClassificationDataset(db, {2}, 2).ok());
  EXPECT_FALSE(MakeClassificationDataset(db, {9}, 2).ok());
  EXPECT_FALSE(MakeClassificationDataset(db, {0}, 9).ok());
}

}  // namespace
}  // namespace hypermine::ml
