#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

Dataset ThreeGaussianClusters(size_t per_class, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = 3;
  data.features = Matrix(3 * per_class, 3);
  data.labels.resize(3 * per_class);
  const double cx[3] = {0.0, 4.0, 0.0};
  const double cy[3] = {0.0, 0.0, 4.0};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      data.features.At(row, 0) = cx[c] + rng.NextGaussian() * 0.5;
      data.features.At(row, 1) = cy[c] + rng.NextGaussian() * 0.5;
      data.features.At(row, 2) = 1.0;
      data.labels[row] = static_cast<int>(c);
    }
  }
  return data;
}

TEST(LogisticRegressionTest, SeparatesGaussianClusters) {
  Dataset data = ThreeGaussianClusters(80, 21);
  LogisticRegressionConfig config;
  config.epochs = 150;
  config.learning_rate = 0.5;
  auto model = LogisticRegression::Train(data, config);
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(*Accuracy(*preds, data.labels), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  Dataset data = ThreeGaussianClusters(40, 22);
  auto model = LogisticRegression::Train(data);
  ASSERT_TRUE(model.ok());
  std::vector<double> proba = model->PredictProba(data.features.RowPtr(0));
  double total = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LogisticRegressionTest, ConfidentOnClusterCenters) {
  Dataset data = ThreeGaussianClusters(80, 23);
  LogisticRegressionConfig config;
  config.epochs = 200;
  config.learning_rate = 0.5;
  auto model = LogisticRegression::Train(data, config);
  ASSERT_TRUE(model.ok());
  double center[3] = {4.0, 0.0, 1.0};  // class 1 center
  std::vector<double> proba = model->PredictProba(center);
  EXPECT_GT(proba[1], 0.8);
}

TEST(LogisticRegressionTest, Validations) {
  Dataset empty;
  empty.num_classes = 3;
  EXPECT_FALSE(LogisticRegression::Train(empty).ok());
  Dataset bad = ThreeGaussianClusters(5, 1);
  bad.num_classes = 1;
  EXPECT_FALSE(LogisticRegression::Train(bad).ok());
  Dataset data = ThreeGaussianClusters(10, 2);
  auto model = LogisticRegression::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(Matrix(1, 9)).ok());
}

}  // namespace
}  // namespace hypermine::ml
