#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace hypermine::ml {
namespace {

TEST(AccuracyTest, Fractions) {
  auto acc = Accuracy({0, 1, 2, 1}, {0, 1, 1, 1});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.75);
  EXPECT_DOUBLE_EQ(*Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(*Accuracy({0, 0}, {1, 1}), 0.0);
}

TEST(AccuracyTest, Validations) {
  EXPECT_FALSE(Accuracy({0}, {0, 1}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

TEST(ConfusionMatrixTest, CountsLabelPredictionPairs) {
  auto matrix = ConfusionMatrix({0, 1, 1, 0}, {0, 1, 0, 0}, 2);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ((*matrix)[0][0], 2u);
  EXPECT_EQ((*matrix)[0][1], 1u);  // label 0 predicted 1
  EXPECT_EQ((*matrix)[1][1], 1u);
  EXPECT_EQ((*matrix)[1][0], 0u);
}

TEST(ConfusionMatrixTest, RejectsOutOfRange) {
  EXPECT_FALSE(ConfusionMatrix({5}, {0}, 2).ok());
  EXPECT_FALSE(ConfusionMatrix({0}, {-1}, 2).ok());
}

TEST(MacroF1Test, PerfectPredictionsGiveOne) {
  auto f1 = MacroF1({0, 1, 2}, {0, 1, 2}, 3);
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 1.0);
}

TEST(MacroF1Test, KnownMixedCase) {
  // labels: 0,0,1,1; preds: 0,1,1,1.
  // class0: tp=1 fp=0 fn=1 -> f1 = 2/3; class1: tp=2 fp=1 fn=0 -> 4/5.
  auto f1 = MacroF1({0, 1, 1, 1}, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(f1.ok());
  EXPECT_NEAR(*f1, (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(MacroF1Test, AbsentClassContributesZero) {
  auto f1 = MacroF1({0, 0}, {0, 0}, 2);
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 0.5);  // class 1 has no support
}

}  // namespace
}  // namespace hypermine::ml
