#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace hypermine::ml {
namespace {

Matrix TwoBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  Matrix points(2 * per_blob, 2);
  for (size_t i = 0; i < per_blob; ++i) {
    points.At(i, 0) = rng.NextGaussian() * 0.3;
    points.At(i, 1) = rng.NextGaussian() * 0.3;
    points.At(per_blob + i, 0) = 10.0 + rng.NextGaussian() * 0.3;
    points.At(per_blob + i, 1) = 10.0 + rng.NextGaussian() * 0.3;
  }
  return points;
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Matrix points = TwoBlobs(50, 51);
  KMeansConfig config;
  config.k = 2;
  auto result = KMeans(points, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // All members of blob 0 share a cluster distinct from blob 1's.
  size_t c0 = result->assignment[0];
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(result->assignment[i], c0);
  size_t c1 = result->assignment[50];
  EXPECT_NE(c0, c1);
  for (size_t i = 50; i < 100; ++i) EXPECT_EQ(result->assignment[i], c1);
}

TEST(KMeansTest, CentroidsNearBlobCenters) {
  Matrix points = TwoBlobs(100, 52);
  KMeansConfig config;
  config.k = 2;
  auto result = KMeans(points, config);
  ASSERT_TRUE(result.ok());
  std::set<int> found;
  for (size_t c = 0; c < 2; ++c) {
    double x = result->centroids.At(c, 0);
    if (std::abs(x) < 1.0) found.insert(0);
    if (std::abs(x - 10.0) < 1.0) found.insert(1);
  }
  EXPECT_EQ(found.size(), 2u);
}

TEST(KMeansTest, InertiaIsSumOfSquares) {
  // 4 points, k=2, clear pairs: inertia = 2 * (2 * 0.5^2) = 1.
  Matrix points = Matrix::FromRows(
      {{0.0, 0.0}, {1.0, 0.0}, {10.0, 0.0}, {11.0, 0.0}});
  KMeansConfig config;
  config.k = 2;
  auto result = KMeans(points, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 1.0, 1e-9);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Matrix points = Matrix::FromRows({{0.0}, {5.0}, {9.0}});
  KMeansConfig config;
  config.k = 3;
  auto result = KMeans(points, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicForSeed) {
  Matrix points = TwoBlobs(30, 53);
  KMeansConfig config;
  config.k = 2;
  config.seed = 77;
  auto a = KMeans(points, config);
  auto b = KMeans(points, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, Validations) {
  Matrix points = Matrix::FromRows({{0.0}, {1.0}});
  KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(KMeans(points, config).ok());
  config.k = 5;
  EXPECT_FALSE(KMeans(points, config).ok());
}

TEST(KMeansTest, MoreClustersNeverIncreaseInertia) {
  Matrix points = TwoBlobs(40, 54);
  double last = 1e300;
  for (size_t k = 1; k <= 4; ++k) {
    KMeansConfig config;
    config.k = k;
    config.seed = 11;
    auto result = KMeans(points, config);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, last + 1e-6);
    last = result->inertia;
  }
}

}  // namespace
}  // namespace hypermine::ml
