#include "ml/perceptron.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

/// Linearly separable binary set: label = [x0 + x1 > 1], with bias column.
Dataset SeparableBinary(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = 2;
  data.features = Matrix(n, 3);
  data.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble() * 2.0;
    double x1 = rng.NextDouble() * 2.0;
    // Margin gap keeps the sample strictly separable.
    if (x0 + x1 > 0.9 && x0 + x1 < 1.1) {
      x0 += 0.4;
      x1 += 0.4;
    }
    data.features.At(i, 0) = x0;
    data.features.At(i, 1) = x1;
    data.features.At(i, 2) = 1.0;
    data.labels[i] = (x0 + x1 > 1.0) ? 1 : 0;
  }
  return data;
}

TEST(BinaryPerceptronTest, ConvergesOnSeparableData) {
  Dataset data = SeparableBinary(200, 1);
  std::vector<int> binary(data.labels.begin(), data.labels.end());
  auto model = BinaryPerceptron::Train(data.features, binary);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->converged());
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    bool predicted = model->PredictRow(data.features.RowPtr(i));
    correct += predicted == (binary[i] == 1) ? 1 : 0;
  }
  EXPECT_EQ(correct, data.num_rows());
}

TEST(BinaryPerceptronTest, XorDoesNotConverge) {
  // Algorithm 3's termination note: non-separable data never converges and
  // relies on the forced epoch bound.
  Matrix features = Matrix::FromRows({{0, 0, 1},
                                      {0, 1, 1},
                                      {1, 0, 1},
                                      {1, 1, 1}});
  std::vector<int> labels = {0, 1, 1, 0};
  PerceptronConfig config;
  config.max_epochs = 25;
  auto model = BinaryPerceptron::Train(features, labels, config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->converged());
}

TEST(BinaryPerceptronTest, Validations) {
  Matrix features(2, 2, 1.0);
  EXPECT_FALSE(BinaryPerceptron::Train(features, {0}).ok());
  EXPECT_FALSE(BinaryPerceptron::Train(features, {0, 5}).ok());
  EXPECT_FALSE(BinaryPerceptron::Train(Matrix(), {}).ok());
}

TEST(MulticlassPerceptronTest, ThreeSeparableClusters) {
  // Clusters at (0,0), (5,0), (0,5).
  Rng rng(2);
  const size_t per_class = 60;
  Dataset data;
  data.num_classes = 3;
  data.features = Matrix(3 * per_class, 3);
  data.labels.resize(3 * per_class);
  const double cx[3] = {0.0, 5.0, 0.0};
  const double cy[3] = {0.0, 0.0, 5.0};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      data.features.At(row, 0) = cx[c] + rng.NextGaussian() * 0.3;
      data.features.At(row, 1) = cy[c] + rng.NextGaussian() * 0.3;
      data.features.At(row, 2) = 1.0;
      data.labels[row] = static_cast<int>(c);
    }
  }
  auto model = MulticlassPerceptron::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_classes(), 3u);
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  auto acc = Accuracy(*preds, data.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(MulticlassPerceptronTest, FeatureWidthMismatchFails) {
  Dataset data = SeparableBinary(50, 3);
  auto model = MulticlassPerceptron::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(Matrix(2, 7)).ok());
}

TEST(MulticlassPerceptronTest, RejectsDegenerateClassCount) {
  Dataset data = SeparableBinary(10, 4);
  data.num_classes = 1;
  EXPECT_FALSE(MulticlassPerceptron::Train(data).ok());
}

}  // namespace
}  // namespace hypermine::ml
