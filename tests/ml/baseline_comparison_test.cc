/// Cross-model comparison on shared tasks: all baselines must beat chance
/// on a learnable discrete task, and the MLP must beat the linear models on
/// a task that is not linearly separable — the qualitative ordering that
/// Tables 5.3/5.4 rely on.
#include <gtest/gtest.h>

#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/perceptron.h"
#include "ml/svm.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

/// One-hot task where two of three feature groups follow the label with
/// 75% probability (the structure of discretized dominator evidence).
Dataset NoisyOneHotTask(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = 3;
  const size_t groups = 4;
  const size_t width = groups * 3 + 1;
  data.features = Matrix(rows, width, 0.0);
  data.labels.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    size_t label = rng.NextBounded(3);
    for (size_t g = 0; g < groups; ++g) {
      size_t v = (g < 2 && rng.NextBernoulli(0.75)) ? label
                                                    : rng.NextBounded(3);
      data.features.At(r, g * 3 + v) = 1.0;
    }
    data.features.At(r, width - 1) = 1.0;
    data.labels[r] = static_cast<int>(label);
  }
  return data;
}

double AccuracyOf(const std::vector<int>& preds,
                  const std::vector<int>& labels) {
  auto acc = Accuracy(preds, labels);
  HM_CHECK_OK(acc.status());
  return *acc;
}

TEST(BaselineComparisonTest, EveryModelBeatsChanceOnLearnableTask) {
  Dataset train = NoisyOneHotTask(1200, 1);
  Dataset test = NoisyOneHotTask(400, 2);
  const double chance = 1.0 / 3.0;

  auto svm = LinearSvm::Train(train);
  ASSERT_TRUE(svm.ok());
  EXPECT_GT(AccuracyOf(*svm->Predict(test.features), test.labels),
            chance + 0.15);

  auto mlp = Mlp::Train(train);
  ASSERT_TRUE(mlp.ok());
  EXPECT_GT(AccuracyOf(*mlp->Predict(test.features), test.labels),
            chance + 0.15);

  auto logistic = LogisticRegression::Train(train);
  ASSERT_TRUE(logistic.ok());
  EXPECT_GT(AccuracyOf(*logistic->Predict(test.features), test.labels),
            chance + 0.15);

  auto perceptron = MulticlassPerceptron::Train(train);
  ASSERT_TRUE(perceptron.ok());
  EXPECT_GT(AccuracyOf(*perceptron->Predict(test.features), test.labels),
            chance + 0.10);
}

TEST(BaselineComparisonTest, ModelsAgreeOnEasyExamples) {
  // On near-noiseless data all four models converge to the same answers.
  Rng rng(3);
  Dataset train;
  train.num_classes = 3;
  train.features = Matrix(600, 4, 0.0);
  train.labels.resize(600);
  for (size_t r = 0; r < 600; ++r) {
    size_t label = rng.NextBounded(3);
    train.features.At(r, label) = 1.0;
    train.features.At(r, 3) = 1.0;
    train.labels[r] = static_cast<int>(label);
  }
  auto svm = LinearSvm::Train(train);
  auto mlp = Mlp::Train(train);
  auto logistic = LogisticRegression::Train(train);
  ASSERT_TRUE(svm.ok());
  ASSERT_TRUE(mlp.ok());
  ASSERT_TRUE(logistic.ok());
  EXPECT_GT(AccuracyOf(*svm->Predict(train.features), train.labels), 0.99);
  EXPECT_GT(AccuracyOf(*mlp->Predict(train.features), train.labels), 0.99);
  EXPECT_GT(AccuracyOf(*logistic->Predict(train.features), train.labels),
            0.99);
}

TEST(BaselineComparisonTest, MlpBeatsLinearModelsOnXorStructure) {
  // Label = XOR of two binary feature groups — invisible to any linear
  // model, learnable by the MLP.
  Rng rng(4);
  Dataset train;
  train.num_classes = 2;
  train.features = Matrix(800, 5, 0.0);
  train.labels.resize(800);
  for (size_t r = 0; r < 800; ++r) {
    size_t a = rng.NextBounded(2);
    size_t b = rng.NextBounded(2);
    train.features.At(r, a) = 1.0;
    train.features.At(r, 2 + b) = 1.0;
    train.features.At(r, 4) = 1.0;
    train.labels[r] = static_cast<int>(a ^ b);
  }
  MlpConfig mlp_config;
  mlp_config.hidden_units = 8;
  mlp_config.epochs = 200;
  mlp_config.learning_rate = 0.1;
  auto mlp = Mlp::Train(train, mlp_config);
  auto svm = LinearSvm::Train(train);
  auto logistic = LogisticRegression::Train(train);
  ASSERT_TRUE(mlp.ok());
  ASSERT_TRUE(svm.ok());
  ASSERT_TRUE(logistic.ok());
  double mlp_acc = AccuracyOf(*mlp->Predict(train.features), train.labels);
  double svm_acc = AccuracyOf(*svm->Predict(train.features), train.labels);
  double log_acc =
      AccuracyOf(*logistic->Predict(train.features), train.labels);
  EXPECT_GT(mlp_acc, 0.95);
  // A linear model can classify at most 3 of the 4 XOR cells of the
  // one-hot encoding: its ceiling is 75% (+ sampling noise).
  EXPECT_LT(svm_acc, 0.80);
  EXPECT_LT(log_acc, 0.80);
  EXPECT_GT(mlp_acc, svm_acc + 0.15);
  EXPECT_GT(mlp_acc, log_acc + 0.15);
}

}  // namespace
}  // namespace hypermine::ml
