#include "ml/svm.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/rng.h"

namespace hypermine::ml {
namespace {

Dataset TwoClusters(size_t per_class, uint64_t seed, double gap = 3.0) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = 2;
  data.features = Matrix(2 * per_class, 3);
  data.labels.resize(2 * per_class);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      data.features.At(row, 0) =
          (c == 0 ? -gap : gap) + rng.NextGaussian() * 0.5;
      data.features.At(row, 1) = rng.NextGaussian() * 0.5;
      data.features.At(row, 2) = 1.0;
      data.labels[row] = static_cast<int>(c);
    }
  }
  return data;
}

TEST(SvmTest, SeparatesTwoClusters) {
  Dataset data = TwoClusters(100, 31);
  auto model = LinearSvm::Train(data);
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(*Accuracy(*preds, data.labels), 0.97);
}

TEST(SvmTest, MarginsHaveCorrectSigns) {
  Dataset data = TwoClusters(100, 32);
  auto model = LinearSvm::Train(data);
  ASSERT_TRUE(model.ok());
  double left[3] = {-3.0, 0.0, 1.0};
  double right[3] = {3.0, 0.0, 1.0};
  EXPECT_GT(model->Margin(0, left), model->Margin(1, left));
  EXPECT_GT(model->Margin(1, right), model->Margin(0, right));
}

TEST(SvmTest, MulticlassOneVsRest) {
  // Triangle layout: each class is linearly separable from the union of
  // the others (a 1-D line of clusters would not be, under one-vs-rest).
  Rng rng(33);
  Dataset data;
  data.num_classes = 3;
  const size_t per_class = 70;
  data.features = Matrix(3 * per_class, 3);
  data.labels.resize(3 * per_class);
  const double cx[3] = {-4.0, 4.0, 0.0};
  const double cy[3] = {-2.0, -2.0, 4.0};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      data.features.At(row, 0) = cx[c] + rng.NextGaussian() * 0.4;
      data.features.At(row, 1) = cy[c] + rng.NextGaussian() * 0.4;
      data.features.At(row, 2) = 1.0;
      data.labels[row] = static_cast<int>(c);
    }
  }
  auto model = LinearSvm::Train(data);
  ASSERT_TRUE(model.ok());
  auto preds = model->Predict(data.features);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(*Accuracy(*preds, data.labels), 0.95);
}

TEST(SvmTest, DeterministicForSeed) {
  Dataset data = TwoClusters(50, 34);
  SvmConfig config;
  config.seed = 5;
  auto a = LinearSvm::Train(data, config);
  auto b = LinearSvm::Train(data, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  double probe[3] = {0.3, -0.2, 1.0};
  EXPECT_DOUBLE_EQ(a->Margin(0, probe), b->Margin(0, probe));
}

TEST(SvmTest, Validations) {
  Dataset empty;
  empty.num_classes = 2;
  EXPECT_FALSE(LinearSvm::Train(empty).ok());
  Dataset data = TwoClusters(10, 35);
  SvmConfig bad;
  bad.lambda = 0.0;
  EXPECT_FALSE(LinearSvm::Train(data, bad).ok());
  data.num_classes = 1;
  EXPECT_FALSE(LinearSvm::Train(data).ok());
  data.num_classes = 2;
  auto model = LinearSvm::Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(Matrix(1, 9)).ok());
}

}  // namespace
}  // namespace hypermine::ml
