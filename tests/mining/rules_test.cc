#include "mining/rules.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "core/discretize.h"
#include "mining/apriori.h"

namespace hypermine::mining {
namespace {

TransactionSet Basket() {
  // milk=0, diapers=1, beer=2, eggs=3.
  auto txns = MakeTransactionSet(4, {{0, 1, 2, 3},
                                     {0, 1, 2},
                                     {0, 1},
                                     {0, 2},
                                     {1, 2}});
  HM_CHECK_OK(txns.status());
  return std::move(txns).value();
}

std::vector<FrequentItemset> Frequents(const TransactionSet& txns,
                                       double min_support) {
  AprioriConfig config;
  config.min_support = min_support;
  auto frequent = Apriori(txns, config);
  HM_CHECK_OK(frequent.status());
  return std::move(frequent).value();
}

const MinedRule* Find(const std::vector<MinedRule>& rules,
                      const std::vector<ItemId>& antecedent,
                      const std::vector<ItemId>& consequent) {
  for (const MinedRule& rule : rules) {
    if (rule.antecedent == antecedent && rule.consequent == consequent) {
      return &rule;
    }
  }
  return nullptr;
}

TEST(RulesTest, ConfidenceAndSupportValues) {
  TransactionSet txns = Basket();
  auto rules = GenerateRules(Frequents(txns, 0.3), txns.size(), {});
  ASSERT_TRUE(rules.ok());
  // {milk, diapers} -> {beer}: supp({0,1,2}) = 2/5, conf = 2/3.
  const MinedRule* rule = Find(*rules, {0, 1}, {2});
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->support, 0.4, 1e-12);
  EXPECT_NEAR(rule->confidence, 2.0 / 3.0, 1e-12);
}

TEST(RulesTest, MinConfidenceFilters) {
  TransactionSet txns = Basket();
  RuleConfig config;
  config.min_confidence = 0.9;
  auto rules = GenerateRules(Frequents(txns, 0.3), txns.size(), config);
  ASSERT_TRUE(rules.ok());
  for (const MinedRule& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.9 - 1e-12);
  }
}

TEST(RulesTest, MaxConsequentSizeOneGivesClassificationRules) {
  TransactionSet txns = Basket();
  RuleConfig config;
  config.min_confidence = 0.0;
  config.max_consequent_size = 1;
  auto rules = GenerateRules(Frequents(txns, 0.3), txns.size(), config);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const MinedRule& rule : *rules) {
    EXPECT_EQ(rule.consequent.size(), 1u);
  }
}

TEST(RulesTest, RulesSortedByConfidence) {
  TransactionSet txns = Basket();
  RuleConfig config;
  config.min_confidence = 0.0;
  auto rules = GenerateRules(Frequents(txns, 0.3), txns.size(), config);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence + 1e-12, (*rules)[i].confidence);
  }
}

TEST(RulesTest, Validations) {
  TransactionSet txns = Basket();
  auto frequent = Frequents(txns, 0.3);
  EXPECT_FALSE(GenerateRules(frequent, 0, {}).ok());
  RuleConfig config;
  config.min_confidence = 1.5;
  EXPECT_FALSE(GenerateRules(frequent, txns.size(), config).ok());
  // Non-subset-closed frequent list is rejected.
  std::vector<FrequentItemset> broken = {{{0, 1}, 3}};
  EXPECT_FALSE(GenerateRules(broken, txns.size(), {}).ok());
}

TEST(RulesTest, RuleToStringUsesLabels) {
  auto db = core::DatabaseFromColumns({"milk", "beer"}, 2,
                                      {{1, 1}, {1, 0}});
  ASSERT_TRUE(db.ok());
  MinedRule rule;
  rule.antecedent = {1};  // milk=2 (value 1 shown 1-based)
  rule.consequent = {3};  // beer=2
  rule.support = 0.5;
  rule.confidence = 0.75;
  std::string text = RuleToString(*db, rule);
  EXPECT_NE(text.find("milk=2"), std::string::npos);
  EXPECT_NE(text.find("beer=2"), std::string::npos);
  EXPECT_NE(text.find("conf=0.750"), std::string::npos);
}

}  // namespace
}  // namespace hypermine::mining
