#include "mining/apriori.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "util/rng.h"

namespace hypermine::mining {
namespace {

/// Classic textbook transactions over items {0..4}.
TransactionSet Classic() {
  auto txns = MakeTransactionSet(5, {{0, 1, 2},
                                     {0, 1},
                                     {0, 2},
                                     {1, 2},
                                     {0, 1, 2, 3},
                                     {4}});
  HM_CHECK_OK(txns.status());
  return std::move(txns).value();
}

size_t SupportOf(const std::vector<FrequentItemset>& frequent,
                 const std::vector<ItemId>& items) {
  for (const FrequentItemset& fi : frequent) {
    if (fi.items == items) return fi.support_count;
  }
  return 0;
}

TEST(AprioriTest, CountsMatchManualEnumeration) {
  AprioriConfig config;
  config.min_support = 2.0 / 6.0;
  auto frequent = Apriori(Classic(), config);
  ASSERT_TRUE(frequent.ok());
  EXPECT_EQ(SupportOf(*frequent, {0}), 4u);
  EXPECT_EQ(SupportOf(*frequent, {1}), 4u);
  EXPECT_EQ(SupportOf(*frequent, {2}), 4u);
  EXPECT_EQ(SupportOf(*frequent, {0, 1}), 3u);
  EXPECT_EQ(SupportOf(*frequent, {0, 2}), 3u);
  EXPECT_EQ(SupportOf(*frequent, {1, 2}), 3u);
  EXPECT_EQ(SupportOf(*frequent, {0, 1, 2}), 2u);
  // Items 3 and 4 fall below min support (1 occurrence each).
  EXPECT_EQ(SupportOf(*frequent, {3}), 0u);
  EXPECT_EQ(SupportOf(*frequent, {4}), 0u);
}

TEST(AprioriTest, MaxSizeCapsLevel) {
  AprioriConfig config;
  config.min_support = 2.0 / 6.0;
  config.max_size = 2;
  auto frequent = Apriori(Classic(), config);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentItemset& fi : *frequent) {
    EXPECT_LE(fi.items.size(), 2u);
  }
  EXPECT_GT(SupportOf(*frequent, {0, 1}), 0u);
}

TEST(AprioriTest, HighSupportYieldsNothing) {
  AprioriConfig config;
  config.min_support = 0.99;
  auto frequent = Apriori(Classic(), config);
  ASSERT_TRUE(frequent.ok());
  EXPECT_TRUE(frequent->empty());
}

TEST(AprioriTest, DownwardClosureHolds) {
  // Every subset of a frequent itemset is frequent with >= support.
  AprioriConfig config;
  config.min_support = 0.2;
  auto frequent = Apriori(Classic(), config);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentItemset& fi : *frequent) {
    if (fi.items.size() < 2) continue;
    for (size_t skip = 0; skip < fi.items.size(); ++skip) {
      std::vector<ItemId> subset;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != skip) subset.push_back(fi.items[i]);
      }
      size_t sub_support = SupportOf(*frequent, subset);
      EXPECT_GE(sub_support, fi.support_count);
    }
  }
}

TEST(AprioriTest, Validations) {
  TransactionSet txns = Classic();
  AprioriConfig config;
  config.min_support = 0.0;
  EXPECT_FALSE(Apriori(txns, config).ok());
  config.min_support = 1.5;
  EXPECT_FALSE(Apriori(txns, config).ok());
  TransactionSet empty;
  empty.num_items = 3;
  config.min_support = 0.5;
  EXPECT_FALSE(Apriori(empty, config).ok());
}

TEST(CountSupportTest, SubsetContainment) {
  TransactionSet txns = Classic();
  EXPECT_EQ(CountSupport(txns, {0, 1}), 3u);
  EXPECT_EQ(CountSupport(txns, {}), 6u);
  EXPECT_EQ(CountSupport(txns, {3, 4}), 0u);
}

TEST(AprioriTest, SupportsMatchCountSupport) {
  Rng rng(8);
  std::vector<std::vector<ItemId>> raw(60);
  for (auto& txn : raw) {
    for (ItemId item = 0; item < 8; ++item) {
      if (rng.NextBernoulli(0.4)) txn.push_back(item);
    }
  }
  auto txns = MakeTransactionSet(8, raw);
  ASSERT_TRUE(txns.ok());
  AprioriConfig config;
  config.min_support = 0.15;
  auto frequent = Apriori(*txns, config);
  ASSERT_TRUE(frequent.ok());
  ASSERT_FALSE(frequent->empty());
  for (const FrequentItemset& fi : *frequent) {
    EXPECT_EQ(fi.support_count, CountSupport(*txns, fi.items));
  }
}

}  // namespace
}  // namespace hypermine::mining
