#include "mining/quantitative.h"

#include <gtest/gtest.h>

#include "core/assoc_rule.h"
#include "testing/fixtures.h"

namespace hypermine::mining {
namespace {

using hypermine::testing::GeneDatabase;
using hypermine::testing::RandomDatabase;

TEST(QuantitativeTest, RecoversGeneExampleRule) {
  // The thesis' Example 3.4 rule {(G2, down), (G3, down)} => {(G4, up)}
  // has supp 0.75 (of X ∪ Y) and conf 6/7; mine it back via Apriori.
  core::Database db = GeneDatabase();
  QuantitativeConfig config;
  config.min_support = 0.5;
  config.min_confidence = 0.8;
  config.max_rule_size = 3;
  auto rules = MineQuantitativeRules(db, config);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const QuantitativeRule& q : *rules) {
    if (q.rule.antecedent.size() == 2 && q.rule.consequent.size() == 1 &&
        q.rule.consequent[0].attribute == 3 &&
        q.rule.consequent[0].value == 2) {
      bool has_g2 = false;
      bool has_g3 = false;
      for (const core::AttributeValue& av : q.rule.antecedent) {
        has_g2 |= av.attribute == 1 && av.value == 0;
        has_g3 |= av.attribute == 2 && av.value == 0;
      }
      if (has_g2 && has_g3) {
        found = true;
        EXPECT_NEAR(q.confidence, 6.0 / 7.0, 1e-12);
        EXPECT_NEAR(q.support, 0.75, 1e-12);
      }
    }
  }
  EXPECT_TRUE(found);
}

/// Cross-check: mined measures equal the definitional Supp/Conf of the
/// decoded mva rules — two independent implementations must agree.
class QuantitativeCrossCheckTest
    : public ::testing::TestWithParam<bool> {};

TEST_P(QuantitativeCrossCheckTest, MinedMeasuresMatchDefinitions) {
  core::Database db = RandomDatabase(5, 120, 3, 42, 0.7);
  QuantitativeConfig config;
  config.min_support = 0.1;
  config.min_confidence = 0.4;
  config.max_rule_size = 3;
  config.use_fpgrowth = GetParam();
  auto rules = MineQuantitativeRules(db, config);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const QuantitativeRule& q : *rules) {
    std::vector<core::AttributeValue> both = q.rule.antecedent;
    both.insert(both.end(), q.rule.consequent.begin(),
                q.rule.consequent.end());
    EXPECT_NEAR(q.support, *core::Support(db, both), 1e-12);
    EXPECT_NEAR(q.confidence, *core::Confidence(db, q.rule), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(BothMiners, QuantitativeCrossCheckTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "FpGrowth" : "Apriori";
                         });

TEST(QuantitativeTest, ConsequentSizeCap) {
  core::Database db = RandomDatabase(4, 80, 3, 10, 0.7);
  QuantitativeConfig config;
  config.min_support = 0.05;
  config.min_confidence = 0.2;
  config.max_rule_size = 3;
  config.max_consequent_size = 1;
  auto rules = MineQuantitativeRules(db, config);
  ASSERT_TRUE(rules.ok());
  for (const QuantitativeRule& q : *rules) {
    EXPECT_EQ(q.rule.consequent.size(), 1u);
  }
}

TEST(QuantitativeTest, RulesAreValidMvaRules) {
  core::Database db = RandomDatabase(4, 80, 3, 11, 0.7);
  QuantitativeConfig config;
  config.min_support = 0.05;
  config.min_confidence = 0.3;
  auto rules = MineQuantitativeRules(db, config);
  ASSERT_TRUE(rules.ok());
  for (const QuantitativeRule& q : *rules) {
    EXPECT_TRUE(core::ValidateRule(db, q.rule).ok());
  }
}

}  // namespace
}  // namespace hypermine::mining
