#include "mining/fpgrowth.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "mining/apriori.h"
#include "util/rng.h"

namespace hypermine::mining {
namespace {

TransactionSet RandomTxns(size_t num_items, size_t count, uint64_t seed,
                          double density) {
  Rng rng(seed);
  std::vector<std::vector<ItemId>> raw(count);
  for (auto& txn : raw) {
    for (ItemId item = 0; item < num_items; ++item) {
      if (rng.NextBernoulli(density)) txn.push_back(item);
    }
  }
  auto txns = MakeTransactionSet(num_items, raw);
  HM_CHECK_OK(txns.status());
  return std::move(txns).value();
}

TEST(FpGrowthTest, SimpleKnownCase) {
  auto txns = MakeTransactionSet(3, {{0, 1}, {0, 1}, {0, 2}, {0}});
  ASSERT_TRUE(txns.ok());
  FpGrowthConfig config;
  config.min_support = 0.5;
  auto frequent = FpGrowth(*txns, config);
  ASSERT_TRUE(frequent.ok());
  // {0}:4, {1}:2, {0,1}:2.
  ASSERT_EQ(frequent->size(), 3u);
  EXPECT_EQ((*frequent)[0].items, (std::vector<ItemId>{0}));
  EXPECT_EQ((*frequent)[0].support_count, 4u);
  EXPECT_EQ((*frequent)[2].items, (std::vector<ItemId>{0, 1}));
  EXPECT_EQ((*frequent)[2].support_count, 2u);
}

/// The load-bearing property: FP-Growth and Apriori agree exactly.
class FpGrowthEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FpGrowthEquivalenceTest, MatchesAprioriItemForItem) {
  auto [seed, min_support] = GetParam();
  TransactionSet txns = RandomTxns(10, 80, seed, 0.35);
  AprioriConfig ap;
  ap.min_support = min_support;
  FpGrowthConfig fp;
  fp.min_support = min_support;
  auto a = Apriori(txns, ap);
  auto f = FpGrowth(txns, fp);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(a->size(), f->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].items, (*f)[i].items);
    EXPECT_EQ((*a)[i].support_count, (*f)[i].support_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FpGrowthEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.15, 0.25, 0.4)));

TEST(FpGrowthTest, MaxSizeCap) {
  TransactionSet txns = RandomTxns(8, 60, 9, 0.5);
  FpGrowthConfig config;
  config.min_support = 0.2;
  config.max_size = 2;
  auto frequent = FpGrowth(txns, config);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentItemset& fi : *frequent) {
    EXPECT_LE(fi.items.size(), 2u);
  }
}

TEST(FpGrowthTest, Validations) {
  TransactionSet txns = RandomTxns(4, 10, 3, 0.5);
  FpGrowthConfig config;
  config.min_support = 0.0;
  EXPECT_FALSE(FpGrowth(txns, config).ok());
  TransactionSet empty;
  empty.num_items = 2;
  config.min_support = 0.5;
  EXPECT_FALSE(FpGrowth(empty, config).ok());
}

}  // namespace
}  // namespace hypermine::mining
