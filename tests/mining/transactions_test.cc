#include "mining/transactions.h"

#include <gtest/gtest.h>

#include "core/discretize.h"

namespace hypermine::mining {
namespace {

TEST(TransactionSetTest, NormalizesInput) {
  auto txns = MakeTransactionSet(5, {{3, 1, 3, 0}, {}, {4}});
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->transactions[0], (std::vector<ItemId>{0, 1, 3}));
  EXPECT_TRUE(txns->transactions[1].empty());
  EXPECT_EQ(txns->size(), 3u);
}

TEST(TransactionSetTest, Validations) {
  EXPECT_FALSE(MakeTransactionSet(0, {}).ok());
  EXPECT_FALSE(MakeTransactionSet(3, {{5}}).ok());
}

TEST(DatabaseToTransactionsTest, EncodesAttributeValuePairs) {
  auto db = core::DatabaseFromColumns({"A", "B"}, 3, {{0, 2}, {1, 0}});
  ASSERT_TRUE(db.ok());
  auto txns = DatabaseToTransactions(*db);
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->num_items, 6u);
  // Observation 0: A=0 -> item 0; B=1 -> item 3+1=4.
  EXPECT_EQ(txns->transactions[0], (std::vector<ItemId>{0, 4}));
  // Observation 1: A=2 -> item 2; B=0 -> item 3.
  EXPECT_EQ(txns->transactions[1], (std::vector<ItemId>{2, 3}));
}

TEST(DatabaseToTransactionsTest, EveryTransactionHasOneItemPerAttribute) {
  auto db = core::DatabaseFromColumns({"A", "B", "C"}, 2,
                                      {{0, 1}, {1, 0}, {1, 1}});
  ASSERT_TRUE(db.ok());
  auto txns = DatabaseToTransactions(*db);
  ASSERT_TRUE(txns.ok());
  for (const auto& txn : txns->transactions) {
    EXPECT_EQ(txn.size(), 3u);
  }
}

TEST(DecodeItemTest, RoundTrip) {
  auto db = core::DatabaseFromColumns({"A", "B"}, 3, {{0}, {1}});
  ASSERT_TRUE(db.ok());
  core::AttributeValue av = DecodeItem(*db, 4);  // attr 1, value 1
  EXPECT_EQ(av.attribute, 1u);
  EXPECT_EQ(av.value, 1);
  EXPECT_EQ(ItemLabel(*db, 4), "B=2");  // 1-based display
}

}  // namespace
}  // namespace hypermine::mining
