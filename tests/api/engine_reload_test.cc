// ReloadEngineFromFile is the serving path's only route to a new model,
// so its three outcomes are pinned here: a good snapshot goes live, a bad
// file never reaches the engine slot, and a model that goes live but
// fails its post-swap probe is rolled back — the previous model serving
// throughout, with the report saying exactly which case happened.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "api/engine.h"
#include "api/model.h"
#include "util/fault.h"
#include "util/logging.h"

namespace hypermine::api {
namespace {

/// A model whose single rule A -> `head` marks it: any answer reveals
/// which model produced it.
std::shared_ptr<const Model> MarkedModel(core::VertexId head) {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, head, 0.9).status());
  return Model::FromGraph(std::move(graph).value(), {});
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/engine_reload_" + name;
}

std::string MarkerOf(Engine* engine) {
  QueryRequest request;
  request.names = {"A"};
  request.k = 1;
  auto response = engine->Query(request);
  HM_CHECK_OK(response.status());
  HM_CHECK(!response->ranked.empty());
  std::shared_ptr<const Model> model = engine->model();
  return model->graph().vertex_name(response->ranked[0].head);
}

TEST(EngineReloadTest, GoodSnapshotGoesLive) {
  Engine engine(MarkedModel(1));
  const uint64_t old_version = engine.model()->version();
  const std::string path = TempPath("good.snap");
  ASSERT_TRUE(MarkedModel(2)->SaveSnapshot(path).ok());

  ReloadReport report = ReloadEngineFromFile(&engine, path);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(report.old_version, old_version);
  EXPECT_EQ(report.new_version, engine.model()->version());
  EXPECT_NE(report.new_version, old_version);
  EXPECT_EQ(MarkerOf(&engine), "C") << "head 2 = C must be serving";
  std::remove(path.c_str());
}

TEST(EngineReloadTest, MissingFileLeavesTheOldModelServing) {
  Engine engine(MarkedModel(1));
  const uint64_t old_version = engine.model()->version();

  ReloadReport report =
      ReloadEngineFromFile(&engine, TempPath("does_not_exist.snap"));
  EXPECT_FALSE(report.status.ok());
  EXPECT_FALSE(report.rolled_back) << "a failed load never went live";
  EXPECT_EQ(engine.model()->version(), old_version);
  EXPECT_EQ(MarkerOf(&engine), "B") << "head 1 = B still serving";
}

TEST(EngineReloadTest, CorruptSnapshotNeverReachesTheEngine) {
  Engine engine(MarkedModel(1));
  const uint64_t old_version = engine.model()->version();

  // A real snapshot with one byte flipped mid-body: the checksum check
  // rejects it at load, before any swap.
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(MarkedModel(2)->SaveSnapshot(path).ok());
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const auto size = file.tellg();
    file.seekp(static_cast<std::streamoff>(size) / 2);
    file.put(static_cast<char>(0x7F));
  }

  ReloadReport report = ReloadEngineFromFile(&engine, path);
  EXPECT_EQ(report.status.code(), StatusCode::kCorrupted)
      << report.status;
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(engine.model()->version(), old_version);
  EXPECT_EQ(MarkerOf(&engine), "B");
  std::remove(path.c_str());
}

TEST(EngineReloadTest, FailedPostSwapProbeRollsBack) {
  fault::Injector& injector = fault::Injector::Global();
  injector.Reset();
  injector.Enable(/*seed=*/1);
  fault::SiteConfig once;
  once.max_fires = 1;
  injector.Arm("reload.verify", once);

  Engine engine(MarkedModel(1));
  const uint64_t old_version = engine.model()->version();
  const std::string path = TempPath("rollback.snap");
  ASSERT_TRUE(MarkedModel(2)->SaveSnapshot(path).ok());

  ReloadReport report = ReloadEngineFromFile(&engine, path);
  injector.Reset();
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition)
      << report.status;
  EXPECT_TRUE(report.rolled_back);
  EXPECT_EQ(report.old_version, old_version);
  EXPECT_NE(report.new_version, old_version) << "the new model DID go live";
  EXPECT_EQ(engine.model()->version(), old_version)
      << "rollback must restore the previous model";
  EXPECT_EQ(MarkerOf(&engine), "B");

  // The same file reloads fine once the fault is gone: rollback does not
  // poison the engine or the path.
  ReloadReport retry = ReloadEngineFromFile(&engine, path);
  EXPECT_TRUE(retry.status.ok()) << retry.status;
  EXPECT_EQ(MarkerOf(&engine), "C");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hypermine::api
