#include "api/model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/builder.h"
#include "core/export.h"
#include "serve/snapshot.h"
#include "testing/fixtures.h"
#include "util/build_info.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace hypermine::api {
namespace {

using hypermine::testing::PatientDatabase;
using hypermine::testing::RandomDatabase;

ModelSpec PatientSpec() {
  ModelSpec spec;
  spec.config = core::ConfigC1();
  spec.config.k = 17;
  spec.discretization = "floor(value / 10) per Table 3.2";
  spec.provenance.source = "chapter-3 patient database";
  spec.provenance.note = "unit test";
  return spec;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameGraph(const core::DirectedHypergraph& a,
                     const core::DirectedHypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.vertex_names(), b.vertex_names());
  for (core::EdgeId id = 0; id < a.num_edges(); ++id) {
    const core::Hyperedge& e = a.edge(id);
    auto found = b.FindEdge(e.TailSpan(), e.head);
    ASSERT_TRUE(found.has_value()) << a.EdgeToString(id);
    EXPECT_EQ(b.edge(*found).weight, e.weight) << a.EdgeToString(id);
  }
}

TEST(ModelTest, BuildMatchesCoreBuilder) {
  core::Database db = PatientDatabase();
  ModelSpec spec = PatientSpec();

  core::BuildStats direct_stats;
  auto direct =
      core::BuildAssociationHypergraph(db, spec.config, &direct_stats);
  ASSERT_TRUE(direct.ok());

  auto model = Model::Build(db, spec);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectSameGraph(*direct, (*model)->graph());
  EXPECT_EQ((*model)->stats().edges_kept, direct_stats.edges_kept);
  EXPECT_EQ((*model)->stats().pairs_kept, direct_stats.pairs_kept);
  EXPECT_EQ((*model)->stats().mean_edge_acv, direct_stats.mean_edge_acv);
}

TEST(ModelTest, BuildValidatesSpec) {
  core::Database db = PatientDatabase();
  ModelSpec spec = PatientSpec();
  spec.config.k = 3;  // mismatch: db has k = 17
  EXPECT_FALSE(Model::Build(db, spec).ok());
}

TEST(ModelTest, BuildStampsProvenance) {
  core::Database db = PatientDatabase();
  auto model = Model::Build(db, PatientSpec());
  ASSERT_TRUE(model.ok());
  // Empty git_sha / created_unix are filled in by Build...
  EXPECT_EQ((*model)->spec().provenance.git_sha, GitSha());
  EXPECT_GT((*model)->spec().provenance.created_unix, 0u);
  // ...while explicit values survive untouched.
  ModelSpec pinned = PatientSpec();
  pinned.provenance.git_sha = "deadbeef";
  pinned.provenance.created_unix = 1234;
  auto pinned_model = Model::Build(db, pinned);
  ASSERT_TRUE(pinned_model.ok());
  EXPECT_EQ((*pinned_model)->spec().provenance.git_sha, "deadbeef");
  EXPECT_EQ((*pinned_model)->spec().provenance.created_unix, 1234u);
}

TEST(ModelTest, VersionsAreUniqueAndIncreasing) {
  core::Database db = PatientDatabase();
  auto a = Model::Build(db, PatientSpec());
  auto b = Model::Build(db, PatientSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT((*a)->version(), 0u);
  EXPECT_GT((*b)->version(), (*a)->version());
}

TEST(ModelTest, SnapshotRoundTripPreservesGraphAndSpec) {
  core::Database db = PatientDatabase();
  ModelSpec spec = PatientSpec();
  spec.provenance.git_sha = "cafe1234";
  spec.provenance.created_unix = 99;
  auto built = Model::Build(db, spec);
  ASSERT_TRUE(built.ok());

  const std::string path = TempPath("model_roundtrip.snap");
  ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
  auto loaded = Model::FromSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ExpectSameGraph((*built)->graph(), (*loaded)->graph());
  EXPECT_EQ((*loaded)->spec().provenance, (*built)->spec().provenance);
  EXPECT_EQ((*loaded)->spec().discretization,
            (*built)->spec().discretization);
  EXPECT_EQ((*loaded)->spec().config.k, (*built)->spec().config.k);
  EXPECT_EQ((*loaded)->spec().config.gamma_edge,
            (*built)->spec().config.gamma_edge);
  EXPECT_EQ((*loaded)->spec().config.gamma_hyper,
            (*built)->spec().config.gamma_hyper);
  EXPECT_EQ((*loaded)->spec().config.restrict_pairs_to_edges,
            (*built)->spec().config.restrict_pairs_to_edges);
  // A reloaded model is a new model: new version, same content.
  EXPECT_NE((*loaded)->version(), (*built)->version());
  std::remove(path.c_str());
}

TEST(ModelTest, ExportCsvRoundTripsThroughFromFile) {
  core::Database db = PatientDatabase();
  auto built = Model::Build(db, PatientSpec());
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("model_export.csv");
  ASSERT_TRUE((*built)->ExportCsv(path).ok());

  auto loaded = Model::FromFile(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSameGraph((*built)->graph(), (*loaded)->graph());
  // CSV carries no spec: provenance comes back empty.
  EXPECT_TRUE((*loaded)->spec().provenance.empty());
  std::remove(path.c_str());
}

TEST(ModelTest, SharedPoolBuildIsBitIdentical) {
  core::Database db = RandomDatabase(16, 300, 3, 42, /*copy_prob=*/0.7);
  ModelSpec spec;
  spec.config = core::ConfigC1();

  spec.config.num_threads = 1;
  auto serial = Model::Build(db, spec);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  spec.config.num_threads = 0;
  auto pooled = Model::Build(db, spec, &pool);
  ASSERT_TRUE(pooled.ok());
  ExpectSameGraph((*serial)->graph(), (*pooled)->graph());
  EXPECT_EQ((*serial)->stats().edges_kept, (*pooled)->stats().edges_kept);
  EXPECT_EQ((*serial)->stats().mean_pair_acv,
            (*pooled)->stats().mean_pair_acv);

  // The pool survives for back-to-back builds (the year-sweep pattern).
  auto again = Model::Build(db, spec, &pool);
  ASSERT_TRUE(again.ok());
  ExpectSameGraph((*serial)->graph(), (*again)->graph());
}

TEST(ModelTest, FindVertexResolvesNames) {
  core::Database db = PatientDatabase();
  auto model = Model::Build(db, PatientSpec());
  ASSERT_TRUE(model.ok());
  auto a = (*model)->FindVertex("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*model)->graph().vertex_name(*a), "A");
  EXPECT_FALSE((*model)->FindVertex("nope").has_value());
}

TEST(ModelTest, LazyIndexMatchesDirectBuild) {
  core::Database db = PatientDatabase();
  auto model = Model::Build(db, PatientSpec());
  ASSERT_TRUE(model.ok());
  serve::RuleIndex direct = serve::RuleIndex::Build((*model)->graph());
  const serve::RuleIndex& lazy = (*model)->index();
  EXPECT_EQ(lazy.num_tail_sets(), direct.num_tail_sets());
  EXPECT_EQ(lazy.num_entries(), direct.num_entries());
  // Same object on every access (built once).
  EXPECT_EQ(&lazy, &(*model)->index());
}

TEST(ModelTest, FromGraphWrapsWithoutMining) {
  auto graph = core::DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());
  ModelSpec spec;
  spec.provenance.note = "wrapped";
  auto model = Model::FromGraph(std::move(graph).value(), spec);
  EXPECT_EQ(model->num_edges(), 1u);
  EXPECT_EQ(model->spec().provenance.note, "wrapped");
  EXPECT_TRUE(model->has_graph());
}

TEST(ModelTest, IndexOnlyModelRefusesGraphOperations) {
  auto graph = core::DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());
  auto model = Model::FromIndex(serve::RuleIndex::Build(*graph));
  EXPECT_FALSE(model->has_graph());
  EXPECT_EQ(model->SaveSnapshot(TempPath("never.snap")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(model->ExportCsv(TempPath("never.csv")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(model->FindVertex("v0").has_value());
  // Queryable regardless.
  EXPECT_EQ(model->index().TopK(std::vector<core::VertexId>{0}, 5).size(),
            1u);
}

TEST(ModelTest, FromSnapshotMissingFileFails) {
  EXPECT_FALSE(Model::FromSnapshot("/nonexistent/model.snap").ok());
}

}  // namespace
}  // namespace hypermine::api
