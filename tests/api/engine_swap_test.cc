// Hot-swap safety under concurrency: QueryBatch callers race Engine::Swap
// and every response must be internally consistent — the (model_version,
// answer) pair always matches one single model, batches are never torn
// across a swap, post-swap queries see only the new model, and the cache
// never serves one model's entries as another's. Assertions are collected
// in atomics and checked after joining, so the test is TSan-friendly
// (no cross-thread gtest state) and any data race in the engine is
// TSan-visible through the normal query path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "util/logging.h"

namespace hypermine::api {
namespace {

/// A model whose single rule {0} -> `head` marks it unambiguously: any
/// answer reveals which model produced it.
std::shared_ptr<const Model> MarkedModel(core::VertexId head) {
  auto graph = core::DirectedHypergraph::CreateAnonymous(4);
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, head, 0.9).status());
  ModelSpec spec;
  spec.provenance.note = "marker head " + std::to_string(head);
  return Model::FromGraph(std::move(graph).value(), spec);
}

TEST(EngineSwapTest, ConcurrentBatchesRacingSwapStayConsistent) {
  std::shared_ptr<const Model> a = MarkedModel(1);
  std::shared_ptr<const Model> b = MarkedModel(2);
  const uint64_t va = a->version();
  const uint64_t vb = b->version();

  EngineOptions options;
  options.num_threads = 4;
  options.cache_capacity = 128;
  Engine engine(a, options);

  constexpr size_t kCallers = 4;
  constexpr size_t kBatchSize = 16;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> errors{0};          // non-OK responses (must be 0)
  std::atomic<uint64_t> inconsistent{0};    // version/answer mismatch
  std::atomic<uint64_t> torn_batches{0};    // mixed versions in one batch

  std::vector<std::thread> callers;
  for (size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      QueryRequest q;
      q.items = {0};
      q.k = 3;
      std::vector<QueryRequest> batch(kBatchSize, q);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<StatusOr<QueryResponse>> responses =
            engine.QueryBatch(batch);
        uint64_t batch_version = 0;
        for (const auto& response : responses) {
          if (!response.ok()) {
            errors.fetch_add(1);
            continue;
          }
          answered.fetch_add(1);
          const uint64_t version = response->model_version;
          const bool single_answer = response->ranked.size() == 1;
          const core::VertexId head =
              single_answer ? response->ranked[0].head : core::kNoVertex;
          // The answer must identify the same model as the version does.
          const bool consistent =
              (version == va && single_answer && head == 1) ||
              (version == vb && single_answer && head == 2);
          if (!consistent) inconsistent.fetch_add(1);
          if (batch_version == 0) {
            batch_version = version;
          } else if (batch_version != version) {
            torn_batches.fetch_add(1);
          }
        }
      }
    });
  }

  // Hammer swaps while the callers run.
  for (int i = 0; i < 400; ++i) {
    engine.Swap(i % 2 == 0 ? b : a);
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& caller : callers) caller.join();

  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(inconsistent.load(), 0u) << "stale cache or torn model read";
  EXPECT_EQ(torn_batches.load(), 0u)
      << "one batch answered by two different models";
}

TEST(EngineSwapTest, PostSwapQueriesSeeOnlyTheNewModel) {
  std::shared_ptr<const Model> a = MarkedModel(1);
  std::shared_ptr<const Model> b = MarkedModel(2);
  EngineOptions options;
  options.cache_capacity = 64;
  Engine engine(a, options);

  QueryRequest q;
  q.items = {0};
  q.k = 3;
  // Warm a's cache entry, then swap. Every subsequent query — including
  // the one that would have hit a's cached entry — must answer from b.
  ASSERT_TRUE(engine.Query(q).ok());
  ASSERT_TRUE(engine.Query(q)->from_cache);
  engine.Swap(b);
  for (int i = 0; i < 3; ++i) {
    auto response = engine.Query(q);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->model_version, b->version());
    ASSERT_EQ(response->ranked.size(), 1u);
    EXPECT_EQ(response->ranked[0].head, 2u);
    EXPECT_EQ(response->from_cache, i > 0);
  }
  // Swapping back: a is immutable, so its answers are valid again, and
  // its purged cache entries must have been purged (miss, then hit).
  engine.Swap(a);
  auto back = engine.Query(q);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->from_cache);
  EXPECT_EQ(back->model_version, a->version());
  ASSERT_EQ(back->ranked.size(), 1u);
  EXPECT_EQ(back->ranked[0].head, 1u);
}

TEST(EngineSwapTest, InFlightBatchesFinishOnTheirModel) {
  // A batch acquired model a; swapping mid-batch must not redirect its
  // remaining queries. With a single worker thread the batch is processed
  // sequentially, so swapping from the main thread while the batch runs
  // is a real interleaving, and the all-same-version invariant is exact.
  std::shared_ptr<const Model> a = MarkedModel(1);
  std::shared_ptr<const Model> b = MarkedModel(2);
  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  Engine engine(a, options);

  QueryRequest q;
  q.items = {0};
  q.k = 3;
  std::vector<QueryRequest> batch(64, q);
  std::thread swapper([&] {
    for (int i = 0; i < 100; ++i) engine.Swap(i % 2 == 0 ? b : a);
  });
  for (int round = 0; round < 20; ++round) {
    std::vector<StatusOr<QueryResponse>> responses =
        engine.QueryBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    const uint64_t version = (*responses[0]).model_version;
    for (const auto& response : responses) {
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->model_version, version);
      EXPECT_EQ(response->ranked[0].head, version == a->version() ? 1u : 2u);
    }
  }
  swapper.join();
}

}  // namespace
}  // namespace hypermine::api
