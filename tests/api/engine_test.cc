#include "api/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/model.h"
#include "serve/testutil.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hypermine::api {
namespace {

std::shared_ptr<const Model> RandomModel(size_t vertices, size_t edges,
                                         uint64_t seed) {
  return Model::FromGraph(serve::RandomServeGraph(vertices, edges, seed));
}

QueryRequest TopKRequest(std::vector<core::VertexId> items, size_t k) {
  QueryRequest request;
  request.items = std::move(items);
  request.k = k;
  return request;
}

TEST(ApiEngineTest, BatchMatchesDirectIndexLookups) {
  std::shared_ptr<const Model> model = RandomModel(40, 150, 17);
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(model, options);
  EXPECT_EQ(engine.num_threads(), 4u);

  std::vector<serve::Query> queries = serve::RandomServeQueries(
      200, 40, 99, /*k=*/5, /*reach_every=*/7, /*reach_min_acv=*/0.5);
  std::vector<QueryRequest> requests;
  for (const serve::Query& q : queries) {
    QueryRequest request;
    request.items = q.items;
    request.k = q.k;
    request.kind = q.kind == serve::Query::Kind::kTopK
                       ? QueryRequest::Kind::kTopK
                       : QueryRequest::Kind::kReachable;
    request.min_acv = q.min_acv;
    requests.push_back(std::move(request));
  }

  std::vector<StatusOr<QueryResponse>> responses =
      engine.QueryBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << i;
    EXPECT_EQ(responses[i]->model_version, model->version()) << i;
    if (requests[i].kind == QueryRequest::Kind::kTopK) {
      EXPECT_EQ(responses[i]->ranked,
                model->index().TopKWithin(requests[i].items, requests[i].k))
          << i;
    } else {
      EXPECT_EQ(responses[i]->closure,
                model->index().Reachable(requests[i].items,
                                         requests[i].min_acv))
          << i;
    }
  }
}

TEST(ApiEngineTest, PerQueryStatusDoesNotFailTheBatch) {
  Engine engine(RandomModel(10, 20, 3));
  std::vector<QueryRequest> requests;
  requests.push_back(TopKRequest({1}, 5));       // fine
  requests.push_back(TopKRequest({}, 5));        // empty: invalid
  QueryRequest oversized;
  oversized.items.assign(kMaxQueryItems + 1, 0);  // too large: invalid
  requests.push_back(oversized);
  QueryRequest unknown_name;
  unknown_name.names = {"no-such-vertex"};       // unresolvable
  requests.push_back(unknown_name);

  std::vector<StatusOr<QueryResponse>> responses =
      engine.QueryBatch(requests);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[3].status().code(), StatusCode::kNotFound);
}

TEST(ApiEngineTest, NamesResolveAgainstTheLiveModel) {
  auto graph = core::DirectedHypergraph::Create({"alpha", "beta", "gamma"});
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.9).ok());
  std::shared_ptr<const Model> model =
      Model::FromGraph(std::move(graph).value());
  Engine engine(model);

  QueryRequest request;
  request.names = {"alpha"};
  request.k = 5;
  auto response = engine.Query(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->ranked.size(), 1u);
  EXPECT_EQ(response->ranked[0].head, 1u);  // beta

  // Names win over ids when both are set.
  request.items = {2};
  auto named = engine.Query(request);
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->ranked.size(), 1u);
}

TEST(ApiEngineTest, EmptyBatch) {
  Engine engine(RandomModel(10, 20, 3));
  EXPECT_TRUE(engine.QueryBatch({}).empty());
}

TEST(ApiEngineTest, CacheServesRepeatsWithinOneModelVersion) {
  EngineOptions options;
  options.cache_capacity = 64;
  std::shared_ptr<const Model> model = RandomModel(20, 60, 5);
  Engine engine(model, options);

  QueryRequest q = TopKRequest({3, 1}, 5);
  auto first = engine.Query(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = engine.Query(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->ranked, first->ranked);
  EXPECT_EQ(second->model_version, model->version());

  // Item order and duplicates canonicalize to the same cache entry.
  auto reordered = engine.Query(TopKRequest({1, 3, 3}, 5));
  ASSERT_TRUE(reordered.ok());
  EXPECT_TRUE(reordered->from_cache);

  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ApiEngineTest, SwapInvalidatesCacheCoherently) {
  EngineOptions options;
  options.cache_capacity = 64;
  std::shared_ptr<const Model> a = RandomModel(20, 60, 5);
  std::shared_ptr<const Model> b = RandomModel(20, 60, 6);
  Engine engine(a, options);

  QueryRequest q = TopKRequest({3}, 5);
  auto warm = engine.Query(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->model_version, a->version());
  ASSERT_TRUE(engine.Query(q)->from_cache);

  engine.Swap(b);
  EXPECT_EQ(engine.model()->version(), b->version());
  // The a-keyed entry must not answer for b: first post-swap query is a
  // miss computed against b...
  auto post = engine.Query(q);
  ASSERT_TRUE(post.ok());
  EXPECT_FALSE(post->from_cache);
  EXPECT_EQ(post->model_version, b->version());
  EXPECT_EQ(post->ranked, b->index().TopKWithin(q.items, q.k));
  // ...and the repeat is a hit against b's entry.
  auto repeat = engine.Query(q);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->from_cache);
  EXPECT_EQ(repeat->model_version, b->version());
}

TEST(ApiEngineTest, SharedExternalPool) {
  ThreadPool pool(2);
  EngineOptions options;
  options.pool = &pool;
  std::shared_ptr<const Model> model = RandomModel(30, 120, 11);
  Engine engine(model, options);
  EXPECT_EQ(engine.num_threads(), 2u);

  std::vector<QueryRequest> requests;
  for (core::VertexId v = 0; v < 30; ++v) {
    requests.push_back(TopKRequest({v}, 4));
  }
  std::vector<StatusOr<QueryResponse>> responses =
      engine.QueryBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].ok());
    EXPECT_EQ(responses[i]->ranked,
              model->index().TopKWithin(requests[i].items, 4));
  }
}

}  // namespace
}  // namespace hypermine::api
