// The sharded result cache: per-shard counters must sum to the totals the
// old single-lock cache reported, a hot swap must invalidate every shard
// (no stale model_version can ever be served), and hammering disjoint key
// ranges from many threads must be race-free (this test is part of the CI
// TSan matrix — the absence of lock-ordering and data-race reports under
// load is the point, not just the counter math).
#include "api/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "api/model.h"
#include "serve/testutil.h"
#include "util/logging.h"

namespace hypermine::api {
namespace {

std::shared_ptr<const Model> RandomModel(size_t vertices, size_t edges,
                                         uint64_t seed) {
  return Model::FromGraph(serve::RandomServeGraph(vertices, edges, seed));
}

/// Distinct single-item top-k queries make distinct cache keys: the key is
/// (version, kind, k, min_acv, items), so varying the item varies the key.
QueryRequest ItemQuery(core::VertexId item, size_t k = 5) {
  QueryRequest request;
  request.items = {item};
  request.k = k;
  return request;
}

TEST(EngineCacheShardTest, AutoShardCountIsCappedByCapacity) {
  std::shared_ptr<const Model> model = RandomModel(16, 40, 7);
  {
    Engine engine(model, {});  // default capacity 4096
    EXPECT_EQ(engine.cache_shards(), 8u)
        << "auto = min(8, max(1, capacity / 64))";
  }
  {
    EngineOptions options;
    options.cache_capacity = 256;  // auto: 4 shards of 64 entries
    Engine engine(model, options);
    EXPECT_EQ(engine.cache_shards(), 4u);
  }
  {
    EngineOptions options;
    options.cache_capacity = 3;  // tiny cache: exact LRU beats sharding
    Engine engine(model, options);
    EXPECT_EQ(engine.cache_shards(), 1u)
        << "auto must not shard a cache too small for 64-entry shards";
  }
  {
    EngineOptions options;
    options.cache_capacity = 100;
    options.cache_shards = 64;
    Engine engine(model, options);
    EXPECT_EQ(engine.cache_shards(), 64u);
  }
  {
    EngineOptions options;
    options.cache_capacity = 0;  // caching disabled: no shards at all
    Engine engine(model, options);
    EXPECT_EQ(engine.cache_shards(), 0u);
    auto response = engine.Query(ItemQuery(0));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->from_cache);
    auto again = engine.Query(ItemQuery(0));
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again->from_cache) << "nothing may be cached";
    const CacheStats stats = engine.cache_stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
  }
}

TEST(EngineCacheShardTest, ShardStatsSumToTheOldGlobalTotals) {
  const size_t kVertices = 60;
  std::shared_ptr<const Model> model = RandomModel(kVertices, 200, 11);
  EngineOptions options;
  options.cache_capacity = 256;  // > kVertices: no evictions interfere
  options.cache_shards = 8;
  options.num_threads = 1;  // sequential: hit/miss order is deterministic
  Engine engine(model, options);

  // First pass: every distinct key misses. Second pass: every key hits.
  for (int pass = 0; pass < 2; ++pass) {
    for (core::VertexId v = 0; v < kVertices; ++v) {
      auto response = engine.Query(ItemQuery(v));
      ASSERT_TRUE(response.ok()) << "pass " << pass << " item " << v;
      EXPECT_EQ(response->from_cache, pass == 1);
    }
  }

  const CacheStats total = engine.cache_stats();
  EXPECT_EQ(total.misses, kVertices);
  EXPECT_EQ(total.hits, kVertices);
  EXPECT_EQ(total.evictions, 0u);
  EXPECT_EQ(engine.cache_entries(), kVertices);

  // The per-shard triples are the real counters; the totals above are
  // their sum, and the keys actually spread (with 60 keys over 8 shards,
  // a shard left empty would mean the hash is degenerate).
  const std::vector<CacheStats> shards = engine.cache_shard_stats();
  ASSERT_EQ(shards.size(), 8u);
  CacheStats summed;
  size_t shards_used = 0;
  for (const CacheStats& s : shards) {
    summed.hits += s.hits;
    summed.misses += s.misses;
    summed.evictions += s.evictions;
    if (s.misses > 0) ++shards_used;
  }
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_GE(shards_used, 2u) << "keys must spread across shards";
}

TEST(EngineCacheShardTest, EvictionsAreScopedToTheOverfullShard) {
  std::shared_ptr<const Model> model = RandomModel(40, 120, 13);
  EngineOptions options;
  options.cache_capacity = 8;
  options.cache_shards = 4;  // 2 entries per shard
  options.num_threads = 1;
  Engine engine(model, options);

  for (core::VertexId v = 0; v < 40; ++v) {
    ASSERT_TRUE(engine.Query(ItemQuery(v)).ok());
  }
  // Per-shard LRU: the cache can never exceed its total capacity, and
  // each shard evicted exactly what flowed past its own slice.
  EXPECT_LE(engine.cache_entries(), 8u);
  const CacheStats total = engine.cache_stats();
  EXPECT_EQ(total.misses, 40u);
  EXPECT_EQ(total.evictions, 40u - engine.cache_entries());
}

TEST(EngineCacheShardTest, HotSwapInvalidatesEveryShard) {
  const size_t kVertices = 48;
  std::shared_ptr<const Model> a = RandomModel(kVertices, 160, 21);
  std::shared_ptr<const Model> b = RandomModel(kVertices, 160, 22);
  ASSERT_NE(a->version(), b->version());

  EngineOptions options;
  options.cache_capacity = 256;
  options.cache_shards = 8;
  options.num_threads = 1;
  Engine engine(a, options);

  // Populate every shard with model-a answers.
  for (core::VertexId v = 0; v < kVertices; ++v) {
    auto response = engine.Query(ItemQuery(v));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->model_version, a->version());
  }
  ASSERT_EQ(engine.cache_entries(), kVertices);

  engine.Swap(b);
  // The purge is eager and coherent: no shard may retain an entry of the
  // dead version, so the cache is empty the moment Swap returns.
  EXPECT_EQ(engine.cache_entries(), 0u)
      << "a shard kept a stale entry across the swap";

  // And no stale answer is served: every re-query misses and carries the
  // new model's version.
  for (core::VertexId v = 0; v < kVertices; ++v) {
    auto response = engine.Query(ItemQuery(v));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->from_cache) << "stale model_version served";
    EXPECT_EQ(response->model_version, b->version());
  }
  // The new entries cache normally.
  auto warm = engine.Query(ItemQuery(0));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->model_version, b->version());
}

TEST(EngineCacheShardTest, HammeringDisjointKeysFromManyThreadsIsClean) {
  // N threads, each owning a disjoint key range, all querying through the
  // sharded cache at once. Disjoint keys mean deterministic accounting
  // (each thread's first pass misses, second pass hits, no cross-thread
  // sharing) while the shard locks are hammered from every thread — the
  // TSan run of this test is what certifies the sharding has no races.
  constexpr size_t kThreads = 8;
  constexpr size_t kKeysPerThread = 12;
  constexpr core::VertexId kVertices = kThreads * kKeysPerThread;
  std::shared_ptr<const Model> model = RandomModel(kVertices, 300, 31);
  EngineOptions options;
  options.cache_capacity = 4 * kVertices;  // no evictions
  options.cache_shards = 8;
  options.num_threads = 2;
  Engine engine(model, options);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      const core::VertexId begin = t * kKeysPerThread;
      for (int pass = 0; pass < 2; ++pass) {
        for (core::VertexId v = begin; v < begin + kKeysPerThread; ++v) {
          auto response = engine.Query(ItemQuery(v));
          ASSERT_TRUE(response.ok());
          ASSERT_EQ(response->from_cache, pass == 1)
              << "thread " << t << " item " << v;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CacheStats total = engine.cache_stats();
  EXPECT_EQ(total.misses, kThreads * kKeysPerThread);
  EXPECT_EQ(total.hits, kThreads * kKeysPerThread);
  EXPECT_EQ(total.evictions, 0u);
  EXPECT_EQ(engine.cache_entries(), kThreads * kKeysPerThread);
}

}  // namespace
}  // namespace hypermine::api
