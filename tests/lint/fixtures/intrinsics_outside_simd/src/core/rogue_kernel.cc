#include <immintrin.h>
// A kernel that bypasses the dispatch table; the lint must reject it.
int RogueAvxPopcount() { return 0; }
