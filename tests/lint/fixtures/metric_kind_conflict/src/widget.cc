void Register(Registry* registry) {
  registry->GetCounter("hypermine_widget_depth", "As a counter here...");
  registry->GetGauge("hypermine_widget_depth", "...and a gauge here.");
}
