void Server::Backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
