#include <mutex>
std::mutex raw_mutex_the_lint_must_reject;
