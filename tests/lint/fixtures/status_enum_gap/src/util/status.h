// Known-bad fixture: value 2 is skipped, so the enum is not dense.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kInternal = 3,
};
