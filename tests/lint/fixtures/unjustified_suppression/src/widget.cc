void SneakPastTheAnalysis() HM_NO_THREAD_SAFETY_ANALYSIS {
}
