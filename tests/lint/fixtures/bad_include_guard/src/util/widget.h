#ifndef WIDGET_H
#define WIDGET_H
struct Widget {};
#endif
