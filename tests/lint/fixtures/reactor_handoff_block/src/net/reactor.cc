// Known-bad fixture: a multi-reactor handoff path that blocks. Adopting a
// handed-off connection on the owning reactor must never wait for bytes —
// one stalled adopt would freeze every connection pinned to that loop.
void Reactor::AdoptHandoff(Socket socket) {
  FrameHeader header;
  socket.ReadFull(&header, sizeof(header));  // blocks the reactor thread
  conns.emplace(next_connection_id++, std::move(socket));
}
