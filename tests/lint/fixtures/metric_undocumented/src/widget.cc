void Register(Registry* registry) {
  registry->GetCounter("hypermine_widget_frobs_total",
                       "Documented nowhere; the lint must object.");
}
