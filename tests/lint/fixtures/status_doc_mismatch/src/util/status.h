enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kUnavailable = 2,
};
