#include "market/market_sim.h"

#include <gtest/gtest.h>

#include "market/series.h"
#include "util/stats.h"

namespace hypermine::market {
namespace {

MarketConfig SmallConfig() {
  MarketConfig config;
  config.num_series = 24;
  config.num_years = 2;
  config.seed = 42;
  return config;
}

TEST(MarketSimTest, ShapesMatchConfig) {
  auto panel = SimulateMarket(SmallConfig());
  ASSERT_TRUE(panel.ok());
  EXPECT_EQ(panel->num_series(), 24u);
  EXPECT_EQ(panel->num_days(), 2 * kTradingDaysPerYear);
  for (const PriceSeries& s : panel->series) {
    EXPECT_EQ(s.closes.size(), panel->num_days());
  }
  EXPECT_EQ(panel->tickers.size(), panel->series.size());
}

TEST(MarketSimTest, PricesStayPositive) {
  MarketConfig config = SmallConfig();
  config.num_years = 5;
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  for (const PriceSeries& s : panel->series) {
    for (double close : s.closes) EXPECT_GT(close, 0.0) << s.symbol;
  }
}

TEST(MarketSimTest, DeterministicForSeed) {
  auto a = SimulateMarket(SmallConfig());
  auto b = SimulateMarket(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->num_series(); ++i) {
    for (size_t d = 0; d < a->num_days(); ++d) {
      ASSERT_DOUBLE_EQ(a->series[i].closes[d], b->series[i].closes[d]);
    }
  }
}

TEST(MarketSimTest, DifferentSeedsDiffer) {
  MarketConfig other = SmallConfig();
  other.seed = 43;
  auto a = SimulateMarket(SmallConfig());
  auto b = SimulateMarket(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->series[0].closes.back(), b->series[0].closes.back());
}

TEST(MarketSimTest, GrowingUniverseKeepsExistingSeries) {
  // Factor paths are universe-size independent; adding series must not
  // perturb the ones already there.
  MarketConfig small = SmallConfig();
  MarketConfig large = SmallConfig();
  large.num_series = 48;
  auto a = SimulateMarket(small);
  auto b = SimulateMarket(large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->num_series(); ++i) {
    EXPECT_DOUBLE_EQ(a->series[i].closes.back(),
                     b->series[i].closes.back());
  }
}

TEST(MarketSimTest, InvalidConfigsFail) {
  MarketConfig config = SmallConfig();
  config.num_series = 0;
  EXPECT_FALSE(SimulateMarket(config).ok());
  config = SmallConfig();
  config.num_years = 0;
  EXPECT_FALSE(SimulateMarket(config).ok());
  config = SmallConfig();
  config.daily_vol_scale = 0.0;
  EXPECT_FALSE(SimulateMarket(config).ok());
}

TEST(MarketSimTest, SameSectorMoreCorrelatedThanCrossSector) {
  MarketConfig config;
  config.num_series = 80;
  config.num_years = 4;
  config.seed = 7;
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  std::vector<std::vector<double>> deltas(panel->num_series());
  for (size_t i = 0; i < panel->num_series(); ++i) {
    deltas[i] = DeltaSeries(panel->series[i].closes).value();
  }
  std::vector<double> same_sector;
  std::vector<double> cross_sector;
  for (size_t i = 0; i < panel->num_series(); ++i) {
    for (size_t j = i + 1; j < panel->num_series(); ++j) {
      double corr = PearsonCorrelation(deltas[i], deltas[j]);
      if (panel->tickers[i].sector == panel->tickers[j].sector) {
        same_sector.push_back(corr);
      } else {
        cross_sector.push_back(corr);
      }
    }
  }
  ASSERT_FALSE(same_sector.empty());
  ASSERT_FALSE(cross_sector.empty());
  EXPECT_GT(Mean(same_sector), Mean(cross_sector) + 0.1);
  // Cross-sector pairs still co-move through the market/demand factors.
  EXPECT_GT(Mean(cross_sector), 0.05);
}

TEST(MarketSimTest, ProducersLessNoisyThanConsumers) {
  // The producer quantization + low idiosyncratic noise must show up as a
  // higher R^2-like structure; proxy: producers correlate more strongly
  // with their sector mates than consumers do.
  MarketConfig config;
  config.num_series = 120;
  config.num_years = 4;
  config.seed = 13;
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  std::vector<std::vector<double>> deltas(panel->num_series());
  for (size_t i = 0; i < panel->num_series(); ++i) {
    deltas[i] = DeltaSeries(panel->series[i].closes).value();
  }
  std::vector<double> producer_corr;
  std::vector<double> consumer_corr;
  for (size_t i = 0; i < panel->num_series(); ++i) {
    for (size_t j = i + 1; j < panel->num_series(); ++j) {
      if (panel->tickers[i].sector != panel->tickers[j].sector) continue;
      double corr = PearsonCorrelation(deltas[i], deltas[j]);
      if (panel->tickers[i].role == Role::kProducer &&
          panel->tickers[j].role == Role::kProducer) {
        producer_corr.push_back(corr);
      } else if (panel->tickers[i].role == Role::kConsumer &&
                 panel->tickers[j].role == Role::kConsumer) {
        consumer_corr.push_back(corr);
      }
    }
  }
  ASSERT_FALSE(producer_corr.empty());
  ASSERT_FALSE(consumer_corr.empty());
  EXPECT_GT(Mean(producer_corr), Mean(consumer_corr));
}

TEST(TercileQuantizeTest, MapsToTercileMeans) {
  EXPECT_DOUBLE_EQ(TercileQuantize(-2.0), -1.09130);
  EXPECT_DOUBLE_EQ(TercileQuantize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(TercileQuantize(0.2), 0.0);
  EXPECT_DOUBLE_EQ(TercileQuantize(2.0), 1.09130);
}

}  // namespace
}  // namespace hypermine::market
