#include "market/sectors.h"

#include <gtest/gtest.h>

#include <set>

namespace hypermine::market {
namespace {

TEST(SectorsTest, TaxonomyHas104SubSectorsAcross12Sectors) {
  // Chapter 5: "The total number of sub-sectors over the entire sectors
  // is 104", with 11 under Technology.
  const auto& taxonomy = SubSectorTaxonomy();
  EXPECT_EQ(taxonomy.size(), 104u);
  size_t total = 0;
  for (size_t s = 0; s < kNumSectors; ++s) {
    total += SubSectorCount(static_cast<Sector>(s));
  }
  EXPECT_EQ(total, 104u);
  EXPECT_EQ(SubSectorCount(Sector::kTechnology), 11u);
}

TEST(SectorsTest, SectorCodesRoundTrip) {
  for (size_t s = 0; s < kNumSectors; ++s) {
    Sector sector = static_cast<Sector>(s);
    auto parsed = SectorFromCode(SectorCode(sector));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, sector);
  }
  EXPECT_FALSE(SectorFromCode("ZZ").ok());
}

TEST(SectorsTest, RolesFollowPaperNarrative) {
  // Section 5.2: BM, CG, E are producer-like; CC, CN, H, SV, T consumer.
  const auto& taxonomy = SubSectorTaxonomy();
  for (const SubSector& sub : taxonomy) {
    switch (sub.sector) {
      case Sector::kBasicMaterials:
      case Sector::kCapitalGoods:
      case Sector::kEnergy:
        EXPECT_EQ(sub.role, Role::kProducer) << sub.name;
        break;
      case Sector::kConsumerCyclical:
      case Sector::kConsumerNonCyclical:
      case Sector::kHealthcare:
      case Sector::kTechnology:
        EXPECT_EQ(sub.role, Role::kConsumer) << sub.name;
        break;
      case Sector::kServices:
        // Real estate services are the producer exception (Kimco example).
        if (sub.name == "Real Estate Operations") {
          EXPECT_EQ(sub.role, Role::kProducer);
        } else {
          EXPECT_EQ(sub.role, Role::kConsumer) << sub.name;
        }
        break;
      default:
        EXPECT_EQ(sub.role, Role::kNeutral) << sub.name;
    }
  }
}

TEST(SectorsTest, PaperTickersCarryReportedSectors) {
  const auto& tickers = PaperTickers();
  ASSERT_GE(tickers.size(), 50u);
  auto find = [&tickers](const std::string& symbol) -> const Ticker& {
    for (const Ticker& t : tickers) {
      if (t.symbol == symbol) return t;
    }
    ADD_FAILURE() << "missing ticker " << symbol;
    return tickers[0];
  };
  // Spot checks against Table 5.1's sector annotations.
  EXPECT_EQ(find("XOM").sector, Sector::kEnergy);
  EXPECT_EQ(find("GT").sector, Sector::kConsumerCyclical);
  EXPECT_EQ(find("PG").sector, Sector::kConsumerNonCyclical);
  EXPECT_EQ(find("JNJ").sector, Sector::kHealthcare);
  EXPECT_EQ(find("INTC").sector, Sector::kTechnology);
  EXPECT_EQ(find("FDX").sector, Sector::kTransportation);
  EXPECT_EQ(find("TE").sector, Sector::kUtilities);
  EXPECT_EQ(find("AIG").sector, Sector::kFinancial);
  EXPECT_EQ(find("EMN").sector, Sector::kBasicMaterials);
  EXPECT_EQ(find("HON").sector, Sector::kCapitalGoods);
  EXPECT_EQ(find("JCP").sector, Sector::kServices);
  EXPECT_EQ(find("TXT").sector, Sector::kConglomerates);
  // Kimco is the real-estate producer example of Section 5.2.
  EXPECT_EQ(find("KIM").role, Role::kProducer);
  EXPECT_EQ(find("YHOO").role, Role::kConsumer);
}

TEST(SectorsTest, PaperTickersUniqueSymbols) {
  std::set<std::string> seen;
  for (const Ticker& t : PaperTickers()) {
    EXPECT_TRUE(seen.insert(t.symbol).second) << "duplicate " << t.symbol;
    EXPECT_TRUE(t.from_paper);
  }
}

TEST(BuildUniverseTest, SizesAndUniqueness) {
  for (size_t n : {1u, 30u, 120u, 346u}) {
    auto universe = BuildUniverse(n);
    ASSERT_TRUE(universe.ok());
    EXPECT_EQ(universe->size(), n);
    std::set<std::string> symbols;
    for (const Ticker& t : *universe) {
      EXPECT_TRUE(symbols.insert(t.symbol).second) << t.symbol;
      EXPECT_LT(t.subsector, SubSectorTaxonomy().size());
      EXPECT_EQ(SubSectorTaxonomy()[t.subsector].sector, t.sector);
    }
  }
  EXPECT_FALSE(BuildUniverse(0).ok());
}

TEST(BuildUniverseTest, PaperScaleCoversAllSubSectors) {
  auto universe = BuildUniverse(346);
  ASSERT_TRUE(universe.ok());
  EXPECT_EQ(DistinctSubSectors(*universe), 104u);
}

TEST(BuildUniverseTest, SyntheticTickersGetTaxonomyRoles) {
  auto universe = BuildUniverse(200);
  ASSERT_TRUE(universe.ok());
  for (const Ticker& t : *universe) {
    if (t.from_paper) continue;
    EXPECT_EQ(t.role, SubSectorTaxonomy()[t.subsector].role) << t.symbol;
  }
}

}  // namespace
}  // namespace hypermine::market
