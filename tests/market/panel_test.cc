#include "market/panel.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/csv.h"

namespace hypermine::market {
namespace {

TEST(PanelTest, CsvRoundTripPreservesDataAndMetadata) {
  MarketConfig config;
  config.num_series = 10;
  config.num_years = 1;
  config.seed = 5;
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());

  std::string path = ::testing::TempDir() + "/hypermine_panel_test.csv";
  ASSERT_TRUE(SavePanelCsv(*panel, path).ok());

  auto loaded = LoadPanelCsv(path, config.first_year);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_series(), panel->num_series());
  EXPECT_EQ(loaded->num_days(), panel->num_days());
  for (size_t i = 0; i < panel->num_series(); ++i) {
    EXPECT_EQ(loaded->tickers[i].symbol, panel->tickers[i].symbol);
    EXPECT_EQ(loaded->tickers[i].sector, panel->tickers[i].sector);
    EXPECT_EQ(loaded->tickers[i].subsector, panel->tickers[i].subsector);
    EXPECT_EQ(loaded->tickers[i].role, panel->tickers[i].role);
    for (size_t d = 0; d < panel->num_days(); ++d) {
      EXPECT_NEAR(loaded->series[i].closes[d], panel->series[i].closes[d],
                  1e-5);
    }
  }
  std::remove(path.c_str());
}

TEST(PanelTest, LoadRejectsMissingMeta) {
  std::string path = ::testing::TempDir() + "/hypermine_panel_bad.csv";
  ASSERT_TRUE(
      WriteStringToFile(path, "day,XOM\n1995-000,100.0\n").ok());
  EXPECT_FALSE(LoadPanelCsv(path, 1995).ok());
  std::remove(path.c_str());
}

TEST(PanelTest, LoadRejectsPartialYears) {
  std::string path = ::testing::TempDir() + "/hypermine_panel_partial.csv";
  std::string text = "day,XOM\nmeta,sector:E:32\n1995-000,100.0\n";
  ASSERT_TRUE(WriteStringToFile(path, text).ok());
  EXPECT_FALSE(LoadPanelCsv(path, 1995).ok());
  std::remove(path.c_str());
}

TEST(PanelTest, LoadRejectsBadNumbers) {
  std::string path = ::testing::TempDir() + "/hypermine_panel_nan.csv";
  std::string text = "day,XOM\nmeta,sector:E:32\n";
  for (size_t d = 0; d < kTradingDaysPerYear; ++d) {
    text += d == 10 ? "x,oops\n" : "x,100.0\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, text).ok());
  EXPECT_FALSE(LoadPanelCsv(path, 1995).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hypermine::market
