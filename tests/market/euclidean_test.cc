#include "market/euclidean.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hypermine::market {
namespace {

TEST(EuclideanTest, IdenticalSeriesHaveSimilarityOne) {
  std::vector<double> d = {0.01, -0.02, 0.005};
  auto sim = EuclideanSimilarity(d, d);
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0, 1e-12);
}

TEST(EuclideanTest, OppositeSeriesHaveSimilarityZero) {
  std::vector<double> a = {0.01, -0.02, 0.005};
  std::vector<double> b = {-0.01, 0.02, -0.005};
  auto sim = EuclideanSimilarity(a, b);
  ASSERT_TRUE(sim.ok());
  // Normalized opposite vectors are at distance 2 -> similarity 0.
  EXPECT_NEAR(*sim, 0.0, 1e-12);
}

TEST(EuclideanTest, ScaleInvariance) {
  // ES uses normalized deltas, so uniform scaling must not matter.
  std::vector<double> a = {0.01, -0.02, 0.03};
  std::vector<double> b = {0.02, -0.04, 0.06};
  auto sim = EuclideanSimilarity(a, b);
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0, 1e-12);
}

TEST(EuclideanTest, OrthogonalSeries) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.0, 1.0};
  auto dist = EuclideanDistance(a, b);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(*dist, std::sqrt(2.0), 1e-12);
  auto sim = EuclideanSimilarity(a, b);
  EXPECT_NEAR(*sim, 1.0 - std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(EuclideanTest, SimilarityAlwaysInUnitInterval) {
  std::vector<double> a = {0.5, -0.25, 0.1, 0.0};
  std::vector<double> b = {-0.3, 0.9, -0.2, 0.4};
  auto sim = EuclideanSimilarity(a, b);
  ASSERT_TRUE(sim.ok());
  EXPECT_GE(*sim, 0.0);
  EXPECT_LE(*sim, 1.0);
}

TEST(EuclideanTest, SymmetricInArguments) {
  std::vector<double> a = {0.3, -0.1, 0.2};
  std::vector<double> b = {-0.2, 0.4, 0.1};
  EXPECT_DOUBLE_EQ(*EuclideanSimilarity(a, b), *EuclideanSimilarity(b, a));
}

TEST(EuclideanTest, LengthMismatchFails) {
  EXPECT_FALSE(EuclideanSimilarity({0.1}, {0.1, 0.2}).ok());
  EXPECT_FALSE(EuclideanSimilarity({}, {}).ok());
}

}  // namespace
}  // namespace hypermine::market
