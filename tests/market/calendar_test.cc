#include "market/calendar.h"

#include <gtest/gtest.h>

namespace hypermine::market {
namespace {

TEST(CalendarTest, PaperRange) {
  // The paper's data spans Jan 1995 .. Dec 2009: 15 years.
  TradingCalendar cal(1995, 15);
  EXPECT_EQ(cal.first_year(), 1995);
  EXPECT_EQ(cal.last_year(), 2009);
  EXPECT_EQ(cal.num_days(), 15 * kTradingDaysPerYear);
}

TEST(CalendarTest, YearAndDayOfDay) {
  TradingCalendar cal(2000, 3);
  EXPECT_EQ(cal.YearOfDay(0), 2000);
  EXPECT_EQ(cal.DayOfYear(0), 0u);
  EXPECT_EQ(cal.YearOfDay(kTradingDaysPerYear), 2001);
  EXPECT_EQ(cal.DayOfYear(kTradingDaysPerYear + 5), 5u);
  EXPECT_EQ(cal.YearOfDay(cal.num_days() - 1), 2002);
}

TEST(CalendarTest, DayRangeForYears) {
  TradingCalendar cal(1996, 5);  // 1996..2000
  auto range = cal.DayRangeForYears(1996, 1996);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first, 0u);
  EXPECT_EQ(range->second, kTradingDaysPerYear);

  auto all = cal.DayRangeForYears(1996, 2000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->second, cal.num_days());

  auto middle = cal.DayRangeForYears(1998, 1999);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(middle->first, 2 * kTradingDaysPerYear);
  EXPECT_EQ(middle->second, 4 * kTradingDaysPerYear);
}

TEST(CalendarTest, DayRangeErrors) {
  TradingCalendar cal(1996, 2);
  EXPECT_FALSE(cal.DayRangeForYears(1995, 1996).ok());  // before start
  EXPECT_FALSE(cal.DayRangeForYears(1996, 1998).ok());  // past end
  EXPECT_FALSE(cal.DayRangeForYears(1997, 1996).ok());  // inverted
}

TEST(CalendarTest, DayLabelFormat) {
  TradingCalendar cal(1999, 2);
  EXPECT_EQ(cal.DayLabel(0), "1999-000");
  EXPECT_EQ(cal.DayLabel(kTradingDaysPerYear + 7), "2000-007");
}

}  // namespace
}  // namespace hypermine::market
