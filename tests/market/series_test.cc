#include "market/series.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hypermine::market {
namespace {

TEST(DeltaSeriesTest, FractionalChanges) {
  auto deltas = DeltaSeries({100.0, 110.0, 99.0});
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 2u);
  EXPECT_NEAR((*deltas)[0], 0.10, 1e-12);
  EXPECT_NEAR((*deltas)[1], -0.10, 1e-12);
}

TEST(DeltaSeriesTest, ErrorsOnShortOrNonPositive) {
  EXPECT_FALSE(DeltaSeries({100.0}).ok());
  EXPECT_FALSE(DeltaSeries({100.0, 0.0, 50.0}).ok());
  EXPECT_FALSE(DeltaSeries({-1.0, 2.0}).ok());
}

TEST(DeltaSeriesTest, LastNonPositiveCloseStillOk) {
  // Only closes used as denominators must be positive.
  auto deltas = DeltaSeries({1.0, 2.0});
  EXPECT_TRUE(deltas.ok());
}

TEST(DeltaSeriesWindowTest, MatchesFullSeriesSlice) {
  std::vector<double> closes = {10.0, 11.0, 12.1, 11.0, 12.0};
  auto full = DeltaSeries(closes);
  ASSERT_TRUE(full.ok());
  auto window = DeltaSeriesWindow(closes, 1, 3);
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->size(), 2u);
  EXPECT_DOUBLE_EQ((*window)[0], (*full)[1]);
  EXPECT_DOUBLE_EQ((*window)[1], (*full)[2]);
}

TEST(DeltaSeriesWindowTest, BadRanges) {
  std::vector<double> closes = {1.0, 2.0, 3.0};
  EXPECT_FALSE(DeltaSeriesWindow(closes, 2, 2).ok());
  EXPECT_FALSE(DeltaSeriesWindow(closes, 0, 3).ok());  // end must be < size
  EXPECT_TRUE(DeltaSeriesWindow(closes, 0, 2).ok());
}

TEST(NormalizedTest, UnitNorm) {
  std::vector<double> v = Normalized({3.0, 4.0});
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
  double norm = std::sqrt(v[0] * v[0] + v[1] * v[1]);
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(NormalizedTest, ZeroVectorUnchanged) {
  std::vector<double> v = Normalized({0.0, 0.0});
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

}  // namespace
}  // namespace hypermine::market
