/// Structural tests of the factor model that back the substitution argument
/// of DESIGN.md: segmented demand, role asymmetries, and robustness of the
/// price recursion.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/logging.h"

#include "market/market_sim.h"
#include "market/series.h"
#include "util/stats.h"

namespace hypermine::market {
namespace {

MarketPanel Simulate(size_t series, size_t years, uint64_t seed) {
  MarketConfig config;
  config.num_series = series;
  config.num_years = years;
  config.seed = seed;
  auto panel = SimulateMarket(config);
  HM_CHECK_OK(panel.status());
  return std::move(panel).value();
}

TEST(FactorStructureTest, ConsumerNichesDecorrelateConsumers) {
  // Consumers track distinct demand segments: their mutual correlation
  // must sit well below consumer-producer correlation (the directional
  // mechanism behind Figure 5.1, see DESIGN.md).
  MarketPanel panel = Simulate(120, 4, 31);
  std::vector<std::vector<double>> deltas(panel.num_series());
  for (size_t i = 0; i < panel.num_series(); ++i) {
    deltas[i] = DeltaSeries(panel.series[i].closes).value();
  }
  std::vector<double> consumer_consumer;
  std::vector<double> consumer_producer;
  for (size_t i = 0; i < panel.num_series(); ++i) {
    for (size_t j = i + 1; j < panel.num_series(); ++j) {
      if (panel.tickers[i].sector == panel.tickers[j].sector) continue;
      Role ri = panel.tickers[i].role;
      Role rj = panel.tickers[j].role;
      double corr = PearsonCorrelation(deltas[i], deltas[j]);
      if (ri == Role::kConsumer && rj == Role::kConsumer) {
        consumer_consumer.push_back(corr);
      } else if ((ri == Role::kConsumer && rj == Role::kProducer) ||
                 (ri == Role::kProducer && rj == Role::kConsumer)) {
        consumer_producer.push_back(corr);
      }
    }
  }
  ASSERT_FALSE(consumer_consumer.empty());
  ASSERT_FALSE(consumer_producer.empty());
  EXPECT_GT(Mean(consumer_producer), Mean(consumer_consumer) + 0.05);
}

TEST(FactorStructureTest, ProducersShareAggregateDemand) {
  // Producers all load on the demand aggregate: cross-sector
  // producer-producer correlation stays clearly positive.
  MarketPanel panel = Simulate(120, 4, 32);
  std::vector<std::vector<double>> deltas(panel.num_series());
  for (size_t i = 0; i < panel.num_series(); ++i) {
    deltas[i] = DeltaSeries(panel.series[i].closes).value();
  }
  std::vector<double> producer_producer;
  for (size_t i = 0; i < panel.num_series(); ++i) {
    for (size_t j = i + 1; j < panel.num_series(); ++j) {
      if (panel.tickers[i].sector == panel.tickers[j].sector) continue;
      if (panel.tickers[i].role == Role::kProducer &&
          panel.tickers[j].role == Role::kProducer) {
        producer_producer.push_back(PearsonCorrelation(deltas[i], deltas[j]));
      }
    }
  }
  ASSERT_FALSE(producer_producer.empty());
  EXPECT_GT(Mean(producer_producer), 0.25);
}

TEST(FactorStructureTest, SegmentCountChangesConsumerCoupling) {
  // One demand segment = the degenerate shared-demand model; consumers
  // then correlate with each other much more than under segmentation.
  MarketConfig shared;
  shared.num_series = 80;
  shared.num_years = 3;
  shared.seed = 33;
  shared.demand_segments = 1;
  MarketConfig segmented = shared;
  segmented.demand_segments = 4;

  auto measure = [](const MarketConfig& config) {
    auto panel = SimulateMarket(config);
    HM_CHECK_OK(panel.status());
    std::vector<std::vector<double>> deltas(panel->num_series());
    for (size_t i = 0; i < panel->num_series(); ++i) {
      deltas[i] = DeltaSeries(panel->series[i].closes).value();
    }
    std::vector<double> cc;
    for (size_t i = 0; i < panel->num_series(); ++i) {
      for (size_t j = i + 1; j < panel->num_series(); ++j) {
        if (panel->tickers[i].role == Role::kConsumer &&
            panel->tickers[j].role == Role::kConsumer &&
            panel->tickers[i].sector != panel->tickers[j].sector) {
          cc.push_back(PearsonCorrelation(deltas[i], deltas[j]));
        }
      }
    }
    return Mean(cc);
  };
  EXPECT_GT(measure(shared), measure(segmented) + 0.1);
}

TEST(FactorStructureTest, ExtremeVolStaysFiniteAndPositive) {
  // The daily-return clamp keeps the price recursion from collapsing even
  // under absurd volatility settings (failure-injection style check).
  MarketConfig config;
  config.num_series = 10;
  config.num_years = 2;
  config.seed = 34;
  config.daily_vol_scale = 5.0;  // 500x a realistic setting
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  for (const PriceSeries& s : panel->series) {
    for (double close : s.closes) {
      ASSERT_TRUE(std::isfinite(close));
      ASSERT_GT(close, 0.0);
    }
  }
}

TEST(FactorStructureTest, RolesGetDistinctVolatility) {
  // Consumers carry more idiosyncratic volatility than producers by
  // construction; check realized delta stddev ordering per role.
  MarketPanel panel = Simulate(120, 4, 35);
  std::map<Role, std::vector<double>> vol_by_role;
  for (size_t i = 0; i < panel.num_series(); ++i) {
    std::vector<double> deltas =
        DeltaSeries(panel.series[i].closes).value();
    vol_by_role[panel.tickers[i].role].push_back(StdDev(deltas));
  }
  EXPECT_GT(Mean(vol_by_role[Role::kConsumer]),
            Mean(vol_by_role[Role::kProducer]));
}

TEST(FactorStructureTest, DemandSpreadZeroRemovesJitter) {
  // With spreads zeroed, two consumers in the same segment and sub-sector
  // differ only by idiosyncratic noise paths; their realized volatilities
  // are near-identical across seeds (sanity of the jitter switch).
  MarketConfig config;
  config.num_series = 40;
  config.num_years = 2;
  config.seed = 36;
  config.demand_spread = 0.0;
  config.idio_spread = 0.0;
  auto panel = SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  // Just shape-level: simulation succeeds and is deterministic.
  auto panel2 = SimulateMarket(config);
  ASSERT_TRUE(panel2.ok());
  EXPECT_DOUBLE_EQ(panel->series[5].closes.back(),
                   panel2->series[5].closes.back());
}

}  // namespace
}  // namespace hypermine::market
