// Exhaustive corruption fuzzing of the snapshot loader: every truncation
// length and every single-byte flip of a real v2 snapshot must come back
// as a clean error — kCorrupted (or kInvalidArgument for a damaged
// version field), never a crash, never UB, never a silently-wrong graph.
// The v2 body checksum makes this a hard guarantee, not a probabilistic
// one, and CI runs this file under ASan/UBSan to hold the "no UB" half.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/model.h"
#include "core/hypergraph.h"
#include "serve/snapshot.h"
#include "util/logging.h"

namespace hypermine::serve {
namespace {

/// A snapshot exercising every region the loader parses: several edges
/// (multi-vertex tails, weight extremes) and a v2 spec trailer with
/// non-empty strings.
std::string BuildSnapshotBytes() {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D", ""});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 1, 0.9).status());
  HM_CHECK_OK(graph->AddEdge({0, 1}, 3, 0.8).status());
  HM_CHECK_OK(graph->AddEdge({1, 2, 3}, 4, 1e-300).status());
  HM_CHECK_OK(graph->AddEdge({2}, 0, 1.0).status());
  api::ModelSpec spec;
  spec.config.k = 12;
  spec.discretization = "floor(value / 10)";
  spec.provenance.source = "snapshot_fuzz_test";
  spec.provenance.git_sha = "deadbeef";
  spec.provenance.note = "fuzz corpus";
  spec.provenance.created_unix = 1754524800;
  return SerializeSnapshot(*graph, spec);
}

/// Any damaged buffer must yield a clean parse error. kCorrupted is the
/// contract for torn bytes; a flip inside the header's version word may
/// legitimately surface as kInvalidArgument ("unsupported version").
void ExpectCleanFailure(const std::string& data, const std::string& what) {
  auto graph = DeserializeSnapshot(data);
  ASSERT_FALSE(graph.ok()) << what << ": damaged snapshot parsed OK";
  EXPECT_TRUE(graph.status().code() == StatusCode::kCorrupted ||
              graph.status().code() == StatusCode::kInvalidArgument)
      << what << ": unexpected status " << graph.status().ToString();
  // The spec-trailer-aware loader must agree (it shares the envelope
  // check but parses further, so it gets its own pass).
  auto full = DeserializeSnapshotFull(data);
  ASSERT_FALSE(full.ok()) << what;
  EXPECT_TRUE(full.status().code() == StatusCode::kCorrupted ||
              full.status().code() == StatusCode::kInvalidArgument)
      << what << ": unexpected status " << full.status().ToString();
}

TEST(SnapshotFuzzTest, IntactCorpusParses) {
  const std::string data = BuildSnapshotBytes();
  auto full = DeserializeSnapshotFull(data);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->graph.num_edges(), 4u);
  EXPECT_TRUE(full->has_spec);
  EXPECT_EQ(full->spec.provenance.source, "snapshot_fuzz_test");
}

TEST(SnapshotFuzzTest, TruncationAtEveryOffsetFailsCleanly) {
  const std::string data = BuildSnapshotBytes();
  for (size_t len = 0; len < data.size(); ++len) {
    ExpectCleanFailure(data.substr(0, len),
                       "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST(SnapshotFuzzTest, SingleByteFlipAtEveryOffsetFailsCleanly) {
  const std::string data = BuildSnapshotBytes();
  for (size_t pos = 0; pos < data.size(); ++pos) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::string damaged = data;
      damaged[pos] = static_cast<char>(damaged[pos] ^ flip);
      ExpectCleanFailure(damaged, "bit flip 0x" + std::to_string(flip) +
                                      " at offset " + std::to_string(pos));
    }
  }
}

TEST(SnapshotFuzzTest, GarbageAppendedAfterTheBodyIsRejected) {
  // Trailing junk changes the body the checksum covers, so it is torn
  // bytes like any other: the loader must not silently ignore it.
  std::string data = BuildSnapshotBytes();
  data += "extra";
  ExpectCleanFailure(data, "trailing garbage");
}

TEST(SnapshotFuzzTest, EmptyAndTinyBuffersFailCleanly) {
  ExpectCleanFailure("", "empty buffer");
  ExpectCleanFailure("H", "one byte");
  ExpectCleanFailure(std::string(23, '\0'), "sub-header zeros");
  ExpectCleanFailure(std::string(1024, '\xFF'), "all-ones buffer");
}

}  // namespace
}  // namespace hypermine::serve
