#include "serve/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/testutil.h"
#include "util/logging.h"

namespace hypermine::serve {
namespace {

using core::VertexId;

core::DirectedHypergraph RandomGraph(size_t vertices, size_t edges,
                                     uint64_t seed) {
  return RandomServeGraph(vertices, edges, seed);
}

std::vector<Query> RandomQueries(size_t n, size_t vertices, uint64_t seed) {
  return RandomServeQueries(n, vertices, seed, /*k=*/5, /*reach_every=*/7,
                            /*reach_min_acv=*/0.5);
}

TEST(QueryEngineTest, BatchMatchesDirectIndexLookups) {
  core::DirectedHypergraph graph = RandomGraph(40, 150, 17);
  RuleIndex index = RuleIndex::Build(graph);
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(RuleIndex::Build(graph), options);
  EXPECT_EQ(engine.num_threads(), 4u);

  std::vector<Query> queries = RandomQueries(200, 40, 99);
  std::vector<QueryResult> results = engine.QueryBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << i;
    if (queries[i].kind == Query::Kind::kTopK) {
      EXPECT_EQ(results[i].ranked,
                index.TopKWithin(queries[i].items, queries[i].k))
          << i;
    } else {
      EXPECT_EQ(results[i].closure,
                index.Reachable(queries[i].items, queries[i].min_acv))
          << i;
    }
  }
}

TEST(QueryEngineTest, EmptyBatchAndEmptyItems) {
  QueryEngine engine(RuleIndex::Build(RandomGraph(10, 20, 3)));
  EXPECT_TRUE(engine.QueryBatch({}).empty());
  QueryResult result = engine.QueryOne(Query{});
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, OversizedItemSetIsRejectedNotExecuted) {
  QueryEngine engine(RuleIndex::Build(RandomGraph(10, 20, 3)));
  Query q;
  q.items.assign(kMaxQueryItems + 1, 0);
  QueryResult result = engine.QueryOne(q);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  // At the cap it still executes.
  q.items.clear();
  for (core::VertexId v = 0; v < kMaxQueryItems; ++v) {
    q.items.push_back(v % 10);
  }
  EXPECT_TRUE(engine.QueryOne(q).status.ok());
}

TEST(QueryEngineTest, CacheServesRepeatsAndNormalizesItemOrder) {
  EngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 64;
  QueryEngine engine(RuleIndex::Build(RandomGraph(20, 60, 5)), options);

  Query q{{3, 1}, 5, Query::Kind::kTopK, 0.0};
  QueryResult first = engine.QueryOne(q);
  EXPECT_FALSE(first.from_cache);
  QueryResult second = engine.QueryOne(q);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.ranked, first.ranked);

  // Item order and duplicates canonicalize to the same cache entry.
  Query reordered{{1, 3, 3}, 5, Query::Kind::kTopK, 0.0};
  QueryResult third = engine.QueryOne(reordered);
  EXPECT_TRUE(third.from_cache);
  EXPECT_EQ(third.ranked, first.ranked);

  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(QueryEngineTest, CacheDistinguishesKindKAndThreshold) {
  QueryEngine engine(RuleIndex::Build(RandomGraph(20, 60, 5)));
  Query topk{{2}, 5, Query::Kind::kTopK, 0.0};
  Query topk_k3{{2}, 3, Query::Kind::kTopK, 0.0};
  Query reach{{2}, 5, Query::Kind::kReachable, 0.0};
  Query reach_hi{{2}, 5, Query::Kind::kReachable, 0.9};
  EXPECT_FALSE(engine.QueryOne(topk).from_cache);
  EXPECT_FALSE(engine.QueryOne(topk_k3).from_cache);
  EXPECT_FALSE(engine.QueryOne(reach).from_cache);
  EXPECT_FALSE(engine.QueryOne(reach_hi).from_cache);
  EXPECT_TRUE(engine.QueryOne(topk).from_cache);
  EXPECT_TRUE(engine.QueryOne(reach_hi).from_cache);
}

TEST(QueryEngineTest, LruEvictsLeastRecentlyUsed) {
  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 2;
  QueryEngine engine(RuleIndex::Build(RandomGraph(20, 60, 5)), options);

  Query a{{1}, 5, Query::Kind::kTopK, 0.0};
  Query b{{2}, 5, Query::Kind::kTopK, 0.0};
  Query c{{3}, 5, Query::Kind::kTopK, 0.0};
  engine.QueryOne(a);
  engine.QueryOne(b);
  engine.QueryOne(a);          // refresh a; b is now least recent
  engine.QueryOne(c);          // evicts b
  EXPECT_TRUE(engine.QueryOne(a).from_cache);
  EXPECT_FALSE(engine.QueryOne(b).from_cache);
  EXPECT_EQ(engine.cache_stats().evictions, 2u);
}

TEST(QueryEngineTest, ZeroCapacityDisablesCache) {
  EngineOptions options;
  options.cache_capacity = 0;
  QueryEngine engine(RuleIndex::Build(RandomGraph(20, 60, 5)), options);
  Query q{{1}, 5, Query::Kind::kTopK, 0.0};
  EXPECT_FALSE(engine.QueryOne(q).from_cache);
  EXPECT_FALSE(engine.QueryOne(q).from_cache);
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(QueryEngineTest, ConcurrentBatchesAgree) {
  core::DirectedHypergraph graph = RandomGraph(30, 120, 11);
  RuleIndex index = RuleIndex::Build(graph);
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(RuleIndex::Build(graph), options);

  std::vector<Query> queries = RandomQueries(100, 30, 123);
  std::vector<std::vector<QueryResult>> per_thread(4);
  std::vector<std::thread> callers;
  for (size_t t = 0; t < per_thread.size(); ++t) {
    callers.emplace_back([&engine, &queries, &per_thread, t] {
      per_thread[t] = engine.QueryBatch(queries);
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const auto& results : per_thread) {
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].kind == Query::Kind::kTopK) {
        EXPECT_EQ(results[i].ranked,
                  index.TopKWithin(queries[i].items, queries[i].k));
      } else {
        EXPECT_EQ(results[i].closure,
                  index.Reachable(queries[i].items, queries[i].min_acv));
      }
    }
  }
}

}  // namespace
}  // namespace hypermine::serve
