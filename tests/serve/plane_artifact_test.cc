// Round-trip, corruption, and cache tests for the plane-artifact format —
// the serve-layer persistence of core::ValuePlanes. Mirrors the snapshot
// fuzz suite's philosophy: every truncation and every flipped byte must
// yield a clean kCorrupted, never a crash or a silently wrong artifact.
#include "serve/plane_artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/assoc_table.h"
#include "core/discretize.h"
#include "core/value_planes.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::serve {
namespace {

core::Database TestDb(uint64_t seed, size_t n, size_t m, size_t k) {
  Rng rng(seed);
  std::vector<std::vector<core::ValueId>> columns(
      n, std::vector<core::ValueId>(m));
  std::vector<std::string> names;
  for (size_t a = 0; a < n; ++a) names.push_back("A" + std::to_string(a));
  for (size_t a = 0; a < n; ++a) {
    for (size_t o = 0; o < m; ++o) {
      columns[a][o] = static_cast<core::ValueId>(rng.NextBounded(k));
    }
  }
  auto db = core::DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

void ExpectSamePlanes(const core::ValuePlanes& a, const core::ValuePlanes& b) {
  EXPECT_EQ(a.num_attributes, b.num_attributes);
  EXPECT_EQ(a.num_observations, b.num_observations);
  EXPECT_EQ(a.num_values, b.num_values);
  EXPECT_EQ(a.words_per_plane, b.words_per_plane);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.words, b.words);
}

TEST(PlaneArtifactTest, RoundTripsPackedPlanes) {
  core::Database db = TestDb(11, 5, 130, 4);
  core::ValuePlanes planes = core::PackDatabasePlanes(db);
  const std::string blob = SerializePlaneArtifact(planes);
  EXPECT_TRUE(LooksLikePlaneArtifact(blob));

  auto loaded = DeserializePlaneArtifact(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSamePlanes(planes, *loaded);
  // The reuse precondition holds end to end: a deserialized artifact still
  // matches the database it was packed from, and not a different one.
  EXPECT_TRUE(loaded->Matches(db));
  core::Database other = TestDb(12, 5, 130, 4);
  EXPECT_FALSE(loaded->Matches(other));
}

TEST(PlaneArtifactTest, EveryTruncationIsCorrupted) {
  core::Database db = TestDb(21, 3, 70, 3);
  const std::string blob =
      SerializePlaneArtifact(core::PackDatabasePlanes(db));
  for (size_t len = 0; len < blob.size(); ++len) {
    auto result = DeserializePlaneArtifact(blob.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kCorrupted)
        << "prefix length " << len;
  }
  // Trailing garbage is corruption too — the payload length is implied by
  // the dimensions, so extra bytes mean the frame is wrong.
  auto padded = DeserializePlaneArtifact(blob + std::string(8, '\0'));
  EXPECT_EQ(padded.status().code(), StatusCode::kCorrupted);
}

TEST(PlaneArtifactTest, EveryFlippedByteIsCorruptedOrRejected) {
  core::Database db = TestDb(31, 2, 65, 3);
  const std::string blob =
      SerializePlaneArtifact(core::PackDatabasePlanes(db));
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    auto result = DeserializePlaneArtifact(mutated);
    ASSERT_FALSE(result.ok()) << "flipped byte " << pos;
    // Most flips land in the checksummed body (kCorrupted); a flip in the
    // version field parses as an unsupported version (kInvalidArgument).
    EXPECT_TRUE(result.status().code() == StatusCode::kCorrupted ||
                result.status().code() == StatusCode::kInvalidArgument)
        << "flipped byte " << pos << ": " << result.status().ToString();
  }
}

TEST(PlaneArtifactTest, FileRoundTripAndMissingFile) {
  core::Database db = TestDb(41, 4, 100, 5);
  core::ValuePlanes planes = core::PackDatabasePlanes(db);
  const std::string path = "/tmp/hypermine_plane_artifact_test.planes";
  HM_CHECK_OK(WritePlaneArtifact(planes, path));
  auto loaded = ReadPlaneArtifact(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSamePlanes(planes, *loaded);
  std::remove(path.c_str());
  EXPECT_EQ(ReadPlaneArtifact(path).status().code(), StatusCode::kIoError);
}

TEST(PlaneArtifactTest, MemoryCachePacksOncePerDatabase) {
  core::Database db = TestDb(51, 4, 120, 4);
  core::Database other = TestDb(52, 4, 120, 4);
  PlaneCache cache;

  auto first = cache.GetOrPack(db);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->Matches(db));
  auto second = cache.GetOrPack(db);
  EXPECT_EQ(first.get(), second.get());  // same shared artifact, no repack
  auto third = cache.GetOrPack(other);
  EXPECT_NE(first.get(), third.get());
  EXPECT_TRUE(third->Matches(other));

  PlaneCacheStats stats = cache.stats();
  EXPECT_EQ(stats.packs, 2u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(PlaneArtifactTest, DiskCachePersistsAcrossInstances) {
  const std::string dir = "/tmp/hypermine_plane_cache_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  core::Database db = TestDb(61, 3, 90, 4);

  {
    PlaneCache cache(dir);
    auto packed = cache.GetOrPack(db);
    ASSERT_NE(packed, nullptr);
    EXPECT_EQ(cache.stats().packs, 1u);
  }
  // A fresh cache instance (fresh process, conceptually) finds the file.
  {
    PlaneCache cache(dir);
    auto loaded = cache.GetOrPack(db);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->Matches(db));
    PlaneCacheStats stats = cache.stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.packs, 0u);
    // Second lookup in the same instance is a memory hit.
    (void)cache.GetOrPack(db);
    EXPECT_EQ(cache.stats().memory_hits, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PlaneArtifactTest, CorruptCacheFileDegradesToPacking) {
  const std::string dir = "/tmp/hypermine_plane_cache_corrupt_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  core::Database db = TestDb(71, 3, 80, 3);

  {
    PlaneCache cache(dir);
    (void)cache.GetOrPack(db);
  }
  // Truncate every cached artifact in place.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    HM_CHECK_OK(hypermine::WriteStringToFile(entry.path().string(),
                                             "HMPLANES garbage"));
  }
  {
    PlaneCache cache(dir);
    auto packed = cache.GetOrPack(db);
    ASSERT_NE(packed, nullptr);
    EXPECT_TRUE(packed->Matches(db));
    PlaneCacheStats stats = cache.stats();
    EXPECT_EQ(stats.disk_hits, 0u);
    EXPECT_EQ(stats.packs, 1u);
  }
  // An unwritable cache dir also degrades to packing instead of failing.
  {
    PlaneCache cache(dir + "/does/not/exist");
    auto packed = cache.GetOrPack(db);
    ASSERT_NE(packed, nullptr);
    EXPECT_EQ(cache.stats().packs, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PlaneArtifactTest, ArtifactIsNotMistakenForSnapshot) {
  core::Database db = TestDb(81, 2, 50, 3);
  const std::string blob =
      SerializePlaneArtifact(core::PackDatabasePlanes(db));
  EXPECT_TRUE(LooksLikePlaneArtifact(blob));
  EXPECT_FALSE(LooksLikePlaneArtifact("HMSNAPSH rest"));
  EXPECT_FALSE(LooksLikePlaneArtifact(""));
}

}  // namespace
}  // namespace hypermine::serve
