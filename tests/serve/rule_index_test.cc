#include "serve/rule_index.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace hypermine::serve {
namespace {

using core::VertexId;

/// 0:A 1:B 2:C 3:D 4:E with a mix of single and pair tails into D/E.
core::DirectedHypergraph TestGraph() {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D", "E"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 3, 0.50).status());      // A -> D
  HM_CHECK_OK(graph->AddEdge({0}, 4, 0.30).status());      // A -> E
  HM_CHECK_OK(graph->AddEdge({1}, 3, 0.20).status());      // B -> D
  HM_CHECK_OK(graph->AddEdge({0, 1}, 4, 0.80).status());   // A,B -> E
  HM_CHECK_OK(graph->AddEdge({0, 1}, 2, 0.60).status());   // A,B -> C
  HM_CHECK_OK(graph->AddEdge({2}, 4, 0.90).status());      // C -> E
  return std::move(graph).value();
}

TEST(RuleIndexTest, BuildCounts) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  EXPECT_EQ(index.num_entries(), 6u);
  // Tail sets: {A}, {B}, {A,B}, {C}.
  EXPECT_EQ(index.num_tail_sets(), 4u);
  EXPECT_EQ(index.num_vertices(), 5u);
}

TEST(RuleIndexTest, TopKExactTailSortedByAcv) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  VertexId tail_a[] = {0};
  auto ranked = index.TopK(tail_a, 10);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].head, 3u);  // A -> D at 0.50 beats A -> E at 0.30
  EXPECT_EQ(ranked[0].acv, 0.50);
  EXPECT_EQ(ranked[1].head, 4u);

  // k truncates.
  EXPECT_EQ(index.TopK(tail_a, 1).size(), 1u);
  EXPECT_TRUE(index.TopK(tail_a, 0).empty());

  // Tail order does not matter for pair tails.
  VertexId ab[] = {0, 1};
  VertexId ba[] = {1, 0};
  EXPECT_EQ(index.TopK(ab, 10), index.TopK(ba, 10));
  ASSERT_EQ(index.TopK(ab, 10).size(), 2u);
  EXPECT_EQ(index.TopK(ab, 10)[0].head, 4u);  // 0.80 beats 0.60
}

TEST(RuleIndexTest, TopKUnknownOrInvalidTailIsEmpty) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  VertexId unknown[] = {3};
  EXPECT_TRUE(index.TopK(unknown, 5).empty());
  VertexId out_of_range[] = {4242};
  EXPECT_TRUE(index.TopK(out_of_range, 5).empty());
  VertexId duplicate[] = {0, 0};
  EXPECT_TRUE(index.TopK(duplicate, 5).empty());
  EXPECT_TRUE(index.TopK({}, 5).empty());
}

TEST(RuleIndexTest, TopKWithinUnionsSubsetsAndDedupesHeads) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  // Items {A, B} activate tails {A}, {B}, {A,B}:
  //   E best via (A,B)->E 0.80; C via (A,B)->C 0.60; D via A->D 0.50.
  VertexId items[] = {0, 1};
  auto ranked = index.TopKWithin(items, 10);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].head, 4u);
  EXPECT_EQ(ranked[0].acv, 0.80);
  EXPECT_EQ(ranked[1].head, 2u);
  EXPECT_EQ(ranked[1].acv, 0.60);
  EXPECT_EQ(ranked[2].head, 3u);
  EXPECT_EQ(ranked[2].acv, 0.50);

  // k truncates after the union.
  EXPECT_EQ(index.TopKWithin(items, 2).size(), 2u);

  // Duplicates and out-of-range items are tolerated.
  VertexId messy[] = {1, 0, 0, 9999};
  EXPECT_EQ(index.TopKWithin(messy, 10), ranked);
}

TEST(RuleIndexTest, ReachableFollowsPairTails) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  // From {A}: A->D (0.5), A->E (0.3); (A,B)->* never fires without B.
  VertexId a[] = {0};
  EXPECT_EQ(index.Reachable(a, 0.0),
            (std::vector<VertexId>{0, 3, 4}));
  // From {A, B}: pair edges fire, C joins, then C->E is redundant.
  VertexId ab[] = {0, 1};
  EXPECT_EQ(index.Reachable(ab, 0.0),
            (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(RuleIndexTest, ReachableRespectsMinAcv) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  VertexId ab[] = {0, 1};
  // min_acv=0.55 disables A->D (0.5), A->E (0.3), B->D (0.2); the pair
  // edges (0.8, 0.6) still fire and C->E (0.9) follows.
  EXPECT_EQ(index.Reachable(ab, 0.55),
            (std::vector<VertexId>{0, 1, 2, 4}));
  // min_acv above every weight: closure is just the seeds.
  EXPECT_EQ(index.Reachable(ab, 0.95),
            (std::vector<VertexId>{0, 1}));
}

TEST(RuleIndexTest, ReachableIgnoresBadSeeds) {
  RuleIndex index = RuleIndex::Build(TestGraph());
  VertexId seeds[] = {2, 2, 7777};
  EXPECT_EQ(index.Reachable(seeds, 0.0), (std::vector<VertexId>{2, 4}));
  EXPECT_TRUE(index.Reachable({}, 0.0).empty());
}

TEST(RuleIndexTest, TailKeyCanonicalization) {
  VertexId ab[] = {0, 1};
  VertexId ba[] = {1, 0};
  EXPECT_EQ(RuleIndex::TailKey(ab), RuleIndex::TailKey(ba));
  VertexId a[] = {0};
  EXPECT_NE(RuleIndex::TailKey(a), RuleIndex::TailKey(ab));
  VertexId dup[] = {1, 1};
  EXPECT_EQ(RuleIndex::TailKey(dup), RuleIndex::kInvalidTailKey);
  EXPECT_EQ(RuleIndex::TailKey({}), RuleIndex::kInvalidTailKey);
  // 0xFFFF is a legal id since the 32-bit widening; only ids at or past
  // kMaxVertices are rejected.
  VertexId formerly_big[] = {0xFFFF};
  EXPECT_NE(RuleIndex::TailKey(formerly_big), RuleIndex::kInvalidTailKey);
  VertexId big[] = {core::kMaxVertices};
  EXPECT_EQ(RuleIndex::TailKey(big), RuleIndex::kInvalidTailKey);
  // Full-width keys: ids congruent mod 2^16 no longer alias.
  VertexId low[] = {0};
  VertexId wide[] = {0x10000};
  EXPECT_NE(RuleIndex::TailKey(low), RuleIndex::TailKey(wide));
}

TEST(RuleIndexTest, EmptyGraphServesNothing) {
  auto graph = core::DirectedHypergraph::CreateAnonymous(3);
  HM_CHECK_OK(graph.status());
  RuleIndex index = RuleIndex::Build(*graph);
  EXPECT_EQ(index.num_entries(), 0u);
  VertexId v[] = {0};
  EXPECT_TRUE(index.TopK(v, 5).empty());
  EXPECT_TRUE(index.TopKWithin(v, 5).empty());
  EXPECT_EQ(index.Reachable(v, 0.0), (std::vector<VertexId>{0}));
}

}  // namespace
}  // namespace hypermine::serve
