#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/builder.h"
#include "core/discretize.h"
#include "core/export.h"
#include "util/csv.h"
#include "util/logging.h"

namespace hypermine::serve {
namespace {

core::DirectedHypergraph Named(std::vector<std::string> names) {
  auto graph = core::DirectedHypergraph::Create(std::move(names));
  HM_CHECK_OK(graph.status());
  return std::move(graph).value();
}

/// Structural equality: names, edge set, and exact weights.
void ExpectSameGraph(const core::DirectedHypergraph& a,
                     const core::DirectedHypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.vertex_names(), b.vertex_names());
  for (core::EdgeId id = 0; id < a.num_edges(); ++id) {
    const core::Hyperedge& e = a.edge(id);
    auto found = b.FindEdge(e.TailSpan(), e.head);
    ASSERT_TRUE(found.has_value()) << a.EdgeToString(id);
    // Bit-exact weights, not approximate: snapshots must be lossless.
    EXPECT_EQ(b.edge(*found).weight, e.weight) << a.EdgeToString(id);
  }
}

core::DirectedHypergraph RoundTrip(const core::DirectedHypergraph& graph) {
  auto reloaded = DeserializeSnapshot(SerializeSnapshot(graph));
  HM_CHECK_OK(reloaded.status());
  return std::move(reloaded).value();
}

TEST(SnapshotTest, RoundTripEmptyGraph) {
  core::DirectedHypergraph graph = Named({"only"});
  ExpectSameGraph(graph, RoundTrip(graph));
}

TEST(SnapshotTest, RoundTripIsolatedVerticesAndEmptyNames) {
  core::DirectedHypergraph graph = Named({"", "A", "isolated", "B"});
  ASSERT_TRUE(graph.AddEdge({1}, 3, 0.5).ok());
  ExpectSameGraph(graph, RoundTrip(graph));
}

TEST(SnapshotTest, RoundTripAllTailSizesAndWeightEdgeCases) {
  core::DirectedHypergraph graph = Named({"a", "b", "c", "d", "e"});
  ASSERT_TRUE(graph.AddEdge({0}, 4, 0.0).ok());
  ASSERT_TRUE(graph.AddEdge({0, 1}, 4, 1.0).ok());
  ASSERT_TRUE(graph.AddEdge({0, 1, 2}, 4, 0.12345678901234567).ok());
  ASSERT_TRUE(graph.AddEdge({1}, 0, 1e-300).ok());
  ExpectSameGraph(graph, RoundTrip(graph));
}

TEST(SnapshotTest, LosslessVersusCsvExportOnQuickstartGraph) {
  // The quickstart pipeline: Chapter 3 patient database -> C1 hypergraph.
  const std::vector<std::vector<double>> raw = {
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized = core::FloorDivDiscretize(series, 10.0);
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db = core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns);
  HM_CHECK_OK(db.status());
  core::HypergraphConfig config = core::ConfigC1();
  config.k = db->num_values();
  auto graph = core::BuildAssociationHypergraph(*db, config);
  HM_CHECK_OK(graph.status());
  ASSERT_GT(graph->num_edges(), 0u);

  const std::string csv_path = ::testing::TempDir() + "quickstart.csv";
  const std::string snap_path = ::testing::TempDir() + "quickstart.snap";
  ASSERT_TRUE(core::WriteHypergraphCsv(*graph, csv_path).ok());
  ASSERT_TRUE(WriteSnapshot(*graph, snap_path).ok());

  auto from_csv = core::ReadHypergraphCsv(csv_path);
  auto from_snap = ReadSnapshot(snap_path);
  HM_CHECK_OK(from_csv.status());
  HM_CHECK_OK(from_snap.status());
  ExpectSameGraph(*from_csv, *from_snap);
  ExpectSameGraph(*graph, *from_snap);

  // LoadHypergraph sniffs both formats.
  auto auto_csv = LoadHypergraph(csv_path);
  auto auto_snap = LoadHypergraph(snap_path);
  HM_CHECK_OK(auto_csv.status());
  HM_CHECK_OK(auto_snap.status());
  ExpectSameGraph(*auto_csv, *auto_snap);

  std::remove(csv_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, BinaryIsSmallerThanCsvAtScale) {
  // The 16-byte edge records undercut CSV's "%.17g" weights + names once
  // the graph has more than a handful of edges (the fixed header loses on
  // toy graphs, which is fine — snapshots exist for production models).
  auto graph = core::DirectedHypergraph::CreateAnonymous(500);
  HM_CHECK_OK(graph.status());
  size_t added = 0;
  for (core::VertexId a = 0; a < 500 && added < 2000; ++a) {
    for (core::VertexId b = 0; b < 500 && added < 2000; ++b) {
      if (a == b) continue;
      double weight = 1.0 / (1.0 + static_cast<double>(a + b));
      if (graph->AddEdge({a}, b, weight).ok()) ++added;
      if (a + 1 != b && b != 0 && a != 0 &&
          graph->AddEdge({0, a}, b, weight).ok()) {
        ++added;
      }
    }
  }
  std::string snap = SerializeSnapshot(*graph);
  const std::string csv_path = ::testing::TempDir() + "scale.csv";
  ASSERT_TRUE(core::WriteHypergraphCsv(*graph, csv_path).ok());
  auto csv = ReadFileToString(csv_path);
  HM_CHECK_OK(csv.status());
  // At least 1.5x smaller (16-byte records vs ~30-byte CSV rows).
  EXPECT_LT(snap.size() * 3, csv->size() * 2);
  std::remove(csv_path.c_str());
}

TEST(SnapshotTest, ReadSnapshotInfo) {
  core::DirectedHypergraph graph = Named({"x", "y", "z"});
  ASSERT_TRUE(graph.AddEdge({0, 1}, 2, 0.25).ok());
  const std::string path = ::testing::TempDir() + "info.snap";
  ASSERT_TRUE(WriteSnapshot(graph, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  // Small graphs serialize narrow: the writer emits version 2, not the
  // newest version, so pre-widening readers still load them.
  EXPECT_EQ(info->version, kNarrowSnapshotVersion);
  EXPECT_TRUE(info->has_spec());
  EXPECT_EQ(info->num_vertices, 3u);
  EXPECT_EQ(info->num_edges, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, NarrowGraphsSerializeAsVersion2) {
  // Byte-level pin of the adaptive writer: any graph within the old
  // 0xFFFE-vertex universe keeps the 16-bit record format (version 2) so
  // existing snapshots and third-party readers see no format change.
  core::DirectedHypergraph graph = Named({"a", "b"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  const std::string snap = SerializeSnapshot(graph);
  EXPECT_EQ(static_cast<uint32_t>(snap[8]), kNarrowSnapshotVersion);
  // Narrow body: counts (16) + name lengths (8) + names (2) + one 16-byte
  // edge record + spec trailer.
  auto loaded = DeserializeSnapshotFull(snap);
  ASSERT_TRUE(loaded.ok());
  ExpectSameGraph(graph, loaded->graph);
}

TEST(SnapshotTest, WideSnapshotRoundTripsBeyondOld16BitCap) {
  // A graph past the old 0xFFFE cap must serialize wide (version 3) and
  // round-trip exactly — including ids that would have truncated to
  // aliases under 16-bit records (0x10000 == 0 mod 2^16).
  auto graph = core::DirectedHypergraph::CreateAnonymous(0x10010);
  HM_CHECK_OK(graph.status());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.25).ok());
  ASSERT_TRUE(graph->AddEdge({0x10000}, 1, 0.75).ok());
  ASSERT_TRUE(graph->AddEdge({0x10000, 0x1000F}, 2, 0.5).ok());
  ASSERT_TRUE(graph->AddEdge({3, 4, 0x1000E}, 5, 0.125).ok());

  api::ModelSpec spec;
  spec.provenance.source = "wide snapshot test";
  const std::string snap = SerializeSnapshot(*graph, spec);
  EXPECT_EQ(static_cast<uint32_t>(snap[8]), kSnapshotVersion);

  auto loaded = DeserializeSnapshotFull(snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_spec);
  EXPECT_EQ(loaded->spec.provenance.source, "wide snapshot test");
  ExpectSameGraph(*graph, loaded->graph);

  // The index behind FindEdge distinguishes the 16-bit-aliasing pair
  // after the round trip.
  core::VertexId low[] = {0};
  core::VertexId high[] = {0x10000};
  auto found_low = loaded->graph.FindEdge(low, 1);
  auto found_high = loaded->graph.FindEdge(high, 1);
  ASSERT_TRUE(found_low.has_value());
  ASSERT_TRUE(found_high.has_value());
  EXPECT_EQ(loaded->graph.edge(*found_low).weight, 0.25);
  EXPECT_EQ(loaded->graph.edge(*found_high).weight, 0.75);

  // Wide snapshots fail cleanly when damaged: a sampling of truncations
  // (the exhaustive loop runs on narrow snapshots above; this body is
  // ~1 MB) and a flipped byte mid-body.
  for (size_t len : {size_t{0}, size_t{10}, size_t{100}, snap.size() / 2,
                     snap.size() - 9, snap.size() - 1}) {
    auto result = DeserializeSnapshot(snap.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kCorrupted)
        << "prefix length " << len;
  }
  std::string mutated = snap;
  mutated[snap.size() / 2] = static_cast<char>(mutated[snap.size() / 2] ^ 1);
  EXPECT_EQ(DeserializeSnapshot(mutated).status().code(),
            StatusCode::kCorrupted);
}

TEST(SnapshotTest, EveryTruncationIsCorrupted) {
  core::DirectedHypergraph graph = Named({"a", "b", "c"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  ASSERT_TRUE(graph.AddEdge({0, 2}, 1, 0.75).ok());
  const std::string full = SerializeSnapshot(graph);
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = DeserializeSnapshot(full.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kCorrupted)
        << "prefix length " << len;
  }
  EXPECT_TRUE(DeserializeSnapshot(full).ok());
}

TEST(SnapshotTest, EveryFlippedBodyByteIsCorrupted) {
  core::DirectedHypergraph graph = Named({"a", "b"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  const std::string full = SerializeSnapshot(graph);
  // Body starts after the 24-byte header; the checksum catches any flip.
  for (size_t pos = 24; pos < full.size(); ++pos) {
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    auto result = DeserializeSnapshot(mutated);
    ASSERT_FALSE(result.ok()) << "byte " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kCorrupted)
        << "byte " << pos;
  }
}

TEST(SnapshotTest, BadMagicIsCorrupted) {
  core::DirectedHypergraph graph = Named({"a"});
  std::string mutated = SerializeSnapshot(graph);
  mutated[0] = 'X';
  auto result = DeserializeSnapshot(mutated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorrupted);
}

TEST(SnapshotTest, TrailingGarbageIsCorrupted) {
  core::DirectedHypergraph graph = Named({"a", "b"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  std::string mutated = SerializeSnapshot(graph) + "extra";
  auto result = DeserializeSnapshot(mutated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorrupted);
}

TEST(SnapshotTest, VersionMismatchIsRejected) {
  core::DirectedHypergraph graph = Named({"a"});
  std::string mutated = SerializeSnapshot(graph);
  // The version field sits at offset 8 and is not checksummed, so this
  // exercises the version gate rather than corruption detection.
  mutated[8] = static_cast<char>(kSnapshotVersion + 1);
  auto result = DeserializeSnapshot(mutated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, MissingFileIsIoError) {
  auto result = ReadSnapshot("/nonexistent/path/model.snap");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().code(), StatusCode::kOk);
}

TEST(SnapshotTest, SpecTrailerRoundTrips) {
  core::DirectedHypergraph graph = Named({"a", "b", "c"});
  ASSERT_TRUE(graph.AddEdge({0, 1}, 2, 0.25).ok());
  api::ModelSpec spec;
  spec.config = core::ConfigC2();
  spec.config.restrict_pairs_to_edges = false;
  spec.config.keep_pairs_without_edges = false;
  spec.discretization = "equi-depth k=5";
  spec.provenance.source = "unit test";
  spec.provenance.git_sha = "abc123def456";
  spec.provenance.note = "trailer round trip";
  spec.provenance.created_unix = 1700000000;

  auto loaded = DeserializeSnapshotFull(SerializeSnapshot(graph, spec));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_spec);
  EXPECT_EQ(loaded->spec.provenance, spec.provenance);
  EXPECT_EQ(loaded->spec.discretization, spec.discretization);
  EXPECT_EQ(loaded->spec.config.k, spec.config.k);
  EXPECT_EQ(loaded->spec.config.gamma_edge, spec.config.gamma_edge);
  EXPECT_EQ(loaded->spec.config.gamma_hyper, spec.config.gamma_hyper);
  EXPECT_FALSE(loaded->spec.config.restrict_pairs_to_edges);
  EXPECT_FALSE(loaded->spec.config.keep_pairs_without_edges);
  ExpectSameGraph(graph, loaded->graph);
}

/// Serializes `graph` in the retired version-1 wire format (no spec
/// trailer) so backward compatibility stays pinned even though the writer
/// only emits v2 now.
std::string SerializeV1Snapshot(const core::DirectedHypergraph& graph) {
  auto append_pod = [](std::string* out, auto value) {
    char buf[sizeof(value)];
    std::memcpy(buf, &value, sizeof(value));
    out->append(buf, sizeof(value));
  };
  std::string body;
  append_pod(&body, static_cast<uint64_t>(graph.num_vertices()));
  append_pod(&body, static_cast<uint64_t>(graph.num_edges()));
  for (const std::string& name : graph.vertex_names()) {
    append_pod(&body, static_cast<uint32_t>(name.size()));
  }
  for (const std::string& name : graph.vertex_names()) body += name;
  for (core::EdgeId id = 0; id < graph.num_edges(); ++id) {
    const core::Hyperedge& e = graph.edge(id);
    for (core::VertexId v : e.tail) {
      append_pod(&body, v == core::kNoVertex
                            ? static_cast<uint16_t>(0xFFFF)
                            : static_cast<uint16_t>(v));
    }
    append_pod(&body, static_cast<uint16_t>(e.head));
    append_pod(&body, e.weight);
  }
  uint64_t checksum = 0xcbf29ce484222325ull;
  for (unsigned char c : body) {
    checksum ^= c;
    checksum *= 0x100000001b3ull;
  }
  std::string out("HMSNAPSH", 8);
  append_pod(&out, static_cast<uint32_t>(1));  // version
  append_pod(&out, static_cast<uint32_t>(0));  // flags
  append_pod(&out, checksum);
  out += body;
  return out;
}

TEST(SnapshotTest, Version1SnapshotStillLoads) {
  core::DirectedHypergraph graph = Named({"x", "y", "z"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  ASSERT_TRUE(graph.AddEdge({0, 2}, 1, 0.75).ok());
  const std::string v1 = SerializeV1Snapshot(graph);

  auto loaded = DeserializeSnapshotFull(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_spec);
  EXPECT_TRUE(loaded->spec.provenance.empty());
  ExpectSameGraph(graph, loaded->graph);

  // A v1 file with trailing bytes is still corrupt (there is no trailer
  // to absorb them), and truncated v1 files still fail cleanly.
  EXPECT_EQ(DeserializeSnapshot(v1 + "x").status().code(),
            StatusCode::kCorrupted);
  EXPECT_EQ(DeserializeSnapshot(v1.substr(0, v1.size() - 3))
                .status()
                .code(),
            StatusCode::kCorrupted);
}

TEST(SnapshotTest, LoadModelFileSurfacesSpecOnlyForV2Snapshots) {
  core::DirectedHypergraph graph = Named({"a", "b"});
  ASSERT_TRUE(graph.AddEdge({0}, 1, 0.5).ok());
  api::ModelSpec spec;
  spec.provenance.source = "load-model-file test";

  const std::string snap_path = ::testing::TempDir() + "lmf.snap";
  const std::string csv_path = ::testing::TempDir() + "lmf.csv";
  ASSERT_TRUE(WriteSnapshot(graph, spec, snap_path).ok());
  ASSERT_TRUE(core::WriteHypergraphCsv(graph, csv_path).ok());

  auto from_snap = LoadModelFile(snap_path);
  ASSERT_TRUE(from_snap.ok());
  EXPECT_TRUE(from_snap->has_spec);
  EXPECT_EQ(from_snap->spec.provenance.source, "load-model-file test");

  auto from_csv = LoadModelFile(csv_path);
  ASSERT_TRUE(from_csv.ok());
  EXPECT_FALSE(from_csv->has_spec);
  ExpectSameGraph(from_snap->graph, from_csv->graph);

  std::remove(snap_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace hypermine::serve
