// EventLoop on both backends: readiness, interest updates, timers, and
// the cross-thread wakeup. Parameterized over epoll and poll so the
// "portability fallback" stays exercised instead of rotting.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "util/logging.h"

namespace hypermine::net {
namespace {

class EventLoopTest : public ::testing::TestWithParam<EventLoop::Backend> {
 protected:
  EventLoop MakeLoop() {
    auto loop = EventLoop::Create(GetParam());
    HM_CHECK_OK(loop.status());
    return std::move(*loop);
  }
};

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() { HM_CHECK_EQ(::pipe(fds_), 0); read_fd = fds_[0]; write_fd = fds_[1]; }
  ~Pipe() {
    ::close(read_fd);
    ::close(write_fd);
  }
  void Put(char byte) { HM_CHECK_EQ(::write(write_fd, &byte, 1), 1); }
  int fds_[2];
};

TEST_P(EventLoopTest, ReportsReadableFdWithItsTag) {
  EventLoop loop = MakeLoop();
  Pipe pipe;
  ASSERT_TRUE(loop.Add(pipe.read_fd, 42, /*read=*/true, /*write=*/false).ok());

  std::vector<EventLoop::Event> events;
  auto n = loop.Wait(/*timeout_ms=*/0, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u) << "nothing written yet";

  pipe.Put('x');
  events.clear();
  n = loop.Wait(/*timeout_ms=*/1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_EQ(events[0].tag, 42u);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].timer);
}

TEST_P(EventLoopTest, UpdateChangesInterestAndTag) {
  EventLoop loop = MakeLoop();
  Pipe pipe;
  ASSERT_TRUE(loop.Add(pipe.read_fd, 1, /*read=*/true, /*write=*/false).ok());
  pipe.Put('x');

  // Interest off: the readable byte must not surface.
  ASSERT_TRUE(
      loop.Update(pipe.read_fd, 1, /*read=*/false, /*write=*/false).ok());
  std::vector<EventLoop::Event> events;
  auto n = loop.Wait(/*timeout_ms=*/0, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  // Interest (and tag) back on: surfaces under the new tag.
  ASSERT_TRUE(
      loop.Update(pipe.read_fd, 9, /*read=*/true, /*write=*/false).ok());
  events.clear();
  n = loop.Wait(/*timeout_ms=*/1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_EQ(events[0].tag, 9u);
}

TEST_P(EventLoopTest, AddRemoveLifecycleErrors) {
  EventLoop loop = MakeLoop();
  Pipe pipe;
  ASSERT_TRUE(loop.Add(pipe.read_fd, 1, true, false).ok());
  EXPECT_EQ(loop.Add(pipe.read_fd, 2, true, false).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(loop.Remove(pipe.read_fd).ok());
  EXPECT_EQ(loop.Remove(pipe.read_fd).code(), StatusCode::kNotFound);
  EXPECT_EQ(loop.Update(pipe.read_fd, 1, true, false).code(),
            StatusCode::kNotFound);
}

TEST_P(EventLoopTest, PeriodicTimerFiresAndRearms) {
  EventLoop loop = MakeLoop();
  loop.AddTimer(/*tag=*/5, /*interval_ms=*/20);
  int fires = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  while (fires < 3 && std::chrono::steady_clock::now() < deadline) {
    std::vector<EventLoop::Event> events;
    auto n = loop.Wait(/*timeout_ms=*/200, &events);
    ASSERT_TRUE(n.ok());
    for (const EventLoop::Event& event : events) {
      if (event.timer && event.tag == 5) ++fires;
    }
  }
  EXPECT_GE(fires, 3) << "a periodic timer must keep firing";
  loop.CancelTimer(5);
  std::vector<EventLoop::Event> events;
  auto n = loop.Wait(/*timeout_ms=*/60, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u) << "cancelled timers must not fire";
}

TEST_P(EventLoopTest, WakeupUnblocksWaitFromAnotherThread) {
  EventLoop loop = MakeLoop();
  const auto start = std::chrono::steady_clock::now();
  std::thread waker([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.Wakeup();
  });
  std::vector<EventLoop::Event> events;
  auto n = loop.Wait(/*timeout_ms=*/10000, &events);
  waker.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u) << "a wakeup is not an event";
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000)
      << "Wakeup must cut the 10 s wait short";
}

TEST_P(EventLoopTest, WakeupBeforeWaitIsSticky) {
  EventLoop loop = MakeLoop();
  loop.Wakeup();
  const auto start = std::chrono::steady_clock::now();
  std::vector<EventLoop::Event> events;
  auto n = loop.Wait(/*timeout_ms=*/10000, &events);
  ASSERT_TRUE(n.ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000)
      << "a pre-Wait wakeup must make Wait return immediately";
}

#if defined(__linux__)
INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(EventLoop::Backend::kEpoll,
                                           EventLoop::Backend::kPoll),
                         [](const auto& param_info) {
                           return param_info.param == EventLoop::Backend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });
#else
INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(EventLoop::Backend::kPoll),
                         [](const auto&) { return std::string("poll"); });
#endif

}  // namespace
}  // namespace hypermine::net
