// HttpConnection is a byte-in/byte-out state machine, so the parser is
// tested entirely in memory (including truncation at every byte); the
// end-to-end tests then stand up a real Server with an admin port and
// scrape /metrics, /healthz, /statusz over loopback during live query
// traffic.
#include "net/http.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace hypermine::net {
namespace {

constexpr char kSimpleGet[] =
    "GET /metrics HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Accept: text/plain\r\n"
    "\r\n";

TEST(HttpConnectionTest, ParsesACompleteGet) {
  HttpConnection conn;
  conn.Ingest(kSimpleGet);
  ASSERT_EQ(conn.pending_requests(), 1u);
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "localhost");
  EXPECT_EQ(request.FindHeader("no-such-header"), nullptr);
  EXPECT_FALSE(conn.corrupt());
  EXPECT_FALSE(conn.TakeRequest(&request));
}

TEST(HttpConnectionTest, TruncationAtEveryByteNeverYieldsAPartialRequest) {
  const std::string full = kSimpleGet;
  // Prefixes: no request may surface before the final byte, and no prefix
  // may be treated as corrupt.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    HttpConnection conn;
    conn.Ingest(std::string_view(full).substr(0, cut));
    EXPECT_EQ(conn.pending_requests(), 0u) << "cut=" << cut;
    EXPECT_FALSE(conn.corrupt()) << "cut=" << cut;
    EXPECT_TRUE(conn.wants_read()) << "cut=" << cut;
  }
  // One byte at a time into a single connection: exactly one request, only
  // after the last byte.
  HttpConnection conn;
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(conn.pending_requests(), 0u) << "i=" << i;
    conn.Ingest(std::string_view(&full[i], 1));
  }
  ASSERT_EQ(conn.pending_requests(), 1u);
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.path, "/metrics");
}

TEST(HttpConnectionTest, QueryStringSplitsOffThePath) {
  HttpConnection conn;
  conn.Ingest("GET /statusz?verbose=1 HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.target, "/statusz?verbose=1");
  EXPECT_EQ(request.path, "/statusz");
}

TEST(HttpConnectionTest, KeepAliveResolution) {
  struct Case {
    const char* head;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpConnection conn;
    conn.Ingest(c.head);
    HttpRequest request;
    ASSERT_TRUE(conn.TakeRequest(&request)) << c.head;
    EXPECT_EQ(request.keep_alive, c.keep_alive) << c.head;
  }
}

TEST(HttpConnectionTest, PipelinedRequestsComeOutInOrder) {
  HttpConnection conn;
  conn.Ingest(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(conn.pending_requests(), 2u);
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.path, "/healthz");
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.path, "/metrics");
}

TEST(HttpConnectionTest, BadRequestLineIsCorrupt) {
  HttpConnection conn;
  conn.Ingest("NOT-HTTP\r\n\r\n");
  EXPECT_TRUE(conn.corrupt());
  EXPECT_EQ(conn.pending_requests(), 0u);
  EXPECT_FALSE(conn.wants_read());
}

TEST(HttpConnectionTest, UnknownVersionIsCorrupt) {
  HttpConnection conn;
  conn.Ingest("GET / HTTP/2.0\r\n\r\n");
  EXPECT_TRUE(conn.corrupt());
}

TEST(HttpConnectionTest, RequestBodiesAreAParseError) {
  {
    HttpConnection conn;
    conn.Ingest("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
    EXPECT_TRUE(conn.corrupt());
  }
  {
    HttpConnection conn;
    conn.Ingest("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    EXPECT_TRUE(conn.corrupt());
  }
}

TEST(HttpConnectionTest, OversizedHeadIsFatal) {
  HttpConnection::Options options;
  options.max_head_bytes = 128;
  HttpConnection conn(options);
  // An unterminated head larger than the cap: fatal even though no blank
  // line ever arrives.
  std::string head = "GET / HTTP/1.1\r\n";
  head += "X-Padding: " + std::string(256, 'a') + "\r\n";
  conn.Ingest(head);
  EXPECT_TRUE(conn.corrupt());
  // A head under the cap is unaffected.
  HttpConnection small(options);
  small.Ingest("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(small.corrupt());
  EXPECT_EQ(small.pending_requests(), 1u);
}

TEST(HttpConnectionTest, PeerCloseMidHeadIsCorruptBetweenRequestsClean) {
  {
    HttpConnection conn;
    conn.Ingest("GET /metr");  // mid-head
    conn.OnPeerClosed();
    EXPECT_TRUE(conn.corrupt());
    EXPECT_TRUE(conn.peer_closed());
  }
  {
    HttpConnection conn;
    conn.Ingest("GET / HTTP/1.1\r\n\r\n");
    conn.OnPeerClosed();  // clean end of stream
    EXPECT_FALSE(conn.corrupt());
    EXPECT_TRUE(conn.peer_closed());
    EXPECT_EQ(conn.pending_requests(), 1u);
  }
}

TEST(HttpConnectionTest, BlankLinesBeforeTheRequestLineAreTolerated) {
  // RFC 9112 2.2: a server SHOULD ignore at least one empty line received
  // prior to the request line (a stray CRLF after a previous request).
  HttpConnection conn;
  conn.Ingest("\r\nGET /healthz HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_FALSE(conn.corrupt());
}

TEST(HttpConnectionTest, PendingRequestCapPausesReads) {
  HttpConnection::Options options;
  options.max_pending_requests = 2;
  HttpConnection conn(options);
  conn.Ingest(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n");
  EXPECT_EQ(conn.pending_requests(), 2u);
  EXPECT_FALSE(conn.wants_read());
  HttpRequest request;
  ASSERT_TRUE(conn.TakeRequest(&request));
  EXPECT_TRUE(conn.wants_read());
}

TEST(HttpConnectionTest, WriteSideFollowsTheConnectionDrainContract) {
  HttpConnection conn;
  EXPECT_FALSE(conn.wants_write());
  conn.QueueWrite("hello ");
  conn.QueueWrite("world");
  EXPECT_TRUE(conn.wants_write());
  EXPECT_EQ(conn.write_queued(), 11u);
  EXPECT_EQ(conn.write_head(), "hello ");
  conn.ConsumeWrite(3);
  EXPECT_EQ(conn.write_head(), "lo ");
  conn.ConsumeWrite(3);
  EXPECT_EQ(conn.write_head(), "world");
  conn.ConsumeWrite(5);
  EXPECT_FALSE(conn.wants_write());
  EXPECT_EQ(conn.write_queued(), 0u);
}

TEST(HttpConnectionTest, WriteHighWaterPausesReads) {
  HttpConnection::Options options;
  options.write_high_water = 8;
  HttpConnection conn(options);
  EXPECT_TRUE(conn.wants_read());
  conn.QueueWrite("0123456789");  // over the high-water mark
  EXPECT_FALSE(conn.wants_read());
  conn.ConsumeWrite(10);
  EXPECT_TRUE(conn.wants_read());
}

TEST(EncodeHttpResponseTest, SerializesStatusHeadersAndBody) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = "ok\n";
  const std::string wire = EncodeHttpResponse(response, /*keep_alive=*/true);
  EXPECT_EQ(wire.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(
      wire.find(
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
      std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "\r\n\r\nok\n");
}

TEST(EncodeHttpResponseTest, CloseAndExtraHeaders) {
  HttpResponse response;
  response.status = 405;
  response.headers.push_back({"Allow", "GET"});
  const std::string wire = EncodeHttpResponse(response, /*keep_alive=*/false);
  EXPECT_EQ(wire.find("HTTP/1.1 405 Method Not Allowed\r\n"), 0u);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Allow: GET\r\n"), std::string::npos);
}

TEST(HttpReasonPhraseTest, CoversTheAdminPlaneStatuses) {
  EXPECT_EQ(HttpReasonPhrase(200), "OK");
  EXPECT_EQ(HttpReasonPhrase(400), "Bad Request");
  EXPECT_EQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_EQ(HttpReasonPhrase(405), "Method Not Allowed");
  EXPECT_EQ(HttpReasonPhrase(503), "Service Unavailable");
  EXPECT_EQ(HttpReasonPhrase(999), "Unknown");
}

// ---------------------------------------------------------------------------
// End to end: the admin plane on a live server.
// ---------------------------------------------------------------------------

/// Small named model: A -> {B, C}, {A, B} -> D, C -> D (same shape as
/// tests/net/server_test.cc).
std::shared_ptr<const api::Model> NamedModel() {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 1, 0.9).status());
  HM_CHECK_OK(graph->AddEdge({0}, 2, 0.5).status());
  HM_CHECK_OK(graph->AddEdge({0, 1}, 3, 0.8).status());
  HM_CHECK_OK(graph->AddEdge({2}, 3, 0.7).status());
  return api::Model::FromGraph(std::move(graph).value(), {});
}

struct AdminServer {
  metrics::Registry registry;
  std::shared_ptr<const api::Model> model;
  std::unique_ptr<api::Engine> engine;
  std::unique_ptr<Server> server;
};

std::unique_ptr<AdminServer> StartAdminServerOrDie() {
  auto fixture = std::make_unique<AdminServer>();
  fixture->model = NamedModel();
  fixture->engine = std::make_unique<api::Engine>(fixture->model);
  ServerOptions options;
  options.port = 0;
  options.admin_port = 0;  // ephemeral — tests must not collide on ports
  options.registry = &fixture->registry;
  auto server = Server::Start(fixture->engine.get(), options);
  HM_CHECK_OK(server.status());
  fixture->server = std::move(*server);
  return fixture;
}

Socket ConnectAdminOrDie(uint16_t port) {
  auto socket = Socket::Connect("127.0.0.1", port, /*retry_ms=*/2000);
  HM_CHECK_OK(socket.status());
  return std::move(*socket);
}

/// Reads one complete HTTP response (head + Content-Length body) off a
/// blocking socket; returns what arrived before EOF if the peer closes.
std::string ReadOneResponse(Socket* socket) {
  std::string data;
  size_t need = std::string::npos;
  char buffer[4096];
  while (true) {
    const size_t head_end = data.find("\r\n\r\n");
    if (head_end != std::string::npos && need == std::string::npos) {
      need = head_end + 4;
      const size_t mark = data.find("Content-Length: ");
      HM_CHECK(mark != std::string::npos && mark < head_end);
      need += static_cast<size_t>(
          std::stoul(data.substr(mark + 16, head_end - mark - 16)));
    }
    if (need != std::string::npos && data.size() >= need) {
      return data.substr(0, need);
    }
    Socket::IoResult result = socket->ReadSome(buffer, sizeof(buffer));
    HM_CHECK_OK(result.status);
    if (result.closed) return data;
    data.append(buffer, result.bytes);
  }
}

std::string Get(Socket* socket, const std::string& path,
                bool keep_alive = true) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: test\r\n";
  if (!keep_alive) request += "Connection: close\r\n";
  request += "\r\n";
  HM_CHECK_OK(socket->WriteAll(request.data(), request.size()));
  return ReadOneResponse(socket);
}

api::QueryRequest NamedQuery(std::vector<std::string> names) {
  api::QueryRequest request;
  request.names = std::move(names);
  request.k = 10;
  return request;
}

TEST(AdminPlaneTest, HealthzAnswersOkWhileServing) {
  auto fixture = StartAdminServerOrDie();
  ASSERT_NE(fixture->server->admin_port(), 0);
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  const std::string response = Get(&admin, "/healthz");
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);
}

TEST(AdminPlaneTest, MetricsScrapeDuringLiveTrafficSeesTheCountersMove) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());

  // Before any query traffic: the counter exists and reads zero.
  std::string scrape = Get(&admin, "/metrics");
  EXPECT_EQ(scrape.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(
      scrape.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  EXPECT_NE(scrape.find("hypermine_net_queries_answered_total 0"),
            std::string::npos);

  // Live traffic on the query plane, then scrape again over the SAME
  // keep-alive admin connection: counters and stage histograms moved.
  auto client = Client::Connect("127.0.0.1", fixture->server->port(), 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 3; ++i) {
    auto response = client->Query(NamedQuery({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, StatusCode::kOk);
  }
  scrape = Get(&admin, "/metrics");
  EXPECT_NE(scrape.find("hypermine_net_queries_answered_total 3"),
            std::string::npos);
  EXPECT_NE(scrape.find("hypermine_net_connections_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(scrape.find("hypermine_net_queue_wait_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(scrape.find("hypermine_engine_batch_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(scrape.find("hypermine_net_write_drain_seconds_bucket"),
            std::string::npos);
  // Model versions are process-unique, so resolve the live one.
  EXPECT_NE(scrape.find("hypermine_model_info{model_version=\"" +
                        std::to_string(fixture->model->version()) +
                        "\"} 1"),
            std::string::npos);
}

TEST(AdminPlaneTest, StatuszCarriesModelAndServerState) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  const std::string response = Get(&admin, "/statusz");
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"model\""), std::string::npos);
  EXPECT_NE(response.find("\"version\": " +
                          std::to_string(fixture->model->version())),
            std::string::npos);
  EXPECT_NE(response.find("\"server\""), std::string::npos);
  EXPECT_NE(response.find("\"uptime_seconds\""), std::string::npos);
}

TEST(AdminPlaneTest, UnknownPathIs404UnknownMethodIs405) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  std::string response = Get(&admin, "/nope");
  EXPECT_EQ(response.find("HTTP/1.1 404 Not Found\r\n"), 0u);

  // Same keep-alive connection: a POST gets 405 with an Allow header.
  const std::string post = "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(admin.WriteAll(post.data(), post.size()).ok());
  response = ReadOneResponse(&admin);
  EXPECT_EQ(response.find("HTTP/1.1 405 Method Not Allowed\r\n"), 0u);
  EXPECT_NE(response.find("Allow: GET\r\n"), std::string::npos);
}

TEST(AdminPlaneTest, ConnectionCloseIsHonored) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  const std::string response = Get(&admin, "/healthz", /*keep_alive=*/false);
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  // The server closes its end after the flush: the next read is EOF.
  char byte;
  Status read = admin.ReadFull(&byte, 1);
  EXPECT_FALSE(read.ok());
}

TEST(AdminPlaneTest, GarbageOnTheAdminPortGets400ThenClose) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  const std::string garbage = "THIS IS NOT HTTP\r\n\r\n";
  ASSERT_TRUE(admin.WriteAll(garbage.data(), garbage.size()).ok());
  const std::string response = ReadOneResponse(&admin);
  EXPECT_EQ(response.find("HTTP/1.1 400 Bad Request\r\n"), 0u);
  char byte;
  Status read = admin.ReadFull(&byte, 1);
  EXPECT_FALSE(read.ok());

  // The admin plane survives the bad client.
  Socket again = ConnectAdminOrDie(fixture->server->admin_port());
  EXPECT_EQ(Get(&again, "/healthz").find("HTTP/1.1 200 OK\r\n"), 0u);
}

TEST(AdminPlaneTest, AdminTrafficDoesNotPerturbQueryPlaneStats) {
  auto fixture = StartAdminServerOrDie();
  Socket admin = ConnectAdminOrDie(fixture->server->admin_port());
  (void)Get(&admin, "/healthz");
  (void)Get(&admin, "/metrics");
  ServerStats stats = fixture->server->stats();
  // server_test asserts exact query-plane counts; admin connections and
  // requests must stay out of them.
  EXPECT_EQ(stats.connections_accepted, 0u);
  EXPECT_EQ(stats.queries_answered, 0u);
  EXPECT_EQ(stats.admin_requests, 2u);
}

TEST(AdminPlaneTest, DisabledByDefault) {
  auto engine = std::make_unique<api::Engine>(NamedModel());
  ServerOptions options;
  options.port = 0;
  auto server = Server::Start(engine.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ((*server)->admin_port(), 0) << "no admin listener bound";
}

}  // namespace
}  // namespace hypermine::net
