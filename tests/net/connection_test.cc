// net::Connection is the event-loop server's per-socket state machine,
// deliberately free of descriptors so every nasty transport schedule —
// 1-byte partial reads, short writes under EPOLLOUT backpressure, a peer
// dying mid-frame — is drivable deterministically in memory. These tests
// are the reason the reactor itself can stay thin.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "util/logging.h"

namespace hypermine::net {
namespace {

api::QueryRequest Named(std::vector<std::string> names, size_t k = 10) {
  api::QueryRequest request;
  request.names = std::move(names);
  request.k = k;
  return request;
}

std::string QueryFrame(uint64_t request_id,
                       const api::QueryRequest& request) {
  std::string frame;
  HM_CHECK_OK(EncodeQueryFrame(request_id, request, &frame));
  return frame;
}

TEST(ConnectionTest, WholeFrameDecodesToOnePendingFrame) {
  Connection conn;
  conn.Ingest(QueryFrame(7, Named({"A", "B"})));
  ASSERT_EQ(conn.pending_frames(), 1u);
  std::vector<PendingFrame> batch = conn.TakeBatch(64);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].pre.ok());
  EXPECT_EQ(batch[0].header.request_id, 7u);
  api::QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryBody(batch[0].body, &decoded).ok());
  EXPECT_EQ(decoded.names, (std::vector<std::string>{"A", "B"}));
  EXPECT_FALSE(conn.corrupt());
  EXPECT_EQ(conn.pending_frames(), 0u);
}

TEST(ConnectionTest, OneByteDripReassemblesEveryFrame) {
  // The pathological partial-read schedule: every epoll wakeup delivers
  // exactly one byte. Three pipelined frames must come out whole, in
  // order, with no state leaking between them.
  Connection conn;
  std::string stream = QueryFrame(1, Named({"A"})) +
                       QueryFrame(2, Named({"B", "C"})) +
                       QueryFrame(3, Named({"D"}, 3));
  for (char byte : stream) {
    conn.Ingest(std::string_view(&byte, 1));
    ASSERT_FALSE(conn.corrupt());
  }
  ASSERT_EQ(conn.pending_frames(), 3u);
  std::vector<PendingFrame> batch = conn.TakeBatch(64);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].header.request_id, i + 1);
    api::QueryRequest decoded;
    EXPECT_TRUE(DecodeQueryBody(batch[i].body, &decoded).ok())
        << "frame " << i;
  }
}

TEST(ConnectionTest, TakeBatchRespectsMaxBatchAndArrivalOrder) {
  Connection conn;
  for (uint64_t id = 1; id <= 5; ++id) {
    conn.Ingest(QueryFrame(id, Named({"A"})));
  }
  std::vector<PendingFrame> first = conn.TakeBatch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].header.request_id, 1u);
  EXPECT_EQ(first[2].header.request_id, 3u);
  std::vector<PendingFrame> rest = conn.TakeBatch(3);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].header.request_id, 4u);
  EXPECT_EQ(rest[1].header.request_id, 5u);
}

TEST(ConnectionTest, BadMagicIsFatalButEarlierFramesSurvive) {
  Connection conn;
  std::string good = QueryFrame(1, Named({"A"}));
  std::string garbage = "GET / HTTP/1.1\r\nHost: nonsense\r\n\r\n";
  conn.Ingest(good + garbage);
  EXPECT_TRUE(conn.corrupt());
  EXPECT_EQ(conn.error().code(), StatusCode::kCorrupted);
  // The frame decoded before the violation is still served.
  EXPECT_EQ(conn.pending_frames(), 1u);
  // Bytes after corruption are ignored, not parsed.
  conn.Ingest(QueryFrame(2, Named({"B"})));
  EXPECT_EQ(conn.pending_frames(), 1u);
}

TEST(ConnectionTest, MidFrameCloseIsCorruption) {
  Connection conn;
  std::string frame = QueryFrame(1, Named({"A"}));
  conn.Ingest(std::string_view(frame).substr(0, kFrameHeaderBytes + 2));
  EXPECT_FALSE(conn.corrupt());
  conn.OnPeerClosed();
  EXPECT_TRUE(conn.peer_closed());
  EXPECT_TRUE(conn.corrupt());
  EXPECT_EQ(conn.error().code(), StatusCode::kCorrupted);
  EXPECT_FALSE(conn.wants_read());
}

TEST(ConnectionTest, CleanCloseBetweenFramesIsNotCorruption) {
  Connection conn;
  conn.Ingest(QueryFrame(1, Named({"A"})));
  conn.OnPeerClosed();
  EXPECT_TRUE(conn.peer_closed());
  EXPECT_FALSE(conn.corrupt());
  // The pipelined frame sent before the close still gets answered.
  EXPECT_EQ(conn.pending_frames(), 1u);
  EXPECT_FALSE(conn.wants_read());
}

TEST(ConnectionTest, OversizedBodyIsSkippedAndStreamStaysFramed) {
  Connection::Options options;
  options.max_frame_bytes = 64;
  Connection conn(options);

  // A well-formed frame whose body exceeds the 64-byte admission cap,
  // dripped in small pieces so the skip path crosses Ingest calls.
  std::vector<std::string> many(24, std::string(48, 'z'));
  std::string big = QueryFrame(9, Named(std::move(many)));
  ASSERT_GT(big.size(), kFrameHeaderBytes + 64);
  for (size_t i = 0; i < big.size(); i += 7) {
    conn.Ingest(std::string_view(big).substr(i, 7));
  }
  std::string small = QueryFrame(10, Named({"A"}));
  conn.Ingest(small);

  EXPECT_FALSE(conn.corrupt());
  ASSERT_EQ(conn.pending_frames(), 2u);
  std::vector<PendingFrame> batch = conn.TakeBatch(64);
  // The oversized frame is pre-rejected (body never materialized), in
  // arrival order; the follow-up frame decodes normally.
  EXPECT_EQ(batch[0].header.request_id, 9u);
  EXPECT_EQ(batch[0].pre.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[0].body.empty());
  EXPECT_EQ(batch[1].header.request_id, 10u);
  EXPECT_TRUE(batch[1].pre.ok());
}

TEST(ConnectionTest, ShortWritesDrainTheQueueInOrder) {
  // EPOLLOUT backpressure: the kernel takes a few bytes per readiness
  // event; ConsumeWrite must walk chunk boundaries without losing or
  // reordering a byte.
  Connection conn;
  conn.QueueWrite("hello ");
  conn.QueueWrite("event ");
  conn.QueueWrite("loop");
  EXPECT_TRUE(conn.wants_write());
  EXPECT_EQ(conn.write_queued(), 16u);

  std::string wire;
  while (conn.wants_write()) {
    std::string_view head = conn.write_head();
    ASSERT_FALSE(head.empty());
    const size_t n = std::min<size_t>(3, head.size());  // short write
    wire.append(head.substr(0, n));
    conn.ConsumeWrite(n);
  }
  EXPECT_EQ(wire, "hello event loop");
  EXPECT_EQ(conn.write_queued(), 0u);
  EXPECT_EQ(conn.write_head(), std::string_view());
}

TEST(ConnectionTest, WriteHighWaterPausesReadsUntilDrained) {
  Connection::Options options;
  options.write_high_water = 10;
  Connection conn(options);
  EXPECT_TRUE(conn.wants_read());
  conn.QueueWrite("0123456789ABCDEF");  // 16 bytes > high water 10
  EXPECT_FALSE(conn.wants_read()) << "a client that stops reading its "
                                     "responses must stop being read from";
  conn.ConsumeWrite(7);  // 9 left, below the mark
  EXPECT_TRUE(conn.wants_read());
}

TEST(ConnectionTest, PendingFrameBoundPausesReads) {
  Connection::Options options;
  options.max_pending_frames = 2;
  Connection conn(options);
  conn.Ingest(QueryFrame(1, Named({"A"})));
  EXPECT_TRUE(conn.wants_read());
  conn.Ingest(QueryFrame(2, Named({"A"})));
  EXPECT_FALSE(conn.wants_read());
  // Draining a batch reopens the tap.
  conn.TakeBatch(1);
  EXPECT_TRUE(conn.wants_read());
}

TEST(ConnectionTest, ZeroBoundsMeanUnlimitedNotZero) {
  // 0 follows the server options' idiom (0 = disabled); a literal
  // zero-byte budget would permanently pause reads on every connection.
  Connection::Options options;
  options.write_high_water = 0;
  options.max_pending_frames = 0;
  Connection conn(options);
  conn.QueueWrite(std::string(1u << 20, 'x'));
  conn.Ingest(QueryFrame(1, Named({"A"})));
  EXPECT_TRUE(conn.wants_read());
}

TEST(ConnectionTest, ProtocolCapViolationIsFatalNotSkipped) {
  // Above the server's per-frame cap → skip; above the PROTOCOL cap →
  // framing corruption (DecodeFrameHeader's contract). The state machine
  // must preserve that distinction.
  Connection conn;
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kQuery);
  header.request_id = 1;
  header.body_len = kMaxBodyBytes + 1;
  std::string raw;
  EncodeFrameHeader(header, &raw);
  conn.Ingest(raw);
  EXPECT_TRUE(conn.corrupt());
  EXPECT_EQ(conn.pending_frames(), 0u);
}

}  // namespace
}  // namespace hypermine::net
