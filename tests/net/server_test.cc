// net::Server end to end over real loopback sockets: wire answers must
// match in-process api::Engine answers, admission control must reject
// (never stall, never drop), malformed streams must not take the server
// down, and a hot swap under live connections must flip model_version with
// zero dropped or misrouted responses.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace hypermine::net {
namespace {

/// Small named model: A -> {B, C}, {A, B} -> D, C -> D.
std::shared_ptr<const api::Model> NamedModel() {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 1, 0.9).status());
  HM_CHECK_OK(graph->AddEdge({0}, 2, 0.5).status());
  HM_CHECK_OK(graph->AddEdge({0, 1}, 3, 0.8).status());
  HM_CHECK_OK(graph->AddEdge({2}, 3, 0.7).status());
  return api::Model::FromGraph(std::move(graph).value(), {});
}

/// A model over the same vertex names whose single rule A -> `head` marks
/// it: any answer reveals which model produced it (swap-test probe).
std::shared_ptr<const api::Model> MarkedModel(core::VertexId head) {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, head, 0.9).status());
  return api::Model::FromGraph(std::move(graph).value(), {});
}

std::unique_ptr<Server> StartOrDie(api::Engine* engine,
                                   ServerOptions options = {}) {
  options.port = 0;  // ephemeral — tests must not collide on ports
  auto server = Server::Start(engine, options);
  HM_CHECK_OK(server.status());
  return std::move(*server);
}

Client ConnectOrDie(uint16_t port) {
  auto client = Client::Connect("127.0.0.1", port, /*retry_ms=*/2000);
  HM_CHECK_OK(client.status());
  return std::move(*client);
}

api::QueryRequest Named(std::vector<std::string> names, size_t k = 10) {
  api::QueryRequest request;
  request.names = std::move(names);
  request.k = k;
  return request;
}

TEST(ServerTest, WireAnswersMatchInProcessEngine) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  api::QueryRequest request = Named({"A"});
  auto wire = client.Query(request);
  ASSERT_TRUE(wire.ok()) << wire.status();
  ASSERT_EQ(wire->code, StatusCode::kOk);

  std::shared_ptr<const api::Model> model;
  auto local = engine.Query(request, &model);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(wire->ranked.size(), local->ranked.size());
  for (size_t i = 0; i < wire->ranked.size(); ++i) {
    EXPECT_EQ(wire->ranked[i].name,
              model->graph().vertex_name(local->ranked[i].head));
    EXPECT_DOUBLE_EQ(wire->ranked[i].acv, local->ranked[i].acv);
  }
  EXPECT_EQ(wire->model_version, local->model_version);
}

TEST(ServerTest, ReachableClosureTravelsAsSortedNames) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  api::QueryRequest request = Named({"A"});
  request.kind = api::QueryRequest::Kind::kReachable;
  request.min_acv = 0.6;
  auto wire = client.Query(request);
  ASSERT_TRUE(wire.ok()) << wire.status();
  ASSERT_EQ(wire->code, StatusCode::kOk);
  // A fires A->B (0.9); then {A,B}->D (0.8). A->C (0.5) is below 0.6.
  EXPECT_EQ(wire->closure, (std::vector<std::string>{"A", "B", "D"}));
}

TEST(ServerTest, PipelinedBatchKeepsOrderAndIsolatesPerQueryErrors) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests = {
      Named({"A"}), Named({"NO_SUCH_VERTEX"}), Named({"C"})};
  auto responses = client.QueryMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 3u);
  EXPECT_EQ((*responses)[0].code, StatusCode::kOk);
  EXPECT_FALSE((*responses)[0].ranked.empty());
  // The bad query fails alone; its neighbors still answer.
  EXPECT_EQ((*responses)[1].code, StatusCode::kNotFound);
  EXPECT_EQ((*responses)[2].code, StatusCode::kOk);
}

TEST(ServerTest, PerConnectionQuotaRejectsWithResourceExhausted) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.max_queries_per_connection = 3;
  auto server = StartOrDie(&engine, options);

  Client client = ConnectOrDie(server->port());
  std::vector<api::QueryRequest> requests(5, Named({"A"}));
  auto responses = client.QueryMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 5u) << "rejections must be answered, "
                                      "not dropped";
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*responses)[i].code, StatusCode::kOk) << "i=" << i;
  }
  for (size_t i = 3; i < 5; ++i) {
    EXPECT_EQ((*responses)[i].code, StatusCode::kResourceExhausted)
        << "i=" << i;
  }

  // The quota is per connection: over the same connection it stays
  // exhausted, while a fresh connection starts a fresh quota.
  auto again = client.Query(Named({"A"}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, StatusCode::kResourceExhausted);
  Client fresh = ConnectOrDie(server->port());
  auto fresh_response = fresh.Query(Named({"A"}));
  ASSERT_TRUE(fresh_response.ok());
  EXPECT_EQ(fresh_response->code, StatusCode::kOk);
}

TEST(ServerTest, LargePipelineDoesNotDeadlockOnSocketBuffers) {
  // Regression: QueryMany once wrote every frame before reading any
  // response; past the socket buffer capacity the server blocks writing
  // responses nobody reads while the client blocks writing requests
  // nobody reads. The windowed client must finish any batch size.
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests(
      Client::kPipelineWindow * 40, Named({"A", "B", "C"}));
  auto responses = client.QueryMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), requests.size());
  for (const WireResponse& response : *responses) {
    EXPECT_EQ(response.code, StatusCode::kOk);
  }
}

TEST(ServerTest, EncodeFailureMidBatchDoesNotPoisonTheConnection) {
  // Regression: QueryMany once sent frames before validating later ones;
  // an unencodable request mid-batch left unread responses that made the
  // next call on the same connection fail as "misrouted".
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests = {Named({"A"}),
                                             api::QueryRequest{},  // no names
                                             Named({"C"})};
  auto responses = client.QueryMany(requests);
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), StatusCode::kInvalidArgument);

  auto after = client.Query(Named({"A"}));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->code, StatusCode::kOk);
}

TEST(ServerTest, ManyConnectionsOnATinySharedPool) {
  // The event loop decouples connection count from pool size: a shared
  // pool of 2 workers must serve far more than 2 live connections (the
  // old thread-per-connection server rejected exactly this at Start).
  api::Engine engine(NamedModel());
  ThreadPool tiny(2);
  ServerOptions options;
  options.port = 0;
  options.pool = &tiny;
  options.max_connections = 64;
  auto server = Server::Start(&engine, options);
  ASSERT_TRUE(server.ok()) << server.status();

  constexpr size_t kClients = 16;  // 8x the pool size, all concurrent
  std::vector<std::thread> threads;
  std::atomic<uint64_t> ok{0};
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client client = ConnectOrDie((*server)->port());
      for (int round = 0; round < 4; ++round) {
        auto response = client.Query(Named({"A"}));
        if (response.ok() && response->code == StatusCode::kOk) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kClients * 4);
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.connections_rejected, 0u);
}

TEST(ServerTest, IdleConnectionsVastlyOutnumberPoolThreads) {
  // The core multiplexing claim: hundreds of idle (never-written)
  // connections coexist with live traffic on a pool of 2, and none of
  // them is rejected or interferes with answers.
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_threads = 2;
  options.max_connections = 512;
  auto server = StartOrDie(&engine, options);

  std::vector<Socket> idle;
  for (int i = 0; i < 256; ++i) {
    auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(socket.ok()) << socket.status();
    idle.push_back(std::move(*socket));
  }
  Client busy = ConnectOrDie(server->port());
  for (int round = 0; round < 8; ++round) {
    auto response = busy.Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, StatusCode::kOk);
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, 257u);
  EXPECT_EQ(stats.connections_rejected, 0u);
}

TEST(ServerTest, QueueDepthNeverDropsQueries) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.max_queue_depth = 1;
  auto server = StartOrDie(&engine, options);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests(16, Named({"A"}));
  auto responses = client.QueryMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 16u);
  size_t ok = 0;
  for (const WireResponse& response : *responses) {
    if (response.code == StatusCode::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
    }
  }
  EXPECT_GE(ok, 1u) << "admission must make progress under depth pressure";
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_answered + stats.queries_rejected, 16u);
}

TEST(ServerTest, OversizedPayloadIsRejectedButConnectionSurvives) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.max_query_bytes = 64;
  auto server = StartOrDie(&engine, options);
  Client client = ConnectOrDie(server->port());

  // ~1.2 KiB of names: well-formed frame, body above the server's limit.
  std::vector<std::string> many(24, std::string(48, 'z'));
  auto big = client.Query(Named(std::move(many)));
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_EQ(big->code, StatusCode::kInvalidArgument);

  // The body was skipped, not half-read: the stream is still framed.
  auto small = client.Query(Named({"A"}));
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_EQ(small->code, StatusCode::kOk);
}

TEST(ServerTest, UnknownProtocolVersionGetsUnimplementedNotDropped) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(socket.ok());

  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(77, Named({"A"}), &frame).ok());
  frame[4] = 99;  // version field (offset 4, little-endian uint16)
  frame[5] = 0;
  ASSERT_TRUE(socket->WriteAll(frame.data(), frame.size()).ok());

  FrameHeader header;
  std::string body;
  ASSERT_TRUE(ReadFrame(&*socket, &header, &body).ok());
  EXPECT_EQ(header.version, kProtocolVersion) << "server stamps its own";
  EXPECT_EQ(header.request_id, 77u);
  WireResponse response;
  ASSERT_TRUE(DecodeResponseBody(body, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kUnimplemented);

  // Same connection, correct version: still served.
  frame.clear();
  ASSERT_TRUE(EncodeQueryFrame(78, Named({"A"}), &frame).ok());
  ASSERT_TRUE(socket->WriteAll(frame.data(), frame.size()).ok());
  ASSERT_TRUE(ReadFrame(&*socket, &header, &body).ok());
  ASSERT_TRUE(DecodeResponseBody(body, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
}

TEST(ServerTest, GarbageStreamDropsConnectionButServerSurvives) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);

  {
    auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(socket.ok());
    // Longer than a frame header, so the server sees a full (bad) header
    // rather than waiting for more bytes.
    const std::string garbage = "GET / HTTP/1.1\r\nHost: nonsense\r\n\r\n";
    ASSERT_TRUE(socket->WriteAll(garbage.data(), garbage.size()).ok());
    // Bad magic is unrecoverable; the server hangs up on us.
    char byte;
    Status read = socket->ReadFull(&byte, 1);
    EXPECT_FALSE(read.ok());
  }
  {
    // Valid header, then the peer dies mid-body: must not wedge a worker.
    auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(socket.ok());
    std::string frame;
    ASSERT_TRUE(EncodeQueryFrame(1, Named({"A"}), &frame).ok());
    ASSERT_TRUE(
        socket->WriteAll(frame.data(), kFrameHeaderBytes + 2).ok());
    socket->Close();
  }
  // The server is still healthy for well-behaved clients.
  Client client = ConnectOrDie(server->port());
  auto response = client.Query(Named({"A"}));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kOk);
}

TEST(ServerTest, HotSwapUnderLiveConnectionsDropsAndMisroutesNothing) {
  // The wire-level twin of tests/api/engine_swap_test.cc: pipelining
  // clients race Engine::Swap (what hypermine_serve's !reload calls) and
  // every response must arrive (client checks request-id echo), be OK,
  // and carry a (model_version, answer) pair from one single model.
  std::shared_ptr<const api::Model> a = MarkedModel(1);  // A -> B
  std::shared_ptr<const api::Model> b = MarkedModel(2);  // A -> C
  const uint64_t va = a->version();
  const uint64_t vb = b->version();
  api::Engine engine(a);
  auto server = StartOrDie(&engine);

  constexpr size_t kClients = 3;
  constexpr size_t kRounds = 20;
  constexpr size_t kPipeline = 8;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Client client = ConnectOrDie(server->port());
      std::vector<api::QueryRequest> batch(kPipeline, Named({"A"}, 1));
      for (size_t round = 0; round < kRounds; ++round) {
        auto responses = client.QueryMany(batch);
        if (!responses.ok()) {
          bad.fetch_add(kPipeline);  // transport failure = dropped queries
          return;
        }
        for (const WireResponse& response : *responses) {
          answered.fetch_add(1);
          const bool consistent =
              response.code == StatusCode::kOk &&
              response.ranked.size() == 1 &&
              ((response.model_version == va &&
                response.ranked[0].name == "B") ||
               (response.model_version == vb &&
                response.ranked[0].name == "C"));
          if (!consistent) bad.fetch_add(1);
        }
      }
      (void)t;
    });
  }
  for (int i = 0; i < 200; ++i) {
    engine.Swap(i % 2 == 0 ? b : a);
    std::this_thread::yield();
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_EQ(answered.load(), kClients * kRounds * kPipeline)
      << "zero dropped responses";
  EXPECT_EQ(bad.load(), 0u) << "zero misrouted/torn responses";

  // Settle on b: new wire queries must see only the new model.
  engine.Swap(b);
  Client client = ConnectOrDie(server->port());
  auto after = client.Query(Named({"A"}, 1));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->model_version, vb);
  ASSERT_EQ(after->ranked.size(), 1u);
  EXPECT_EQ(after->ranked[0].name, "C");
}

TEST(ServerTest, StopUnblocksIdleConnections) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  // An idle client the server is waiting on; Stop() (run by the
  // destructor) must shut it down rather than wait forever — the test
  // completing at all is the assertion.
  auto idle = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(idle.ok());
  Client busy = ConnectOrDie(server->port());
  ASSERT_TRUE(busy.Query(Named({"A"})).ok());
  server->Stop();
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.queries_answered, 1u);
}

TEST(ServerTest, StopIsPromptWithManyIdleConnectionsOpen) {
  // Regression target for the Stop-ordering fix: hundreds of idle,
  // never-written connections must not slow shutdown down — the reactor
  // owns every descriptor, so there is no per-connection thread (or
  // blocked read) to unwind one by one.
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_threads = 2;
  options.max_connections = 512;
  auto server = StartOrDie(&engine, options);

  std::vector<Socket> idle;
  for (int i = 0; i < 256; ++i) {
    auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(socket.ok()) << socket.status();
    idle.push_back(std::move(*socket));
  }
  // Wait until every connect has been accepted (connect() returning only
  // proves the kernel queued it) so Stop really faces 256 live entries.
  for (int i = 0; i < 500; ++i) {
    if (server->stats().connections_accepted >= 256) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server->stats().connections_accepted, 256u);

  const auto start = std::chrono::steady_clock::now();
  server->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000)
      << "Stop must not scale with idle connection count";
  // Every idle socket observes the close (clean EOF, not a hang).
  for (Socket& socket : idle) {
    char byte;
    Status read = socket.ReadFull(&byte, 1);
    EXPECT_FALSE(read.ok());
  }
}

TEST(ServerTest, StatsTrackBytesQueueDepthAndCoalescing) {
  api::Engine engine(NamedModel());
  auto server = StartOrDie(&engine);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests(24, Named({"A"}));
  auto responses = client.QueryMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 24u);

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_answered, 24u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  // Every answered byte came off the wire first; requests and responses
  // are both non-empty frames.
  EXPECT_EQ(stats.queue_depth, 0u) << "nothing in flight at rest";
  EXPECT_GE(stats.queue_depth_peak, 1u);
  // Each engine batch carries >= 1 frame and every frame lands in exactly
  // one batch, so frames = batches + coalesced is an exact invariant.
  EXPECT_EQ(stats.queries_answered + stats.queries_rejected,
            stats.batches + stats.frames_coalesced);
  EXPECT_EQ(stats.admin_requests, 0u) << "no admin plane configured";
}

TEST(ServerTest, IdleTimeoutReapsOnlyTrulyIdleConnections) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.idle_timeout_ms = 200;
  auto server = StartOrDie(&engine, options);

  auto idle = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(idle.ok());
  Client busy = ConnectOrDie(server->port());

  // Keep the busy connection warm well past the idle deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(700);
  while (std::chrono::steady_clock::now() < deadline) {
    auto response = busy.Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, StatusCode::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The idle connection was reaped: its read resolves to EOF promptly.
  char byte;
  Status read = idle->ReadFull(&byte, 1);
  EXPECT_FALSE(read.ok()) << "idle connection should have been closed";
  ServerStats stats = server->stats();
  EXPECT_GE(stats.connections_reaped, 1u);
  // The active connection survived every reap pass.
  auto after = busy.Query(Named({"A"}));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->code, StatusCode::kOk);
}

TEST(ServerTest, QueueWaitSheddingAnswersUnavailable) {
  // Stall the first engine batch via the "engine.batch" fault site
  // (one fire, 150 ms). With max_batch=1 every later frame waits in the
  // pending queue behind it, out-waits the 10 ms budget, and must be
  // answered kUnavailable — a clean in-band shed, not a closed socket.
  fault::Injector& injector = fault::Injector::Global();
  injector.Reset();
  injector.Enable(/*seed=*/1);
  fault::SiteConfig stall;
  stall.delay_ms = 150;
  stall.max_fires = 1;
  injector.Arm("engine.batch", stall);

  api::Engine engine(NamedModel());
  ServerOptions options;
  options.max_queue_wait_ms = 10;
  options.max_batch = 1;
  options.num_threads = 1;
  auto server = StartOrDie(&engine, options);
  Client client = ConnectOrDie(server->port());

  std::vector<api::QueryRequest> requests(8, Named({"A"}));
  auto responses = client.QueryMany(requests);
  injector.Reset();
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 8u);

  size_t ok = 0, shed = 0;
  for (const WireResponse& response : *responses) {
    if (response.code == StatusCode::kOk) ++ok;
    if (response.code == StatusCode::kUnavailable) ++shed;
  }
  EXPECT_EQ(ok + shed, 8u) << "only clean statuses may come back";
  EXPECT_GE(ok, 1u) << "the stalled query itself still answers";
  EXPECT_GE(shed, 1u) << "queued queries out-waited the budget";
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_shed, shed);
  EXPECT_EQ(stats.queries_answered, ok);
}

TEST(ServerTest, ShedQueriesRetrySuccessfullyOnceTheQueueClears) {
  fault::Injector& injector = fault::Injector::Global();
  injector.Reset();
  injector.Enable(/*seed=*/1);
  fault::SiteConfig stall;
  stall.delay_ms = 120;
  stall.max_fires = 1;
  injector.Arm("engine.batch", stall);

  api::Engine engine(NamedModel());
  ServerOptions options;
  options.max_queue_wait_ms = 10;
  options.max_batch = 1;
  options.num_threads = 1;
  auto server = StartOrDie(&engine, options);
  Client slow = ConnectOrDie(server->port());
  Client retrying = ConnectOrDie(server->port());

  // Occupy the single worker with the stalled query, then race a second
  // client against the stall with retries enabled: its first attempt may
  // be shed, but backoff outlives the stall and the retry answers.
  std::thread occupant([&slow] {
    auto response = slow.Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  CallOptions call;
  call.max_retries = 6;
  auto response = retrying.Query(Named({"A"}), call);
  occupant.join();
  injector.Reset();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kOk)
      << "retries must eventually clear a transient shed";
}

TEST(ServerTest, DrainFinishesInFlightWorkAndRefusesNewConnections) {
  metrics::Registry registry;
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.admin_port = 0;
  options.registry = &registry;
  auto server = StartOrDie(&engine, options);

  Client busy = ConnectOrDie(server->port());
  auto before = busy.Query(Named({"A"}));
  ASSERT_TRUE(before.ok()) << before.status();
  auto idle = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(idle.ok());

  EXPECT_FALSE(server->draining());
  server->Drain();
  server->Drain();  // idempotent
  EXPECT_TRUE(server->draining());

  // Every query connection is closed once quiet — both the never-used one
  // and the one that already answered — observed as EOF on our side.
  char byte;
  EXPECT_FALSE(idle->ReadFull(&byte, 1).ok());
  auto during = busy.Query(Named({"A"}));
  EXPECT_FALSE(during.ok()) << "drained connection should be closed";

  // The admin plane outlives the drain, reporting it: /healthz flips to
  // 503 so load balancers stop routing here.
  auto connected = Socket::Connect("127.0.0.1", server->admin_port(), 2000);
  ASSERT_TRUE(connected.ok()) << connected.status();
  Socket& admin = *connected;
  const std::string request =
      "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n";
  ASSERT_TRUE(admin.WriteAll(request.data(), request.size()).ok());
  std::string response;
  char buffer[2048];
  for (;;) {
    Socket::IoResult io = admin.ReadSome(buffer, sizeof(buffer));
    ASSERT_TRUE(io.status.ok()) << io.status;
    if (io.closed || io.bytes == 0) break;
    response.append(buffer, io.bytes);
    if (response.find("draining\n") != std::string::npos) break;
  }
  EXPECT_EQ(response.find("HTTP/1.1 503 Service Unavailable\r\n"), 0u)
      << response;
  EXPECT_NE(response.find("draining\n"), std::string::npos) << response;
}

TEST(ServerTest, StallTimeoutClosesSlowLorisButNotSteadyTraffic) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.stall_timeout_ms = 150;
  auto server = StartOrDie(&engine, options);

  // The loris: four header bytes, then silence — never idle by the byte
  // clock's measure if it trickled, but parked mid-frame either way.
  auto loris = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(loris.ok());
  const char partial_header[4] = {'h', 'm', 'q', '1'};
  ASSERT_TRUE(loris->WriteAll(partial_header, 4).ok());

  // Steady traffic on a second connection: every exchange completes a
  // frame, so it makes progress and must never be stall-closed.
  Client busy = ConnectOrDie(server->port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
  while (std::chrono::steady_clock::now() < deadline) {
    auto response = busy.Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  char byte;
  EXPECT_FALSE(loris->ReadFull(&byte, 1).ok())
      << "mid-frame connection should have been stall-closed";
  ServerStats stats = server->stats();
  EXPECT_GE(stats.connections_stalled, 1u);
  auto after = busy.Query(Named({"A"}));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->code, StatusCode::kOk);
}

// ---------------------------------------------------------------------
// Multi-reactor cases: the serving path sharded over num_reactors event
// loops must be *indistinguishable on the wire* from one loop, must
// actually spread connections (per-reactor stats prove placement), and
// must stop/drain promptly with zero dropped in-flight batches.
// ---------------------------------------------------------------------

/// One deterministic wire conversation: sequential request/response
/// exchanges (fixed request ids, fixed queries — sequential so cache
/// hit/miss order is deterministic too), transcribed byte for byte.
/// Responses are appended raw (header fields + body bytes), so two equal
/// transcripts mean byte-identical wire answers.
std::string WireTranscript(uint16_t port) {
  std::string transcript;
  // Three sequential connections exercise accept placement; per-query
  // kinds cover topk, reachable, cache hit, and a per-query error.
  for (int c = 0; c < 3; ++c) {
    auto socket = Socket::Connect("127.0.0.1", port, 2000);
    HM_CHECK_OK(socket.status());
    std::vector<api::QueryRequest> queries;
    queries.push_back(Named({"A"}, 2));
    queries.push_back(Named({"A", "B"}, 3));
    api::QueryRequest reach = Named({"A"});
    reach.kind = api::QueryRequest::Kind::kReachable;
    reach.min_acv = 0.6;
    queries.push_back(reach);
    queries.push_back(Named({"A"}, 2));  // repeat: deterministic cache hit
    queries.push_back(Named({"NO_SUCH_VERTEX"}));
    for (size_t i = 0; i < queries.size(); ++i) {
      const uint64_t id = 1000 + static_cast<uint64_t>(c) * 100 + i;
      std::string frame;
      HM_CHECK_OK(EncodeQueryFrame(id, queries[i], &frame));
      HM_CHECK_OK(socket->WriteAll(frame.data(), frame.size()));
      FrameHeader header;
      std::string body;
      HM_CHECK_OK(ReadFrame(&*socket, &header, &body));
      transcript += std::to_string(header.request_id);
      transcript += '|';
      transcript += std::to_string(header.version);
      transcript += '|';
      transcript += std::to_string(header.type);
      transcript += '|';
      transcript += body;
      transcript += '\n';
    }
  }
  return transcript;
}

TEST(ServerMultiReactorTest, WireAnswersAreByteIdenticalAcrossReactorCounts) {
  // The same model (hence the same model_version) behind 1, 2, and 4
  // reactors; a fresh engine per server so the cache starts cold each
  // time. Any divergence — ordering, routing, version, cache bit — shows
  // up as a transcript diff.
  std::shared_ptr<const api::Model> model = NamedModel();
  std::string baseline;
  for (size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
    api::Engine engine(model);
    ServerOptions options;
    options.num_reactors = reactors;
    auto server = StartOrDie(&engine, options);
    EXPECT_EQ(server->num_reactors(), reactors);
    const std::string transcript = WireTranscript(server->port());
    if (reactors == 1) {
      baseline = transcript;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(transcript, baseline)
          << "num_reactors=" << reactors
          << " changed the bytes on the wire";
    }
  }
}

TEST(ServerMultiReactorTest, HandoffSpreadsConnectionsRoundRobin) {
  // kHandoff is the deterministic accept mode: reactor 0 accepts and
  // deals sockets round-robin, so 8 connections over 4 reactors land
  // exactly 2 per reactor — asserted through the new per-reactor stats.
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 4;
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  auto server = StartOrDie(&engine, options);

  constexpr size_t kConns = 8;
  std::vector<Client> clients;
  for (size_t i = 0; i < kConns; ++i) {
    clients.push_back(ConnectOrDie(server->port()));
    // Query through each connection so "accepted" means "registered on
    // its owner", not merely queued in a handoff inbox.
    auto response = clients.back().Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, StatusCode::kOk);
  }

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, kConns);
  ASSERT_EQ(stats.per_reactor.size(), 4u);
  for (const ReactorStats& rs : stats.per_reactor) {
    EXPECT_EQ(rs.connections_accepted, kConns / 4)
        << "reactor " << rs.index << " got an uneven share";
    EXPECT_EQ(rs.open_connections, kConns / 4);
  }
}

TEST(ServerMultiReactorTest, ReusePortSpreadsConnectionsAcrossReactors) {
  // The kernel's SO_REUSEPORT spread is hash-based, not round-robin, so
  // this asserts conservation (per-reactor accepts sum to the total) and
  // coverage (with 32 connections over 4 listeners, more than one reactor
  // must own connections) rather than exact shares.
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 4;  // default accept_mode: kReusePort
  options.max_connections = 64;
  auto server = StartOrDie(&engine, options);

  constexpr size_t kConns = 32;
  std::vector<Client> clients;
  for (size_t i = 0; i < kConns; ++i) {
    clients.push_back(ConnectOrDie(server->port()));
    auto response = clients.back().Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
  }

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, kConns);
  ASSERT_EQ(stats.per_reactor.size(), 4u);
  uint64_t summed = 0;
  size_t reactors_used = 0;
  for (const ReactorStats& rs : stats.per_reactor) {
    summed += rs.connections_accepted;
    if (rs.connections_accepted > 0) ++reactors_used;
  }
  EXPECT_EQ(summed, stats.connections_accepted)
      << "per-reactor accepts must sum to the aggregate";
  EXPECT_GE(reactors_used, 2u)
      << "the kernel parked every connection on one reactor";
}

TEST(ServerMultiReactorTest, MaxConnectionsIsAGlobalCapAcrossReactors) {
  // The cap is reserved at accept time, before any handoff, so N
  // reactors cannot jointly over-admit.
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 2;
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  options.max_connections = 3;
  auto server = StartOrDie(&engine, options);

  std::vector<Client> kept;
  for (int i = 0; i < 3; ++i) {
    kept.push_back(ConnectOrDie(server->port()));
    auto response = kept.back().Query(Named({"A"}));
    ASSERT_TRUE(response.ok()) << response.status();
  }
  // The fourth is over the global cap: closed on accept, observed as a
  // failed exchange.
  auto over = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(over.ok());
  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(1, Named({"A"}), &frame).ok());
  (void)over->WriteAll(frame.data(), frame.size());
  FrameHeader header;
  std::string body;
  EXPECT_FALSE(ReadFrame(&*over, &header, &body).ok());
  for (int i = 0; i < 500; ++i) {
    if (server->stats().connections_rejected >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server->stats().connections_rejected, 1u);
}

TEST(ServerMultiReactorTest, StopJoinsAllReactorsWithZeroDroppedBatches) {
  // Batches in flight on BOTH reactors when Stop() lands: a stalled
  // engine batch (fault site, 150 ms) pins one per connection. Stop must
  // join every reactor, wait the batches out, and account them — nothing
  // may vanish between a pool worker and a torn-down reactor.
  fault::Injector& injector = fault::Injector::Global();
  injector.Reset();
  injector.Enable(/*seed=*/1);
  fault::SiteConfig stall;
  stall.delay_ms = 150;
  stall.max_fires = 2;
  injector.Arm("engine.batch", stall);

  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 2;
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  auto server = StartOrDie(&engine, options);

  // Two connections: round-robin places one on each reactor.
  std::vector<std::thread> senders;
  for (int i = 0; i < 2; ++i) {
    senders.emplace_back([&server] {
      auto socket = Socket::Connect("127.0.0.1", server->port(), 2000);
      ASSERT_TRUE(socket.ok());
      std::string frame;
      ASSERT_TRUE(EncodeQueryFrame(7, Named({"A"}), &frame).ok());
      ASSERT_TRUE(socket->WriteAll(frame.data(), frame.size()).ok());
      // Hold the socket open until the server finishes or closes it.
      FrameHeader header;
      std::string body;
      (void)ReadFrame(&*socket, &header, &body);
    });
  }
  // Let both queries reach their (stalled) engine batches, then stop.
  for (int i = 0; i < 500; ++i) {
    if (server->stats().batches >= 2 ||
        server->stats().queue_depth >= 2) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto start = std::chrono::steady_clock::now();
  server->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  for (std::thread& sender : senders) sender.join();
  injector.Reset();

  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000)
      << "Stop must be prompt, not wedged on a reactor join";
  ServerStats stats = server->stats();
  // Zero dropped in-flight batches: both queries ran to completion and
  // were accounted, and no reactor still shows work outstanding.
  EXPECT_EQ(stats.queries_answered, 2u);
  EXPECT_EQ(stats.batches, 2u);
  uint64_t applied = 0;
  for (const ReactorStats& rs : stats.per_reactor) {
    EXPECT_EQ(rs.outstanding_batches, 0u)
        << "reactor " << rs.index << " torn down with work in flight";
    applied += rs.batches;
  }
  EXPECT_EQ(applied, stats.batches)
      << "every batch must be applied by exactly one reactor";
}

TEST(ServerMultiReactorTest, DrainClosesQuietConnectionsOnEveryReactor) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 2;
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  auto server = StartOrDie(&engine, options);

  // One served-and-quiet connection per reactor (round-robin placement).
  Client first = ConnectOrDie(server->port());
  Client second = ConnectOrDie(server->port());
  ASSERT_TRUE(first.Query(Named({"A"})).ok());
  ASSERT_TRUE(second.Query(Named({"A"})).ok());
  {
    ServerStats stats = server->stats();
    ASSERT_EQ(stats.per_reactor.size(), 2u);
    EXPECT_EQ(stats.per_reactor[0].open_connections, 1u);
    EXPECT_EQ(stats.per_reactor[1].open_connections, 1u);
  }

  server->Drain();
  // BOTH reactors apply the drain: each quiet connection is closed by its
  // owner, wherever it lives.
  auto dropped_first = first.Query(Named({"A"}));
  auto dropped_second = second.Query(Named({"A"}));
  EXPECT_FALSE(dropped_first.ok());
  EXPECT_FALSE(dropped_second.ok());
  for (int i = 0; i < 500; ++i) {
    ServerStats stats = server->stats();
    size_t open = 0;
    for (const ReactorStats& rs : stats.per_reactor) {
      open += rs.open_connections;
    }
    if (open == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ServerStats stats = server->stats();
  for (const ReactorStats& rs : stats.per_reactor) {
    EXPECT_EQ(rs.open_connections, 0u)
        << "reactor " << rs.index << " kept a drained connection open";
  }
}

TEST(ServerMultiReactorTest, ZeroMeansHardwareConcurrency) {
  api::Engine engine(NamedModel());
  ServerOptions options;
  options.num_reactors = 0;
  auto server = StartOrDie(&engine, options);
  EXPECT_EQ(server->num_reactors(),
            std::max<size_t>(1, ThreadPool::HardwareThreads()));
  Client client = ConnectOrDie(server->port());
  auto response = client.Query(Named({"A"}));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kOk);
}

}  // namespace
}  // namespace hypermine::net
