// Chaos harness (docs/robustness.md): thousands of queries driven through
// a randomized fault schedule — injected socket errors and short I/O,
// engine stalls, accept failures, load shedding, a slow-loris connection,
// and mid-traffic reloads that randomly roll back — while three invariants
// hold absolutely:
//
//   1. nobody crashes (the server, the clients, this process);
//   2. no wrong answer: every kOk response is byte-equal to the fault-free
//      engine's answer for that query;
//   3. failures are clean: in-band kUnavailable, kDeadlineExceeded, or a
//      transport-level kIoError/kCorrupted — never a mystery status, and
//      every shed/stall/rollback is visible in the metrics registry.
//
// The schedule is deterministic per site for a given seed. The seed comes
// from HYPERMINE_CHAOS_SEED (CI pins three and adds one time-derived) and
// is printed up front so any failure is replayable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

/// Small named model: A -> {B, C}, {A, B} -> D, C -> D.
std::shared_ptr<const api::Model> NamedModel() {
  auto graph = core::DirectedHypergraph::Create({"A", "B", "C", "D"});
  HM_CHECK_OK(graph.status());
  HM_CHECK_OK(graph->AddEdge({0}, 1, 0.9).status());
  HM_CHECK_OK(graph->AddEdge({0}, 2, 0.5).status());
  HM_CHECK_OK(graph->AddEdge({0, 1}, 3, 0.8).status());
  HM_CHECK_OK(graph->AddEdge({2}, 3, 0.7).status());
  return api::Model::FromGraph(std::move(graph).value(), {});
}

uint64_t ChaosSeed() {
  const char* env = std::getenv("HYPERMINE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807;  // fixed default: plain `ctest` stays reproducible
}

api::QueryRequest QueryA() {
  api::QueryRequest request;
  request.names = {"A"};
  request.k = 10;
  return request;
}

/// The fault-free answer, as (name, acv) pairs — the oracle every kOk
/// wire response must match exactly.
std::vector<std::pair<std::string, double>> Oracle(
    const std::shared_ptr<const api::Model>& model) {
  api::Engine reference(model);
  auto answered = reference.Query(QueryA());
  HM_CHECK_OK(answered.status());
  std::vector<std::pair<std::string, double>> oracle;
  for (const auto& r : answered->ranked) {
    oracle.emplace_back(model->graph().vertex_name(r.head), r.acv);
  }
  HM_CHECK(!oracle.empty());
  return oracle;
}

/// Parameter: ServerOptions::num_reactors. The whole chaos run repeats
/// with the serving path sharded — same invariants, same per-site fault
/// schedule for a given seed, and the same HYPERMINE_CHAOS_SEED replay
/// line (the parameter is in the test name, so a failure names both the
/// seed and the reactor count it needs).
class ChaosTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChaosTest, RandomizedFaultsNeverCrashCorruptOrMiscount) {
  const size_t num_reactors = GetParam();
  const uint64_t seed = ChaosSeed();
  std::printf(
      "chaos seed: %llu, reactors: %zu  (HYPERMINE_CHAOS_SEED=%llu "
      "replays this)\n",
      static_cast<unsigned long long>(seed), num_reactors,
      static_cast<unsigned long long>(seed));
  std::fflush(stdout);

  std::shared_ptr<const api::Model> model = NamedModel();
  const std::vector<std::pair<std::string, double>> oracle = Oracle(model);
  const std::string snapshot_path =
      ::testing::TempDir() + "/chaos_model.snap";
  ASSERT_TRUE(model->SaveSnapshot(snapshot_path).ok());

  metrics::Registry registry;
  api::Engine engine(model);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.max_batch = 8;
  options.max_queue_wait_ms = 50;
  options.stall_timeout_ms = 200;
  options.registry = &registry;
  options.num_reactors = num_reactors;
  auto started = Server::Start(&engine, options);
  ASSERT_TRUE(started.ok()) << started.status();
  std::unique_ptr<Server> server = std::move(*started);

  // A slow loris: a few header bytes, then silence for the whole run. The
  // stall timer must close it while every healthy connection lives on.
  auto loris = Socket::Connect("127.0.0.1", server->port(), 2000);
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(loris->WriteAll("hmq", 3).ok());

  fault::Injector& injector = fault::Injector::Global();
  injector.Reset();
  injector.Enable(seed);
  const auto arm = [&injector](const char* site, double probability,
                               int delay_ms = 0) {
    fault::SiteConfig config;
    config.probability = probability;
    config.delay_ms = delay_ms;
    injector.Arm(site, config);
  };
  arm("socket.read", 0.003);         // hard read errors, both sides
  arm("socket.write", 0.003);        // hard write errors, both sides
  arm("socket.read.short", 0.02);    // 1-byte reads: reassembly paths
  arm("socket.write.short", 0.02);   // 1-byte writes: partial-flush paths
  arm("socket.accept", 0.05);        // accept errors: listener mute+retry
  arm("engine.batch", 0.03, 60);     // worker stalls -> queue-wait sheds
  arm("reload.verify", 0.5);         // post-swap probe failures -> rollback
  arm("snapshot.truncate", 0.1);     // torn reload reads
  arm("snapshot.corrupt", 0.15);     // flipped-bit reload reads

  // --- phase 1: concurrent chaos traffic + reload/rollback churn -------
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 500;
  std::atomic<uint64_t> ok_answers{0};
  std::atomic<uint64_t> wrong_answers{0};
  std::atomic<uint64_t> unavailable_given_up{0};
  std::atomic<uint64_t> clean_failures{0};
  std::atomic<uint64_t> unexpected_statuses{0};
  std::atomic<uint64_t> client_unavailable_seen{0};

  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      auto connected =
          Client::Connect("127.0.0.1", server->port(), /*retry_ms=*/5000);
      if (!connected.ok()) {
        // Even under accept faults the backlog eventually drains; a
        // client that cannot connect at all is an invariant violation.
        ++unexpected_statuses;
        return;
      }
      Client client = std::move(*connected);
      CallOptions call;
      call.deadline_ms = 5000;
      call.max_retries = 8;
      call.backoff = BackoffPolicy{5, 80, true};
      const api::QueryRequest request = QueryA();
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto response = client.Query(request, call);
        if (!response.ok()) {
          const StatusCode code = response.status().code();
          if (code == StatusCode::kIoError ||
              code == StatusCode::kCorrupted ||
              code == StatusCode::kDeadlineExceeded) {
            ++clean_failures;  // retries exhausted on a clean error
          } else {
            ADD_FAILURE() << "thread " << t << " query " << i
                          << ": unexpected failure "
                          << response.status().ToString();
            ++unexpected_statuses;
          }
          continue;
        }
        if (response->code == StatusCode::kUnavailable) {
          ++unavailable_given_up;  // shed on every attempt; still clean
          continue;
        }
        if (response->code != StatusCode::kOk) {
          ADD_FAILURE() << "thread " << t << " query " << i
                        << ": unexpected in-band code "
                        << response->ToStatus().ToString();
          ++unexpected_statuses;
          continue;
        }
        bool matches = response->ranked.size() == oracle.size();
        for (size_t r = 0; matches && r < oracle.size(); ++r) {
          matches = response->ranked[r].name == oracle[r].first &&
                    response->ranked[r].acv == oracle[r].second;
        }
        if (matches) {
          ++ok_answers;
        } else {
          ++wrong_answers;
          ADD_FAILURE() << "thread " << t << " query " << i
                        << ": kOk with a WRONG answer";
        }
      }
      client_unavailable_seen += client.stats().unavailable;
    });
  }

  // Reload churn on its own (serialized) thread: good swaps, corrupt
  // loads that never go live, and injected rollbacks — all while the
  // drivers hammer the same engine.
  std::atomic<bool> stop_reloads{false};
  uint64_t reloads_ok = 0, reloads_failed = 0, rollbacks = 0;
  std::thread reloader([&] {
    while (!stop_reloads.load()) {
      api::ReloadReport report =
          api::ReloadEngineFromFile(&engine, snapshot_path);
      if (report.status.ok()) {
        ++reloads_ok;
      } else {
        ++reloads_failed;
      }
      if (report.rolled_back) ++rollbacks;
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
  });

  for (std::thread& driver : drivers) driver.join();
  stop_reloads.store(true);
  reloader.join();

  // --- phase 2: deterministic shed burst -------------------------------
  // One guaranteed 150 ms worker stall, then a 32-frame pipeline: the
  // first batch (max_batch=8) rides out the stall, the later frames wait
  // past the 50 ms budget and MUST be shed — on every seed.
  {
    fault::SiteConfig stall;
    stall.delay_ms = 150;
    stall.max_fires = 1;
    injector.Arm("engine.batch", stall);
    injector.Disarm("socket.read");
    injector.Disarm("socket.write");
    injector.Disarm("socket.read.short");
    injector.Disarm("socket.write.short");
    injector.Disarm("socket.accept");
    auto connected = Client::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(connected.ok()) << connected.status();
    Client client = std::move(*connected);
    std::vector<api::QueryRequest> burst(32, QueryA());
    auto responses = client.QueryMany(burst);
    ASSERT_TRUE(responses.ok()) << responses.status();
    uint64_t burst_shed = 0;
    for (const WireResponse& response : *responses) {
      ASSERT_TRUE(response.code == StatusCode::kOk ||
                  response.code == StatusCode::kUnavailable)
          << response.ToStatus().ToString();
      if (response.code == StatusCode::kUnavailable) ++burst_shed;
    }
    EXPECT_GE(burst_shed, 1u) << "the queue-wait shedder never engaged";
    client_unavailable_seen += burst_shed;
  }

  // --- phase 3: faults off, everything verifies ------------------------
  const uint64_t verify_fires = injector.fires("reload.verify");
  injector.Disable();

  const uint64_t total = uint64_t{kThreads} * kQueriesPerThread;
  std::printf(
      "chaos: %llu/%llu ok, %llu shed-after-retries, %llu clean transport "
      "failures; reloads ok=%llu failed=%llu rollbacks=%llu\n",
      static_cast<unsigned long long>(ok_answers.load()),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(unavailable_given_up.load()),
      static_cast<unsigned long long>(clean_failures.load()),
      static_cast<unsigned long long>(reloads_ok),
      static_cast<unsigned long long>(reloads_failed),
      static_cast<unsigned long long>(rollbacks));
  std::fflush(stdout);

  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_EQ(unexpected_statuses.load(), 0u);
  EXPECT_EQ(ok_answers.load() + unavailable_given_up.load() +
                clean_failures.load(),
            total)
      << "every query must be accounted for";
  EXPECT_GT(ok_answers.load(), total / 2)
      << "retries should carry most queries through this fault rate";

  // Rollbacks happen exactly when the injected verify failure fires, and
  // the engine must end on a servable model regardless.
  EXPECT_EQ(rollbacks, verify_fires);
  EXPECT_GT(reloads_ok + reloads_failed, 0u);

  // Counters: the server's view must cover every shed the clients saw
  // (sheds whose response died on a faulted socket are server-only), and
  // the registry must bridge the same numbers for /metrics.
  ServerStats stats = server->stats();
  EXPECT_GE(stats.queries_shed, client_unavailable_seen.load());
  EXPECT_GE(stats.connections_stalled, 1u) << "the loris was never caught";
  const std::string scrape = registry.PrometheusText();
  EXPECT_NE(scrape.find(StrFormat("hypermine_net_queries_shed_total %llu",
                                  static_cast<unsigned long long>(
                                      stats.queries_shed))),
            std::string::npos)
      << scrape;
  EXPECT_NE(
      scrape.find(StrFormat(
          "hypermine_net_connections_stalled_total %llu",
          static_cast<unsigned long long>(stats.connections_stalled))),
      std::string::npos)
      << scrape;

  // With faults off, a fresh connection answers correctly on the first
  // try — chaos left no residue.
  {
    auto connected = Client::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(connected.ok()) << connected.status();
    Client client = std::move(*connected);
    auto response = client.Query(QueryA());
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->code, StatusCode::kOk);
    ASSERT_EQ(response->ranked.size(), oracle.size());
    for (size_t r = 0; r < oracle.size(); ++r) {
      EXPECT_EQ(response->ranked[r].name, oracle[r].first);
      EXPECT_EQ(response->ranked[r].acv, oracle[r].second);
    }
  }

  // --- phase 4: drain --------------------------------------------------
  server->Drain();
  EXPECT_TRUE(server->draining());
  EXPECT_NE(registry.PrometheusText().find("hypermine_net_draining 1"),
            std::string::npos);
  injector.Reset();
  std::remove(snapshot_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Reactors, ChaosTest,
                         ::testing::Values(size_t{1}, size_t{2}),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "reactors_" +
                                  std::to_string(info.param);
                         });

}  // namespace
}  // namespace hypermine::net
