// The backoff schedule is part of the retry contract (docs/robustness.md):
// Socket::Connect and net::Client both lean on BackoffDelayMs, so the
// doubling, the cap, and the jitter band are pinned here rather than
// re-derived in every caller's test.
#include "net/backoff.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hypermine::net {
namespace {

TEST(BackoffTest, DoublesFromBaseUntilTheCap) {
  BackoffPolicy policy;  // 10 ms doubling to 1000 ms, no jitter
  EXPECT_EQ(BackoffDelayMs(policy, 0), 10);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 20);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 40);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 80);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 160);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 320);
  EXPECT_EQ(BackoffDelayMs(policy, 6), 640);
  EXPECT_EQ(BackoffDelayMs(policy, 7), 1000) << "clamped, not 1280";
  EXPECT_EQ(BackoffDelayMs(policy, 8), 1000);
  EXPECT_EQ(BackoffDelayMs(policy, 1000), 1000)
      << "deep attempts must not overflow the doubling";
}

TEST(BackoffTest, ConnectSchedule) {
  // The exact schedule Socket::Connect uses for refused connections.
  const BackoffPolicy policy{/*base_ms=*/10, /*max_ms=*/500,
                             /*jitter=*/false};
  int total = 0;
  const int expected[] = {10, 20, 40, 80, 160, 320, 500, 500};
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(BackoffDelayMs(policy, attempt), expected[attempt])
        << "attempt " << attempt;
    total += expected[attempt];
  }
  // Eight failed attempts stay near a second and a half of sleeping —
  // bounded enough that a connect budget is honored promptly.
  EXPECT_EQ(total, 1630);
}

TEST(BackoffTest, ZeroOrNegativeBaseMeansNoDelay) {
  BackoffPolicy policy;
  policy.base_ms = 0;
  EXPECT_EQ(BackoffDelayMs(policy, 5), 0);
  policy.base_ms = -3;
  EXPECT_EQ(BackoffDelayMs(policy, 5), 0);
}

TEST(BackoffTest, MaxBelowBaseClampsToBase) {
  BackoffPolicy policy;
  policy.base_ms = 50;
  policy.max_ms = 10;  // misconfigured: cap below base
  EXPECT_EQ(BackoffDelayMs(policy, 0), 50);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 50);
}

TEST(BackoffTest, JitterStaysInTheHalfToFullBand) {
  BackoffPolicy policy;
  policy.jitter = true;
  Rng rng(7);
  bool saw_below_full = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int full = BackoffDelayMs({policy.base_ms, policy.max_ms, false},
                                    attempt);
    for (int i = 0; i < 200; ++i) {
      const int jittered = BackoffDelayMs(policy, attempt, &rng);
      EXPECT_GE(jittered, full / 2);
      EXPECT_LE(jittered, full);
      if (jittered < full) saw_below_full = true;
    }
  }
  EXPECT_TRUE(saw_below_full) << "jitter never moved the delay";
}

TEST(BackoffTest, JitterWithoutRngFallsBackToDeterministic) {
  BackoffPolicy policy;
  policy.jitter = true;
  EXPECT_EQ(BackoffDelayMs(policy, 2, nullptr), 40);
}

}  // namespace
}  // namespace hypermine::net
