// Reactor-affinity enforcement (docs/static_analysis.md): a bound
// EventLoop — and any Connection bound to it — aborts in debug builds
// when driven from a thread other than the one that claimed it. Release
// builds compile the check out, so the death cases skip under NDEBUG.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "util/logging.h"

namespace hypermine::net {
namespace {

EventLoop MakeLoop() {
  auto loop = EventLoop::Create();
  HM_CHECK_OK(loop.status());
  return std::move(*loop);
}

TEST(LoopAffinityTest, UnboundLoopUsableFromAnyThread) {
  // Setup before the reactor exists (Server::Start registers listeners
  // from the starting thread) must stay legal.
  EventLoop loop = MakeLoop();
  loop.AddTimer(1, 50);
  loop.CancelTimer(1);
  std::thread other([&loop] {
    loop.AddTimer(2, 50);
    loop.CancelTimer(2);
  });
  other.join();
}

TEST(LoopAffinityTest, BoundThreadKeepsAccess) {
  EventLoop loop = MakeLoop();
  loop.BindToCurrentThread();
  loop.AssertOnLoopThread();
  loop.AddTimer(1, 50);
  std::vector<EventLoop::Event> events;
  EXPECT_TRUE(loop.Wait(/*timeout_ms=*/0, &events).ok());
}

TEST(LoopAffinityTest, UnbindRestoresAccessAfterOwnerExits) {
  // Stop()'s pattern: the reactor binds, works, unbinds at exit; the
  // joining thread then owns the loop again.
  EventLoop loop = MakeLoop();
  std::thread reactor([&loop] {
    loop.BindToCurrentThread();
    loop.AddTimer(1, 50);
    loop.UnbindThread();
  });
  reactor.join();
  loop.CancelTimer(1);
}

#ifndef NDEBUG

using LoopAffinityDeathTest = ::testing::Test;

TEST(LoopAffinityDeathTest, OffThreadLoopUseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventLoop loop = MakeLoop();
  loop.BindToCurrentThread();
  EXPECT_DEATH(
      {
        std::thread off([&loop] { loop.AddTimer(7, 50); });
        off.join();
      },
      "off its reactor thread");
}

TEST(LoopAffinityDeathTest, OffThreadConnectionUseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventLoop loop = MakeLoop();
  Connection conn;
  conn.BindLoop(&loop);
  loop.BindToCurrentThread();
  conn.QueueWrite("on-thread is fine");
  EXPECT_DEATH(
      {
        std::thread off([&conn] { conn.QueueWrite("off-thread is not"); });
        off.join();
      },
      "off its reactor thread");
}

#else

TEST(LoopAffinityDeathTest, SkippedInReleaseBuilds) {
  GTEST_SKIP() << "reactor-affinity aborts compile out under NDEBUG";
}

#endif  // NDEBUG

}  // namespace
}  // namespace hypermine::net
