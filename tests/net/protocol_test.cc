// Byte-level conformance of the framed wire protocol (docs/protocol.md):
// round trips, truncation at every boundary, bad magic, reserved bits,
// oversized declarations, and unknown query kinds. Pure buffer tests — no
// sockets — so a framing regression fails here before the server tests.
#include <gtest/gtest.h>

#include <string>

#include "net/protocol.h"

namespace hypermine::net {
namespace {

api::QueryRequest TopKRequest() {
  api::QueryRequest request;
  request.names = {"HES", "SLB"};
  request.k = 5;
  return request;
}

/// Splits an encoded frame into its header struct and body bytes,
/// asserting the header parses.
void SplitFrame(const std::string& frame, FrameHeader* header,
                std::string* body) {
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  ASSERT_TRUE(DecodeFrameHeader(frame, header).ok());
  *body = frame.substr(kFrameHeaderBytes);
  ASSERT_EQ(body->size(), header->body_len);
}

TEST(ProtocolTest, HeaderRoundTrip) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kResponse);
  header.request_id = 0xDEADBEEFCAFEF00Dull;
  header.body_len = 123;
  std::string wire;
  EncodeFrameHeader(header, &wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes);

  FrameHeader decoded;
  ASSERT_TRUE(DecodeFrameHeader(wire, &decoded).ok());
  EXPECT_EQ(decoded.magic, kFrameMagic);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.type, header.type);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.body_len, header.body_len);
}

TEST(ProtocolTest, TruncatedHeaderIsCorrupted) {
  std::string wire;
  EncodeFrameHeader(FrameHeader{}, &wire);
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    FrameHeader header;
    Status status = DecodeFrameHeader(wire.substr(0, len), &header);
    EXPECT_EQ(status.code(), StatusCode::kCorrupted) << "len=" << len;
  }
}

TEST(ProtocolTest, BadMagicIsCorrupted) {
  std::string wire;
  EncodeFrameHeader(FrameHeader{}, &wire);
  wire[0] = 'X';
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(wire, &header).code(), StatusCode::kCorrupted);
}

TEST(ProtocolTest, ReservedBitsMustBeZero) {
  FrameHeader header;
  header.reserved = 1;
  std::string wire;
  EncodeFrameHeader(header, &wire);
  FrameHeader decoded;
  EXPECT_EQ(DecodeFrameHeader(wire, &decoded).code(),
            StatusCode::kCorrupted);
}

TEST(ProtocolTest, BodyAboveProtocolCapIsCorrupted) {
  FrameHeader header;
  header.body_len = kMaxBodyBytes + 1;
  std::string wire;
  EncodeFrameHeader(header, &wire);
  FrameHeader decoded;
  EXPECT_EQ(DecodeFrameHeader(wire, &decoded).code(),
            StatusCode::kCorrupted);
}

TEST(ProtocolTest, ForeignVersionDecodesOk) {
  // Version checking is the server's job (it must answer, not drop), so
  // the header decoder lets foreign versions through.
  FrameHeader header;
  header.version = 99;
  std::string wire;
  EncodeFrameHeader(header, &wire);
  FrameHeader decoded;
  ASSERT_TRUE(DecodeFrameHeader(wire, &decoded).ok());
  EXPECT_EQ(decoded.version, 99);
}

TEST(ProtocolTest, QueryFrameRoundTrip) {
  api::QueryRequest request = TopKRequest();
  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(7, request, &frame).ok());

  FrameHeader header;
  std::string body;
  SplitFrame(frame, &header, &body);
  EXPECT_EQ(header.type, static_cast<uint16_t>(FrameType::kQuery));
  EXPECT_EQ(header.request_id, 7u);

  api::QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryBody(body, &decoded).ok());
  EXPECT_EQ(decoded.names, request.names);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.kind, api::QueryRequest::Kind::kTopK);
  EXPECT_TRUE(decoded.items.empty());
}

TEST(ProtocolTest, ReachableQueryRoundTrip) {
  api::QueryRequest request;
  request.names = {"XOM"};
  request.kind = api::QueryRequest::Kind::kReachable;
  request.min_acv = 0.375;
  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(1, request, &frame).ok());
  FrameHeader header;
  std::string body;
  SplitFrame(frame, &header, &body);
  api::QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryBody(body, &decoded).ok());
  EXPECT_EQ(decoded.kind, api::QueryRequest::Kind::kReachable);
  EXPECT_DOUBLE_EQ(decoded.min_acv, 0.375);
}

TEST(ProtocolTest, QueryEncodeRejectsIdOnlyAndOversizedRequests) {
  api::QueryRequest ids_only;
  ids_only.items = {1, 2};
  std::string frame;
  EXPECT_EQ(EncodeQueryFrame(1, ids_only, &frame).code(),
            StatusCode::kInvalidArgument);

  api::QueryRequest too_many;
  too_many.names.assign(api::kMaxQueryItems + 1, "A");
  EXPECT_EQ(EncodeQueryFrame(1, too_many, &frame).code(),
            StatusCode::kInvalidArgument);

  api::QueryRequest giant_name;
  giant_name.names = {std::string(kMaxStringBytes + 1, 'x')};
  EXPECT_EQ(EncodeQueryFrame(1, giant_name, &frame).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, TruncatedQueryBodyIsCorrupted) {
  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(1, TopKRequest(), &frame).ok());
  std::string body = frame.substr(kFrameHeaderBytes);
  api::QueryRequest decoded;
  // Every proper prefix must fail safely (no crash, no partial accept).
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_EQ(DecodeQueryBody(body.substr(0, len), &decoded).code(),
              StatusCode::kCorrupted)
        << "len=" << len;
  }
  EXPECT_EQ(DecodeQueryBody(body + "x", &decoded).code(),
            StatusCode::kCorrupted)
      << "trailing garbage must be rejected";
}

TEST(ProtocolTest, UnknownQueryKindIsInvalid) {
  std::string frame;
  ASSERT_TRUE(EncodeQueryFrame(1, TopKRequest(), &frame).ok());
  std::string body = frame.substr(kFrameHeaderBytes);
  body[0] = 9;  // kind byte
  api::QueryRequest decoded;
  EXPECT_EQ(DecodeQueryBody(body, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponseRoundTripTopK) {
  WireResponse response;
  response.model_version = 42;
  response.from_cache = true;
  response.ranked = {{"SLB", 0.9375}, {"HAL", 0.5}};
  std::string frame;
  ASSERT_TRUE(EncodeResponseFrame(9, response, &frame).ok());

  FrameHeader header;
  std::string body;
  SplitFrame(frame, &header, &body);
  EXPECT_EQ(header.type, static_cast<uint16_t>(FrameType::kResponse));
  EXPECT_EQ(header.request_id, 9u);

  WireResponse decoded;
  ASSERT_TRUE(DecodeResponseBody(body, &decoded).ok());
  EXPECT_EQ(decoded.code, StatusCode::kOk);
  EXPECT_EQ(decoded.model_version, 42u);
  EXPECT_TRUE(decoded.from_cache);
  EXPECT_EQ(decoded.ranked, response.ranked);
  EXPECT_TRUE(decoded.closure.empty());
}

TEST(ProtocolTest, ResponseRoundTripReachableAndError) {
  WireResponse closure;
  closure.kind = api::QueryRequest::Kind::kReachable;
  closure.model_version = 7;
  closure.closure = {"A", "B", "C"};
  std::string frame;
  ASSERT_TRUE(EncodeResponseFrame(1, closure, &frame).ok());
  FrameHeader header;
  std::string body;
  SplitFrame(frame, &header, &body);
  WireResponse decoded;
  ASSERT_TRUE(DecodeResponseBody(body, &decoded).ok());
  EXPECT_EQ(decoded.closure, closure.closure);
  EXPECT_TRUE(decoded.ToStatus().ok());

  WireResponse error;
  error.code = StatusCode::kResourceExhausted;
  error.message = "per-connection query quota (3) exhausted";
  ASSERT_TRUE(EncodeResponseFrame(2, error, &frame).ok());
  SplitFrame(frame, &header, &body);
  ASSERT_TRUE(DecodeResponseBody(body, &decoded).ok());
  EXPECT_EQ(decoded.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.ToStatus().message(), error.message);
}

TEST(ProtocolTest, TruncatedResponseBodyIsCorrupted) {
  WireResponse response;
  response.ranked = {{"SLB", 0.25}};
  std::string frame;
  ASSERT_TRUE(EncodeResponseFrame(3, response, &frame).ok());
  std::string body = frame.substr(kFrameHeaderBytes);
  WireResponse decoded;
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_EQ(DecodeResponseBody(body.substr(0, len), &decoded).code(),
              StatusCode::kCorrupted)
        << "len=" << len;
  }
}

}  // namespace
}  // namespace hypermine::net
