/// End-to-end pipeline tests: synthetic market -> discretization ->
/// association hypergraph -> similarity/clusters, dominators, classifier.
/// These assert the *shapes* the paper's evaluation depends on, at a scale
/// that runs in seconds.
#include <gtest/gtest.h>

#include "util/logging.h"

#include "core/classifier.h"
#include "core/dominator.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "market/sectors.h"
#include "util/stats.h"

namespace hypermine::core {
namespace {

market::MarketConfig TestMarket() {
  market::MarketConfig config;
  config.num_series = 60;
  config.num_years = 5;
  config.seed = 2012;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto experiment = SetUpMarketExperiment(TestMarket(), ConfigC1());
    HM_CHECK_OK(experiment.status());
    experiment_ = new MarketExperiment(std::move(experiment).value());
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static MarketExperiment* experiment_;
};

MarketExperiment* EndToEndTest::experiment_ = nullptr;

TEST_F(EndToEndTest, ModelHasSubstantialStructure) {
  EXPECT_GT(experiment_->graph.NumDirectedEdges(), 100u);
  EXPECT_GT(experiment_->graph.NumPairEdges(), 100u);
  // Mean ACV sits above the 1/3 uniform baseline, as in Section 5.1.2.
  EXPECT_GT(experiment_->graph.MeanDirectedEdgeWeight(), 0.34);
  EXPECT_LT(experiment_->graph.MeanDirectedEdgeWeight(), 0.7);
}

TEST_F(EndToEndTest, ProducersMorePredictableThanConsumers) {
  // Figure 5.1's narrative: producer sectors dominate weighted in-degree,
  // consumer sectors dominate weighted out-degree — both in the mean and
  // among the top quartile (the paper's "top 25" statistic).
  std::vector<double> producer_in;
  std::vector<double> consumer_in;
  std::vector<double> producer_out;
  std::vector<double> consumer_out;
  std::vector<std::pair<double, market::Role>> by_in;
  std::vector<std::pair<double, market::Role>> by_out;
  for (VertexId v = 0; v < experiment_->graph.num_vertices(); ++v) {
    const market::Ticker& ticker = experiment_->panel.tickers[v];
    double in = experiment_->graph.WeightedInDegree(v);
    double out = experiment_->graph.WeightedOutDegree(v);
    by_in.push_back({in, ticker.role});
    by_out.push_back({out, ticker.role});
    if (ticker.role == market::Role::kProducer) {
      producer_in.push_back(in);
      producer_out.push_back(out);
    } else if (ticker.role == market::Role::kConsumer) {
      consumer_in.push_back(in);
      consumer_out.push_back(out);
    }
  }
  ASSERT_FALSE(producer_in.empty());
  ASSERT_FALSE(consumer_in.empty());
  EXPECT_GT(Mean(producer_in), Mean(consumer_in));
  EXPECT_GT(Mean(consumer_out), Mean(producer_out));

  auto top_quartile_count = [](std::vector<std::pair<double, market::Role>>
                                   degrees,
                               market::Role role) {
    std::sort(degrees.begin(), degrees.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t top = degrees.size() / 4;
    size_t count = 0;
    for (size_t i = 0; i < top; ++i) {
      count += degrees[i].second == role ? 1 : 0;
    }
    return std::make_pair(count, top);
  };
  // Section 5.2 reports 72% producer-like sectors among the top-25
  // in-degrees and 84% consumer-like among the top-25 out-degrees.
  auto [in_producers, top_in] = top_quartile_count(by_in,
                                                   market::Role::kProducer);
  auto [out_consumers, top_out] =
      top_quartile_count(by_out, market::Role::kConsumer);
  auto [out_producers, top_out2] =
      top_quartile_count(by_out, market::Role::kProducer);
  (void)top_out2;
  EXPECT_GE(in_producers * 100, top_in * 60);
  EXPECT_GE(out_consumers * 100, top_out * 50);
  EXPECT_GT(out_consumers, out_producers);
}

TEST_F(EndToEndTest, HyperedgesBeatConstituentEdges) {
  // Table 5.2's shape, guaranteed by γ_hyper > 1 at build time but
  // re-verified through the public API.
  size_t checked = 0;
  for (const Hyperedge& e : experiment_->graph.edges()) {
    if (e.tail_size() != 2) continue;
    std::vector<VertexId> t0 = {e.tail[0]};
    std::vector<VertexId> t1 = {e.tail[1]};
    auto e0 = experiment_->graph.FindEdge(t0, e.head);
    auto e1 = experiment_->graph.FindEdge(t1, e.head);
    if (e0.has_value()) {
      EXPECT_GT(e.weight, experiment_->graph.edge(*e0).weight);
      ++checked;
    }
    if (e1.has_value()) {
      EXPECT_GT(e.weight, experiment_->graph.edge(*e1).weight);
      ++checked;
    }
    if (checked > 200) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(EndToEndTest, DominatorsCoverMostSeries) {
  auto threshold = experiment_->graph.WeightQuantileThreshold(0.4);
  ASSERT_TRUE(threshold.ok());
  DominatorConfig config;
  config.acv_threshold = *threshold;
  auto alg5 = ComputeDominatorGreedyDS(experiment_->graph, {}, config);
  auto alg6 = ComputeDominatorSetCover(experiment_->graph, {}, config);
  ASSERT_TRUE(alg5.ok());
  ASSERT_TRUE(alg6.ok());
  // Table 5.3/5.4 shape: small dominators covering most of the universe.
  EXPECT_LT(alg5->dominator.size(), 20u);
  EXPECT_GT(alg5->fraction_covered, 0.7);
  EXPECT_LT(alg6->dominator.size(), 25u);
  EXPECT_GT(alg6->fraction_covered, 0.7);
  // Verified coverage agrees with reported coverage.
  EXPECT_NEAR(
      VerifyDominatorCoverage(
          experiment_->graph.FilteredByWeight(*threshold), {},
          alg5->dominator),
      alg5->fraction_covered, 1e-12);
}

TEST_F(EndToEndTest, ClassifierBeatsChanceOutOfSample) {
  // Train on the first 4 years, evaluate on the held-out last year
  // (Section 5.5's protocol at test scale).
  auto split = DiscretizeTrainTest(experiment_->panel, 3, 1995, 1998, 1999,
                                   1999);
  ASSERT_TRUE(split.ok());
  auto graph = BuildAssociationHypergraph(split->train, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto threshold = graph->WeightQuantileThreshold(0.4);
  ASSERT_TRUE(threshold.ok());
  DominatorConfig config;
  config.acv_threshold = *threshold;
  auto dominator = ComputeDominatorSetCover(*graph, {}, config);
  ASSERT_TRUE(dominator.ok());
  ASSERT_FALSE(dominator->dominator.empty());
  auto eval = EvaluateAssociationClassifier(*graph, split->train,
                                            split->test,
                                            dominator->dominator);
  ASSERT_TRUE(eval.ok());
  // Chance is 1/3; Section 5.5.1 reports 0.60-0.75 at paper scale.
  EXPECT_GT(eval->mean_confidence, 0.40);
  EXPECT_LE(eval->mean_confidence, 1.0);
}

TEST_F(EndToEndTest, ClustersAlignWithSectors) {
  // Figure 5.3's shape: clusters are sector-pure well above chance.
  auto sg = SimilarityGraph::Build(experiment_->graph);
  ASSERT_TRUE(sg.ok());
  size_t t = market::DistinctSubSectors(experiment_->panel.tickers);
  ASSERT_GT(t, 1u);
  auto clustering = ClusterSimilarAttributes(*sg, std::min(t, sg->size()));
  ASSERT_TRUE(clustering.ok());
  // Compute sector purity: fraction of same-cluster pairs sharing sector.
  size_t same_cluster_pairs = 0;
  size_t same_cluster_same_sector = 0;
  for (size_t i = 0; i < sg->size(); ++i) {
    for (size_t j = i + 1; j < sg->size(); ++j) {
      if (clustering->assignment[i] != clustering->assignment[j]) continue;
      ++same_cluster_pairs;
      if (experiment_->panel.tickers[i].sector ==
          experiment_->panel.tickers[j].sector) {
        ++same_cluster_same_sector;
      }
    }
  }
  if (same_cluster_pairs > 0) {
    double purity = static_cast<double>(same_cluster_same_sector) /
                    static_cast<double>(same_cluster_pairs);
    // Chance level is roughly 1/12 sectors ~ 0.08 (size-weighted higher).
    EXPECT_GT(purity, 0.3);
  }
}

TEST_F(EndToEndTest, MeanClusterDiameterBelowMeanDistance) {
  // Section 5.3.2 reports mean diameter 0.83 < overall mean distance 0.89.
  auto sg = SimilarityGraph::Build(experiment_->graph);
  ASSERT_TRUE(sg.ok());
  auto clustering = ClusterSimilarAttributes(*sg, 12);
  ASSERT_TRUE(clustering.ok());
  std::vector<double> diameters;
  for (size_t c = 0; c < clustering->centers.size(); ++c) {
    double diameter = 0.0;
    for (size_t i = 0; i < sg->size(); ++i) {
      if (clustering->assignment[i] != c) continue;
      for (size_t j = i + 1; j < sg->size(); ++j) {
        if (clustering->assignment[j] != c) continue;
        diameter = std::max(diameter, sg->Distance(i, j));
      }
    }
    diameters.push_back(diameter);
  }
  EXPECT_LT(Mean(diameters), sg->MeanDistance());
}

}  // namespace
}  // namespace hypermine::core
