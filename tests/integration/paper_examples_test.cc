/// Integration tests that replay the worked examples of the thesis end to
/// end, from raw values through discretization to measures — the strongest
/// available ground truth for the reproduction.
#include <gtest/gtest.h>

#include "core/assoc_rule.h"
#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::GeneDatabase;
using hypermine::testing::InterestDatabase;
using hypermine::testing::PatientDatabase;

TEST(PaperExamplesTest, Table32PatientDiscretization) {
  Database db = PatientDatabase();
  // Table 3.2 rows: patient 1 = (2, 10, 13, 7); patient 8 = (8, 12, 15, 7).
  EXPECT_EQ(db.value(0, 0), 2);
  EXPECT_EQ(db.value(0, 1), 10);
  EXPECT_EQ(db.value(0, 2), 13);
  EXPECT_EQ(db.value(0, 3), 7);
  EXPECT_EQ(db.value(7, 0), 8);
  EXPECT_EQ(db.value(7, 1), 12);
  EXPECT_EQ(db.value(7, 2), 15);
  EXPECT_EQ(db.value(7, 3), 7);
  // Patient 2 = (6, 16, 16, 8).
  EXPECT_EQ(db.value(1, 0), 6);
  EXPECT_EQ(db.value(1, 1), 16);
}

TEST(PaperExamplesTest, Table34GeneDiscretization) {
  Database db = GeneDatabase();
  // Table 3.4 row 1: (down, down, flat, flat); row 2: (flat, down, down, up).
  EXPECT_EQ(db.value(0, 0), 0);
  EXPECT_EQ(db.value(0, 1), 0);
  EXPECT_EQ(db.value(0, 2), 1);
  EXPECT_EQ(db.value(0, 3), 1);
  EXPECT_EQ(db.value(1, 0), 1);
  EXPECT_EQ(db.value(1, 3), 2);
  // Row 8: (up, down, down, up).
  EXPECT_EQ(db.value(7, 0), 2);
  EXPECT_EQ(db.value(7, 1), 0);
  EXPECT_EQ(db.value(7, 2), 0);
  EXPECT_EQ(db.value(7, 3), 2);
}

TEST(PaperExamplesTest, Table36InterestDiscretization) {
  Database db = InterestDatabase();
  // Table 3.6 row 1: (h, h, l, m); row 3: (l, l, h, h); row 7: (m, m, m, m).
  EXPECT_EQ(db.value(0, 0), 2);
  EXPECT_EQ(db.value(0, 1), 2);
  EXPECT_EQ(db.value(0, 2), 0);
  EXPECT_EQ(db.value(0, 3), 1);
  EXPECT_EQ(db.value(2, 0), 0);
  EXPECT_EQ(db.value(2, 2), 2);
  EXPECT_EQ(db.value(2, 3), 2);
  for (AttrId a = 0; a < 4; ++a) EXPECT_EQ(db.value(6, a), 1);
}

TEST(PaperExamplesTest, AllThreeExampleRuleMeasures) {
  // The three worked Supp/Conf numbers of Chapter 3, in one place.
  {
    Database db = PatientDatabase();
    MvaRule rule{{{0, 3}, {1, 12}}, {{2, 13}}};
    EXPECT_DOUBLE_EQ(*Support(db, rule.antecedent), 0.375);
    EXPECT_NEAR(*Confidence(db, rule), 0.667, 5e-4);
  }
  {
    Database db = GeneDatabase();
    MvaRule rule{{{1, 0}, {2, 0}}, {{3, 2}}};
    EXPECT_DOUBLE_EQ(*Support(db, rule.antecedent), 0.875);
    EXPECT_NEAR(*Confidence(db, rule), 0.857, 5e-4);
  }
  {
    Database db = InterestDatabase();
    MvaRule rule{{{0, 2}, {1, 2}}, {{2, 0}}};
    EXPECT_DOUBLE_EQ(*Support(db, rule.antecedent), 0.5);
    EXPECT_DOUBLE_EQ(*Confidence(db, rule), 0.75);
  }
}

TEST(PaperExamplesTest, GeneDatabaseAcvRespectsTheorem38) {
  // Build AT({G2, G3}, G4) on the gene data and verify the monotone chain
  // ACV(pair) >= ACV(edges) >= ACV(∅) of Theorem 3.8.
  Database db = GeneDatabase();
  double base = *BaseAcv(db, 3);
  double edge_g2 = AssociationTable::Build(db, {1}, 3)->acv();
  double edge_g3 = AssociationTable::Build(db, {2}, 3)->acv();
  double pair = AssociationTable::Build(db, {1, 2}, 3)->acv();
  EXPECT_GE(edge_g2 + 1e-12, base);
  EXPECT_GE(edge_g3 + 1e-12, base);
  EXPECT_GE(pair + 1e-12, std::max(edge_g2, edge_g3));
}

TEST(PaperExamplesTest, InterestHypergraphHasReadPlaySymmetry) {
  // Reading and playing interests track each other in Table 3.6; the
  // association hypergraph must contain at least one of R -> P or P -> R.
  Database db = InterestDatabase();
  HypergraphConfig config = ConfigC1();
  auto graph = BuildAssociationHypergraph(db, config);
  ASSERT_TRUE(graph.ok());
  std::vector<VertexId> r = {0};
  std::vector<VertexId> p = {1};
  EXPECT_TRUE(graph->FindEdge(r, 1).has_value() ||
              graph->FindEdge(p, 0).has_value());
}

}  // namespace
}  // namespace hypermine::core
