/// Persistence round-trips across module boundaries: a saved panel reloads
/// into the identical model, and a saved hypergraph supports the same
/// downstream computations (dominators, similarity) as the original.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/dominator.h"
#include "core/export.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "market/panel.h"
#include "util/csv.h"
#include "util/logging.h"

namespace hypermine::core {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PersistenceTest, PanelRoundTripRebuildsIdenticalHypergraph) {
  market::MarketConfig config;
  config.num_series = 30;
  config.num_years = 3;
  config.seed = 77;
  auto panel = market::SimulateMarket(config);
  ASSERT_TRUE(panel.ok());

  std::string path = TempPath("persistence_panel.csv");
  ASSERT_TRUE(market::SavePanelCsv(*panel, path).ok());
  auto loaded = market::LoadPanelCsv(path, config.first_year);
  ASSERT_TRUE(loaded.ok());

  auto db_original = DiscretizePanel(*panel, 3);
  auto db_loaded = DiscretizePanel(*loaded, 3);
  ASSERT_TRUE(db_original.ok());
  ASSERT_TRUE(db_loaded.ok());
  // Discretized values must agree exactly: buckets depend only on order
  // statistics, which survive the 6-decimal CSV round-trip at this scale.
  size_t disagreements = 0;
  for (AttrId a = 0; a < db_original->num_attributes(); ++a) {
    for (size_t o = 0; o < db_original->num_observations(); ++o) {
      disagreements += db_original->value(o, a) != db_loaded->value(o, a);
    }
  }
  EXPECT_EQ(disagreements, 0u);

  auto graph_original = BuildAssociationHypergraph(*db_original, ConfigC1());
  auto graph_loaded = BuildAssociationHypergraph(*db_loaded, ConfigC1());
  ASSERT_TRUE(graph_original.ok());
  ASSERT_TRUE(graph_loaded.ok());
  EXPECT_EQ(graph_original->num_edges(), graph_loaded->num_edges());
  std::remove(path.c_str());
}

TEST(PersistenceTest, ExportedHypergraphSupportsSameComputations) {
  market::MarketConfig config;
  config.num_series = 30;
  config.num_years = 3;
  config.seed = 78;
  auto experiment = SetUpMarketExperiment(config, ConfigC1());
  ASSERT_TRUE(experiment.ok());

  std::string path = TempPath("persistence_graph.csv");
  ASSERT_TRUE(WriteHypergraphCsv(experiment->graph, path).ok());
  auto loaded = ReadHypergraphCsv(path);
  ASSERT_TRUE(loaded.ok());

  // Dominators agree.
  DominatorConfig dom_config;
  dom_config.acv_threshold =
      experiment->graph.WeightQuantileThreshold(0.4).value();
  auto dom_original =
      ComputeDominatorSetCover(experiment->graph, {}, dom_config);
  auto dom_loaded = ComputeDominatorSetCover(*loaded, {}, dom_config);
  ASSERT_TRUE(dom_original.ok());
  ASSERT_TRUE(dom_loaded.ok());
  EXPECT_EQ(dom_original->dominator, dom_loaded->dominator);

  // Similarity distances agree.
  auto sg_original = SimilarityGraph::Build(experiment->graph);
  auto sg_loaded = SimilarityGraph::Build(*loaded);
  ASSERT_TRUE(sg_original.ok());
  ASSERT_TRUE(sg_loaded.ok());
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = i + 1; j < 10; ++j) {
      EXPECT_NEAR(sg_original->Distance(i, j), sg_loaded->Distance(i, j),
                  1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, TruncatedPanelFileRejected) {
  market::MarketConfig config;
  config.num_series = 5;
  config.num_years = 1;
  config.seed = 79;
  auto panel = market::SimulateMarket(config);
  ASSERT_TRUE(panel.ok());
  std::string path = TempPath("persistence_truncated.csv");
  ASSERT_TRUE(market::SavePanelCsv(*panel, path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  // Chop the file mid-way: the loader must fail cleanly, not crash.
  ASSERT_TRUE(
      WriteStringToFile(path, text->substr(0, text->size() / 2)).ok());
  EXPECT_FALSE(market::LoadPanelCsv(path, config.first_year).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hypermine::core
