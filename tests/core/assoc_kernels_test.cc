// Fuzz-style coverage for the low-level ACV kernels: the fused multi-head
// edge kernel and the scratch-buffer pair kernel must agree with the
// reference AssociationTable::Build(...).acv() on random inputs, and
// bit-exactly with their unfused/allocating counterparts.
#include <gtest/gtest.h>

#include <vector>

#include "core/assoc_table.h"
#include "core/discretize.h"
#include "core/simd.h"
#include "util/rng.h"

namespace hypermine::core {
namespace {

/// Random column-major database over n attributes, m observations, k
/// values, with adjacent-column correlation so interesting contingency
/// tables (non-uniform row maxima) occur.
Database RandomDb(Rng* rng, size_t n, size_t m, size_t k) {
  std::vector<std::vector<ValueId>> columns(n, std::vector<ValueId>(m));
  std::vector<std::string> names;
  for (size_t a = 0; a < n; ++a) names.push_back("A" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      if (a > 0 && rng->NextBernoulli(0.5)) {
        columns[a][o] = columns[a - 1][o];
      } else {
        columns[a][o] = static_cast<ValueId>(rng->NextBounded(k));
      }
    }
  }
  auto db = DatabaseFromColumns(std::move(names), k, columns);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(AcvKernelsTest, ScratchSizeHelpers) {
  EXPECT_EQ(AcvEdgeBlockScratchSize(4, 3), 4u * 9u);
  EXPECT_EQ(AcvEdgeBlockScratchSize(1, 5), 25u);
  EXPECT_EQ(AcvPairScratchSize(3), 27u);
  EXPECT_EQ(AcvPairScratchSize(5), 125u);
}

TEST(AcvKernelsTest, FusedEdgeKernelMatchesReferenceOnRandomInputs) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t k = 2 + rng.NextBounded(5);          // 2..6
    const size_t n = 3 + rng.NextBounded(8);          // 3..10
    const size_t m = 1 + rng.NextBounded(300);        // 1..300
    Database db = RandomDb(&rng, n, m, k);

    // A random block of heads (may include the tail attribute itself;
    // those slots are judged meaningless by the builder but must still be
    // computed consistently with AcvEdgeKernel).
    const size_t tail = rng.NextBounded(n);
    const size_t num_heads = 1 + rng.NextBounded(n);
    std::vector<const ValueId*> heads(num_heads);
    std::vector<size_t> head_ids(num_heads);
    for (size_t j = 0; j < num_heads; ++j) {
      head_ids[j] = rng.NextBounded(n);
      heads[j] = db.column(static_cast<AttrId>(head_ids[j])).data();
    }

    std::vector<size_t> scratch(AcvEdgeBlockScratchSize(num_heads, k));
    std::vector<double> acv(num_heads, -1.0);
    AcvEdgeBlockKernel(db.column(static_cast<AttrId>(tail)).data(),
                       heads.data(), num_heads, m, k, scratch.data(),
                       acv.data());

    for (size_t j = 0; j < num_heads; ++j) {
      // Bit-exact vs the unfused kernel (same integer counts, one divide).
      EXPECT_EQ(acv[j],
                AcvEdgeKernel(db.column(static_cast<AttrId>(tail)).data(),
                              heads[j], m, k))
          << "trial " << trial << " head " << j;
      // Near-exact vs the row-materializing reference, which accumulates
      // best/m per row instead of summing integers first.
      if (head_ids[j] != tail) {
        auto table = AssociationTable::Build(
            db, {static_cast<AttrId>(tail)},
            static_cast<AttrId>(head_ids[j]));
        ASSERT_TRUE(table.ok());
        EXPECT_NEAR(acv[j], table->acv(), 1e-12)
            << "trial " << trial << " head " << j;
      }
    }
  }
}

TEST(AcvKernelsTest, PairKernelScratchMatchesReferenceOnRandomInputs) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t k = 2 + rng.NextBounded(5);
    const size_t n = 3 + rng.NextBounded(6);
    const size_t m = 1 + rng.NextBounded(250);
    Database db = RandomDb(&rng, n, m, k);

    // Three distinct attributes: two tails and a head.
    std::vector<size_t> ids = rng.SampleIndices(n, 3);
    const ValueId* t0 = db.column(static_cast<AttrId>(ids[0])).data();
    const ValueId* t1 = db.column(static_cast<AttrId>(ids[1])).data();
    const ValueId* head = db.column(static_cast<AttrId>(ids[2])).data();

    std::vector<size_t> scratch(AcvPairScratchSize(k), 1234);
    double with_scratch = AcvPairKernel(t0, t1, head, m, k, scratch.data());
    // Legacy allocating wrapper must agree bit-exactly.
    EXPECT_EQ(with_scratch, AcvPairKernel(t0, t1, head, m, k));

    auto table = AssociationTable::Build(
        db, {static_cast<AttrId>(ids[0]), static_cast<AttrId>(ids[1])},
        static_cast<AttrId>(ids[2]));
    ASSERT_TRUE(table.ok());
    EXPECT_NEAR(with_scratch, table->acv(), 1e-12) << "trial " << trial;
  }
}

TEST(AcvKernelsTest, PackValuePlanesPartitionsObservations) {
  Rng rng(31);
  for (size_t m : {1u, 63u, 64u, 65u, 200u}) {
    const size_t k = 4;
    std::vector<ValueId> col(m);
    for (size_t o = 0; o < m; ++o) {
      col[o] = static_cast<ValueId>(rng.NextBounded(k));
    }
    std::vector<uint64_t> planes(ValuePlanesSize(k, m), ~uint64_t{0});
    PackValuePlanes(col.data(), m, k, planes.data());
    const size_t words = PlaneWords(m);
    for (size_t o = 0; o < m; ++o) {
      for (size_t v = 0; v < k; ++v) {
        const bool bit =
            (planes[v * words + (o >> 6)] >> (o & 63)) & uint64_t{1};
        EXPECT_EQ(bit, col[o] == v) << "m=" << m << " o=" << o;
      }
    }
    // Padding bits beyond m must be cleared despite the dirty buffer.
    uint64_t padding = 0;
    for (size_t v = 0; v < k; ++v) {
      if (m % 64 != 0) {
        padding |= planes[v * words + words - 1] & (~uint64_t{0} << (m % 64));
      }
    }
    EXPECT_EQ(padding, 0u) << "m=" << m;
  }
}

TEST(AcvKernelsTest, PlaneKernelsMatchByteKernelsOnRandomInputs) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t k = 2 + rng.NextBounded(7);      // 2..8, the plane regime
    const size_t n = 3 + rng.NextBounded(6);
    const size_t m = 1 + rng.NextBounded(400);
    Database db = RandomDb(&rng, n, m, k);

    const size_t per_col = ValuePlanesSize(k, m);
    std::vector<uint64_t> planes(n * per_col);
    for (size_t a = 0; a < n; ++a) {
      PackValuePlanes(db.column(static_cast<AttrId>(a)).data(), m, k,
                      &planes[a * per_col]);
    }

    // Edge block: every (tail, head block) vs the byte kernel, bit-exact.
    const size_t tail = rng.NextBounded(n);
    const size_t num_heads = 1 + rng.NextBounded(n);
    std::vector<const uint64_t*> head_planes(num_heads);
    std::vector<size_t> head_ids(num_heads);
    for (size_t j = 0; j < num_heads; ++j) {
      head_ids[j] = rng.NextBounded(n);
      head_planes[j] = &planes[head_ids[j] * per_col];
    }
    std::vector<double> acv(num_heads, -1.0);
    AcvEdgeBlockKernel(&planes[tail * per_col], head_planes.data(),
                       num_heads, m, k, acv.data());
    for (size_t j = 0; j < num_heads; ++j) {
      EXPECT_EQ(acv[j],
                AcvEdgeKernel(db.column(static_cast<AttrId>(tail)).data(),
                              db.column(static_cast<AttrId>(head_ids[j]))
                                  .data(),
                              m, k))
          << "trial " << trial << " head " << j;
    }

    // Pair kernel vs the byte pair kernel, bit-exact.
    std::vector<size_t> ids = rng.SampleIndices(n, 3);
    std::vector<uint64_t> word_scratch(PlaneWords(m), 0xABCD);
    double plane_pair = AcvPairKernel(
        &planes[ids[0] * per_col], &planes[ids[1] * per_col],
        &planes[ids[2] * per_col], m, k, word_scratch.data());
    EXPECT_EQ(plane_pair,
              AcvPairKernel(db.column(static_cast<AttrId>(ids[0])).data(),
                            db.column(static_cast<AttrId>(ids[1])).data(),
                            db.column(static_cast<AttrId>(ids[2])).data(),
                            m, k))
        << "trial " << trial;

    // Every SIMD tier this host supports must agree bit-exactly with the
    // byte oracle — the integer counts are identical by construction, so
    // any deviation is a vectorization bug, not a tolerance question.
    for (simd::Tier tier : simd::SupportedTiers()) {
      const simd::Ops& ops = simd::OpsForTier(tier);
      std::vector<double> tier_acv(num_heads, -1.0);
      AcvEdgeBlockKernel(&planes[tail * per_col], head_planes.data(),
                         num_heads, m, k, ops, tier_acv.data());
      for (size_t j = 0; j < num_heads; ++j) {
        EXPECT_EQ(tier_acv[j], acv[j])
            << "tier " << ops.name << " trial " << trial << " head " << j;
      }
      std::vector<uint64_t> tier_scratch(PlaneWords(m), 0x1234);
      EXPECT_EQ(AcvPairKernel(&planes[ids[0] * per_col],
                              &planes[ids[1] * per_col],
                              &planes[ids[2] * per_col], m, k, ops,
                              tier_scratch.data()),
                plane_pair)
          << "tier " << ops.name << " trial " << trial;
    }
  }
}

TEST(AcvKernelsTest, ScratchContentsDoNotLeakBetweenCalls) {
  // A dirty scratch buffer must not change results: kernels zero it.
  Rng rng(5);
  Database db = RandomDb(&rng, 4, 100, 3);
  const ValueId* t0 = db.column(0).data();
  const ValueId* t1 = db.column(1).data();
  const ValueId* head = db.column(2).data();

  std::vector<size_t> dirty(AcvPairScratchSize(3), 0xDEAD);
  std::vector<size_t> clean(AcvPairScratchSize(3), 0);
  EXPECT_EQ(AcvPairKernel(t0, t1, head, 100, 3, dirty.data()),
            AcvPairKernel(t0, t1, head, 100, 3, clean.data()));

  std::vector<size_t> block_dirty(AcvEdgeBlockScratchSize(2, 3), 0xBEEF);
  const ValueId* heads[2] = {t1, head};
  double acv_dirty[2];
  AcvEdgeBlockKernel(t0, heads, 2, 100, 3, block_dirty.data(), acv_dirty);
  EXPECT_EQ(acv_dirty[0], AcvEdgeKernel(t0, t1, 100, 3));
  EXPECT_EQ(acv_dirty[1], AcvEdgeKernel(t0, head, 100, 3));
}

}  // namespace
}  // namespace hypermine::core
