// Pre-packed value-plane reuse in the builder: supplying a matching
// ValuePlanes artifact must be invisible in the output (bit-identical
// graph and stats), and supplying a stale or foreign artifact must be a
// loud kInvalidArgument — never a silently wrong model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "core/value_planes.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::core {
namespace {

/// Bit-exact graph comparison, same contract as builder_parallel_test:
/// edge count, insertion order, tails, heads, and double-== weights.
void ExpectIdenticalGraphs(const DirectedHypergraph& a,
                           const DirectedHypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    const Hyperedge& ea = a.edge(id);
    const Hyperedge& eb = b.edge(id);
    EXPECT_EQ(ea.head, eb.head) << "edge " << id;
    EXPECT_EQ(ea.tail[0], eb.tail[0]) << "edge " << id;
    EXPECT_EQ(ea.tail[1], eb.tail[1]) << "edge " << id;
    EXPECT_EQ(ea.tail[2], eb.tail[2]) << "edge " << id;
    EXPECT_EQ(ea.weight, eb.weight) << "edge " << id;
  }
}

Database RandomDb(uint64_t seed, size_t n, size_t m, size_t k) {
  Rng rng(seed);
  std::vector<std::vector<ValueId>> columns(n, std::vector<ValueId>(m));
  std::vector<std::string> names;
  for (size_t a = 0; a < n; ++a) names.push_back("A" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      if (a > 0 && rng.NextBernoulli(0.4)) {
        columns[a][o] = columns[a - 1][o];
      } else {
        columns[a][o] = static_cast<ValueId>(rng.NextBounded(k));
      }
    }
  }
  auto db = DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

TEST(BuilderPlanesTest, PrePackedPlanesAreBitIdenticalToInternalPacking) {
  // k = 3 stays on the plane-kernel path where the artifact is consulted.
  Database db = RandomDb(99, 10, 400, 3);
  HypergraphConfig config;
  config.k = 3;
  config.num_threads = 1;

  BuildStats stats_without;
  auto without = BuildAssociationHypergraph(db, config, &stats_without);
  HM_CHECK_OK(without.status());

  ValuePlanes planes = PackDatabasePlanes(db);
  BuildStats stats_with;
  auto with =
      BuildAssociationHypergraph(db, config, &stats_with, nullptr, &planes);
  HM_CHECK_OK(with.status());

  ExpectIdenticalGraphs(*without, *with);
  EXPECT_EQ(stats_without.edge_candidates, stats_with.edge_candidates);
  EXPECT_EQ(stats_without.edges_kept, stats_with.edges_kept);
  EXPECT_EQ(stats_without.pair_candidates, stats_with.pair_candidates);
  EXPECT_EQ(stats_without.pairs_kept, stats_with.pairs_kept);
  EXPECT_EQ(stats_without.mean_edge_acv, stats_with.mean_edge_acv);
  EXPECT_EQ(stats_without.mean_pair_acv, stats_with.mean_pair_acv);
}

TEST(BuilderPlanesTest, ReusedPlanesSurviveManyGammaSettings) {
  // The γ-sweep pattern the artifact exists for: one pack, many builds.
  Database db = RandomDb(7, 8, 300, 4);
  ValuePlanes planes = PackDatabasePlanes(db);
  for (double gamma : {1.0, 1.05, 1.15, 1.3}) {
    HypergraphConfig config;
    config.k = 4;
    config.gamma_edge = gamma;
    config.num_threads = 1;
    auto with =
        BuildAssociationHypergraph(db, config, nullptr, nullptr, &planes);
    HM_CHECK_OK(with.status());
    auto without = BuildAssociationHypergraph(db, config);
    HM_CHECK_OK(without.status());
    ExpectIdenticalGraphs(*without, *with);
  }
}

TEST(BuilderPlanesTest, MismatchedPlanesAreRejected) {
  Database db = RandomDb(1, 6, 200, 3);
  Database other = RandomDb(2, 6, 200, 3);
  HypergraphConfig config;
  config.k = 3;
  config.num_threads = 1;

  // Planes packed from a different database: same shape, wrong content.
  ValuePlanes foreign = PackDatabasePlanes(other);
  auto result =
      BuildAssociationHypergraph(db, config, nullptr, nullptr, &foreign);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Stale planes: packed from db, then a word is tampered with. The
  // fingerprint check in Matches() catches content drift even when all
  // dimensions agree.
  ValuePlanes stale = PackDatabasePlanes(db);
  stale.fingerprint ^= 1;
  auto stale_result =
      BuildAssociationHypergraph(db, config, nullptr, nullptr, &stale);
  ASSERT_FALSE(stale_result.ok());
  EXPECT_EQ(stale_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderPlanesTest, PlanesIgnoredOnByteKernelPath) {
  // k beyond kMaxPlaneKernelValues uses byte kernels; a supplied artifact
  // is not consulted there and the build proceeds identically.
  static_assert(kMaxPlaneKernelValues < 12);
  Database db = RandomDb(3, 5, 150, 12);
  HypergraphConfig config;
  config.k = 12;
  config.num_threads = 1;
  ValuePlanes planes = PackDatabasePlanes(db);
  auto with =
      BuildAssociationHypergraph(db, config, nullptr, nullptr, &planes);
  HM_CHECK_OK(with.status());
  auto without = BuildAssociationHypergraph(db, config);
  HM_CHECK_OK(without.status());
  ExpectIdenticalGraphs(*without, *with);
}

}  // namespace
}  // namespace hypermine::core
