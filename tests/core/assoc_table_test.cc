#include "core/assoc_table.h"

#include <gtest/gtest.h>

#include "core/assoc_rule.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::GeneDatabase;
using hypermine::testing::RandomDatabase;

TEST(AssociationTableTest, SingleTailRowsMatchManualCounts) {
  // db: A = [0,0,1,1,2,2], B = [0,0,1,0,2,2], k = 3.
  auto db = DatabaseFromColumns({"A", "B"}, 3,
                                {{0, 0, 1, 1, 2, 2}, {0, 0, 1, 0, 2, 2}});
  ASSERT_TRUE(db.ok());
  auto table = AssociationTable::Build(*db, {0}, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
  // Row A=0: support 2/6, best B value 0, confidence 1.
  const AssocTableRow& r0 = table->RowFor({0});
  EXPECT_NEAR(r0.support, 2.0 / 6.0, 1e-12);
  EXPECT_EQ(r0.best_head_value, 0);
  EXPECT_DOUBLE_EQ(r0.confidence, 1.0);
  // Row A=1: values of B split {1, 0}: confidence 1/2.
  const AssocTableRow& r1 = table->RowFor({1});
  EXPECT_DOUBLE_EQ(r1.confidence, 0.5);
  // ACV = sum Supp*Conf = (2/6*1) + (2/6*1/2) + (2/6*1) = 5/6.
  EXPECT_NEAR(table->acv(), 5.0 / 6.0, 1e-12);
}

TEST(AssociationTableTest, PairTailRowOrderMatchesTailOrder) {
  auto db = DatabaseFromColumns(
      {"A", "B", "C"}, 2, {{0, 0, 1, 1}, {0, 1, 0, 1}, {0, 1, 1, 0}});
  ASSERT_TRUE(db.ok());
  auto table = AssociationTable::Build(*db, {0, 1}, 2);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 4u);
  // Row (A=0, B=1) is observation 1 -> C=1 with confidence 1.
  const AssocTableRow& row = table->RowFor({0, 1});
  EXPECT_NEAR(row.support, 0.25, 1e-12);
  EXPECT_EQ(row.best_head_value, 1);
  EXPECT_DOUBLE_EQ(row.confidence, 1.0);
}

TEST(AssociationTableTest, ZeroSupportRowsMaterialized) {
  auto db = DatabaseFromColumns({"A", "B"}, 3, {{0, 0}, {1, 1}});
  ASSERT_TRUE(db.ok());
  auto table = AssociationTable::Build(*db, {0}, 1);
  ASSERT_TRUE(table.ok());
  const AssocTableRow& unseen = table->RowFor({2});
  EXPECT_DOUBLE_EQ(unseen.support, 0.0);
  EXPECT_DOUBLE_EQ(unseen.confidence, 0.0);
  EXPECT_EQ(unseen.tail_count, 0u);
}

TEST(AssociationTableTest, RowConfidenceMatchesMvaRuleConfidence) {
  // Definition 3.6(2c): each row is an mva-type rule; cross-check against
  // the standalone Supp/Conf implementation.
  Database db = RandomDatabase(4, 200, 3, 77);
  auto table = AssociationTable::Build(db, {0, 2}, 3);
  ASSERT_TRUE(table.ok());
  for (ValueId v0 = 0; v0 < 3; ++v0) {
    for (ValueId v2 = 0; v2 < 3; ++v2) {
      const AssocTableRow& row = table->RowFor({v0, v2});
      std::vector<AttributeValue> x = {{0, v0}, {2, v2}};
      EXPECT_NEAR(row.support, *Support(db, x), 1e-12);
      if (row.tail_count == 0) continue;
      MvaRule rule{x, {{3, row.best_head_value}}};
      EXPECT_NEAR(row.confidence, *Confidence(db, rule), 1e-12);
    }
  }
}

TEST(AssociationTableTest, Validations) {
  Database db = GeneDatabase();
  EXPECT_FALSE(AssociationTable::Build(db, {}, 0).ok());
  EXPECT_FALSE(AssociationTable::Build(db, {0, 1, 2}, 3).ok());  // |T| > 2
  EXPECT_FALSE(AssociationTable::Build(db, {0}, 0).ok());        // T == H
  EXPECT_FALSE(AssociationTable::Build(db, {0, 0}, 1).ok());     // repeated
  EXPECT_FALSE(AssociationTable::Build(db, {9}, 0).ok());
  auto empty = Database::Create({"a", "b"}, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(AssociationTable::Build(*empty, {0}, 1).ok());
}

TEST(BaseAcvTest, IsMostFrequentValueShare) {
  auto db = DatabaseFromColumns({"A", "B"}, 3, {{0, 0, 0, 1}, {2, 2, 1, 0}});
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(*BaseAcv(*db, 0), 0.75, 1e-12);
  EXPECT_NEAR(*BaseAcv(*db, 1), 0.5, 1e-12);
  EXPECT_FALSE(BaseAcv(*db, 7).ok());
}

TEST(AcvKernelsTest, MatchAssociationTableAcv) {
  Database db = RandomDatabase(5, 300, 4, 12345);
  const size_t m = db.num_observations();
  const size_t k = db.num_values();
  // Edge kernel vs AssociationTable for every (tail, head) pair.
  for (AttrId a = 0; a < 5; ++a) {
    for (AttrId h = 0; h < 5; ++h) {
      if (a == h) continue;
      double kernel =
          AcvEdgeKernel(db.column(a).data(), db.column(h).data(), m, k);
      auto table = AssociationTable::Build(db, {a}, h);
      ASSERT_TRUE(table.ok());
      EXPECT_NEAR(kernel, table->acv(), 1e-12);
    }
  }
  // Pair kernel spot checks.
  double kernel = AcvPairKernel(db.column(0).data(), db.column(1).data(),
                                db.column(2).data(), m, k);
  auto table = AssociationTable::Build(db, {0, 1}, 2);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(kernel, table->acv(), 1e-12);
}

/// Theorem 3.8(1): ACV({A}, {X}) >= ACV(∅, {X}).
TEST(AcvMonotonicityTest, EdgeBeatsEmptyTail) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Database db = RandomDatabase(4, 150, 3, seed);
    for (AttrId a = 0; a < 4; ++a) {
      for (AttrId h = 0; h < 4; ++h) {
        if (a == h) continue;
        auto table = AssociationTable::Build(db, {a}, h);
        ASSERT_TRUE(table.ok());
        EXPECT_GE(table->acv() + 1e-12, *BaseAcv(db, h));
      }
    }
  }
}

/// Theorem 3.8(2): ACV({A,B}, {X}) >= max(ACV({A},{X}), ACV({B},{X})).
class AcvPairMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcvPairMonotonicityTest, PairBeatsConstituentEdges) {
  Database db = RandomDatabase(5, 120, 3, GetParam());
  for (AttrId a = 0; a < 5; ++a) {
    for (AttrId b = static_cast<AttrId>(a + 1); b < 5; ++b) {
      for (AttrId h = 0; h < 5; ++h) {
        if (h == a || h == b) continue;
        double pair_acv = AssociationTable::Build(db, {a, b}, h)->acv();
        double edge_a = AssociationTable::Build(db, {a}, h)->acv();
        double edge_b = AssociationTable::Build(db, {b}, h)->acv();
        EXPECT_GE(pair_acv + 1e-12, std::max(edge_a, edge_b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, AcvPairMonotonicityTest,
                         ::testing::Values(3, 14, 159, 2653, 58979));

TEST(AssociationTableTest, ToStringRendersRows) {
  auto db = DatabaseFromColumns({"A", "B"}, 2, {{0, 1}, {1, 0}});
  ASSERT_TRUE(db.ok());
  auto table = AssociationTable::Build(*db, {0}, 1);
  ASSERT_TRUE(table.ok());
  std::string text = table->ToString(*db);
  EXPECT_NE(text.find("ACV="), std::string::npos);
  EXPECT_NE(text.find("support"), std::string::npos);
}

}  // namespace
}  // namespace hypermine::core
