#include "core/classifier.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

/// Database where attribute 1 deterministically equals attribute 0 and
/// attribute 2 is noise, plus a hypergraph with the edge 0 -> 1.
struct DeterministicFixture {
  Database db;
  DirectedHypergraph graph;
};

DeterministicFixture MakeDeterministicFixture() {
  std::vector<ValueId> a = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  std::vector<ValueId> b = a;  // perfect copy
  std::vector<ValueId> c = {0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2};
  auto db = DatabaseFromColumns({"A", "B", "C"}, 3, {a, b, c});
  HM_CHECK_OK(db.status());
  auto graph = DirectedHypergraph::Create({"A", "B", "C"});
  HM_CHECK_OK(graph.status());
  DeterministicFixture fx{std::move(db).value(), std::move(graph).value()};
  HM_CHECK_OK(fx.graph.AddEdge({0}, 1, 1.0).status());
  return fx;
}

TEST(ClassifierTest, PredictsDeterministicCopyPerfectly) {
  DeterministicFixture fx = MakeDeterministicFixture();
  auto classifier = AssociationClassifier::Create(&fx.graph, &fx.db);
  ASSERT_TRUE(classifier.ok());
  for (ValueId v = 0; v < 3; ++v) {
    std::vector<int16_t> evidence = {static_cast<int16_t>(v),
                                     AssociationClassifier::kUnknown,
                                     AssociationClassifier::kUnknown};
    auto prediction = classifier->Predict(evidence, 1);
    ASSERT_TRUE(prediction.ok());
    EXPECT_EQ(prediction->value, v);
    EXPECT_EQ(prediction->rules_used, 1u);
    EXPECT_DOUBLE_EQ(prediction->confidence, 1.0);
  }
}

TEST(ClassifierTest, FallsBackToMajorityWithoutRules) {
  DeterministicFixture fx = MakeDeterministicFixture();
  auto classifier = AssociationClassifier::Create(&fx.graph, &fx.db);
  ASSERT_TRUE(classifier.ok());
  // Target 2 has no incoming edges: majority fallback.
  std::vector<int16_t> evidence = {0, AssociationClassifier::kUnknown,
                                   AssociationClassifier::kUnknown};
  auto prediction = classifier->Predict(evidence, 2);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->rules_used, 0u);
  EXPECT_EQ(prediction->value, classifier->MajorityValue(2));
  EXPECT_DOUBLE_EQ(prediction->confidence, 0.0);
}

TEST(ClassifierTest, IgnoresEdgesWhoseTailLacksEvidence) {
  DeterministicFixture fx = MakeDeterministicFixture();
  ASSERT_TRUE(fx.graph.AddEdge({2}, 1, 0.5).ok());
  auto classifier = AssociationClassifier::Create(&fx.graph, &fx.db);
  ASSERT_TRUE(classifier.ok());
  // Only attribute 0 has evidence: the ({2}, 1) edge must not contribute.
  std::vector<int16_t> evidence = {1, AssociationClassifier::kUnknown,
                                   AssociationClassifier::kUnknown};
  auto prediction = classifier->Predict(evidence, 1);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->rules_used, 1u);
  EXPECT_EQ(prediction->value, 1);
}

TEST(ClassifierTest, VotesAccumulateAcrossEdges) {
  // Attribute 2 copies attribute 0; attribute 1 anti-copies it. Two edges
  // into target 2 from tails {0} and {1}: Supp*Conf votes must combine.
  std::vector<ValueId> a = {0, 0, 1, 1, 2, 2};
  std::vector<ValueId> b = {2, 2, 0, 0, 1, 1};
  std::vector<ValueId> t = {0, 0, 1, 1, 2, 2};
  auto db = DatabaseFromColumns({"A", "B", "T"}, 3, {a, b, t});
  ASSERT_TRUE(db.ok());
  auto graph = DirectedHypergraph::Create({"A", "B", "T"});
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 2, 1.0).ok());
  ASSERT_TRUE(graph->AddEdge({1}, 2, 1.0).ok());
  auto classifier = AssociationClassifier::Create(&*graph, &*db);
  ASSERT_TRUE(classifier.ok());
  std::vector<int16_t> evidence = {0, 2, AssociationClassifier::kUnknown};
  auto prediction = classifier->Predict(evidence, 2);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->value, 0);
  EXPECT_EQ(prediction->rules_used, 2u);
  // Both rules agree with full confidence.
  EXPECT_DOUBLE_EQ(prediction->confidence, 1.0);
}

TEST(ClassifierTest, PredictValidations) {
  DeterministicFixture fx = MakeDeterministicFixture();
  auto classifier = AssociationClassifier::Create(&fx.graph, &fx.db);
  ASSERT_TRUE(classifier.ok());
  std::vector<int16_t> evidence = {0, AssociationClassifier::kUnknown,
                                   AssociationClassifier::kUnknown};
  EXPECT_FALSE(classifier->Predict({0}, 1).ok());        // wrong arity
  EXPECT_FALSE(classifier->Predict(evidence, 9).ok());   // bad target
  std::vector<int16_t> with_target = {0, 1, 0};
  EXPECT_FALSE(classifier->Predict(with_target, 1).ok());
  std::vector<int16_t> bad_value = {7, AssociationClassifier::kUnknown,
                                    AssociationClassifier::kUnknown};
  EXPECT_FALSE(classifier->Predict(bad_value, 1).ok());
}

TEST(ClassifierTest, CreateValidations) {
  DeterministicFixture fx = MakeDeterministicFixture();
  EXPECT_FALSE(AssociationClassifier::Create(nullptr, &fx.db).ok());
  EXPECT_FALSE(AssociationClassifier::Create(&fx.graph, nullptr).ok());
  auto other = DirectedHypergraph::CreateAnonymous(7);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(AssociationClassifier::Create(&*other, &fx.db).ok());
}

TEST(ClassifierTest, TablesAreCachedPerEdge) {
  DeterministicFixture fx = MakeDeterministicFixture();
  auto classifier = AssociationClassifier::Create(&fx.graph, &fx.db);
  ASSERT_TRUE(classifier.ok());
  std::vector<int16_t> evidence = {0, AssociationClassifier::kUnknown,
                                   AssociationClassifier::kUnknown};
  ASSERT_TRUE(classifier->Predict(evidence, 1).ok());
  ASSERT_TRUE(classifier->Predict(evidence, 1).ok());
  EXPECT_EQ(classifier->num_cached_tables(), 1u);
}

TEST(EvaluateClassifierTest, PerfectModelScoresOne) {
  DeterministicFixture fx = MakeDeterministicFixture();
  auto eval = EvaluateAssociationClassifier(fx.graph, fx.db, fx.db, {0, 2});
  ASSERT_TRUE(eval.ok());
  ASSERT_EQ(eval->targets, (std::vector<AttrId>{1}));
  EXPECT_DOUBLE_EQ(eval->mean_confidence, 1.0);
  EXPECT_DOUBLE_EQ(eval->rule_coverage, 1.0);
}

TEST(EvaluateClassifierTest, UnseenDataScoresInUnitRange) {
  Database train = RandomDatabase(8, 400, 3, 3, 0.8);
  Database test = RandomDatabase(8, 100, 3, 4, 0.8);
  auto graph = BuildAssociationHypergraph(train, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto eval = EvaluateAssociationClassifier(*graph, train, test, {0, 1});
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->targets.size(), 6u);
  EXPECT_GE(eval->mean_confidence, 0.0);
  EXPECT_LE(eval->mean_confidence, 1.0);
  EXPECT_EQ(eval->num_observations, 100u);
}

TEST(EvaluateClassifierTest, Validations) {
  DeterministicFixture fx = MakeDeterministicFixture();
  Database other = RandomDatabase(5, 10, 3, 1);
  EXPECT_FALSE(
      EvaluateAssociationClassifier(fx.graph, fx.db, other, {0}).ok());
  // Dominator covering every attribute leaves nothing to predict.
  EXPECT_FALSE(
      EvaluateAssociationClassifier(fx.graph, fx.db, fx.db, {0, 1, 2}).ok());
  EXPECT_FALSE(
      EvaluateAssociationClassifier(fx.graph, fx.db, fx.db, {9}).ok());
}

TEST(EvaluateClassifierTest, BetterModelBeatsNoModel) {
  // With the hypergraph of a correlated database, in-sample accuracy must
  // beat the 1/k floor.
  Database train = RandomDatabase(8, 600, 3, 15, 0.85);
  auto graph = BuildAssociationHypergraph(train, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto eval = EvaluateAssociationClassifier(*graph, train, train, {0});
  ASSERT_TRUE(eval.ok());
  EXPECT_GT(eval->mean_confidence, 1.0 / 3.0 + 0.05);
}

}  // namespace
}  // namespace hypermine::core
