#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "market/series.h"

namespace hypermine::core {
namespace {

market::MarketConfig SmallMarket() {
  market::MarketConfig config;
  config.num_series = 20;
  config.num_years = 3;
  config.seed = 99;
  return config;
}

TEST(DiscretizePanelTest, ShapeAndValueRange) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  auto db = DiscretizePanel(*panel, 3);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_attributes(), 20u);
  // Deltas: one fewer than days.
  EXPECT_EQ(db->num_observations(), panel->num_days() - 1);
  EXPECT_EQ(db->num_values(), 3u);
  EXPECT_EQ(db->attribute_name(0), panel->tickers[0].symbol);
}

TEST(DiscretizePanelTest, EquiDepthPerSeries) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  auto db = DiscretizePanel(*panel, 4);
  ASSERT_TRUE(db.ok());
  const double expected =
      static_cast<double>(db->num_observations()) / 4.0;
  for (AttrId a = 0; a < db->num_attributes(); ++a) {
    std::vector<size_t> counts(4, 0);
    for (ValueId v : db->column(a)) ++counts[v];
    for (size_t c : counts) {
      EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.05 + 2.0);
    }
  }
}

TEST(DiscretizePanelWindowTest, WindowsAlignWithCalendar) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  auto range = panel->calendar.DayRangeForYears(1996, 1996);
  ASSERT_TRUE(range.ok());
  auto db = DiscretizePanelWindow(*panel, 3, range->first, range->second);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), market::kTradingDaysPerYear);
}

TEST(DiscretizePanelWindowTest, Validations) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  EXPECT_FALSE(DiscretizePanelWindow(*panel, 3, 5, 5).ok());
  EXPECT_FALSE(
      DiscretizePanelWindow(*panel, 3, 0, panel->num_days() + 1).ok());
  EXPECT_FALSE(DiscretizePanelWindow(*panel, 1, 0, 10).ok());
}

TEST(DiscretizeTrainTestTest, SplitsByYear) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  auto split = DiscretizeTrainTest(*panel, 3, 1995, 1996, 1997, 1997);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_observations(),
            2 * market::kTradingDaysPerYear);
  // The test window's last day has no next close, so one delta is lost.
  EXPECT_EQ(split->test.num_observations(),
            market::kTradingDaysPerYear - 1);
  EXPECT_EQ(split->train.num_attributes(), split->test.num_attributes());
}

TEST(DiscretizeTrainTestTest, RejectsOutOfCalendarYears) {
  auto panel = market::SimulateMarket(SmallMarket());
  ASSERT_TRUE(panel.ok());
  EXPECT_FALSE(DiscretizeTrainTest(*panel, 3, 1990, 1995, 1996, 1996).ok());
  EXPECT_FALSE(DiscretizeTrainTest(*panel, 3, 1995, 1995, 1996, 2002).ok());
}

TEST(SetUpMarketExperimentTest, EndToEnd) {
  auto experiment = SetUpMarketExperiment(SmallMarket(), ConfigC1());
  ASSERT_TRUE(experiment.ok());
  EXPECT_EQ(experiment->graph.num_vertices(), 20u);
  EXPECT_EQ(experiment->database.num_attributes(), 20u);
  EXPECT_GT(experiment->graph.num_edges(), 0u);
  EXPECT_EQ(experiment->stats.edges_kept,
            experiment->graph.NumDirectedEdges());
}

}  // namespace
}  // namespace hypermine::core
