#include "core/dominator.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "core/builder.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

/// Hub graph: vertex 0 heads into every other vertex.
DirectedHypergraph HubGraph(size_t n) {
  auto graph = DirectedHypergraph::CreateAnonymous(n);
  HM_CHECK_OK(graph.status());
  DirectedHypergraph g = std::move(graph).value();
  for (VertexId v = 1; v < n; ++v) {
    HM_CHECK_OK(g.AddEdge({0}, v, 0.9).status());
  }
  return g;
}

struct AlgoParam {
  bool use_set_cover;
};

class DominatorAlgoTest : public ::testing::TestWithParam<AlgoParam> {
 protected:
  StatusOr<DominatorResult> Run(const DirectedHypergraph& graph,
                                std::vector<VertexId> s,
                                const DominatorConfig& config = {}) {
    return GetParam().use_set_cover
               ? ComputeDominatorSetCover(graph, std::move(s), config)
               : ComputeDominatorGreedyDS(graph, std::move(s), config);
  }
};

TEST_P(DominatorAlgoTest, HubGraphSolvedByOneVertex) {
  DirectedHypergraph g = HubGraph(8);
  auto result = Run(g, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dominator, (std::vector<VertexId>{0}));
  EXPECT_DOUBLE_EQ(result->fraction_covered, 1.0);
}

TEST_P(DominatorAlgoTest, CoverageVerifiesIndependently) {
  Database db = RandomDatabase(12, 400, 3, 5, 0.7);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto result = Run(*graph, {});
  ASSERT_TRUE(result.ok());
  double verified =
      VerifyDominatorCoverage(*graph, {}, result->dominator);
  EXPECT_NEAR(verified, result->fraction_covered, 1e-12);
}

TEST_P(DominatorAlgoTest, PairTailNeedsBothVertices) {
  // Only hyperedge ({1,2}, 0): covering 0 requires both 1 and 2.
  auto graph = DirectedHypergraph::CreateAnonymous(3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 0, 0.9).ok());
  DominatorConfig config;
  config.stop_when_only_self_gain = false;  // allow self-coverage picks
  auto result = Run(*graph, {0}, config);
  ASSERT_TRUE(result.ok());
  // Either {1,2} (via the hyperedge) or {0} itself dominates 0.
  EXPECT_DOUBLE_EQ(
      VerifyDominatorCoverage(*graph, {0}, result->dominator), 1.0);
}

TEST_P(DominatorAlgoTest, AcvThresholdShrinksCoverage) {
  Database db = RandomDatabase(12, 400, 3, 9, 0.65);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  DominatorConfig weak;
  weak.acv_threshold = 0.0;
  DominatorConfig strong;
  strong.acv_threshold = 0.99;  // drops almost everything
  auto all = Run(*graph, {}, weak);
  auto none = Run(*graph, {}, strong);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_GE(all->fraction_covered, none->fraction_covered);
}

TEST_P(DominatorAlgoTest, RestrictedSubsetOnly) {
  DirectedHypergraph g = HubGraph(6);
  auto result = Run(g, {1, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_in_s, 2u);
  EXPECT_DOUBLE_EQ(result->fraction_covered, 1.0);
}

TEST_P(DominatorAlgoTest, MaxSizeCapRespected) {
  Database db = RandomDatabase(14, 300, 3, 13, 0.55);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  DominatorConfig config;
  config.max_size = 2;
  auto result = Run(*graph, {}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->dominator.size(), 2u);
}

TEST_P(DominatorAlgoTest, OutOfRangeMemberFails) {
  DirectedHypergraph g = HubGraph(3);
  EXPECT_FALSE(Run(g, {17}).ok());
}

TEST_P(DominatorAlgoTest, EmptyHypergraphStopsWithoutProgress) {
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  DominatorConfig config;  // stop_when_only_self_gain = true
  auto result = Run(*graph, {}, config);
  ASSERT_TRUE(result.ok());
  // No associative structure: the greedy loop stops immediately.
  EXPECT_TRUE(result->dominator.empty());
  EXPECT_DOUBLE_EQ(result->fraction_covered, 0.0);
}

TEST_P(DominatorAlgoTest, SelfGainOffCoversEverything) {
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.9).ok());
  DominatorConfig config;
  config.stop_when_only_self_gain = false;
  auto result = Run(*graph, {}, config);
  ASSERT_TRUE(result.ok());
  if (GetParam().use_set_cover) {
    // Algorithm 6 can only pick tail sets of existing edges, so isolated
    // vertices 2 and 3 stay uncovered even without the stop rule.
    EXPECT_GE(result->covered_in_s, 2u);
  } else {
    // Algorithm 5 may pick any vertex, covering everything by inclusion.
    EXPECT_DOUBLE_EQ(result->fraction_covered, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothAlgorithms, DominatorAlgoTest,
    ::testing::Values(AlgoParam{false}, AlgoParam{true}),
    [](const ::testing::TestParamInfo<AlgoParam>& param_info) {
      return param_info.param.use_set_cover ? "Alg6SetCover" : "Alg5DomSet";
    });

TEST(DominatorEnhancementsTest, Enhancement1PrefersFewerNewVertices) {
  // Two candidates with equal effectiveness: {1,2} and {3}; after seeding
  // the dominator with vertex 1, Enhancement 1 should prefer tails adding
  // fewer vertices on ties.
  auto graph = DirectedHypergraph::CreateAnonymous(8);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 0, 0.9).ok());
  ASSERT_TRUE(graph->AddEdge({3}, 4, 0.9).ok());
  DominatorConfig with;
  with.enhancement1 = true;
  DominatorConfig without;
  without.enhancement1 = false;
  auto result_with = ComputeDominatorSetCover(*graph, {0, 4}, with);
  auto result_without = ComputeDominatorSetCover(*graph, {0, 4}, without);
  ASSERT_TRUE(result_with.ok());
  ASSERT_TRUE(result_without.ok());
  // Both must fully cover; Enhancement 1 never yields a larger dominator
  // on this instance.
  EXPECT_DOUBLE_EQ(result_with->fraction_covered, 1.0);
  EXPECT_LE(result_with->dominator.size(),
            result_without->dominator.size());
}

TEST(DominatorEnhancementsTest, Enhancement2DoesNotChangeCoverage) {
  Database db = RandomDatabase(10, 300, 3, 19, 0.7);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  DominatorConfig with;
  with.enhancement2 = true;
  DominatorConfig without;
  without.enhancement2 = false;
  auto result_with = ComputeDominatorSetCover(*graph, {}, with);
  auto result_without = ComputeDominatorSetCover(*graph, {}, without);
  ASSERT_TRUE(result_with.ok());
  ASSERT_TRUE(result_without.ok());
  // Enhancement 2 is a compute-time optimization; results agree.
  EXPECT_EQ(result_with->dominator, result_without->dominator);
}

TEST(DominatorResultTest, ToStringSummaries) {
  DirectedHypergraph g = HubGraph(5);
  auto result = ComputeDominatorGreedyDS(g, {});
  ASSERT_TRUE(result.ok());
  std::string text = result->ToString();
  EXPECT_NE(text.find("dominator size"), std::string::npos);
}

TEST(VerifyDominatorCoverageTest, ManualCheck) {
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0, 1}, 2, 0.9).ok());
  // {0} alone does not cover 2; {0,1} does; member 3 only via inclusion.
  EXPECT_NEAR(VerifyDominatorCoverage(*graph, {2}, {0}), 0.0, 1e-12);
  EXPECT_NEAR(VerifyDominatorCoverage(*graph, {2}, {0, 1}), 1.0, 1e-12);
  EXPECT_NEAR(VerifyDominatorCoverage(*graph, {2, 3}, {0, 1}), 0.5, 1e-12);
  EXPECT_NEAR(VerifyDominatorCoverage(*graph, {2, 3}, {0, 1, 3}), 1.0,
              1e-12);
}

}  // namespace
}  // namespace hypermine::core
