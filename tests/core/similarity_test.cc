#include "core/similarity.h"

#include <gtest/gtest.h>

#include "approx/metric.h"
#include "core/builder.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

TEST(SubstituteTailTest, ReplacesAndSorts) {
  std::vector<VertexId> tail = {1, 3};
  EXPECT_EQ(SubstituteTail(tail, 1, 2), (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(SubstituteTail(tail, 3, 0), (std::vector<VertexId>{0, 1}));
  // Substituting toward an existing member shrinks the set (Notation 3.9).
  EXPECT_EQ(SubstituteTail(tail, 1, 3), (std::vector<VertexId>{3}));
  // from absent: the target is still added (set union semantics).
  std::vector<VertexId> single = {5};
  EXPECT_EQ(SubstituteTail(single, 5, 2), (std::vector<VertexId>{2}));
}

TEST(SimilarityTest, Example312FromThesis) {
  // Example 3.12: a=({A1,A3},{A6}) 0.4, b=({A1,A4},{A6}) 0.5,
  // c=({A2,A3},{A6}) 0.6, d=({A2,A4,A5},{A6}) 0.7, e=({A4,A5},{A6}) 0.8;
  // out-sim(A1,A2) = 0.4 / (0.6 + 0.5 + 0.7) = 0.2222...
  auto graph = DirectedHypergraph::Create(
      {"A1", "A2", "A3", "A4", "A5", "A6"});
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0, 2}, 5, 0.4).ok());     // a
  ASSERT_TRUE(graph->AddEdge({0, 3}, 5, 0.5).ok());     // b
  ASSERT_TRUE(graph->AddEdge({1, 2}, 5, 0.6).ok());     // c
  ASSERT_TRUE(graph->AddEdge({1, 3, 4}, 5, 0.7).ok());  // d
  ASSERT_TRUE(graph->AddEdge({3, 4}, 5, 0.8).ok());     // e
  double sim = OutSimilarity(*graph, 0, 1);
  EXPECT_NEAR(sim, 0.4 / (0.6 + 0.5 + 0.7), 1e-12);
}

TEST(SimilarityTest, SelfSimilarityIsOne) {
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());
  EXPECT_DOUBLE_EQ(OutSimilarity(*graph, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(InSimilarity(*graph, 1, 1), 1.0);
}

TEST(SimilarityTest, NoEdgesGivesZero) {
  auto graph = DirectedHypergraph::CreateAnonymous(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(OutSimilarity(*graph, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(InSimilarity(*graph, 0, 1), 0.0);
}

TEST(SimilarityTest, PerfectTwinsHaveSimilarityOne) {
  // Vertices 0 and 1 head/tail exactly the same structures with equal ACVs.
  auto graph = DirectedHypergraph::CreateAnonymous(5);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0, 2}, 4, 0.5).ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 4, 0.5).ok());
  ASSERT_TRUE(graph->AddEdge({3}, 0, 0.7).ok());
  ASSERT_TRUE(graph->AddEdge({3}, 1, 0.7).ok());
  EXPECT_NEAR(OutSimilarity(*graph, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(InSimilarity(*graph, 0, 1), 1.0, 1e-12);
}

TEST(SimilarityTest, MinOverMaxWeighting) {
  // Matched pair with different ACVs contributes min/max.
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0, 2}, 3, 0.2).ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 3, 0.8).ok());
  EXPECT_NEAR(OutSimilarity(*graph, 0, 1), 0.25, 1e-12);
}

TEST(SimilarityTest, InSimilarityUsesHeadSubstitution) {
  auto graph = DirectedHypergraph::CreateAnonymous(5);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({2, 3}, 0, 0.4).ok());  // into 0
  ASSERT_TRUE(graph->AddEdge({2, 3}, 1, 0.6).ok());  // matched into 1
  ASSERT_TRUE(graph->AddEdge({4}, 1, 0.5).ok());     // unmatched into 1
  // in-sim(0,1) = min(.4,.6) / (max(.4,.6) + .5) = 0.4 / 1.1.
  EXPECT_NEAR(InSimilarity(*graph, 0, 1), 0.4 / 1.1, 1e-12);
}

TEST(SimilarityGraphTest, DistanceDefinition313) {
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0, 2}, 3, 0.5).ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 3, 0.5).ok());
  auto sg = SimilarityGraph::Build(*graph, {0, 1});
  ASSERT_TRUE(sg.ok());
  double expected =
      1.0 - (InSimilarity(*graph, 0, 1) + OutSimilarity(*graph, 0, 1)) / 2.0;
  EXPECT_NEAR(sg->Distance(0, 1), expected, 1e-12);
  EXPECT_DOUBLE_EQ(sg->Distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sg->Distance(0, 1), sg->Distance(1, 0));
}

TEST(SimilarityGraphTest, DefaultsToAllVertices) {
  auto graph = DirectedHypergraph::CreateAnonymous(5);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->size(), 5u);
  EXPECT_GE(sg->MeanDistance(), 0.0);
  EXPECT_LE(sg->MeanDistance(), 1.0);
}

TEST(SimilarityGraphTest, Validations) {
  auto graph = DirectedHypergraph::CreateAnonymous(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(SimilarityGraph::Build(*graph, {0}).ok());
  EXPECT_FALSE(SimilarityGraph::Build(*graph, {0, 9}).ok());
}

TEST(SimilarityGraphTest, DistancesInUnitIntervalOnRealModel) {
  Database db = RandomDatabase(10, 300, 3, 5, 0.7);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  for (size_t i = 0; i < sg->size(); ++i) {
    for (size_t j = i + 1; j < sg->size(); ++j) {
      EXPECT_GE(sg->Distance(i, j), -1e-12);
      EXPECT_LE(sg->Distance(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(SimilarityGraphTest, TriangleInequalityHoldsOnBuiltModels) {
  // Section 5.3.2: the thesis verified the metric properties
  // experimentally before using the Gonzalez guarantee; replicate that
  // check on generated models (identity can fail for isolated twin
  // vertices, so only the triangle property is asserted).
  for (uint64_t seed : {11u, 22u, 33u}) {
    Database db = RandomDatabase(9, 250, 3, seed, 0.7);
    auto graph = BuildAssociationHypergraph(db, ConfigC1());
    ASSERT_TRUE(graph.ok());
    auto sg = SimilarityGraph::Build(*graph);
    ASSERT_TRUE(sg.ok());
    approx::MetricCheck check =
        approx::CheckMetricProperties(sg->size(), sg->DistanceFn(), 1e-9);
    EXPECT_TRUE(check.symmetric);
    EXPECT_TRUE(check.non_negative);
    EXPECT_TRUE(check.triangle_inequality)
        << "seed " << seed << ": " << check.ToString();
  }
}

TEST(ClusterSimilarAttributesTest, ClustersThroughGonzalez) {
  Database db = RandomDatabase(12, 300, 3, 7, 0.75);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  auto clustering = ClusterSimilarAttributes(*sg, 3);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->centers.size(), 3u);
  EXPECT_EQ(clustering->assignment.size(), sg->size());
}

}  // namespace
}  // namespace hypermine::core
