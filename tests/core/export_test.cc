#include "core/export.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/builder.h"
#include "testing/fixtures.h"
#include "util/csv.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(HypergraphCsvTest, RoundTripPreservesEverything) {
  auto graph = DirectedHypergraph::Create({"XOM", "CVX", "HES", "ISOLATED"});
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge({1}, 0, 0.55).ok());
  ASSERT_TRUE(graph->AddEdge({1, 2}, 0, 0.58).ok());
  std::string path = TempPath("hypergraph_roundtrip.csv");
  ASSERT_TRUE(WriteHypergraphCsv(*graph, path).ok());
  auto loaded = ReadHypergraphCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 4u);  // isolated vertex survives
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_EQ(loaded->vertex_name(3), "ISOLATED");
  std::vector<VertexId> pair_tail = {1, 2};
  auto found = loaded->FindEdge(pair_tail, 0);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(loaded->edge(*found).weight, 0.58);
  std::remove(path.c_str());
}

TEST(HypergraphCsvTest, RoundTripOnBuiltModel) {
  Database db = RandomDatabase(8, 200, 3, 33, 0.7);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  std::string path = TempPath("hypergraph_model.csv");
  ASSERT_TRUE(WriteHypergraphCsv(*graph, path).ok());
  auto loaded = ReadHypergraphCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_edges(), graph->num_edges());
  for (EdgeId id = 0; id < graph->num_edges(); ++id) {
    const Hyperedge& e = graph->edge(id);
    std::vector<VertexId> tail(e.TailSpan().begin(), e.TailSpan().end());
    auto found = loaded->FindEdge(tail, e.head);
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(loaded->edge(*found).weight, e.weight);
  }
  std::remove(path.c_str());
}

TEST(HypergraphCsvTest, ReadRejectsMalformedFiles) {
  std::string path = TempPath("hypergraph_bad.csv");
  // Missing vertices record.
  ASSERT_TRUE(
      WriteStringToFile(path, "tail,head,weight\nA,B,0.5\n").ok());
  EXPECT_FALSE(ReadHypergraphCsv(path).ok());
  // Unknown vertex.
  ASSERT_TRUE(WriteStringToFile(
                  path, "tail,head,weight\nvertices,A|B,\nC,B,0.5\n")
                  .ok());
  EXPECT_FALSE(ReadHypergraphCsv(path).ok());
  // Bad weight.
  ASSERT_TRUE(WriteStringToFile(
                  path, "tail,head,weight\nvertices,A|B,\nA,B,xyz\n")
                  .ok());
  EXPECT_FALSE(ReadHypergraphCsv(path).ok());
  // Duplicate vertex names.
  ASSERT_TRUE(
      WriteStringToFile(path, "tail,head,weight\nvertices,A|A,\n").ok());
  EXPECT_FALSE(ReadHypergraphCsv(path).ok());
  std::remove(path.c_str());
}

TEST(WriteClustersDotTest, EmitsCentersMembersAndPalette) {
  Database db = RandomDatabase(8, 300, 3, 21, 0.75);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  auto clustering = ClusterSimilarAttributes(*sg, 2);
  ASSERT_TRUE(clustering.ok());
  std::vector<ClusterNode> nodes;
  for (size_t i = 0; i < sg->size(); ++i) {
    nodes.push_back(
        {db.attribute_name(static_cast<AttrId>(i)), i % 2 ? "even" : "odd"});
  }
  std::string path = TempPath("clusters.dot");
  ASSERT_TRUE(
      WriteClustersDot(*sg, *clustering, nodes, /*min_cluster_size=*/1, path)
          .ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("graph clusters {"), std::string::npos);
  EXPECT_NE(text->find("doublecircle"), std::string::npos);
  EXPECT_NE(text->find("set312"), std::string::npos);
  EXPECT_NE(text->find("X0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteClustersDotTest, MinClusterSizeFilters) {
  Database db = RandomDatabase(6, 200, 3, 22, 0.75);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  auto clustering = ClusterSimilarAttributes(*sg, sg->size());
  ASSERT_TRUE(clustering.ok());
  std::vector<ClusterNode> nodes(sg->size(), ClusterNode{"x", "g"});
  std::string path = TempPath("clusters_filtered.dot");
  // Every cluster is a singleton; min size 2 leaves an empty drawing.
  ASSERT_TRUE(
      WriteClustersDot(*sg, *clustering, nodes, /*min_cluster_size=*/2, path)
          .ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("doublecircle"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteClustersDotTest, MisalignedInputsFail) {
  Database db = RandomDatabase(5, 150, 3, 23, 0.75);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  auto sg = SimilarityGraph::Build(*graph);
  ASSERT_TRUE(sg.ok());
  auto clustering = ClusterSimilarAttributes(*sg, 2);
  ASSERT_TRUE(clustering.ok());
  std::vector<ClusterNode> wrong_size(2, ClusterNode{"x", "g"});
  EXPECT_FALSE(WriteClustersDot(*sg, *clustering, wrong_size, 1,
                                TempPath("never.dot"))
                   .ok());
}

}  // namespace
}  // namespace hypermine::core
