// Regression tests for the 16-bit packing limit of
// DirectedHypergraph::EdgeKey: four 16-bit fields mean no vertex id may
// reach 0xFFFF (the truncation of kNoVertex), which is why kMaxVertices is
// 0xFFFE. These tests pin the contract that ids at/above the limit are
// rejected rather than silently colliding in the exact-edge index.
#include <gtest/gtest.h>

#include "core/hypergraph.h"
#include "util/logging.h"

namespace hypermine::core {
namespace {

TEST(EdgeKeyLimitTest, CreateRejectsMoreThanMaxVertices) {
  EXPECT_TRUE(DirectedHypergraph::CreateAnonymous(kMaxVertices).ok());
  auto too_big = DirectedHypergraph::CreateAnonymous(kMaxVertices + 1);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeKeyLimitTest, MaxVertexIdNeverAliasesThePaddingSentinel) {
  // kNoVertex truncates to 0xFFFF in the packed key; the largest legal id
  // is 0xFFFD (= kMaxVertices - 1), so padding can never collide with a
  // real vertex.
  static_assert(kMaxVertices - 1 < 0xFFFF);
  auto graph = DirectedHypergraph::CreateAnonymous(kMaxVertices);
  HM_CHECK_OK(graph.status());
  const VertexId hi = static_cast<VertexId>(kMaxVertices - 1);  // 0xFFFD
  const VertexId lo = 0;

  // A |T|=1 edge {hi} -> lo and a |T|=2 edge {hi, hi-1} -> lo must be kept
  // distinct: if padding aliased a vertex id, their keys could collide.
  ASSERT_TRUE(graph->AddEdge({hi}, lo, 0.25).ok());
  ASSERT_TRUE(graph->AddEdge({hi, hi - 1}, lo, 0.75).ok());
  VertexId single[] = {hi};
  VertexId pair[] = {hi, hi - 1};
  auto found_single = graph->FindEdge(single, lo);
  auto found_pair = graph->FindEdge(pair, lo);
  ASSERT_TRUE(found_single.has_value());
  ASSERT_TRUE(found_pair.has_value());
  EXPECT_NE(*found_single, *found_pair);
  EXPECT_EQ(graph->edge(*found_single).weight, 0.25);
  EXPECT_EQ(graph->edge(*found_pair).weight, 0.75);

  // Neighboring high ids do not collide with each other either.
  ASSERT_TRUE(graph->AddEdge({hi - 1}, lo, 0.5).ok());
  VertexId neighbor[] = {hi - 1};
  ASSERT_TRUE(graph->FindEdge(neighbor, lo).has_value());
  EXPECT_NE(*graph->FindEdge(neighbor, lo), *found_single);
}

TEST(EdgeKeyLimitTest, OutOfRangeIdsAreRejectedNotTruncated) {
  // In a graph smaller than the packing limit, ids that would only be
  // distinguishable after 16-bit truncation must be rejected outright:
  // 0x10000 truncates to 0x0000 and would alias vertex 0 if it slipped
  // through validation into EdgeKey.
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  HM_CHECK_OK(graph.status());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());

  const VertexId aliases_zero = 0x10000;
  auto bad_tail = graph->AddEdge({aliases_zero}, 1, 0.9);
  ASSERT_FALSE(bad_tail.ok());
  EXPECT_EQ(bad_tail.status().code(), StatusCode::kOutOfRange);
  auto bad_head = graph->AddEdge({2}, aliases_zero + 1, 0.9);
  ASSERT_FALSE(bad_head.ok());
  EXPECT_EQ(bad_head.status().code(), StatusCode::kOutOfRange);

  // FindEdge with out-of-range ids reports absence instead of resolving a
  // truncated key to the {0} -> 1 edge.
  VertexId alias_query[] = {aliases_zero};
  EXPECT_FALSE(graph->FindEdge(alias_query, 1).has_value());
  VertexId zero_query[] = {0};
  EXPECT_FALSE(graph->FindEdge(zero_query, aliases_zero + 1).has_value());

  // Ids at the boundary of this graph (>= num_vertices) are rejected too.
  auto at_limit = graph->AddEdge({4}, 1, 0.5);
  ASSERT_FALSE(at_limit.ok());
  EXPECT_EQ(at_limit.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace hypermine::core
