// Regression tests for the widened exact-edge index key: four 32-bit
// vertex ids packed into a 128-bit key, so kMaxVertices is 0xFFFFFFFE —
// every id below the kNoVertex sentinel is addressable, and graphs beyond
// the old 16-bit 0xFFFE-vertex cap index correctly. These tests pin the
// new boundary and the no-aliasing contract that replaced the old 16-bit
// truncation hazards.
#include <gtest/gtest.h>

#include "core/hypergraph.h"
#include "util/logging.h"

namespace hypermine::core {
namespace {

// The boundary itself: every id below the sentinel is usable. The literal
// kMaxVertices-vertex graph is untestable at runtime (4 billion names do
// not fit in a test's memory budget), so the constants are pinned
// statically and the behavioral tests run just past the old 0xFFFE cap.
static_assert(kMaxVertices == 0xFFFFFFFE,
              "lookup keys hold full 32-bit ids; only the kNoVertex "
              "sentinel is excluded");
static_assert(kMaxVertices - 1 < kNoVertex,
              "the largest legal id must stay below the padding sentinel");
static_assert(kNoVertex == 0xFFFFFFFFu);

TEST(EdgeKeyLimitTest, CreateAcceptsMoreVerticesThanTheOld16BitCap) {
  // 0xFFFE was the pre-widening kMaxVertices; anything beyond it would
  // have been rejected (or worse, truncated) by the 16-bit keys.
  auto graph = DirectedHypergraph::CreateAnonymous(0xFFFE + 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 0x10000u);
}

TEST(EdgeKeyLimitTest, IdsBeyondTheOld16BitCapDoNotAliasLowIds) {
  // Vertex 0x10000 truncates to 0x0000 under the old packing: with 16-bit
  // keys, {0x10000} -> 1 and {0} -> 1 would have collided in the index.
  // With full-width keys both edges coexist and resolve distinctly.
  auto graph = DirectedHypergraph::CreateAnonymous(0x10010);
  HM_CHECK_OK(graph.status());
  const VertexId high = 0x10000;  // == 0 mod 2^16
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.25).ok());
  ASSERT_TRUE(graph->AddEdge({high}, 1, 0.75).ok());

  VertexId low_query[] = {0};
  VertexId high_query[] = {high};
  auto found_low = graph->FindEdge(low_query, 1);
  auto found_high = graph->FindEdge(high_query, 1);
  ASSERT_TRUE(found_low.has_value());
  ASSERT_TRUE(found_high.has_value());
  EXPECT_NE(*found_low, *found_high);
  EXPECT_EQ(graph->edge(*found_low).weight, 0.25);
  EXPECT_EQ(graph->edge(*found_high).weight, 0.75);

  // Same for heads: -> 0x10001 and -> 1 are distinct destinations.
  ASSERT_TRUE(graph->AddEdge({2}, high + 1, 0.5).ok());
  VertexId tail2[] = {2};
  auto found_wide_head = graph->FindEdge(tail2, high + 1);
  ASSERT_TRUE(found_wide_head.has_value());
  EXPECT_FALSE(graph->FindEdge(tail2, 1).has_value());
}

TEST(EdgeKeyLimitTest, HighIdPairEdgesStayDistinctFromPaddingAndSingles) {
  // A |T|=1 edge {v} -> h and a |T|=2 edge {v, w} -> h differ only in the
  // padded slots of the key; with high ids in play the padding sentinel
  // must still never collide with a real vertex.
  auto graph = DirectedHypergraph::CreateAnonymous(0x10010);
  HM_CHECK_OK(graph.status());
  const VertexId hi = 0x1000F;
  ASSERT_TRUE(graph->AddEdge({hi}, 0, 0.25).ok());
  ASSERT_TRUE(graph->AddEdge({hi, hi - 1}, 0, 0.75).ok());
  ASSERT_TRUE(graph->AddEdge({hi - 1}, 0, 0.5).ok());

  VertexId single[] = {hi};
  VertexId pair[] = {hi, hi - 1};
  VertexId neighbor[] = {hi - 1};
  auto found_single = graph->FindEdge(single, 0);
  auto found_pair = graph->FindEdge(pair, 0);
  auto found_neighbor = graph->FindEdge(neighbor, 0);
  ASSERT_TRUE(found_single.has_value());
  ASSERT_TRUE(found_pair.has_value());
  ASSERT_TRUE(found_neighbor.has_value());
  EXPECT_NE(*found_single, *found_pair);
  EXPECT_NE(*found_single, *found_neighbor);
  EXPECT_EQ(graph->edge(*found_single).weight, 0.25);
  EXPECT_EQ(graph->edge(*found_pair).weight, 0.75);
  EXPECT_EQ(graph->edge(*found_neighbor).weight, 0.5);

  // Duplicate detection still works through the widened key.
  auto duplicate = graph->AddEdge({hi - 1, hi}, 0, 0.9);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
}

TEST(EdgeKeyLimitTest, OutOfRangeIdsAreRejectedNotAliased) {
  // In a small graph, ids >= num_vertices must be rejected outright; the
  // full-width key could not alias them anyway, but range validation is
  // the contract callers observe.
  auto graph = DirectedHypergraph::CreateAnonymous(4);
  HM_CHECK_OK(graph.status());
  ASSERT_TRUE(graph->AddEdge({0}, 1, 0.5).ok());

  const VertexId beyond = 0x10000;
  auto bad_tail = graph->AddEdge({beyond}, 1, 0.9);
  ASSERT_FALSE(bad_tail.ok());
  EXPECT_EQ(bad_tail.status().code(), StatusCode::kOutOfRange);
  auto bad_head = graph->AddEdge({2}, beyond + 1, 0.9);
  ASSERT_FALSE(bad_head.ok());
  EXPECT_EQ(bad_head.status().code(), StatusCode::kOutOfRange);

  // FindEdge with out-of-range ids reports absence instead of probing.
  VertexId beyond_query[] = {beyond};
  EXPECT_FALSE(graph->FindEdge(beyond_query, 1).has_value());
  VertexId zero_query[] = {0};
  EXPECT_FALSE(graph->FindEdge(zero_query, beyond + 1).has_value());

  // Ids at the boundary of this graph (>= num_vertices) are rejected too,
  // as is the sentinel itself even in a hypothetical full-size graph.
  auto at_limit = graph->AddEdge({4}, 1, 0.5);
  ASSERT_FALSE(at_limit.ok());
  EXPECT_EQ(at_limit.status().code(), StatusCode::kOutOfRange);
  auto sentinel = graph->AddEdge({kNoVertex}, 1, 0.5);
  ASSERT_FALSE(sentinel.ok());
  EXPECT_EQ(sentinel.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace hypermine::core
