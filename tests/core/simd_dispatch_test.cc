// Tests for the runtime SIMD dispatch layer: tier naming/parsing, the
// clamp-to-supported resolution rule, and — on whatever tiers this host
// actually supports — bitwise agreement of every vector word-loop with its
// scalar counterpart, including ragged tails that exercise the scalar
// cleanup path after the vector body.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "core/simd.h"
#include "util/rng.h"

namespace hypermine::core::simd {
namespace {

TEST(SimdDispatchTest, TierNamesRoundTripThroughParse) {
  for (Tier tier : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    auto parsed = ParseTier(TierName(tier));
    ASSERT_TRUE(parsed.has_value()) << TierName(tier);
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(ParseTier("").has_value());
  EXPECT_FALSE(ParseTier("neon").has_value());
  EXPECT_FALSE(ParseTier("AVX2").has_value());  // exact, lowercase names
  EXPECT_FALSE(ParseTier("scalar ").has_value());
}

TEST(SimdDispatchTest, ResolveRequestedTierClampsToBest) {
  // No request: whatever the host supports best.
  EXPECT_EQ(ResolveRequestedTier(std::nullopt, Tier::kAvx2), Tier::kAvx2);
  // A request at or below best is honored (scalar is always supported).
  EXPECT_EQ(ResolveRequestedTier(Tier::kScalar, Tier::kAvx512),
            Tier::kScalar);
  // A request above best silently clamps down — an operator forcing
  // "avx512" on an avx2-only host gets avx2, not a crash.
  EXPECT_EQ(ResolveRequestedTier(Tier::kAvx512, Tier::kScalar),
            Tier::kScalar);
  Tier best = BestSupportedTier();
  EXPECT_EQ(ResolveRequestedTier(Tier::kAvx512, best),
            TierSupported(Tier::kAvx512) ? Tier::kAvx512 : best);
}

TEST(SimdDispatchTest, SupportedTiersStartScalarAndAscend) {
  std::vector<Tier> tiers = SupportedTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  for (size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
    EXPECT_TRUE(TierSupported(tiers[i]));
  }
  EXPECT_EQ(tiers.back(), BestSupportedTier());
}

TEST(SimdDispatchTest, OpsTableIsConsistent) {
  for (Tier tier : SupportedTiers()) {
    const Ops& ops = OpsForTier(tier);
    EXPECT_EQ(ops.tier, tier);
    EXPECT_STREQ(ops.name, TierName(tier));
    ASSERT_NE(ops.popcount, nullptr);
    ASSERT_NE(ops.popcount_and, nullptr);
    ASSERT_NE(ops.and_store_popcount, nullptr);
  }
}

TEST(SimdDispatchTest, ForceActiveTierWinsOverEnvironment) {
  const Ops& initial = ActiveOps();
  ForceActiveTier(Tier::kScalar);
  EXPECT_EQ(ActiveOps().tier, Tier::kScalar);
  ForceActiveTier(BestSupportedTier());
  EXPECT_EQ(ActiveOps().tier, BestSupportedTier());
  // Restore whatever the process started with so test order cannot leak.
  ForceActiveTier(initial.tier);
  EXPECT_EQ(ActiveOps().tier, initial.tier);
}

/// Reference implementations, deliberately naive.
size_t NaivePopcount(const uint64_t* words, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

TEST(SimdDispatchTest, AllTiersMatchNaiveOnRandomBuffers) {
  Rng rng(90210);
  // Lengths straddle every vector-width boundary: AVX2 consumes 4 words
  // per step, AVX-512 eight, so 0..9 covers empty, sub-width, exact-width,
  // and width-plus-tail shapes; the larger sizes stress multi-iteration
  // bodies with tails.
  std::vector<size_t> lengths = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                 15, 16, 17, 31, 32, 33, 100, 257};
  for (size_t n : lengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint64_t> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        // Mix dense, sparse, and patterned words so byte-level popcount
        // bugs (e.g. a wrong nibble LUT entry) cannot hide.
        switch (trial % 4) {
          case 0: a[i] = rng.NextUint64(); break;
          case 1: a[i] = rng.NextUint64() & rng.NextUint64(); break;
          case 2: a[i] = ~uint64_t{0}; break;
          default: a[i] = uint64_t{1} << (i % 64); break;
        }
        b[i] = rng.NextUint64();
      }
      const size_t want_pop = NaivePopcount(a.data(), n);
      size_t want_and = 0;
      std::vector<uint64_t> want_words(n);
      for (size_t i = 0; i < n; ++i) {
        want_words[i] = a[i] & b[i];
        want_and += std::popcount(want_words[i]);
      }

      for (Tier tier : SupportedTiers()) {
        const Ops& ops = OpsForTier(tier);
        EXPECT_EQ(ops.popcount(a.data(), n), want_pop)
            << ops.name << " n=" << n << " trial=" << trial;
        EXPECT_EQ(ops.popcount_and(a.data(), b.data(), n), want_and)
            << ops.name << " n=" << n << " trial=" << trial;
        std::vector<uint64_t> out(n, 0xDEADBEEF);
        EXPECT_EQ(ops.and_store_popcount(a.data(), b.data(), out.data(), n),
                  want_and)
            << ops.name << " n=" << n << " trial=" << trial;
        EXPECT_EQ(out, want_words)
            << ops.name << " n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SimdDispatchTest, VectorOpsHandleUnalignedBuffers) {
  // The kernels load with unaligned intrinsics; feed pointers at every
  // offset within a word-misaligned allocation to prove it.
  Rng rng(17);
  std::vector<uint64_t> backing(40);
  for (uint64_t& w : backing) w = rng.NextUint64();
  for (size_t offset = 0; offset < 4; ++offset) {
    const uint64_t* base = backing.data() + offset;
    const size_t n = 33;
    const size_t want = NaivePopcount(base, n);
    for (Tier tier : SupportedTiers()) {
      EXPECT_EQ(OpsForTier(tier).popcount(base, n), want)
          << TierName(tier) << " offset=" << offset;
    }
  }
}

}  // namespace
}  // namespace hypermine::core::simd
