/// Property tests for the ACV measure beyond the Theorem 3.8 basics:
/// bounds, permutation invariance, independence behaviour, and the
/// interaction between discretization k and the gamma baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

class AcvBoundsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AcvBoundsTest, AcvAlwaysWithinBaseAndOne) {
  const size_t k = GetParam();
  Database db = RandomDatabase(5, 200, k, 100 + k);
  for (AttrId a = 0; a < 5; ++a) {
    for (AttrId h = 0; h < 5; ++h) {
      if (a == h) continue;
      auto table = AssociationTable::Build(db, {a}, h);
      ASSERT_TRUE(table.ok());
      double base = *BaseAcv(db, h);
      EXPECT_GE(table->acv() + 1e-12, base);
      EXPECT_LE(table->acv(), 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, AcvBoundsTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(AcvPropertyTest, InvariantUnderObservationPermutation) {
  // ACV depends on joint value counts only; the order of observations
  // (which the discretization deliberately erases, Section 3.1.1) must
  // not matter.
  Database db = RandomDatabase(4, 150, 3, 7);
  double before = AssociationTable::Build(db, {0, 1}, 2)->acv();

  std::vector<size_t> order(db.num_observations());
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(99);
  rng.Shuffle(&order);
  std::vector<std::vector<ValueId>> columns(4);
  for (AttrId a = 0; a < 4; ++a) {
    for (size_t o : order) columns[a].push_back(db.value(o, a));
  }
  auto shuffled = DatabaseFromColumns({"X0", "X1", "X2", "X3"}, 3, columns);
  ASSERT_TRUE(shuffled.ok());
  double after = AssociationTable::Build(*shuffled, {0, 1}, 2)->acv();
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(AcvPropertyTest, PerfectCopyHasAcvOne) {
  std::vector<ValueId> column = {0, 1, 2, 0, 1, 2, 2, 1};
  auto db = DatabaseFromColumns({"A", "B"}, 3, {column, column});
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(AssociationTable::Build(*db, {0}, 1)->acv(), 1.0);
}

TEST(AcvPropertyTest, PermutedCopyAlsoHasAcvOne) {
  // ACV measures functional dependence, not identity: any bijective
  // relabeling of the head still gives ACV 1.
  std::vector<ValueId> a = {0, 1, 2, 0, 1, 2, 2, 1};
  std::vector<ValueId> b;
  for (ValueId v : a) b.push_back(static_cast<ValueId>((v + 1) % 3));
  auto db = DatabaseFromColumns({"A", "B"}, 3, {a, b});
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(AssociationTable::Build(*db, {0}, 1)->acv(), 1.0);
  EXPECT_DOUBLE_EQ(AssociationTable::Build(*db, {1}, 0)->acv(), 1.0);
}

TEST(AcvPropertyTest, ManyToOneIsDirectional) {
  // B = A mod 2 with k=4: A determines B exactly, but B only narrows A to
  // two values — ACV(A->B) = 1 while ACV(B->A) < 1. This is the
  // directionality that distinguishes the model from undirected
  // similarity (Section 3.2's motivation).
  std::vector<ValueId> a = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3};
  std::vector<ValueId> b;
  for (ValueId v : a) b.push_back(static_cast<ValueId>(v % 2));
  auto db = DatabaseFromColumns({"A", "B"}, 4, {a, b});
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(AssociationTable::Build(*db, {0}, 1)->acv(), 1.0);
  EXPECT_LT(AssociationTable::Build(*db, {1}, 0)->acv(), 0.75);
}

TEST(AcvPropertyTest, IndependentUniformColumnsStayNearBase) {
  // For independent uniform columns ACV(A->B) concentrates near
  // ACV(∅->B); the gamma filter's entire job is rejecting these.
  Rng rng(5);
  const size_t m = 5000;
  std::vector<ValueId> a(m);
  std::vector<ValueId> b(m);
  for (size_t o = 0; o < m; ++o) {
    a[o] = static_cast<ValueId>(rng.NextBounded(3));
    b[o] = static_cast<ValueId>(rng.NextBounded(3));
  }
  auto db = DatabaseFromColumns({"A", "B"}, 3, {a, b});
  ASSERT_TRUE(db.ok());
  double acv = AssociationTable::Build(*db, {0}, 1)->acv();
  double base = *BaseAcv(*db, 1);
  EXPECT_LT(acv, base * 1.05);
}

TEST(AcvPropertyTest, BaseAcvOfEquiDepthIsNearOneOverK) {
  Rng rng(17);
  std::vector<double> series(3000);
  for (double& x : series) x = rng.NextGaussian();
  for (size_t k : {2u, 3u, 5u, 10u}) {
    auto buckets = EquiDepthDiscretize(series, k);
    ASSERT_TRUE(buckets.ok());
    std::vector<std::vector<ValueId>> columns = {*buckets, *buckets};
    auto db = DatabaseFromColumns({"A", "B"}, k, columns);
    ASSERT_TRUE(db.ok());
    EXPECT_NEAR(*BaseAcv(*db, 0), 1.0 / static_cast<double>(k),
                0.05 / static_cast<double>(k) + 0.01);
  }
}

TEST(AcvPropertyTest, AddingNoiseToHeadLowersAcv) {
  // Monotone degradation: the noisier the head, the lower the ACV.
  Rng rng(23);
  const size_t m = 4000;
  std::vector<ValueId> a(m);
  for (size_t o = 0; o < m; ++o) {
    a[o] = static_cast<ValueId>(rng.NextBounded(3));
  }
  double last_acv = 1.1;
  for (double noise : {0.0, 0.2, 0.5, 0.9}) {
    std::vector<ValueId> b(m);
    for (size_t o = 0; o < m; ++o) {
      b[o] = rng.NextBernoulli(noise)
                 ? static_cast<ValueId>(rng.NextBounded(3))
                 : a[o];
    }
    auto db = DatabaseFromColumns({"A", "B"}, 3, {a, b});
    ASSERT_TRUE(db.ok());
    double acv = AssociationTable::Build(*db, {0}, 1)->acv();
    EXPECT_LT(acv, last_acv);
    last_acv = acv;
  }
}

TEST(GammaSignificanceTest, BuilderEquivalentToManualFilter) {
  // The builder's edge set must equal a from-scratch application of
  // Definition 3.7 over all combinations.
  Database db = RandomDatabase(7, 300, 3, 55, 0.65);
  HypergraphConfig config = ConfigC1();
  auto graph = BuildAssociationHypergraph(db, config);
  ASSERT_TRUE(graph.ok());
  size_t expected_edges = 0;
  for (AttrId a = 0; a < 7; ++a) {
    for (AttrId h = 0; h < 7; ++h) {
      if (a == h) continue;
      double acv = AssociationTable::Build(db, {a}, h)->acv();
      bool significant = acv >= config.gamma_edge * *BaseAcv(db, h);
      expected_edges += significant ? 1 : 0;
      std::vector<VertexId> tail = {a};
      EXPECT_EQ(graph->FindEdge(tail, h).has_value(), significant)
          << "edge " << static_cast<int>(a) << "->" << static_cast<int>(h);
    }
  }
  EXPECT_EQ(graph->NumDirectedEdges(), expected_edges);
}

}  // namespace
}  // namespace hypermine::core
