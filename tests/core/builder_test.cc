#include "core/builder.h"

#include <gtest/gtest.h>

#include "core/assoc_table.h"
#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::RandomDatabase;

TEST(BuilderConfigTest, PaperConfigurations) {
  // Section 5.1.2: C1 = (k=3, 1.15, 1.05); C2 = (k=5, 1.20, 1.12).
  HypergraphConfig c1 = ConfigC1();
  EXPECT_EQ(c1.k, 3u);
  EXPECT_DOUBLE_EQ(c1.gamma_edge, 1.15);
  EXPECT_DOUBLE_EQ(c1.gamma_hyper, 1.05);
  HypergraphConfig c2 = ConfigC2();
  EXPECT_EQ(c2.k, 5u);
  EXPECT_DOUBLE_EQ(c2.gamma_edge, 1.20);
  EXPECT_DOUBLE_EQ(c2.gamma_hyper, 1.12);
}

TEST(BuilderTest, ValidatesInputs) {
  Database db = RandomDatabase(4, 50, 3, 1);
  HypergraphConfig config = ConfigC1();
  config.k = 5;  // mismatch with database's k=3
  EXPECT_FALSE(BuildAssociationHypergraph(db, config).ok());
  config = ConfigC1();
  config.gamma_edge = 0.9;
  EXPECT_FALSE(BuildAssociationHypergraph(db, config).ok());
  auto empty = Database::Create({"a", "b"}, 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(BuildAssociationHypergraph(*empty, ConfigC1()).ok());
}

TEST(BuilderTest, KeptEdgesAreGammaSignificant) {
  Database db = RandomDatabase(8, 400, 3, 21, /*copy_prob=*/0.7);
  HypergraphConfig config = ConfigC1();
  BuildStats stats;
  auto graph = BuildAssociationHypergraph(db, config, &stats);
  ASSERT_TRUE(graph.ok());
  ASSERT_GT(graph->num_edges(), 0u);
  for (const Hyperedge& e : graph->edges()) {
    if (e.tail_size() == 1) {
      // Definition 3.7 with T - {v} = ∅.
      double base = *BaseAcv(db, e.head);
      EXPECT_GE(e.weight + 1e-9, config.gamma_edge * base);
      // The stored weight is the recomputable ACV.
      auto table = AssociationTable::Build(db, {e.tail[0]}, e.head);
      ASSERT_TRUE(table.ok());
      EXPECT_NEAR(e.weight, table->acv(), 1e-9);
    } else {
      double edge_a =
          AssociationTable::Build(db, {e.tail[0]}, e.head)->acv();
      double edge_b =
          AssociationTable::Build(db, {e.tail[1]}, e.head)->acv();
      EXPECT_GE(e.weight + 1e-9,
                config.gamma_hyper * std::max(edge_a, edge_b));
      auto table =
          AssociationTable::Build(db, {e.tail[0], e.tail[1]}, e.head);
      EXPECT_NEAR(e.weight, table->acv(), 1e-9);
    }
  }
}

TEST(BuilderTest, StatsAreConsistent) {
  Database db = RandomDatabase(6, 200, 3, 5, 0.7);
  BuildStats stats;
  auto graph = BuildAssociationHypergraph(db, ConfigC1(), &stats);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(stats.edge_candidates, 6u * 5u);
  EXPECT_EQ(stats.edges_kept, graph->NumDirectedEdges());
  EXPECT_EQ(stats.pairs_kept, graph->NumPairEdges());
  EXPECT_NEAR(stats.mean_edge_acv, graph->MeanDirectedEdgeWeight(), 1e-9);
  EXPECT_NEAR(stats.mean_pair_acv, graph->MeanPairEdgeWeight(), 1e-9);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(BuilderTest, HigherGammaEdgeKeepsFewerEdges) {
  Database db = RandomDatabase(8, 300, 3, 31, 0.6);
  HypergraphConfig loose = ConfigC1();
  loose.gamma_edge = 1.0;
  HypergraphConfig tight = ConfigC1();
  tight.gamma_edge = 1.4;
  auto graph_loose = BuildAssociationHypergraph(db, loose);
  auto graph_tight = BuildAssociationHypergraph(db, tight);
  ASSERT_TRUE(graph_loose.ok());
  ASSERT_TRUE(graph_tight.ok());
  EXPECT_GE(graph_loose->NumDirectedEdges(),
            graph_tight->NumDirectedEdges());
}

TEST(BuilderTest, IndependentAttributesYieldSparseGraph) {
  // copy_prob = 0 gives i.i.d. columns: almost nothing clears γ = 1.15.
  Database db = RandomDatabase(8, 500, 3, 77, /*copy_prob=*/0.0);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  EXPECT_LT(graph->num_edges(), 4u);
}

TEST(BuilderTest, ChainedAttributesYieldDenseGraph) {
  Database db = RandomDatabase(6, 500, 3, 78, /*copy_prob=*/0.9);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph->NumDirectedEdges(), 10u);
}

TEST(BuilderTest, UnrestrictedCandidatesSupersetOfRestricted) {
  Database db = RandomDatabase(7, 250, 3, 91, 0.65);
  HypergraphConfig restricted = ConfigC1();
  HypergraphConfig unrestricted = ConfigC1();
  unrestricted.restrict_pairs_to_edges = false;
  auto g_restricted = BuildAssociationHypergraph(db, restricted);
  auto g_unrestricted = BuildAssociationHypergraph(db, unrestricted);
  ASSERT_TRUE(g_restricted.ok());
  ASSERT_TRUE(g_unrestricted.ok());
  // Every restricted hyperedge also appears in the unrestricted build.
  for (const Hyperedge& e : g_restricted->edges()) {
    if (e.tail_size() != 2) continue;
    std::vector<VertexId> tail = {e.tail[0], e.tail[1]};
    EXPECT_TRUE(g_unrestricted->FindEdge(tail, e.head).has_value());
  }
  EXPECT_GE(g_unrestricted->NumPairEdges(), g_restricted->NumPairEdges());
}

TEST(BuilderTest, VertexNamesComeFromDatabase) {
  Database db = RandomDatabase(3, 50, 3, 8);
  auto graph = BuildAssociationHypergraph(db, ConfigC1());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->vertex_name(0), "X0");
  EXPECT_EQ(graph->vertex_name(2), "X2");
}

}  // namespace
}  // namespace hypermine::core
