// The parallel builder's contract: any thread count produces a
// bit-identical hypergraph — same edge order, same weights, same
// BuildStats, same CSV export — as the serial build (ISSUE 2 acceptance
// criterion; HypergraphConfig::num_threads documentation).
#include <cstdio>

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/export.h"
#include "testing/fixtures.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace hypermine::core {
namespace {

using hypermine::testing::PatientDatabase;
using hypermine::testing::RandomDatabase;

/// Bit-exact graph comparison: edge count, insertion order, tails, heads,
/// and weights (double ==, not near — determinism is the contract).
void ExpectIdenticalGraphs(const DirectedHypergraph& a,
                           const DirectedHypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    const Hyperedge& ea = a.edge(id);
    const Hyperedge& eb = b.edge(id);
    EXPECT_EQ(ea.head, eb.head) << "edge " << id;
    EXPECT_EQ(ea.tail[0], eb.tail[0]) << "edge " << id;
    EXPECT_EQ(ea.tail[1], eb.tail[1]) << "edge " << id;
    EXPECT_EQ(ea.tail[2], eb.tail[2]) << "edge " << id;
    EXPECT_EQ(ea.weight, eb.weight) << "edge " << id;
  }
}

/// Field-by-field stats comparison; elapsed_seconds is wall time and is the
/// one field allowed to differ between runs.
void ExpectIdenticalStats(const BuildStats& a, const BuildStats& b) {
  EXPECT_EQ(a.edge_candidates, b.edge_candidates);
  EXPECT_EQ(a.edges_kept, b.edges_kept);
  EXPECT_EQ(a.pair_candidates, b.pair_candidates);
  EXPECT_EQ(a.pairs_kept, b.pairs_kept);
  EXPECT_EQ(a.mean_edge_acv, b.mean_edge_acv);
  EXPECT_EQ(a.mean_pair_acv, b.mean_pair_acv);
}

std::string ExportCsv(const DirectedHypergraph& graph, const char* tag) {
  std::string path = std::string("/tmp/builder_parallel_") + tag + ".csv";
  EXPECT_TRUE(WriteHypergraphCsv(graph, path).ok());
  auto text = ReadFileToString(path);
  EXPECT_TRUE(text.ok());
  std::remove(path.c_str());
  return *text;
}

void CheckDeterminism(const Database& db, HypergraphConfig config) {
  config.num_threads = 1;
  BuildStats serial_stats;
  auto serial = BuildAssociationHypergraph(db, config, &serial_stats);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (size_t threads : {size_t{2}, size_t{4}, size_t{0}}) {
    SCOPED_TRACE(::testing::Message() << "threads = " << threads);
    config.num_threads = threads;
    BuildStats parallel_stats;
    auto parallel = BuildAssociationHypergraph(db, config, &parallel_stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdenticalGraphs(*serial, *parallel);
    ExpectIdenticalStats(serial_stats, parallel_stats);
    EXPECT_EQ(ExportCsv(*serial, "serial"), ExportCsv(*parallel, "parallel"));
  }
}

TEST(BuilderParallelTest, RandomDatabaseC1IsDeterministic) {
  CheckDeterminism(RandomDatabase(24, 400, 3, 1234, /*copy_prob=*/0.7),
                   ConfigC1());
}

TEST(BuilderParallelTest, RandomDatabaseC2IsDeterministic) {
  HypergraphConfig config = ConfigC2();
  CheckDeterminism(RandomDatabase(18, 300, 5, 99, /*copy_prob=*/0.65),
                   config);
}

TEST(BuilderParallelTest, UnrestrictedCandidatesAreDeterministic) {
  HypergraphConfig config = ConfigC1();
  config.restrict_pairs_to_edges = false;
  CheckDeterminism(RandomDatabase(12, 250, 3, 7, /*copy_prob=*/0.6), config);
}

TEST(BuilderParallelTest, UnrestrictedWithoutWeakPairsIsDeterministic) {
  HypergraphConfig config = ConfigC1();
  config.restrict_pairs_to_edges = false;
  config.keep_pairs_without_edges = false;
  CheckDeterminism(RandomDatabase(12, 250, 3, 8, /*copy_prob=*/0.6), config);
}

TEST(BuilderParallelTest, LargeKClampsBlockSizeAndStaysDeterministic) {
  // k = 17 (the Patient database) exercises the L1-budget clamp of the
  // head-block size, a different blocking than C1/C2.
  Database db = PatientDatabase();
  HypergraphConfig config = ConfigC1();
  config.k = db.num_values();
  CheckDeterminism(db, config);
}

TEST(BuilderParallelTest, TinyDatabasesAreDeterministic) {
  CheckDeterminism(RandomDatabase(2, 30, 3, 5), ConfigC1());
  CheckDeterminism(RandomDatabase(3, 8, 3, 6, /*copy_prob=*/0.9),
                   ConfigC1());
}

TEST(BuilderParallelTest, ThreadCountDoesNotAffectValidation) {
  Database db = RandomDatabase(4, 50, 3, 1);
  HypergraphConfig config = ConfigC1();
  config.k = 5;  // mismatch
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    config.num_threads = threads;
    EXPECT_FALSE(BuildAssociationHypergraph(db, config).ok());
  }
}

TEST(BuilderParallelTest, CallerProvidedPoolIsDeterministic) {
  // The ROADMAP's builder-pool-reuse item: one shared pool across many
  // builds (the year-sweep / api::Model::Build pattern) must produce the
  // same bits as per-build pools and as the serial build.
  Database db = RandomDatabase(20, 350, 3, 2024, /*copy_prob=*/0.7);
  HypergraphConfig config = ConfigC1();

  config.num_threads = 1;
  BuildStats serial_stats;
  auto serial = BuildAssociationHypergraph(db, config, &serial_stats);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  config.num_threads = 0;  // let the pool decide
  for (int round = 0; round < 3; ++round) {
    BuildStats pooled_stats;
    auto pooled =
        BuildAssociationHypergraph(db, config, &pooled_stats, &pool);
    ASSERT_TRUE(pooled.ok()) << "round " << round;
    ExpectIdenticalGraphs(*serial, *pooled);
    ExpectIdenticalStats(serial_stats, pooled_stats);
  }

  // config.num_threads = 1 forces a serial build even with a pool handed
  // in (explicit serial request wins).
  config.num_threads = 1;
  BuildStats forced_stats;
  auto forced = BuildAssociationHypergraph(db, config, &forced_stats, &pool);
  ASSERT_TRUE(forced.ok());
  ExpectIdenticalGraphs(*serial, *forced);
  ExpectIdenticalStats(serial_stats, forced_stats);
}

TEST(BuilderParallelTest, OversubscribedThreadsStayDeterministic) {
  // More threads than head blocks: workers idle, output unchanged.
  Database db = RandomDatabase(6, 120, 3, 77, /*copy_prob=*/0.7);
  HypergraphConfig config = ConfigC1();
  config.num_threads = 16;
  BuildStats stats16;
  auto many = BuildAssociationHypergraph(db, config, &stats16);
  ASSERT_TRUE(many.ok());
  config.num_threads = 1;
  BuildStats stats1;
  auto one = BuildAssociationHypergraph(db, config, &stats1);
  ASSERT_TRUE(one.ok());
  ExpectIdenticalGraphs(*one, *many);
  ExpectIdenticalStats(stats1, stats16);
}

}  // namespace
}  // namespace hypermine::core
