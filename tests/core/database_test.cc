#include "core/database.h"

#include <gtest/gtest.h>

namespace hypermine::core {
namespace {

TEST(DatabaseTest, CreateValidations) {
  EXPECT_FALSE(Database::Create({}, 3).ok());
  EXPECT_FALSE(Database::Create({"a"}, 1).ok());
  EXPECT_FALSE(Database::Create({"a"}, kMaxValues + 1).ok());
  EXPECT_FALSE(Database::Create({"a", "a"}, 3).ok());
  EXPECT_FALSE(Database::Create({"a", ""}, 3).ok());
  EXPECT_TRUE(Database::Create({"a", "b"}, 2).ok());
}

TEST(DatabaseTest, AddObservationAndAccess) {
  auto db = Database::Create({"a", "b"}, 3);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->AddObservation({0, 2}).ok());
  ASSERT_TRUE(db->AddObservation({1, 1}).ok());
  EXPECT_EQ(db->num_observations(), 2u);
  EXPECT_EQ(db->value(0, 1), 2);
  EXPECT_EQ(db->value(1, 0), 1);
  EXPECT_EQ(db->column(1), (std::vector<ValueId>{2, 1}));
}

TEST(DatabaseTest, AddObservationValidations) {
  auto db = Database::Create({"a", "b"}, 3);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(db->AddObservation({0}).ok());          // wrong arity
  EXPECT_FALSE(db->AddObservation({0, 3}).ok());       // value >= k
  EXPECT_EQ(db->num_observations(), 0u);               // rejected atomically
}

TEST(DatabaseTest, AddColumns) {
  auto db = Database::Create({"a", "b"}, 4);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->AddColumns({{0, 1, 2}, {3, 2, 1}}).ok());
  EXPECT_EQ(db->num_observations(), 3u);
  EXPECT_EQ(db->value(2, 0), 2);
  EXPECT_FALSE(db->AddColumns({{0}, {1, 2}}).ok());        // ragged
  EXPECT_FALSE(db->AddColumns({{0, 1, 2}}).ok());          // wrong count
  EXPECT_FALSE(db->AddColumns({{0}, {9}}).ok());           // out of range
}

TEST(DatabaseTest, AttributeLookup) {
  auto db = Database::Create({"age", "cholesterol"}, 5);
  ASSERT_TRUE(db.ok());
  auto idx = db->AttributeIndex("cholesterol");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(db->attribute_name(0), "age");
  EXPECT_FALSE(db->AttributeIndex("missing").ok());
}

TEST(DatabaseTest, SliceRows) {
  auto db = Database::Create({"a"}, 4);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->AddColumns({{0, 1, 2, 3}}).ok());
  auto slice = db->Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->num_observations(), 2u);
  EXPECT_EQ(slice->value(0, 0), 1);
  EXPECT_EQ(slice->value(1, 0), 2);
  EXPECT_FALSE(db->Slice(3, 1).ok());
  EXPECT_FALSE(db->Slice(0, 9).ok());
  auto empty = db->Slice(2, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_observations(), 0u);
}

}  // namespace
}  // namespace hypermine::core
