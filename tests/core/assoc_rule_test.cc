#include "core/assoc_rule.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hypermine::core {
namespace {

using hypermine::testing::GeneDatabase;
using hypermine::testing::InterestDatabase;
using hypermine::testing::PatientDatabase;

TEST(AssocRuleTest, PatientExampleMatchesThesis) {
  // Example 3.3: X = {(A,3), (C,12)}, Y = {(B,13)}:
  // Supp(X) = 3/8 = 0.375 and Conf = 2/3 = 0.667.
  Database db = PatientDatabase();
  std::vector<AttributeValue> x = {{0, 3}, {1, 12}};
  MvaRule rule{x, {{2, 13}}};
  auto supp = Support(db, x);
  ASSERT_TRUE(supp.ok());
  EXPECT_DOUBLE_EQ(*supp, 0.375);
  auto conf = Confidence(db, rule);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 2.0 / 3.0, 1e-12);
}

TEST(AssocRuleTest, GeneExampleMatchesThesis) {
  // Example 3.4: X = {(G2,down), (G3,down)}, Y = {(G4,up)}:
  // Supp(X) = 7/8 = 0.875 and Conf = 6/7 ~= 0.857.
  Database db = GeneDatabase();
  std::vector<AttributeValue> x = {{1, 0}, {2, 0}};
  MvaRule rule{x, {{3, 2}}};
  EXPECT_DOUBLE_EQ(*Support(db, x), 0.875);
  EXPECT_NEAR(*Confidence(db, rule), 6.0 / 7.0, 1e-12);
}

TEST(AssocRuleTest, InterestExampleMatchesThesis) {
  // Example 3.5: X = {(R,h), (P,h)}, Y = {(M,l)}:
  // Supp(X) = 4/8 = 0.5 and Conf = 3/4 = 0.75.
  Database db = InterestDatabase();
  std::vector<AttributeValue> x = {{0, 2}, {1, 2}};
  MvaRule rule{x, {{2, 0}}};
  EXPECT_DOUBLE_EQ(*Support(db, x), 0.5);
  EXPECT_DOUBLE_EQ(*Confidence(db, rule), 0.75);
}

TEST(AssocRuleTest, EmptySetHasFullSupport) {
  Database db = GeneDatabase();
  auto supp = Support(db, {});
  ASSERT_TRUE(supp.ok());
  EXPECT_DOUBLE_EQ(*supp, 1.0);
}

TEST(AssocRuleTest, SupportCountAbsolute) {
  Database db = GeneDatabase();
  auto count = SupportCount(db, {{1, 0}});  // G2 down in every row
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

TEST(AssocRuleTest, ValidationErrors) {
  Database db = GeneDatabase();
  // Unknown attribute / value out of range / repeated attribute.
  EXPECT_FALSE(ValidateItemSet(db, {{9, 0}}).ok());
  EXPECT_FALSE(ValidateItemSet(db, {{0, 7}}).ok());
  EXPECT_FALSE(ValidateItemSet(db, {{0, 0}, {0, 1}}).ok());
  // pi_1(X) and pi_1(Y) must be disjoint (Definition 3.1).
  MvaRule overlapping{{{0, 0}}, {{0, 1}}};
  EXPECT_FALSE(ValidateRule(db, overlapping).ok());
}

TEST(AssocRuleTest, ConfidenceUndefinedOnZeroSupport) {
  Database db = GeneDatabase();
  // G1 never takes value 1 ("flat") together with G2 = 2 ("up"): G2 is
  // always down, so Supp(X) = 0.
  MvaRule rule{{{1, 2}}, {{0, 0}}};
  auto conf = Confidence(db, rule);
  EXPECT_FALSE(conf.ok());
  EXPECT_EQ(conf.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AssocRuleTest, ConfidenceOfImpliedRuleIsOne) {
  Database db = GeneDatabase();
  // G2 = down holds in all rows, so any X implies it with confidence 1.
  MvaRule rule{{{2, 0}}, {{1, 0}}};
  auto conf = Confidence(db, rule);
  ASSERT_TRUE(conf.ok());
  EXPECT_DOUBLE_EQ(*conf, 1.0);
}

TEST(AssocRuleTest, MarketBasketSpecialCase) {
  // Definition 3.2's remark: boolean support/confidence are the k=2 case.
  auto db = DatabaseFromColumns({"milk", "beer"}, 2,
                                {{1, 1, 0, 1}, {1, 1, 1, 0}});
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(*Support(*db, {{0, 1}, {1, 1}}), 0.5);
  MvaRule rule{{{0, 1}}, {{1, 1}}};
  EXPECT_NEAR(*Confidence(*db, rule), 2.0 / 3.0, 1e-12);
}

TEST(AssocRuleTest, ToStringShowsOneBasedValues) {
  Database db = GeneDatabase();
  MvaRule rule{{{1, 0}}, {{3, 2}}};
  std::string text = rule.ToString(db);
  EXPECT_NE(text.find("(G2, 1)"), std::string::npos);
  EXPECT_NE(text.find("(G4, 3)"), std::string::npos);
  EXPECT_NE(text.find("==>"), std::string::npos);
}

TEST(AssocRuleTest, SupportMonotoneInItems) {
  // Adding conjuncts never increases support.
  Database db = PatientDatabase();
  double single = *Support(db, {{0, 3}});
  double pair = *Support(db, {{0, 3}, {1, 12}});
  EXPECT_LE(pair, single);
}

}  // namespace
}  // namespace hypermine::core
