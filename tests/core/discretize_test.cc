#include "core/discretize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace hypermine::core {
namespace {

TEST(KThresholdVectorTest, TercilesOfSortedRange) {
  // 9 entries, k=3: thresholds at sorted[3] and sorted[6].
  std::vector<double> series = {9, 1, 8, 2, 7, 3, 6, 4, 5};
  auto thresholds = KThresholdVector(series, 3);
  ASSERT_TRUE(thresholds.ok());
  ASSERT_EQ(thresholds->size(), 2u);
  EXPECT_DOUBLE_EQ((*thresholds)[0], 4.0);
  EXPECT_DOUBLE_EQ((*thresholds)[1], 7.0);
}

TEST(KThresholdVectorTest, Validations) {
  EXPECT_FALSE(KThresholdVector({}, 3).ok());
  EXPECT_FALSE(KThresholdVector({1.0}, 1).ok());
  EXPECT_FALSE(KThresholdVector({1.0}, kMaxValues + 1).ok());
}

TEST(DiscretizeWithThresholdsTest, BucketBoundariesHalfOpen) {
  // Buckets: (-inf, 2), [2, 5), [5, +inf).
  std::vector<double> thresholds = {2.0, 5.0};
  std::vector<double> series = {1.9, 2.0, 4.99, 5.0, 100.0, -7.0};
  std::vector<ValueId> got = DiscretizeWithThresholds(series, thresholds);
  EXPECT_EQ(got, (std::vector<ValueId>{0, 1, 1, 2, 2, 0}));
}

/// Equi-depth property: every bucket receives floor-level balanced counts
/// (within one rounding unit of N/k) for distinct-valued inputs.
class EquiDepthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EquiDepthTest, BucketsBalancedOnDistinctValues) {
  const size_t k = GetParam();
  Rng rng(k * 1000 + 17);
  std::vector<double> series(997);
  for (double& x : series) x = rng.NextDouble();  // distinct w.h.p.
  auto buckets = EquiDepthDiscretize(series, k);
  ASSERT_TRUE(buckets.ok());
  std::vector<size_t> counts(k, 0);
  for (ValueId v : *buckets) {
    ASSERT_LT(v, k);
    ++counts[v];
  }
  const double expected = static_cast<double>(series.size()) / k;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.02 + 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, EquiDepthTest,
                         ::testing::Values(2, 3, 4, 5, 8, 10));

TEST(EquiDepthTest, HeavyTiesCollapseGracefully) {
  // All-equal input: every entry lands in the top bucket (thresholds all
  // equal the value, and the half-open rule sends x >= a_{k-1} upward).
  std::vector<double> series(100, 1.0);
  auto buckets = EquiDepthDiscretize(series, 3);
  ASSERT_TRUE(buckets.ok());
  for (ValueId v : *buckets) EXPECT_EQ(v, 2);
}

TEST(RangeBucketTest, GeneExampleBoundaries) {
  // Table 3.4's scheme: [0,334) down, [334,667) flat, [667,1000) up.
  auto got = RangeBucketDiscretize({54.23, 342.32, 852.21, 333.9, 667.0},
                                   {0.0, 334.0, 667.0, 1000.0});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<ValueId>{0, 1, 2, 0, 2}));
}

TEST(RangeBucketTest, Validations) {
  EXPECT_FALSE(RangeBucketDiscretize({1.0}, {0.0}).ok());
  EXPECT_FALSE(RangeBucketDiscretize({1.0}, {5.0, 0.0}).ok());   // not sorted
  EXPECT_FALSE(RangeBucketDiscretize({1.0}, {0.0, 0.0}).ok());   // not strict
  EXPECT_FALSE(RangeBucketDiscretize({-1.0}, {0.0, 10.0}).ok()); // below
  EXPECT_FALSE(RangeBucketDiscretize({10.0}, {0.0, 10.0}).ok()); // at top
}

TEST(FloorDivTest, PatientExample) {
  // Table 3.2: age 25 -> 2, cholesterol 105 -> 10, etc.
  auto got = FloorDivDiscretize({25, 105, 135, 75, 62}, 10.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<ValueId>{2, 10, 13, 7, 6}));
}

TEST(FloorDivTest, Validations) {
  EXPECT_FALSE(FloorDivDiscretize({1.0}, 0.0).ok());
  EXPECT_FALSE(FloorDivDiscretize({-5.0}, 10.0).ok());
  EXPECT_FALSE(FloorDivDiscretize({1e9}, 10.0).ok());
}

TEST(DatabaseFromColumnsTest, BuildsDatabase) {
  auto db = DatabaseFromColumns({"x", "y"}, 3, {{0, 1}, {2, 2}});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), 2u);
  EXPECT_EQ(db->value(1, 1), 2);
}

TEST(DiscretizeRoundTripTest, ThresholdsFromTrainApplyToTest) {
  // Train thresholds can discretize unseen data deterministically.
  Rng rng(9);
  std::vector<double> train(500);
  for (double& x : train) x = rng.NextGaussian();
  auto thresholds = KThresholdVector(train, 5);
  ASSERT_TRUE(thresholds.ok());
  std::vector<double> test(100);
  for (double& x : test) x = rng.NextGaussian();
  std::vector<ValueId> buckets = DiscretizeWithThresholds(test, *thresholds);
  EXPECT_EQ(buckets.size(), test.size());
  for (ValueId v : buckets) EXPECT_LT(v, 5);
}

}  // namespace
}  // namespace hypermine::core
