#include "core/hypergraph.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace hypermine::core {
namespace {

DirectedHypergraph SmallGraph() {
  auto graph = DirectedHypergraph::CreateAnonymous(6);
  HM_CHECK_OK(graph.status());
  return std::move(graph).value();
}

TEST(HypergraphTest, CreateValidations) {
  EXPECT_FALSE(DirectedHypergraph::Create({}).ok());
  EXPECT_TRUE(DirectedHypergraph::Create({"A"}).ok());
  auto named = DirectedHypergraph::Create({"XOM", "CVX"});
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->vertex_name(1), "CVX");
}

TEST(HypergraphTest, AddEdgeValidations) {
  DirectedHypergraph g = SmallGraph();
  EXPECT_FALSE(g.AddEdge({}, 0, 0.5).ok());                // empty tail
  EXPECT_FALSE(g.AddEdge({1, 2, 3, 4}, 0, 0.5).ok());      // |T| > 3
  EXPECT_FALSE(g.AddEdge({1}, 9, 0.5).ok());               // head range
  EXPECT_FALSE(g.AddEdge({9}, 0, 0.5).ok());               // tail range
  EXPECT_FALSE(g.AddEdge({0}, 0, 0.5).ok());               // T ∩ H ≠ ∅
  EXPECT_FALSE(g.AddEdge({1, 1}, 0, 0.5).ok());            // repeated tail
  EXPECT_FALSE(g.AddEdge({1}, 0, 1.5).ok());               // weight range
  EXPECT_FALSE(g.AddEdge({1}, 0, -0.1).ok());
  EXPECT_TRUE(g.AddEdge({1}, 0, 0.5).ok());
  // Duplicate combination rejected, in any tail order.
  EXPECT_TRUE(g.AddEdge({1, 2}, 0, 0.5).ok());
  auto dup = g.AddEdge({2, 1}, 0, 0.9);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(HypergraphTest, TailSizeAndSpan) {
  DirectedHypergraph g = SmallGraph();
  EdgeId e1 = g.AddEdge({1}, 0, 0.4).value();
  EdgeId e2 = g.AddEdge({2, 1}, 0, 0.5).value();
  EdgeId e3 = g.AddEdge({3, 1, 2}, 0, 0.6).value();
  EXPECT_EQ(g.edge(e1).tail_size(), 1u);
  EXPECT_EQ(g.edge(e2).tail_size(), 2u);
  EXPECT_TRUE(g.edge(e2).is_pair());
  EXPECT_EQ(g.edge(e3).tail_size(), 3u);
  // Tail is stored sorted.
  EXPECT_EQ(g.edge(e3).tail[0], 1u);
  EXPECT_EQ(g.edge(e3).tail[2], 3u);
  EXPECT_TRUE(g.edge(e3).TailContains(2));
  EXPECT_FALSE(g.edge(e3).TailContains(4));
}

TEST(HypergraphTest, InOutIncidence) {
  DirectedHypergraph g = SmallGraph();
  EdgeId a = g.AddEdge({1}, 0, 0.4).value();
  EdgeId b = g.AddEdge({1, 2}, 0, 0.5).value();
  EdgeId c = g.AddEdge({0}, 1, 0.6).value();
  EXPECT_EQ(g.InEdgeIds(0), (std::vector<EdgeId>{a, b}));
  EXPECT_EQ(g.InEdgeIds(1), (std::vector<EdgeId>{c}));
  EXPECT_EQ(g.OutEdgeIds(1), (std::vector<EdgeId>{a, b}));
  EXPECT_EQ(g.OutEdgeIds(2), (std::vector<EdgeId>{b}));
  EXPECT_EQ(g.OutEdgeIds(0), (std::vector<EdgeId>{c}));
  EXPECT_TRUE(g.InEdgeIds(5).empty());
}

TEST(HypergraphTest, FindEdgeIgnoresTailOrder) {
  DirectedHypergraph g = SmallGraph();
  EdgeId id = g.AddEdge({3, 1}, 0, 0.7).value();
  std::vector<VertexId> query = {3, 1};
  auto found = g.FindEdge(query, 0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, id);
  std::vector<VertexId> sorted_query = {1, 3};
  EXPECT_EQ(*g.FindEdge(sorted_query, 0), id);
  std::vector<VertexId> other = {1, 2};
  EXPECT_FALSE(g.FindEdge(other, 0).has_value());
  EXPECT_FALSE(g.FindEdge(sorted_query, 4).has_value());
}

TEST(HypergraphTest, WeightedDegreesFollowSection52) {
  DirectedHypergraph g = SmallGraph();
  // in-degree(v) = sum of entering weights; out-degree(v) = sum of
  // w(e)/|T(e)| over leaving edges.
  ASSERT_TRUE(g.AddEdge({1}, 0, 0.4).ok());
  ASSERT_TRUE(g.AddEdge({1, 2}, 0, 0.6).ok());
  ASSERT_TRUE(g.AddEdge({0}, 1, 0.8).ok());
  EXPECT_NEAR(g.WeightedInDegree(0), 1.0, 1e-12);
  EXPECT_NEAR(g.WeightedInDegree(1), 0.8, 1e-12);
  EXPECT_NEAR(g.WeightedOutDegree(1), 0.4 + 0.3, 1e-12);
  EXPECT_NEAR(g.WeightedOutDegree(2), 0.3, 1e-12);
  EXPECT_NEAR(g.WeightedOutDegree(0), 0.8, 1e-12);
}

TEST(HypergraphTest, EdgeAndPairCounts) {
  DirectedHypergraph g = SmallGraph();
  ASSERT_TRUE(g.AddEdge({1}, 0, 0.4).ok());
  ASSERT_TRUE(g.AddEdge({2}, 0, 0.2).ok());
  ASSERT_TRUE(g.AddEdge({1, 2}, 0, 0.6).ok());
  EXPECT_EQ(g.NumDirectedEdges(), 2u);
  EXPECT_EQ(g.NumPairEdges(), 1u);
  EXPECT_NEAR(g.MeanDirectedEdgeWeight(), 0.3, 1e-12);
  EXPECT_NEAR(g.MeanPairEdgeWeight(), 0.6, 1e-12);
}

TEST(HypergraphTest, FilteredByWeightKeepsStrongEdges) {
  DirectedHypergraph g = SmallGraph();
  ASSERT_TRUE(g.AddEdge({1}, 0, 0.3).ok());
  ASSERT_TRUE(g.AddEdge({2}, 0, 0.5).ok());
  ASSERT_TRUE(g.AddEdge({1, 2}, 3, 0.7).ok());
  DirectedHypergraph pruned = g.FilteredByWeight(0.5);
  EXPECT_EQ(pruned.num_edges(), 2u);
  EXPECT_EQ(pruned.num_vertices(), g.num_vertices());
  std::vector<VertexId> tail = {2};
  EXPECT_TRUE(pruned.FindEdge(tail, 0).has_value());
  std::vector<VertexId> weak = {1};
  EXPECT_FALSE(pruned.FindEdge(weak, 0).has_value());
}

TEST(HypergraphTest, WeightQuantileThreshold) {
  DirectedHypergraph g = SmallGraph();
  ASSERT_TRUE(g.AddEdge({1}, 0, 0.1).ok());
  ASSERT_TRUE(g.AddEdge({2}, 0, 0.2).ok());
  ASSERT_TRUE(g.AddEdge({3}, 0, 0.3).ok());
  ASSERT_TRUE(g.AddEdge({4}, 0, 0.4).ok());
  ASSERT_TRUE(g.AddEdge({5}, 0, 0.5).ok());
  // Top 40% of 5 edges = 2 edges -> threshold 0.4.
  auto threshold = g.WeightQuantileThreshold(0.4);
  ASSERT_TRUE(threshold.ok());
  EXPECT_NEAR(*threshold, 0.4, 1e-12);
  EXPECT_EQ(g.FilteredByWeight(*threshold).num_edges(), 2u);
  EXPECT_FALSE(g.WeightQuantileThreshold(0.0).ok());
  EXPECT_FALSE(g.WeightQuantileThreshold(1.5).ok());
}

TEST(HypergraphTest, EdgeToStringFormat) {
  auto g = DirectedHypergraph::Create({"HES", "SLB", "XOM"});
  ASSERT_TRUE(g.ok());
  EdgeId id = g->AddEdge({0, 1}, 2, 0.58).value();
  EXPECT_EQ(g->EdgeToString(id), "HES, SLB -> XOM (0.58)");
}

}  // namespace
}  // namespace hypermine::core
