#ifndef HYPERMINE_TESTS_TESTING_FIXTURES_H_
#define HYPERMINE_TESTS_TESTING_FIXTURES_H_

#include <vector>

#include "core/database.h"
#include "core/discretize.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::testing {

/// The Patient database of Table 3.1, discretized per Table 3.2 by
/// floor(value / 10). Attributes A (age), C (cholesterol), B (blood
/// pressure), H (heart rate); 8 observations. The discretized values reach
/// 16, so the database is created with k = 17.
inline core::Database PatientDatabase() {
  const std::vector<std::vector<double>> raw = {
      // A, C, B, H per patient (rows of Table 3.1).
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized = core::FloorDivDiscretize(series, 10.0);
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db = core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

/// The Gene database of Table 3.3, discretized per Table 3.4 into
/// {down=0 (0..333), flat=1 (334..666), up=2 (667..999)}.
inline core::Database GeneDatabase() {
  const std::vector<std::vector<double>> raw = {
      {54.23, 66.22, 342.32, 422.21},  {541.21, 324.21, 165.21, 852.21},
      {321.67, 125.98, 139.43, 71.11}, {123.87, 95.54, 105.88, 678.65},
      {388.44, 129.33, 135.65, 754.32}, {399.98, 121.54, 117.55, 719.33},
      {414.33, 134.73, 145.32, 733.22}, {855.78, 125.93, 155.76, 789.43},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized =
        core::RangeBucketDiscretize(series, {0.0, 334.0, 667.0, 1000.0});
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db = core::DatabaseFromColumns({"G1", "G2", "G3", "G4"}, 3, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

/// The Personal Interest database of Table 3.5, discretized per Table 3.6
/// into {low=0 (0..3), moderate=1 (4..7), high=2 (8..10)}.
inline core::Database InterestDatabase() {
  const std::vector<std::vector<double>> raw = {
      {10, 10, 3, 5}, {7, 9, 4, 6}, {3, 1, 9, 10}, {5, 1, 10, 7},
      {9, 8, 2, 6},   {8, 10, 7, 6}, {5, 4, 6, 5},  {8, 10, 1, 8},
  };
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized =
        core::RangeBucketDiscretize(series, {0.0, 4.0, 8.0, 11.0});
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db = core::DatabaseFromColumns({"R", "P", "M", "E"}, 3, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

/// A random database over `n` attributes, `m` observations, k values,
/// with some attributes correlated (attribute i copies attribute i-1 with
/// probability `copy_prob`) so association structure exists.
inline core::Database RandomDatabase(size_t n, size_t m, size_t k,
                                     uint64_t seed, double copy_prob = 0.6) {
  Rng rng(seed);
  std::vector<std::vector<core::ValueId>> columns(
      n, std::vector<core::ValueId>(m));
  std::vector<std::string> names;
  for (size_t a = 0; a < n; ++a) names.push_back("X" + std::to_string(a));
  for (size_t o = 0; o < m; ++o) {
    for (size_t a = 0; a < n; ++a) {
      if (a > 0 && rng.NextBernoulli(copy_prob)) {
        columns[a][o] = columns[a - 1][o];
      } else {
        columns[a][o] = static_cast<core::ValueId>(rng.NextBounded(k));
      }
    }
  }
  auto db = core::DatabaseFromColumns(std::move(names), k, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

}  // namespace hypermine::testing

#endif  // HYPERMINE_TESTS_TESTING_FIXTURES_H_
