#include "approx/set_cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hypermine::approx {
namespace {

TEST(SetCoverTest, CoversSimpleInstance) {
  SetCoverInstance inst;
  inst.universe_size = 4;
  inst.sets = {{0, 1}, {2}, {3}, {2, 3}};
  auto result = GreedySetCover(inst);
  ASSERT_TRUE(result.ok());
  // Greedy picks {0,1} and {2,3}: cost 2.
  EXPECT_EQ(result->chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(result->total_cost, 2.0);
}

TEST(SetCoverTest, PricesSumToCost) {
  SetCoverInstance inst;
  inst.universe_size = 5;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}};
  auto result = GreedySetCover(inst);
  ASSERT_TRUE(result.ok());
  double price_sum = 0.0;
  for (double p : result->prices) price_sum += p;
  EXPECT_NEAR(price_sum, result->total_cost, 1e-9);
}

TEST(SetCoverTest, UncoverableFails) {
  SetCoverInstance inst;
  inst.universe_size = 3;
  inst.sets = {{0}, {1}};
  auto result = GreedySetCover(inst);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SetCoverTest, OutOfRangeElementFails) {
  SetCoverInstance inst;
  inst.universe_size = 2;
  inst.sets = {{0, 5}};
  EXPECT_FALSE(GreedySetCover(inst).ok());
}

TEST(SetCoverTest, CostMismatchFails) {
  SetCoverInstance inst;
  inst.universe_size = 1;
  inst.sets = {{0}};
  inst.costs = {1.0, 2.0};
  EXPECT_FALSE(GreedySetCover(inst).ok());
}

TEST(SetCoverTest, WeightedPrefersCheapSets) {
  SetCoverInstance inst;
  inst.universe_size = 2;
  inst.sets = {{0, 1}, {0}, {1}};
  inst.costs = {10.0, 1.0, 1.0};
  auto result = GreedySetCover(inst);
  ASSERT_TRUE(result.ok());
  // Two unit-cost singletons (total 2) beat the expensive pair (10).
  EXPECT_DOUBLE_EQ(result->total_cost, 2.0);
}

TEST(SetCoverTest, ChosenSetsActuallyCover) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SetCoverInstance inst;
    inst.universe_size = 30;
    inst.sets.resize(12);
    for (auto& set : inst.sets) {
      for (size_t u = 0; u < inst.universe_size; ++u) {
        if (rng.NextBernoulli(0.25)) set.push_back(u);
      }
    }
    // Safety net so every element is coverable.
    for (size_t u = 0; u < inst.universe_size; ++u) {
      inst.sets[u % inst.sets.size()].push_back(u);
    }
    auto result = GreedySetCover(inst);
    ASSERT_TRUE(result.ok());
    std::vector<char> covered(inst.universe_size, 0);
    for (size_t s : result->chosen) {
      for (size_t u : inst.sets[s]) covered[u] = 1;
    }
    for (char c : covered) EXPECT_TRUE(c);
  }
}

TEST(BruteForceSetCoverTest, FindsOptimum) {
  SetCoverInstance inst;
  inst.universe_size = 4;
  inst.sets = {{0}, {1}, {2}, {3}, {0, 1, 2, 3}};
  auto best = BruteForceMinSetCover(inst);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->size(), 1u);
  EXPECT_EQ((*best)[0], 4u);
}

/// Theorem 2.3: greedy cost <= H(n) * OPT <= (ln n + 1) * OPT.
TEST(SetCoverApproximationTest, GreedyWithinLogFactorOfOptimum) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    SetCoverInstance inst;
    inst.universe_size = 12;
    inst.sets.resize(8);
    for (auto& set : inst.sets) {
      for (size_t u = 0; u < inst.universe_size; ++u) {
        if (rng.NextBernoulli(0.35)) set.push_back(u);
      }
    }
    for (size_t u = 0; u < inst.universe_size; ++u) {
      inst.sets[u % inst.sets.size()].push_back(u);
    }
    auto greedy = GreedySetCover(inst);
    auto optimal = BruteForceMinSetCover(inst);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(optimal.ok());
    double bound = (std::log(12.0) + 1.0) *
                   static_cast<double>(optimal->size());
    EXPECT_LE(static_cast<double>(greedy->chosen.size()), bound + 1e-9);
  }
}

}  // namespace
}  // namespace hypermine::approx
