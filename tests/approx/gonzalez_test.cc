#include "approx/gonzalez.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace hypermine::approx {
namespace {

/// 1-D points distance helper.
DistanceFn LineDistance(const std::vector<double>& points) {
  return [points](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
}

TEST(GonzalezTest, SeparatesTwoObviousClusters) {
  std::vector<double> pts = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  auto clustering = GonzalezTClustering(pts.size(), 2, LineDistance(pts));
  ASSERT_TRUE(clustering.ok());
  // All small points share a cluster; all large points share the other.
  EXPECT_EQ(clustering->assignment[0], clustering->assignment[1]);
  EXPECT_EQ(clustering->assignment[0], clustering->assignment[2]);
  EXPECT_EQ(clustering->assignment[3], clustering->assignment[4]);
  EXPECT_NE(clustering->assignment[0], clustering->assignment[3]);
  EXPECT_NEAR(clustering->diameter, 0.2, 1e-12);
}

TEST(GonzalezTest, TEqualsNMakesSingletons) {
  std::vector<double> pts = {0.0, 1.0, 2.0};
  auto clustering = GonzalezTClustering(3, 3, LineDistance(pts));
  ASSERT_TRUE(clustering.ok());
  EXPECT_DOUBLE_EQ(clustering->diameter, 0.0);
  EXPECT_DOUBLE_EQ(clustering->radius, 0.0);
}

TEST(GonzalezTest, SingleClusterContainsAll) {
  std::vector<double> pts = {0.0, 3.0, 7.0};
  auto clustering = GonzalezTClustering(3, 1, LineDistance(pts));
  ASSERT_TRUE(clustering.ok());
  EXPECT_DOUBLE_EQ(clustering->diameter, 7.0);
}

TEST(GonzalezTest, FirstCenterRespected) {
  std::vector<double> pts = {0.0, 5.0, 10.0};
  auto clustering =
      GonzalezTClustering(3, 2, LineDistance(pts), /*first_center=*/1);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->centers[0], 1u);
}

TEST(GonzalezTest, InvalidArgumentsFail) {
  std::vector<double> pts = {0.0, 1.0};
  EXPECT_FALSE(GonzalezTClustering(0, 1, LineDistance(pts)).ok());
  EXPECT_FALSE(GonzalezTClustering(2, 0, LineDistance(pts)).ok());
  EXPECT_FALSE(GonzalezTClustering(2, 3, LineDistance(pts)).ok());
  EXPECT_FALSE(GonzalezTClustering(2, 1, LineDistance(pts), 5).ok());
}

TEST(GonzalezTest, RadiusNeverExceedsDiameter) {
  Rng rng(3);
  std::vector<double> pts(20);
  for (double& p : pts) p = rng.NextDouble() * 100.0;
  for (size_t t = 1; t <= 5; ++t) {
    auto clustering = GonzalezTClustering(pts.size(), t, LineDistance(pts));
    ASSERT_TRUE(clustering.ok());
    EXPECT_LE(clustering->radius, clustering->diameter + 1e-12);
  }
}

/// Theorem 2.7: the Gonzalez diameter is at most twice the optimum.
class GonzalezApproximationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GonzalezApproximationTest, WithinFactorTwoOfOptimum) {
  const size_t t = GetParam();
  Rng rng(100 + t);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> pts(9);
    for (double& p : pts) p = rng.NextDouble() * 50.0;
    DistanceFn dist = LineDistance(pts);
    auto clustering = GonzalezTClustering(pts.size(), t, dist);
    auto optimal = BruteForceOptimalDiameter(pts.size(), t, dist);
    ASSERT_TRUE(clustering.ok());
    ASSERT_TRUE(optimal.ok());
    EXPECT_LE(clustering->diameter, 2.0 * (*optimal) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(TSweep, GonzalezApproximationTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ClusteringDiameterTest, RecomputesFromAssignment) {
  std::vector<double> pts = {0.0, 1.0, 10.0};
  std::vector<size_t> assignment = {0, 0, 1};
  EXPECT_DOUBLE_EQ(
      ClusteringDiameter(3, 2, assignment, LineDistance(pts)), 1.0);
}

TEST(BruteForceOptimalDiameterTest, KnownSmallCase) {
  std::vector<double> pts = {0.0, 1.0, 5.0, 6.0};
  auto best = BruteForceOptimalDiameter(4, 2, LineDistance(pts));
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(*best, 1.0);
}

TEST(BruteForceOptimalDiameterTest, TooManyPointsRejected) {
  std::vector<double> pts(13, 0.0);
  EXPECT_FALSE(BruteForceOptimalDiameter(13, 2, LineDistance(pts)).ok());
}

}  // namespace
}  // namespace hypermine::approx
