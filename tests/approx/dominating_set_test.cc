#include "approx/dominating_set.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hypermine::approx {
namespace {

TEST(DominatingSetTest, StarGraphNeedsOnlyCenter) {
  Graph g;
  g.num_vertices = 6;
  for (size_t leaf = 1; leaf < 6; ++leaf) g.edges.push_back({0, leaf});
  auto dom = GreedyDominatingSet(g);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom->size(), 1u);
  EXPECT_EQ((*dom)[0], 0u);
}

TEST(DominatingSetTest, EdgelessGraphNeedsEveryVertex) {
  Graph g;
  g.num_vertices = 4;
  auto dom = GreedyDominatingSet(g);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom->size(), 4u);
}

TEST(DominatingSetTest, PathGraph) {
  // Path 0-1-2-3-4-5: optimal dominating set has size 2 ({1, 4}).
  Graph g;
  g.num_vertices = 6;
  for (size_t v = 0; v + 1 < 6; ++v) g.edges.push_back({v, v + 1});
  auto dom = GreedyDominatingSet(g);
  ASSERT_TRUE(dom.ok());
  EXPECT_TRUE(IsDominatingSet(g, *dom));
  EXPECT_LE(dom->size(), 3u);
}

TEST(DominatingSetTest, SelfLoopsIgnored) {
  Graph g;
  g.num_vertices = 2;
  g.edges = {{0, 0}, {0, 1}};
  auto dom = GreedyDominatingSet(g);
  ASSERT_TRUE(dom.ok());
  EXPECT_TRUE(IsDominatingSet(g, *dom));
}

TEST(DominatingSetTest, BadEdgeFails) {
  Graph g;
  g.num_vertices = 2;
  g.edges = {{0, 7}};
  EXPECT_FALSE(GreedyDominatingSet(g).ok());
}

TEST(IsDominatingSetTest, DetectsNonDominating) {
  Graph g;
  g.num_vertices = 3;
  g.edges = {{0, 1}};
  EXPECT_FALSE(IsDominatingSet(g, {0}));  // vertex 2 undominated
  EXPECT_TRUE(IsDominatingSet(g, {0, 2}));
  EXPECT_FALSE(IsDominatingSet(g, {9}));  // invalid member
}

/// Theorem 2.5: greedy stays within (ln n + 1) of the optimum.
TEST(DominatingSetApproximationTest, WithinLogFactorOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g;
    g.num_vertices = 10;
    for (size_t a = 0; a < g.num_vertices; ++a) {
      for (size_t b = a + 1; b < g.num_vertices; ++b) {
        if (rng.NextBernoulli(0.3)) g.edges.push_back({a, b});
      }
    }
    auto greedy = GreedyDominatingSet(g);
    auto optimal = BruteForceMinDominatingSet(g);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(optimal.ok());
    EXPECT_TRUE(IsDominatingSet(g, *greedy));
    double bound =
        (std::log(10.0) + 1.0) * static_cast<double>(optimal->size());
    EXPECT_LE(static_cast<double>(greedy->size()), bound + 1e-9);
  }
}

TEST(BruteForceDominatingSetTest, MatchesKnownOptimum) {
  // Cycle of 6: optimum is 2.
  Graph g;
  g.num_vertices = 6;
  for (size_t v = 0; v < 6; ++v) g.edges.push_back({v, (v + 1) % 6});
  auto best = BruteForceMinDominatingSet(g);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->size(), 2u);
  EXPECT_TRUE(IsDominatingSet(g, *best));
}

}  // namespace
}  // namespace hypermine::approx
