#include "approx/metric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hypermine::approx {
namespace {

TEST(MetricCheckTest, EuclideanLineIsMetric) {
  std::vector<double> pts = {0.0, 1.5, 4.0, 9.0};
  auto dist = [&pts](size_t a, size_t b) {
    return std::fabs(pts[a] - pts[b]);
  };
  MetricCheck check = CheckMetricProperties(pts.size(), dist);
  EXPECT_TRUE(check.IsMetric());
  EXPECT_TRUE(check.non_negative);
  EXPECT_TRUE(check.symmetric);
  EXPECT_TRUE(check.triangle_inequality);
  EXPECT_EQ(check.triangle_violations, 0u);
}

TEST(MetricCheckTest, DetectsTriangleViolation) {
  // d(0,2)=10 but d(0,1)+d(1,2)=2: clear violation.
  auto dist = [](size_t a, size_t b) -> double {
    if (a == b) return 0.0;
    if ((a == 0 && b == 2) || (a == 2 && b == 0)) return 10.0;
    return 1.0;
  };
  MetricCheck check = CheckMetricProperties(3, dist);
  EXPECT_FALSE(check.IsMetric());
  EXPECT_FALSE(check.triangle_inequality);
  EXPECT_GT(check.triangle_violations, 0u);
  EXPECT_NEAR(check.worst_triangle_excess, 8.0, 1e-12);
}

TEST(MetricCheckTest, DetectsAsymmetry) {
  auto dist = [](size_t a, size_t b) -> double {
    if (a == b) return 0.0;
    return a < b ? 1.0 : 2.0;
  };
  MetricCheck check = CheckMetricProperties(3, dist);
  EXPECT_FALSE(check.symmetric);
}

TEST(MetricCheckTest, DetectsNegativeDistance) {
  auto dist = [](size_t a, size_t b) -> double {
    return a == b ? 0.0 : -1.0;
  };
  MetricCheck check = CheckMetricProperties(2, dist);
  EXPECT_FALSE(check.non_negative);
}

TEST(MetricCheckTest, DetectsIdentityViolations) {
  // Nonzero self-distance.
  auto self_dist = [](size_t a, size_t b) -> double {
    return a == b ? 0.5 : 1.0;
  };
  EXPECT_FALSE(
      CheckMetricProperties(2, self_dist).identity_of_indiscernibles);
  // Distinct points at distance zero.
  auto zero_dist = [](size_t, size_t) -> double { return 0.0; };
  EXPECT_FALSE(
      CheckMetricProperties(2, zero_dist).identity_of_indiscernibles);
}

TEST(MetricCheckTest, ToleranceAbsorbsNoise) {
  auto dist = [](size_t a, size_t b) -> double {
    return a == b ? 1e-12 : 1.0;
  };
  MetricCheck check = CheckMetricProperties(3, dist, 1e-9);
  EXPECT_TRUE(check.IsMetric());
}

TEST(MetricCheckTest, ToStringMentionsProperties) {
  auto dist = [](size_t a, size_t b) -> double { return a == b ? 0.0 : 1.0; };
  MetricCheck check = CheckMetricProperties(3, dist);
  std::string text = check.ToString();
  EXPECT_NE(text.find("symmetric=yes"), std::string::npos);
  EXPECT_NE(text.find("triangle=yes"), std::string::npos);
}

}  // namespace
}  // namespace hypermine::approx
