#include "util/status.h"

#include <gtest/gtest.h>

namespace hypermine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusIsCoercedToInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  HM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseAssignOrReturn(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 4);  // untouched on error
}

Status UseReturnIfError(bool fail) {
  HM_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusMacrosTest, ReturnIfErrorShortCircuits) {
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
  EXPECT_EQ(UseReturnIfError(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace hypermine
