#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace hypermine {
namespace {

TEST(CsvTest, ParsesSimpleDocumentWithHeader) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n", /*has_header=*/true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][2], "6");
}

TEST(CsvTest, ParsesWithoutHeader) {
  auto doc = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(CsvTest, HandlesQuotedFieldsAndEscapes) {
  auto doc = ParseCsv("name,quote\nalice,\"hi, there\"\nbob,\"say \"\"hi\"\"\"\n",
                      true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "hi, there");
  EXPECT_EQ(doc->rows[1][1], "say \"hi\"");
}

TEST(CsvTest, HandlesQuotedNewlines) {
  auto doc = ParseCsv("a\n\"line1\nline2\"\n", true);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "line1\nline2");
}

TEST(CsvTest, ToleratesCrLf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n", true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto doc = ParseCsv("a,b\n1\n", true);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto doc = ParseCsv("a\n\"oops\n", true);
  EXPECT_FALSE(doc.ok());
}

TEST(CsvTest, EmptyDocumentNeedsNoRows) {
  auto doc = ParseCsv("a,b\n", true);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->rows.empty());
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  doc.rows = {{"plain", "with,comma"}, {"with\"quote", "multi\nline"}};
  std::string text = WriteCsvString(doc);
  EXPECT_EQ(text,
            "x,y\nplain,\"with,comma\"\n\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvTest, RoundTripThroughParse) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"a", "1,2"}, {"b", "\"q\""}};
  auto parsed = ParseCsv(WriteCsvString(doc), true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/hypermine_csv_test.csv";
  CsvDocument doc;
  doc.header = {"a"};
  doc.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  auto loaded = ReadCsvFile(path, true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto missing = ReadCsvFile("/nonexistent/really/not/here.csv", true);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace hypermine
