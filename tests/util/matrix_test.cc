#include "util/matrix.h"

#include <gtest/gtest.h>

namespace hypermine {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityAndFromRows) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.At(0, 1), 0.0);
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  Matrix back = t.Transposed();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(back.At(r, c), m.At(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix c = a.Multiply(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(c.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 3.0);
}

TEST(MatrixTest, ApplyVector) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  std::vector<double> v = {1.0, -1.0};
  std::vector<double> out = a.Apply(v);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(MatrixTest, AddScaleNorm) {
  Matrix a = Matrix::FromRows({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  a.ScaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 8.0);
  Matrix b = Matrix::FromRows({{1.0, 1.0}});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 7.0);
}

TEST(SolveLinearSystemTest, Solves3x3) {
  Matrix a = Matrix::FromRows(
      {{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}});
  auto x = SolveLinearSystem(a, {8.0, -11.0, -3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
  EXPECT_NEAR((*x)[2], -1.0, 1e-9);
}

TEST(SolveLinearSystemTest, NeedsPivoting) {
  // Leading zero forces a row swap.
  Matrix a = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  auto x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularFails) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveLinearSystemTest, ShapeErrors) {
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 3), {1.0, 2.0}).ok());
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 2), {1.0}).ok());
}

TEST(SolveLeastSquaresTest, RecoversExactLinearModel) {
  // y = 2*x0 - x1 + 3 with bias column.
  Matrix x = Matrix::FromRows({{1.0, 0.0, 1.0},
                               {0.0, 1.0, 1.0},
                               {2.0, 1.0, 1.0},
                               {3.0, -1.0, 1.0}});
  std::vector<double> y = {5.0, 2.0, 6.0, 10.0};
  auto w = SolveLeastSquares(x, y);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 2.0, 1e-6);
  EXPECT_NEAR((*w)[1], -1.0, 1e-6);
  EXPECT_NEAR((*w)[2], 3.0, 1e-6);
}

TEST(SolveLeastSquaresTest, RidgeHandlesRankDeficiency) {
  // Duplicate columns are rank deficient; a ridge makes them solvable.
  Matrix x = Matrix::FromRows({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  std::vector<double> y = {2.0, 4.0, 6.0};
  auto w = SolveLeastSquares(x, y, 1e-6);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0] + (*w)[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace hypermine
