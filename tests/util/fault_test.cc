// The fault injector is only trustworthy if its schedules are exactly
// reproducible: a chaos failure is reported as a seed, and replaying that
// seed must replay the same decision sequence at every site. These tests
// pin that contract — plus the triggers (probability, skip_first,
// max_fires) and the "disabled costs nothing, fires nothing" default.
#include "util/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hypermine::fault {
namespace {

/// Every test starts and ends with a clean global injector — the instance
/// is process-wide, so leftover arming would leak into other suites.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Injector::Global().Reset(); }
  void TearDown() override { Injector::Global().Reset(); }
};

std::vector<bool> Draw(Injector& injector, const std::string& site, int n) {
  std::vector<bool> decisions;
  decisions.reserve(n);
  for (int i = 0; i < n; ++i) decisions.push_back(injector.ShouldFire(site));
  return decisions;
}

TEST_F(FaultTest, DisabledInjectorNeverFires) {
  Injector& injector = Injector::Global();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(ShouldFail("socket.read"));
  // Arming without Enable still fires nothing.
  injector.Arm("socket.read", SiteConfig{});
  EXPECT_FALSE(ShouldFail("socket.read"));
  EXPECT_EQ(injector.fires("socket.read"), 0u);
}

TEST_F(FaultTest, UnarmedSitesNeverFireEvenWhenEnabled) {
  Injector& injector = Injector::Global();
  injector.Enable(/*seed=*/1);
  EXPECT_FALSE(ShouldFail("socket.read"));
  EXPECT_EQ(injector.hits("socket.read"), 0u);
}

TEST_F(FaultTest, SameSeedSameSchedule) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.probability = 0.3;

  injector.Enable(42);
  injector.Arm("socket.read", config);
  const std::vector<bool> first = Draw(injector, "socket.read", 200);

  injector.Reset();
  injector.Enable(42);
  injector.Arm("socket.read", config);
  const std::vector<bool> replay = Draw(injector, "socket.read", 200);

  EXPECT_EQ(first, replay);
  // The sequence is non-trivial at p=0.3 over 200 draws.
  EXPECT_NE(injector.fires("socket.read"), 0u);
  EXPECT_NE(injector.fires("socket.read"), 200u);
}

TEST_F(FaultTest, DifferentSeedsDiverge) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.probability = 0.3;

  injector.Enable(42);
  injector.Arm("socket.read", config);
  const std::vector<bool> a = Draw(injector, "socket.read", 200);

  injector.Reset();
  injector.Enable(43);
  injector.Arm("socket.read", config);
  const std::vector<bool> b = Draw(injector, "socket.read", 200);

  EXPECT_NE(a, b);
}

TEST_F(FaultTest, SitesDrawIndependentStreams) {
  // A site's decision sequence depends only on its own hit count: hitting
  // another site in between must not shift it.
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.probability = 0.5;

  injector.Enable(7);
  injector.Arm("socket.read", config);
  const std::vector<bool> alone = Draw(injector, "socket.read", 100);

  injector.Reset();
  injector.Enable(7);
  injector.Arm("socket.read", config);
  injector.Arm("socket.write", config);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    (void)injector.ShouldFire("socket.write");
    interleaved.push_back(injector.ShouldFire("socket.read"));
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(FaultTest, SkipFirstSuppressesEarlyHits) {
  Injector& injector = Injector::Global();
  SiteConfig config;  // probability 1.0
  config.skip_first = 3;
  injector.Enable(1);
  injector.Arm("snapshot.corrupt", config);

  EXPECT_FALSE(injector.ShouldFire("snapshot.corrupt"));
  EXPECT_FALSE(injector.ShouldFire("snapshot.corrupt"));
  EXPECT_FALSE(injector.ShouldFire("snapshot.corrupt"));
  EXPECT_TRUE(injector.ShouldFire("snapshot.corrupt"));
  EXPECT_EQ(injector.hits("snapshot.corrupt"), 4u);
  EXPECT_EQ(injector.fires("snapshot.corrupt"), 1u);
}

TEST_F(FaultTest, MaxFiresExhaustsTheSite) {
  Injector& injector = Injector::Global();
  SiteConfig config;  // probability 1.0
  config.max_fires = 2;
  injector.Enable(1);
  injector.Arm("reload.verify", config);

  EXPECT_TRUE(injector.ShouldFire("reload.verify"));
  EXPECT_TRUE(injector.ShouldFire("reload.verify"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.ShouldFire("reload.verify"));
  }
  EXPECT_EQ(injector.fires("reload.verify"), 2u);
  EXPECT_EQ(injector.hits("reload.verify"), 12u);
}

TEST_F(FaultTest, RearmingResetsCountersAndStream) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.probability = 0.4;
  injector.Enable(99);
  injector.Arm("socket.read", config);
  const std::vector<bool> first = Draw(injector, "socket.read", 50);

  // Re-arm (same config): the stream restarts from the same seed.
  injector.Arm("socket.read", config);
  EXPECT_EQ(injector.hits("socket.read"), 0u);
  EXPECT_EQ(injector.fires("socket.read"), 0u);
  EXPECT_EQ(Draw(injector, "socket.read", 50), first);
}

TEST_F(FaultTest, DisarmStopsFiringAndCounting) {
  Injector& injector = Injector::Global();
  injector.Enable(1);
  injector.Arm("socket.read", SiteConfig{});
  EXPECT_TRUE(injector.ShouldFire("socket.read"));
  injector.Disarm("socket.read");
  EXPECT_FALSE(injector.ShouldFire("socket.read"));
  EXPECT_EQ(injector.hits("socket.read"), 0u) << "disarm forgets the site";
}

TEST_F(FaultTest, DisableKeepsConfigurationIntact) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.skip_first = 1;
  injector.Enable(5);
  injector.Arm("socket.write", config);
  EXPECT_FALSE(injector.ShouldFire("socket.write"));  // skip_first eats #1

  injector.Disable();
  EXPECT_FALSE(ShouldFail("socket.write"));

  // Re-enabling resumes where the site left off: hit #2 fires.
  injector.Enable(5);
  EXPECT_TRUE(injector.ShouldFire("socket.write"));
}

TEST_F(FaultTest, ProbabilityRoughlyHolds) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.probability = 0.2;
  injector.Enable(123);
  injector.Arm("engine.batch", config);
  for (int i = 0; i < 2000; ++i) (void)injector.ShouldFire("engine.batch");
  const uint64_t fires = injector.fires("engine.batch");
  // Loose 3-sigma-ish band around 400; deterministic given the seed.
  EXPECT_GT(fires, 300u);
  EXPECT_LT(fires, 500u);
}

TEST_F(FaultTest, DelayIsReportedOnlyWhenFiring) {
  Injector& injector = Injector::Global();
  SiteConfig config;
  config.delay_ms = 25;
  config.max_fires = 1;
  injector.Enable(1);
  injector.Arm("engine.batch", config);

  int delay_ms = 0;
  EXPECT_TRUE(injector.ShouldFire("engine.batch", &delay_ms));
  EXPECT_EQ(delay_ms, 25);
  delay_ms = 0;
  EXPECT_FALSE(injector.ShouldFire("engine.batch", &delay_ms));
  EXPECT_EQ(delay_ms, 0) << "exhausted site must not report a delay";
}

}  // namespace
}  // namespace hypermine::fault
