#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace hypermine::metrics {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(CounterTest, IncrementByNAndBridge) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_total");
  counter->Increment(5);
  counter->Increment();
  EXPECT_EQ(counter->value(), 6u);
  Counter* bridged = registry.GetCounter("bridged_total");
  bridged->BridgeTo(42);
  EXPECT_EQ(bridged->value(), 42u);
  bridged->BridgeTo(40);  // bridging mirrors the source, even downward
  EXPECT_EQ(bridged->value(), 40u);
}

TEST(GaugeTest, SetAddUpdateMax) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test_gauge");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->UpdateMax(5);  // below: no change
  EXPECT_EQ(gauge->value(), 7);
  gauge->UpdateMax(100);
  EXPECT_EQ(gauge->value(), 100);
}

TEST(GaugeTest, ConcurrentUpdateMaxKeepsTheMaximum) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test_peak");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([gauge, t] {
      for (int i = 0; i < 10000; ++i) gauge->UpdateMax(t * 10000 + i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge->value(), 7 * 10000 + 9999);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);  // bucket 0 (le=1)
  histogram.Observe(1.0);  // bucket 0: le is INCLUSIVE
  histogram.Observe(1.5);  // bucket 1 (le=2)
  histogram.Observe(2.0);  // bucket 1
  histogram.Observe(4.0);  // bucket 2 (le=4)
  histogram.Observe(9.0);  // +Inf bucket
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(HistogramTest, SnapshotIsIsolatedFromLaterObservations) {
  Histogram histogram({1.0});
  histogram.Observe(0.5);
  const Histogram::Snapshot before = histogram.TakeSnapshot();
  histogram.Observe(0.5);
  histogram.Observe(10.0);
  EXPECT_EQ(before.count, 1u);
  EXPECT_EQ(before.counts[0], 1u);
  EXPECT_EQ(before.counts[1], 0u);
  const Histogram::Snapshot after = histogram.TakeSnapshot();
  EXPECT_EQ(after.count, 3u);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  Histogram histogram(DefaultLatencyBuckets());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1e-4 * static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) histogram.Observe(5.0);   // le=10
  for (int i = 0; i < 100; ++i) histogram.Observe(15.0);  // le=20
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  // p50 sits exactly at the boundary of the first bucket.
  EXPECT_NEAR(snap.Percentile(0.50), 10.0, 1e-9);
  // p75 is halfway through the second bucket (10..20).
  EXPECT_NEAR(snap.Percentile(0.75), 15.0, 1e-9);
  EXPECT_GE(snap.Percentile(0.99), snap.Percentile(0.50));
}

TEST(HistogramTest, InfBucketClampsToLastFiniteBound) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(50.0);
  histogram.Observe(60.0);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 2.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram histogram({1.0});
  EXPECT_EQ(histogram.TakeSnapshot().Percentile(0.5), 0.0);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("stable_total", "help text");
  Counter* b = registry.GetCounter("stable_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("stable_seconds");
  Histogram* h2 = registry.GetHistogram("stable_seconds");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, PrometheusTextRendersAllKinds) {
  Registry registry;
  registry.GetCounter("demo_events_total", "Things that happened.")
      ->Increment(3);
  registry.GetGauge("demo_depth", "Current depth.")->Set(7);
  registry.GetHistogram("demo_latency_seconds", "Latency.", {0.1, 1.0})
      ->Observe(0.05);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP demo_events_total Things that happened."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("demo_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  // Cumulative: the le="1" bucket includes the le="0.1" one.
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_count 1"), std::string::npos);
}

TEST(RegistryTest, LabeledSeriesShareOneHelpBlock) {
  Registry registry;
  registry.GetGauge("model_info{model_version=\"1\"}", "Live model.")
      ->Set(1);
  registry.GetGauge("model_info{model_version=\"2\"}")->Set(0);
  const std::string text = registry.PrometheusText();
  // One HELP/TYPE header for the base name, two samples.
  size_t first = text.find("# TYPE model_info gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE model_info gauge", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("model_info{model_version=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("model_info{model_version=\"2\"} 0"),
            std::string::npos);
}

TEST(RegistryTest, HistogramLabelsFoldIntoBucketLabels) {
  Registry registry;
  registry.GetHistogram("stage_seconds{stage=\"wait\"}", "", {1.0})
      ->Observe(0.5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"wait\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"wait\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"wait\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, CollectorsRunAtRenderAndCanBeRemoved) {
  Registry registry;
  std::atomic<int> runs{0};
  const uint64_t id = registry.AddCollector([&registry, &runs] {
    runs.fetch_add(1);
    registry.GetCounter("collected_total")->BridgeTo(99);
  });
  const std::string text = registry.PrometheusText();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_NE(text.find("collected_total 99"), std::string::npos);
  (void)registry.JsonText();
  EXPECT_EQ(runs.load(), 2);
  registry.RemoveCollector(id);
  (void)registry.PrometheusText();
  EXPECT_EQ(runs.load(), 2);  // removed: not run again
}

TEST(RegistryTest, JsonTextIsWellFormedAndComplete) {
  Registry registry;
  registry.GetCounter("a_total")->Increment(2);
  registry.GetGauge("b_gauge")->Set(-5);
  registry.GetHistogram("c_seconds", "", {1.0})->Observe(0.5);
  const std::string json = registry.JsonText();
  EXPECT_NE(json.find("\"a_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"b_gauge\": -5"), std::string::npos);
  EXPECT_NE(json.find("\"c_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, DefaultLatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double>& bounds = DefaultLatencyBuckets();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GE(bounds.front(), 1e-6);  // sub-µs noise has no bucket
  EXPECT_GE(bounds.back(), 1.0);    // seconds-scale tail is covered
}

TEST(ScopedTimerTest, ObservesOnDestructionAndToleratesNull) {
  Histogram histogram(DefaultLatencyBuckets());
  {
    ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.TakeSnapshot().count, 1u);
  {
    ScopedTimer no_op(nullptr);  // must not crash
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01"
                                   "b")),
            "a\\u0001b");
}

TEST(DefaultRegistryTest, IsASingletonWithUptime) {
  Registry& a = DefaultRegistry();
  Registry& b = DefaultRegistry();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(ProcessUptimeSeconds(), 0.0);
  const double first = ProcessUptimeSeconds();
  EXPECT_GE(ProcessUptimeSeconds(), first);
}

}  // namespace
}  // namespace hypermine::metrics
