#include "util/flags.h"

#include <gtest/gtest.h>

namespace hypermine {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  FlagParser parser;
  EXPECT_TRUE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  return parser;
}

TEST(FlagsTest, EqualsForm) {
  FlagParser p = ParseArgs({"--series=120", "--gamma=1.15"});
  EXPECT_EQ(p.GetInt("series", 0), 120);
  EXPECT_DOUBLE_EQ(p.GetDouble("gamma", 0.0), 1.15);
}

TEST(FlagsTest, SpaceForm) {
  FlagParser p = ParseArgs({"--name", "value"});
  EXPECT_EQ(p.GetString("name", ""), "value");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  FlagParser p = ParseArgs({"--full"});
  EXPECT_TRUE(p.GetBool("full", false));
  EXPECT_TRUE(p.Has("full"));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  FlagParser p = ParseArgs({});
  EXPECT_EQ(p.GetInt("series", 77), 77);
  EXPECT_DOUBLE_EQ(p.GetDouble("g", 2.5), 2.5);
  EXPECT_EQ(p.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(p.GetBool("b", false));
  EXPECT_FALSE(p.Has("series"));
}

TEST(FlagsTest, BoolSpellings) {
  FlagParser p =
      ParseArgs({"--a=1", "--b=true", "--c=YES", "--d=on", "--e=0",
                 "--f=false"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_TRUE(p.GetBool("d", false));
  EXPECT_FALSE(p.GetBool("e", true));
  EXPECT_FALSE(p.GetBool("f", true));
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser p = ParseArgs({"pos1", "--k=3", "pos2"});
  // "pos2" follows "--k=3" (already consumed), so it is positional.
  EXPECT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "pos1");
  EXPECT_EQ(p.positional()[1], "pos2");
}

TEST(FlagsTest, MalformedFlagFails) {
  const char* argv[] = {"binary", "--=x"};
  FlagParser p;
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagsTest, LastOccurrenceWins) {
  FlagParser p = ParseArgs({"--k=3", "--k=5"});
  EXPECT_EQ(p.GetInt("k", 0), 5);
}

TEST(FlagsTest, DebugStringListsFlags) {
  FlagParser p = ParseArgs({"--k=3"});
  EXPECT_NE(p.DebugString().find("--k=3"), std::string::npos);
}

}  // namespace
}  // namespace hypermine
