#include "util/string_util.h"

#include <gtest/gtest.h>

namespace hypermine {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hypermine", "hyper"));
  EXPECT_FALSE(StartsWith("hi", "hyper"));
  EXPECT_TRUE(EndsWith("builder.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "builder.cc"));
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0), "0.333");
  EXPECT_EQ(FormatDouble(0.58), "0.580");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(StringUtilTest, ParseDouble) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble(" 3.5 ", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);  // untouched on failure
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

}  // namespace
}  // namespace hypermine
