#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <vector>

namespace hypermine {
namespace {

TEST(ThreadPoolTest, HardwareThreadsHasFloorOfOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareThreads) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> promise;
  pool.Submit([&promise] { promise.set_value(42); });
  EXPECT_EQ(promise.get_future().get(), 42);
}

TEST(ThreadPoolTest, SubmitAllRunsEveryTask) {
  ThreadPool pool(3);
  constexpr size_t kTasks = 64;
  std::atomic<size_t> ran{0};
  std::promise<void> all_done;
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&ran, &all_done] {
      if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  pool.SubmitAll(std::move(tasks));
  all_done.get_future().wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, PendingTasksDrainOnDestruction) {
  std::atomic<size_t> ran{0};
  {
    ThreadPool pool(1);
    // The first task occupies the single worker; the rest sit queued until
    // the destructor, which must drain rather than drop them.
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (size_t i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 16u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body called for n = 0"; });

  std::atomic<size_t> sum{0};
  pool.ParallelFor(1, [&sum](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1u);

  // n smaller than the worker count.
  sum.store(0);
  pool.ParallelFor(2, [&sum](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  constexpr size_t kN = 4096;
  std::vector<uint64_t> values(kN, 0);
  pool.ParallelFor(kN, [&values](size_t i) { values[i] = i * i; });
  uint64_t expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += i * i;
  EXPECT_EQ(std::accumulate(values.begin(), values.end(), uint64_t{0}),
            expected);
}

TEST(ThreadPoolTest, ParallelForIsSerializable) {
  // Repeated ParallelFor calls on the same pool must not interfere.
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 100u) << "round " << round;
  }
}

}  // namespace
}  // namespace hypermine
