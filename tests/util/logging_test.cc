#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypermine {
namespace {

using internal_logging::GetMinLogSeverity;
using internal_logging::LogSeverity;
using internal_logging::SetMinLogSeverity;

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMinLogSeverity(LogSeverity::kInfo); }
};

TEST_F(LoggingTest, MinSeverityRoundTrips) {
  SetMinLogSeverity(LogSeverity::kWarning);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kWarning);
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotEmit) {
  SetMinLogSeverity(LogSeverity::kError);
  ::testing::internal::CaptureStderr();
  HM_LOG_INFO << "hidden info";
  HM_LOG_WARNING << "hidden warning";
  HM_LOG_ERROR << "visible error";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden info"), std::string::npos);
  EXPECT_EQ(err.find("hidden warning"), std::string::npos);
  EXPECT_NE(err.find("visible error"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryFileAndSeverityTag) {
  ::testing::internal::CaptureStderr();
  HM_LOG_WARNING << "tagged";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[W "), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryMonotonicTimestamp) {
  const double before = internal_logging::MonotonicLogSeconds();
  ::testing::internal::CaptureStderr();
  HM_LOG_WARNING << "stamped";
  std::string err = ::testing::internal::GetCapturedStderr();
  // Prefix shape: "[W <seconds>s file:line] ..." — the timestamp sits
  // between the severity tag and the file, with an 's' suffix.
  const size_t tag = err.find("[W ");
  ASSERT_NE(tag, std::string::npos);
  const size_t stamp_end = err.find("s ", tag + 3);
  ASSERT_NE(stamp_end, std::string::npos);
  const std::string stamp = err.substr(tag + 3, stamp_end - tag - 3);
  double seconds = -1.0;
  ASSERT_TRUE(ParseDouble(stamp, &seconds)) << "stamp: " << stamp;
  // The stamp is printed with millisecond precision; allow that rounding.
  EXPECT_GE(seconds, before - 0.001);
  EXPECT_LE(seconds, internal_logging::MonotonicLogSeconds() + 0.001);
}

TEST_F(LoggingTest, MonotonicLogSecondsNeverGoesBackwards) {
  const double a = internal_logging::MonotonicLogSeconds();
  const double b = internal_logging::MonotonicLogSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(ParseLogSeverityTest, AcceptsKnownNames) {
  LogSeverity severity = LogSeverity::kFatal;
  EXPECT_TRUE(internal_logging::ParseLogSeverity("info", &severity));
  EXPECT_EQ(severity, LogSeverity::kInfo);
  EXPECT_TRUE(internal_logging::ParseLogSeverity("WARNING", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(internal_logging::ParseLogSeverity("warn", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(internal_logging::ParseLogSeverity("Error", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);
  EXPECT_FALSE(internal_logging::ParseLogSeverity("fatal", &severity));
  EXPECT_FALSE(internal_logging::ParseLogSeverity("", &severity));
  EXPECT_FALSE(internal_logging::ParseLogSeverity("loud", &severity));
}

TEST_F(LoggingTest, ChecksPassOnTrueConditions) {
  // These must be no-ops (a failing CHECK aborts the process).
  HM_CHECK(1 + 1 == 2);
  HM_CHECK_EQ(4, 4);
  HM_CHECK_NE(4, 5);
  HM_CHECK_LT(1, 2);
  HM_CHECK_LE(2, 2);
  HM_CHECK_GT(3, 2);
  HM_CHECK_GE(3, 3);
  HM_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ HM_CHECK_EQ(1, 2); }, "Check failed");
  EXPECT_DEATH({ HM_CHECK_OK(Status::Internal("boom")); }, "boom");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  double first = timer.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(timer.ElapsedMillis(), first * 1e3);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), first + 1.0);
}

}  // namespace
}  // namespace hypermine
