#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hypermine {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_NEAR(SampleVariance(xs), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, MinMaxSum) {
  std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 3.0);
  EXPECT_DOUBLE_EQ(Sum(xs), 4.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 30.0), 42.0);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  std::vector<double> xs = {1.0, 1.0, 1.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(StatsTest, AverageRanksHandleTies) {
  std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
  std::vector<double> ranks = AverageRanks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, SpearmanDetectsMonotoneNonlinear) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, SummarizeFields) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, SummarizeEmptyIsZeroed) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({0.5, 1.0, 2.5, 9.9, 15.0, -3.0});
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 3u);  // 0.5, 1.0, -3.0 (clamped)
  EXPECT_EQ(h.count(1), 1u);  // 2.5
  EXPECT_EQ(h.count(4), 2u);  // 9.9, 15.0 (clamped)
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, ToStringRendersAllBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.AddAll({0.1, 0.6, 0.6});
  std::string text = h.ToString();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
}  // namespace hypermine
