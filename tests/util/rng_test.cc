#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hypermine {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LT(same, 2u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRangeAndHitsAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.NextBounded(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(31);
  std::vector<size_t> sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleIndicesCountLargerThanNReturnsPermutation) {
  Rng rng(37);
  std::vector<size_t> sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, NextWeightedRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  size_t counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, NextWeightedAllZeroReturnsLast) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.NextWeighted(weights), 2u);
}

}  // namespace
}  // namespace hypermine
