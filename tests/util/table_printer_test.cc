#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace hypermine {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"Time-series", "ACV"});
  table.AddRow({"XOM", "0.58"});
  table.AddRow({"GT", "0.51"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("Time-series"), std::string::npos);
  EXPECT_NE(text.find("XOM"), std::string::npos);
  EXPECT_NE(text.find("0.51"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, PadsToWidestCell) {
  TablePrinter table({"a"});
  table.AddRow({"wide-cell-content"});
  std::string text = table.ToString();
  // Every line has the same width.
  size_t first_line_len = text.find('\n');
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find('\n', pos);
    EXPECT_EQ(next - pos, first_line_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("only-one"), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsDropped) {
  TablePrinter table({"a"});
  table.AddRow({"kept", "dropped"});
  EXPECT_EQ(table.ToString().find("dropped"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorAddsRule) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string text = table.ToString();
  // Frame: top, under-header, separator, bottom = 4 horizontal rules.
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = text.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace hypermine
