// Market-basket mining, the domain that motivated association rules
// (Section 1.1): synthesize transactions with planted purchase patterns,
// mine frequent itemsets with Apriori and FP-Growth, generate rules, and
// cross-check against the mva-type measures of Chapter 3 (boolean data is
// the k=2 special case of Definition 3.2).
//
//   ./retail_basket [--customers N] [--seed S]
#include <cstdio>
#include <vector>

#include "api/engine.h"
#include "api/model.h"
#include "core/assoc_rule.h"
#include "core/discretize.h"
#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "mining/quantitative.h"
#include "mining/rules.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace hypermine;

namespace {

const char* kItems[] = {"milk",   "bread", "butter", "diapers",
                        "beer",   "eggs",  "coffee", "sugar"};
constexpr size_t kNumItems = 8;

/// Planted patterns: milk+bread+butter co-occur; diapers implies beer
/// (the classic folklore rule); coffee implies sugar.
core::Database MakeBasketDatabase(size_t customers, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<core::ValueId>> columns(
      kNumItems, std::vector<core::ValueId>(customers, 0));
  for (size_t c = 0; c < customers; ++c) {
    if (rng.NextBernoulli(0.45)) {  // breakfast shopper
      columns[0][c] = 1;
      if (rng.NextBernoulli(0.8)) columns[1][c] = 1;
      if (rng.NextBernoulli(0.7)) columns[2][c] = 1;
    }
    if (rng.NextBernoulli(0.25)) {  // young parent
      columns[3][c] = 1;
      if (rng.NextBernoulli(0.75)) columns[4][c] = 1;
      if (rng.NextBernoulli(0.5)) columns[5][c] = 1;
    }
    if (rng.NextBernoulli(0.3)) {  // caffeine run
      columns[6][c] = 1;
      if (rng.NextBernoulli(0.65)) columns[7][c] = 1;
    }
    for (size_t i = 0; i < kNumItems; ++i) {  // background noise
      if (rng.NextBernoulli(0.05)) columns[i][c] = 1;
    }
  }
  std::vector<std::string> names(kItems, kItems + kNumItems);
  auto db = core::DatabaseFromColumns(std::move(names), 2, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  const size_t customers =
      static_cast<size_t>(flags.GetInt("customers", 5000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 9));

  core::Database db = MakeBasketDatabase(customers, seed);
  auto txns = mining::DatabaseToTransactions(db);
  HM_CHECK_OK(txns.status());
  std::printf("basket database: %zu transactions over %zu items\n\n",
              txns->size(), kNumItems);

  // Frequent itemsets with both miners; they must agree exactly.
  mining::AprioriConfig apriori_config;
  apriori_config.min_support = 0.08;
  apriori_config.max_size = 3;
  Stopwatch apriori_timer;
  auto apriori = mining::Apriori(*txns, apriori_config);
  double apriori_ms = apriori_timer.ElapsedMillis();
  HM_CHECK_OK(apriori.status());

  mining::FpGrowthConfig fp_config;
  fp_config.min_support = 0.08;
  fp_config.max_size = 3;
  Stopwatch fp_timer;
  auto fpgrowth = mining::FpGrowth(*txns, fp_config);
  double fp_ms = fp_timer.ElapsedMillis();
  HM_CHECK_OK(fpgrowth.status());

  bool agree = apriori->size() == fpgrowth->size();
  for (size_t i = 0; agree && i < apriori->size(); ++i) {
    agree = (*apriori)[i].items == (*fpgrowth)[i].items &&
            (*apriori)[i].support_count == (*fpgrowth)[i].support_count;
  }
  std::printf("frequent itemsets (min support 8%%): %zu found; Apriori "
              "%.1fms vs FP-Growth %.1fms; results identical: %s\n\n",
              apriori->size(), apriori_ms, fp_ms, agree ? "yes" : "NO");

  // Association rules; show the strongest "purchase implies purchase" ones.
  mining::RuleConfig rule_config;
  rule_config.min_confidence = 0.55;
  rule_config.max_consequent_size = 1;
  auto rules = mining::GenerateRules(*apriori, txns->size(), rule_config);
  HM_CHECK_OK(rules.status());
  std::printf("top purchase rules (conf >= 0.55):\n");
  size_t shown = 0;
  for (const mining::MinedRule& rule : *rules) {
    // Only rules about items being present (value 1) read naturally.
    bool all_present = true;
    for (mining::ItemId item : rule.antecedent) {
      all_present &= mining::DecodeItem(db, item).value == 1;
    }
    for (mining::ItemId item : rule.consequent) {
      all_present &= mining::DecodeItem(db, item).value == 1;
    }
    if (!all_present) continue;
    std::printf("  %s\n", mining::RuleToString(db, rule).c_str());
    if (++shown >= 8) break;
  }

  // Cross-check the diapers => beer rule against Definition 3.2 directly.
  auto diapers = db.AttributeIndex("diapers");
  auto beer = db.AttributeIndex("beer");
  HM_CHECK_OK(diapers.status());
  HM_CHECK_OK(beer.status());
  core::MvaRule folklore{{{*diapers, 1}}, {{*beer, 1}}};
  auto supp = core::Support(db, folklore.antecedent);
  auto conf = core::Confidence(db, folklore);
  HM_CHECK_OK(supp.status());
  HM_CHECK_OK(conf.status());
  std::printf("\nmva-type cross-check of {diapers} => {beer}: Supp(X)=%.3f "
              "Conf=%.3f (boolean rules are the k=2 case of Definition "
              "3.2)\n",
              *supp, *conf);

  // The same basket data as a served association model: boolean columns
  // are the k=2 case of Definition 3.2, so api::Model::Build mines the
  // γ-significant hypergraph directly and api::Engine answers "customers
  // with these items also buy..." ranked by ACV.
  api::ModelSpec spec;
  spec.config = core::ConfigC1();
  spec.config.k = 2;
  spec.config.gamma_edge = 1.05;
  spec.config.gamma_hyper = 1.02;
  spec.discretization = "item purchased -> 1, absent -> 0 (k=2)";
  spec.provenance.source =
      "synthetic baskets, " + std::to_string(customers) + " customers";
  auto model = api::Model::Build(db, spec);
  HM_CHECK_OK(model.status());
  api::Engine engine(*model);
  std::printf("\nassociation model over the baskets: %zu hyperedges\n",
              (*model)->num_edges());
  for (const char* item : {"diapers", "coffee", "milk"}) {
    api::QueryRequest request;
    request.names = {item};
    request.k = 3;
    auto response = engine.Query(request);
    HM_CHECK_OK(response.status());
    std::printf("customers with %s also see:", item);
    for (const serve::RankedConsequent& r : response->ranked) {
      std::printf(" %s(%.2f)",
                  (*model)->graph().vertex_name(r.head).c_str(), r.acv);
    }
    std::printf("%s\n", response->ranked.empty() ? " (none)" : "");
  }
  return 0;
}
