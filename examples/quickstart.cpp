// Quickstart: the patient database of the paper's Chapter 3 (Tables
// 3.1/3.2) from raw values to a served association model, through the
// hypermine::api façade:
//
//   raw values -> discretize -> api::ModelSpec (γ-significance parameters
//   + provenance) -> api::Model::Build (the association hypergraph of
//   Definition 3.6, ACV-weighted) -> SaveSnapshot/FromSnapshot ->
//   api::Engine (top-k consequents ranked by ACV, hot-swappable).
//
//   ./quickstart
#include <cstdio>
#include <cstdlib>

#include "api/engine.h"
#include "api/model.h"
#include "core/assoc_rule.h"
#include "core/assoc_table.h"
#include "core/discretize.h"
#include "util/logging.h"

using namespace hypermine;

int main() {
  std::printf("hypermine quickstart: the Chapter 3 patient database\n\n");

  // Table 3.1: age, cholesterol, blood pressure, heart rate of 8 patients.
  const std::vector<std::vector<double>> raw = {
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };

  // Discretize with floor(value / 10), the transformation of Table 3.2.
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized = core::FloorDivDiscretize(series, 10.0);
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db_or = core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns);
  HM_CHECK_OK(db_or.status());
  const core::Database& db = *db_or;
  std::printf("database: %zu observations x %zu attributes over V of size "
              "%zu\n\n",
              db.num_observations(), db.num_attributes(), db.num_values());

  // The worked mva-type rule of Example 3.3:
  //   {(A, 3), (C, 12)} ==> {(B, 13)}
  // "if age is 30-39 and cholesterol is 120-129, blood pressure is
  //  likely 130-139".  (Values are 0-based in the API.)
  core::MvaRule rule{{{0, 3}, {1, 12}}, {{2, 13}}};
  auto supp = core::Support(db, rule.antecedent);
  auto conf = core::Confidence(db, rule);
  HM_CHECK_OK(supp.status());
  HM_CHECK_OK(conf.status());
  std::printf("rule %s\n  Supp(X) = %.3f (paper: 0.375)\n  Conf = %.3f "
              "(paper: 0.667)\n\n",
              rule.ToString(db).c_str(), *supp, *conf);

  // The association table of the combination ({A, C}, {B}) — the structure
  // of Table 3.7 — and its association confidence value.
  auto table = core::AssociationTable::Build(db, {0, 1}, 2);
  HM_CHECK_OK(table.status());
  std::printf("ACV({A, C}, {B}) = %.3f\n\n", table->acv());

  // The model-construction half of the API: a ModelSpec names the
  // γ-significance parameters (Definition 3.7) and records how the data
  // was discretized; Model::Build mines the association hypergraph and
  // stamps provenance (git sha, build time) into the spec.
  api::ModelSpec spec;
  spec.config = core::ConfigC1();  // γ_{1→1} = 1.15, γ_{2→1} = 1.05
  spec.config.k = db.num_values();
  spec.discretization = "floor(value / 10) per Table 3.2";
  spec.provenance.source = "chapter-3 patient database (8 observations)";
  auto built = api::Model::Build(db, spec);
  HM_CHECK_OK(built.status());
  std::printf("association hypergraph: %s\n",
              (*built)->stats().ToString().c_str());
  std::printf("gamma-significant hyperedges:\n");
  for (core::EdgeId id = 0; id < (*built)->num_edges(); ++id) {
    std::printf("  %s\n", (*built)->graph().EdgeToString(id).c_str());
  }

  // Persist and reload: snapshots are the lossless servable artifact and
  // carry the ModelSpec, so the reloaded model is fully attributable.
  const std::string snap = std::string(std::getenv("TMPDIR")
                                           ? std::getenv("TMPDIR")
                                           : "/tmp") +
                           "/quickstart.snap";
  HM_CHECK_OK((*built)->SaveSnapshot(snap));
  auto model = api::Model::FromSnapshot(snap);
  HM_CHECK_OK(model.status());
  std::printf("\nreloaded %s\n  built by git_sha=%s from \"%s\"\n",
              snap.c_str(), (*model)->spec().provenance.git_sha.c_str(),
              (*model)->spec().provenance.source.c_str());

  // The model-use half: an Engine answers "given these attributes, what
  // follows?" — consequents ranked by ACV, queried by attribute name.
  // (Engine::Swap would hot-reload a retrained model with zero downtime;
  // see tools/hypermine_serve's !reload.)
  api::Engine engine(*model);
  for (const char* name : {"A", "C", "B", "H"}) {
    api::QueryRequest request;
    request.names = {name};
    request.k = 3;
    auto response = engine.Query(request);
    HM_CHECK_OK(response.status());
    std::printf("top consequents of {%s} (model v%llu):\n", name,
                static_cast<unsigned long long>(response->model_version));
    for (const serve::RankedConsequent& r : response->ranked) {
      std::printf("  %s  acv=%.3f\n",
                  (*model)->graph().vertex_name(r.head).c_str(), r.acv);
    }
    if (response->ranked.empty()) std::printf("  (no consequents)\n");
  }
  std::remove(snap.c_str());
  return 0;
}
