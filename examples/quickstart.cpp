// Quickstart: the patient database of the paper's Chapter 3 (Tables
// 3.1/3.2), from raw values to mva-type association rules, association
// tables, ACVs, and a small association hypergraph.
//
//   ./quickstart
#include <cstdio>

#include "core/assoc_rule.h"
#include "core/assoc_table.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "util/logging.h"

using namespace hypermine;

int main() {
  std::printf("hypermine quickstart: the Chapter 3 patient database\n\n");

  // Table 3.1: age, cholesterol, blood pressure, heart rate of 8 patients.
  const std::vector<std::vector<double>> raw = {
      {25, 105, 135, 75}, {62, 160, 165, 85}, {32, 125, 139, 71},
      {12, 95, 105, 67},  {38, 129, 135, 75}, {39, 121, 117, 71},
      {41, 134, 145, 73}, {85, 125, 155, 78},
  };

  // Discretize with floor(value / 10), the transformation of Table 3.2.
  std::vector<std::vector<core::ValueId>> columns(4);
  for (size_t attr = 0; attr < 4; ++attr) {
    std::vector<double> series;
    for (const auto& row : raw) series.push_back(row[attr]);
    auto discretized = core::FloorDivDiscretize(series, 10.0);
    HM_CHECK_OK(discretized.status());
    columns[attr] = std::move(discretized).value();
  }
  auto db_or = core::DatabaseFromColumns({"A", "C", "B", "H"}, 17, columns);
  HM_CHECK_OK(db_or.status());
  const core::Database& db = *db_or;
  std::printf("database: %zu observations x %zu attributes over V of size "
              "%zu\n\n",
              db.num_observations(), db.num_attributes(), db.num_values());

  // The worked mva-type rule of Example 3.3:
  //   {(A, 3), (C, 12)} ==> {(B, 13)}
  // "if age is 30-39 and cholesterol is 120-129, blood pressure is
  //  likely 130-139".  (Values are 0-based in the API.)
  core::MvaRule rule{{{0, 3}, {1, 12}}, {{2, 13}}};
  auto supp = core::Support(db, rule.antecedent);
  auto conf = core::Confidence(db, rule);
  HM_CHECK_OK(supp.status());
  HM_CHECK_OK(conf.status());
  std::printf("rule %s\n  Supp(X) = %.3f (paper: 0.375)\n  Conf = %.3f "
              "(paper: 0.667)\n\n",
              rule.ToString(db).c_str(), *supp, *conf);

  // The association table of the combination ({A, C}, {B}) — the structure
  // of Table 3.7 — and its association confidence value.
  auto table = core::AssociationTable::Build(db, {0, 1}, 2);
  HM_CHECK_OK(table.status());
  std::printf("association table for ({A, C}, {B}), showing non-empty "
              "rows:\n");
  std::printf("  values  | support | v*(B) | confidence\n");
  for (size_t row = 0; row < table->num_rows(); ++row) {
    const core::AssocTableRow& r = table->row(row);
    if (r.tail_count == 0) continue;
    std::printf("  <%2zu,%2zu> |  %.3f  |  %2d   |  %.3f\n",
                row / db.num_values(), row % db.num_values(), r.support,
                static_cast<int>(r.best_head_value), r.confidence);
  }
  std::printf("  ACV({A, C}, {B}) = %.3f\n\n", table->acv());

  // Build the full association hypergraph with configuration C1's gammas.
  core::HypergraphConfig config = core::ConfigC1();
  config.k = db.num_values();
  core::BuildStats stats;
  auto graph = core::BuildAssociationHypergraph(db, config, &stats);
  HM_CHECK_OK(graph.status());
  std::printf("association hypergraph: %s\n", stats.ToString().c_str());
  std::printf("gamma-significant hyperedges:\n");
  for (core::EdgeId id = 0; id < graph->num_edges(); ++id) {
    std::printf("  %s\n", graph->EdgeToString(id).c_str());
  }
  return 0;
}
