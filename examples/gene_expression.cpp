// Gene-expression scenario from the paper's Chapter 6 (future work): model
// gene interactions with an association hypergraph, (1) cluster similar
// genes and predict expression values of held-out genes, and (2) predict a
// disease attribute using only disease-headed hyperedges.
//
// The data is synthetic: genes belong to co-regulated pathways, and the
// disease state is driven by two marker genes.
//
//   ./gene_expression [--genes N] [--patients M] [--seed S]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/model.h"
#include "core/classifier.h"
#include "core/builder.h"
#include "core/discretize.h"
#include "core/dominator.h"
#include "core/similarity.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace hypermine;

namespace {

constexpr size_t kPathwaySize = 4;

/// Genes come in co-regulated pathways of 4; expression is the pathway
/// factor plus gene-specific noise, discretized to under/normal/over (k=3).
/// The last attribute is the disease, driven by genes 0 and 4.
core::Database MakeGeneDatabase(size_t num_genes, size_t num_patients,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> expression(
      num_genes, std::vector<double>(num_patients));
  size_t num_pathways = (num_genes + kPathwaySize - 1) / kPathwaySize;
  for (size_t p = 0; p < num_patients; ++p) {
    std::vector<double> pathway(num_pathways);
    for (double& f : pathway) f = rng.NextGaussian();
    for (size_t g = 0; g < num_genes; ++g) {
      expression[g][p] =
          pathway[g / kPathwaySize] + 0.6 * rng.NextGaussian();
    }
  }
  std::vector<std::vector<core::ValueId>> columns(num_genes + 1);
  std::vector<std::string> names;
  for (size_t g = 0; g < num_genes; ++g) {
    auto discretized = core::EquiDepthDiscretize(expression[g], 3);
    HM_CHECK_OK(discretized.status());
    columns[g] = std::move(discretized).value();
    names.push_back("gene" + std::to_string(g + 1));
  }
  // Disease: likely present when both marker genes are over-expressed.
  columns[num_genes].resize(num_patients);
  for (size_t p = 0; p < num_patients; ++p) {
    bool markers = columns[0][p] == 2 && columns[4 % num_genes][p] == 2;
    bool disease = markers ? rng.NextBernoulli(0.9) : rng.NextBernoulli(0.1);
    columns[num_genes][p] = disease ? 1 : 0;
  }
  names.push_back("disease");
  auto db = core::DatabaseFromColumns(std::move(names), 3, columns);
  HM_CHECK_OK(db.status());
  return std::move(db).value();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  const size_t num_genes = static_cast<size_t>(flags.GetInt("genes", 24));
  const size_t num_patients =
      static_cast<size_t>(flags.GetInt("patients", 600));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  core::Database db = MakeGeneDatabase(num_genes, num_patients, seed);
  core::AttrId disease = static_cast<core::AttrId>(num_genes);
  std::printf("gene database: %zu patients x %zu genes + disease status\n\n",
              db.num_observations(), num_genes);

  // Both models below are built through api::Model on one shared pool
  // (no per-build thread spin-up), with provenance naming the synthetic
  // cohort.
  ThreadPool pool;
  api::ModelSpec spec;
  spec.discretization = "equi-depth under/normal/over expression (k=3)";
  spec.provenance.source = "synthetic gene cohort, seed " +
                           std::to_string(seed);

  // Problem (1) of Chapter 6: gene-only hypergraph for clustering and
  // expression prediction, with the C1 gammas (genes are equi-depth
  // discretized, so ACV(∅, H) ~ 1/k just like the financial data).
  spec.config = core::ConfigC1();
  auto model = api::Model::Build(db, spec, &pool);
  HM_CHECK_OK(model.status());
  const core::DirectedHypergraph& graph = (*model)->graph();

  std::vector<core::VertexId> gene_vertices(num_genes);
  for (size_t g = 0; g < num_genes; ++g) {
    gene_vertices[g] = static_cast<core::VertexId>(g);
  }
  auto sg = core::SimilarityGraph::Build(graph, gene_vertices);
  HM_CHECK_OK(sg.status());
  size_t num_pathways = (num_genes + kPathwaySize - 1) / kPathwaySize;
  auto clustering = core::ClusterSimilarAttributes(*sg, num_pathways);
  HM_CHECK_OK(clustering.status());

  // Score how well clusters recover the planted pathways.
  size_t same_pathway_pairs = 0;
  size_t recovered = 0;
  for (size_t a = 0; a < num_genes; ++a) {
    for (size_t b = a + 1; b < num_genes; ++b) {
      if (a / kPathwaySize != b / kPathwaySize) continue;
      ++same_pathway_pairs;
      recovered +=
          clustering->assignment[a] == clustering->assignment[b] ? 1 : 0;
    }
  }
  std::printf("(1) clustering genes into %zu groups (t-clustering on "
              "in/out-similarity):\n    planted-pathway pairs kept "
              "together: %zu/%zu\n\n",
              num_pathways, recovered, same_pathway_pairs);

  // Predict gene expression from a dominator of marker genes.
  core::DominatorConfig dom_config;
  auto dominator =
      core::ComputeDominatorSetCover(graph, gene_vertices, dom_config);
  HM_CHECK_OK(dominator.status());
  std::vector<core::VertexId> dominator_plus = dominator->dominator;
  dominator_plus.push_back(disease);  // exclude disease from targets
  auto eval = core::EvaluateAssociationClassifier(graph, db, db,
                                                  dominator_plus);
  HM_CHECK_OK(eval.status());
  std::printf("    expression prediction from %zu indicator genes: mean "
              "confidence %.3f (chance 0.333)\n\n",
              dominator->dominator.size(), eval->mean_confidence);

  // Problem (2) of Chapter 6: disease prediction. Only hyperedges whose
  // head set is the disease are relevant; Algorithm 9 uses exactly the
  // in-edges of the target, so the restriction is automatic.
  //
  // Gamma note: the disease attribute is heavily skewed (mostly healthy
  // patients), so ACV(∅, disease) is already ~0.81 and no *single* gene
  // clears even a gentle significance margin — the association only shows
  // up when both marker genes are read jointly. This is exactly the
  // many-to-one relationship directed hyperedges exist for, and it needs
  // the unrestricted pair enumeration (no constituent-edge prefilter).
  api::ModelSpec disease_spec = spec;
  disease_spec.config.gamma_edge = 1.02;
  disease_spec.config.gamma_hyper = 1.01;
  disease_spec.config.restrict_pairs_to_edges = false;
  disease_spec.provenance.note = "disease model: unrestricted pairs";
  auto disease_model = api::Model::Build(db, disease_spec, &pool);
  HM_CHECK_OK(disease_model.status());
  const core::DirectedHypergraph& disease_graph = (*disease_model)->graph();
  size_t disease_headed = disease_graph.InEdgeIds(disease).size();
  std::printf("    disease-headed hyperedges found: %zu (all of them "
              "2-to-1: single genes are not gamma-significant)\n",
              disease_headed);
  auto classifier =
      core::AssociationClassifier::Create(&disease_graph, &db);
  HM_CHECK_OK(classifier.status());
  size_t correct = 0;
  size_t with_rules = 0;
  std::vector<int16_t> evidence(db.num_attributes());
  for (size_t p = 0; p < db.num_observations(); ++p) {
    for (core::AttrId a = 0; a < db.num_attributes(); ++a) {
      evidence[a] = a == disease ? core::AssociationClassifier::kUnknown
                                 : db.value(p, a);
    }
    auto prediction = classifier->Predict(evidence, disease);
    HM_CHECK_OK(prediction.status());
    correct += prediction->value == db.value(p, disease) ? 1 : 0;
    with_rules += prediction->rules_used > 0 ? 1 : 0;
  }
  std::printf("(2) disease prediction from all gene values: accuracy %.3f "
              "(%zu/%zu predictions used disease-headed hyperedges)\n",
              static_cast<double>(correct) /
                  static_cast<double>(db.num_observations()),
              with_rules, db.num_observations());
  std::printf("    disease base rate: %.3f\n",
              1.0 - static_cast<double>(std::count(
                        db.column(disease).begin(),
                        db.column(disease).end(), core::ValueId{0})) /
                        static_cast<double>(db.num_observations()));
  return 0;
}
