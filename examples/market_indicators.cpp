// Financial time-series end to end, the paper's Chapter 5 pipeline:
// simulate an S&P 500-like market, discretize it (equi-depth k-threshold
// vectors), build the association hypergraph, find a leading indicator
// (dominator), and predict the remaining series with the association-based
// classifier.
//
//   ./market_indicators [--series N] [--years Y] [--seed S]
#include <algorithm>
#include <cstdio>

#include "api/engine.h"
#include "api/model.h"
#include "core/classifier.h"
#include "core/dominator.h"
#include "core/pipeline.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace hypermine;

int main(int argc, char** argv) {
  FlagParser flags;
  HM_CHECK_OK(flags.Parse(argc, argv));
  market::MarketConfig market_config;
  market_config.num_series = static_cast<size_t>(flags.GetInt("series", 80));
  market_config.num_years = static_cast<size_t>(flags.GetInt("years", 6));
  market_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("1. simulating %zu series over %zu years...\n",
              market_config.num_series, market_config.num_years);
  auto panel = market::SimulateMarket(market_config);
  HM_CHECK_OK(panel.status());

  // Train on all years but the last, test on the held-out last year.
  int first = market_config.first_year;
  int last = first + static_cast<int>(market_config.num_years) - 1;
  auto split = core::DiscretizeTrainTest(*panel, 3, first, last - 1, last,
                                         last);
  HM_CHECK_OK(split.status());
  std::printf("   train: %zu days, test: %zu days, k=3 buckets "
              "(down/flat/up terciles)\n",
              split->train.num_observations(),
              split->test.num_observations());

  std::printf("2. building the association model (configuration C1) "
              "through api::Model...\n");
  api::ModelSpec spec;
  spec.config = core::ConfigC1();
  spec.discretization = "equi-depth terciles of daily deltas (k=3)";
  spec.provenance.source = StrFormat(
      "market sim: %zu series, %zu years, seed %llu",
      market_config.num_series, market_config.num_years,
      static_cast<unsigned long long>(market_config.seed));
  auto model = api::Model::Build(split->train, spec);
  HM_CHECK_OK(model.status());
  const core::DirectedHypergraph* graph = &(*model)->graph();
  std::printf("   %s\n", (*model)->stats().ToString().c_str());

  std::printf("3. computing a leading indicator (Algorithm 6, top-40%% "
              "ACV threshold)...\n");
  auto threshold = graph->WeightQuantileThreshold(0.40);
  HM_CHECK_OK(threshold.status());
  core::DominatorConfig dom_config;
  dom_config.acv_threshold = *threshold;
  auto dominator = core::ComputeDominatorSetCover(*graph, {}, dom_config);
  HM_CHECK_OK(dominator.status());
  std::printf("   %s\n   members:", dominator->ToString().c_str());
  for (core::VertexId v : dominator->dominator) {
    std::printf(" %s", graph->vertex_name(v).c_str());
  }
  std::printf("\n");

  std::printf("4. predicting every non-indicator series on the held-out "
              "year (Algorithm 9)...\n");
  auto eval = core::EvaluateAssociationClassifier(
      *graph, split->train, split->test, dominator->dominator);
  HM_CHECK_OK(eval.status());
  std::printf("   mean classification confidence: %.3f over %zu targets "
              "(chance would be 0.333)\n",
              eval->mean_confidence, eval->targets.size());
  std::printf("   rule coverage: %.1f%% of predictions used >= 1 "
              "hyperedge\n",
              eval->rule_coverage * 100.0);

  // Show the five best-predicted series.
  std::vector<std::pair<double, core::AttrId>> ranked;
  for (size_t i = 0; i < eval->targets.size(); ++i) {
    ranked.push_back({eval->per_target[i], eval->targets[i]});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("   best-predicted series:");
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf(" %s(%.2f)",
                split->train.attribute_name(ranked[i].second).c_str(),
                ranked[i].first);
  }
  std::printf("\n");

  std::printf("5. serving the model through api::Engine (what the "
              "indicator implies, ranked by ACV)...\n");
  api::Engine engine(*model);
  for (size_t i = 0; i < 3 && i < dominator->dominator.size(); ++i) {
    api::QueryRequest request;
    request.items = {dominator->dominator[i]};
    request.k = 3;
    auto response = engine.Query(request);
    HM_CHECK_OK(response.status());
    std::printf("   %s =>",
                graph->vertex_name(dominator->dominator[i]).c_str());
    for (const serve::RankedConsequent& r : response->ranked) {
      std::printf(" %s(%.2f)", graph->vertex_name(r.head).c_str(), r.acv);
    }
    std::printf("%s\n", response->ranked.empty() ? " (none)" : "");
  }
  return 0;
}
