#ifndef HYPERMINE_ML_METRICS_H_
#define HYPERMINE_ML_METRICS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine::ml {

/// Fraction of positions where predictions match labels; fails on length
/// mismatch or empty input.
StatusOr<double> Accuracy(const std::vector<int>& predictions,
                          const std::vector<int>& labels);

/// Row-major confusion matrix C[label][prediction], both in [0, classes).
StatusOr<std::vector<std::vector<size_t>>> ConfusionMatrix(
    const std::vector<int>& predictions, const std::vector<int>& labels,
    size_t num_classes);

/// Macro-averaged F1 score (per-class F1 averaged unweighted; classes with
/// no support contribute 0).
StatusOr<double> MacroF1(const std::vector<int>& predictions,
                         const std::vector<int>& labels, size_t num_classes);

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_METRICS_H_
