#include "ml/perceptron.h"

#include "util/logging.h"

namespace hypermine::ml {

StatusOr<BinaryPerceptron> BinaryPerceptron::Train(
    const Matrix& features, const std::vector<int>& labels,
    const PerceptronConfig& config) {
  if (features.rows() == 0 || features.rows() != labels.size()) {
    return Status::InvalidArgument("perceptron: bad training shape");
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("perceptron: labels must be 0/1");
    }
  }
  BinaryPerceptron model;
  model.weights_.assign(features.cols(), 0.0);
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    size_t mistakes = 0;
    for (size_t r = 0; r < features.rows(); ++r) {
      const double* row = features.RowPtr(r);
      bool predicted_first = model.Score(row) > 0.0;
      bool is_first = labels[r] == 1;
      if (predicted_first == is_first) continue;
      ++mistakes;
      // Add the row for first-class mistakes, subtract otherwise
      // (Lines 7-12 of Algorithm 3).
      double sign = is_first ? 1.0 : -1.0;
      for (size_t c = 0; c < features.cols(); ++c) {
        model.weights_[c] += sign * row[c];
      }
    }
    if (mistakes == 0) {
      model.converged_ = true;
      break;
    }
  }
  return model;
}

double BinaryPerceptron::Score(const double* row) const {
  double acc = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) acc += weights_[c] * row[c];
  return acc;
}

bool BinaryPerceptron::PredictRow(const double* row) const {
  return Score(row) > 0.0;
}

StatusOr<MulticlassPerceptron> MulticlassPerceptron::Train(
    const Dataset& data, const PerceptronConfig& config) {
  if (data.num_classes < 2) {
    return Status::InvalidArgument("perceptron: need >= 2 classes");
  }
  MulticlassPerceptron model;
  model.num_features_ = data.num_features();
  std::vector<int> binary(data.labels.size());
  for (size_t c = 0; c < data.num_classes; ++c) {
    for (size_t i = 0; i < data.labels.size(); ++i) {
      binary[i] = data.labels[i] == static_cast<int>(c) ? 1 : 0;
    }
    HM_ASSIGN_OR_RETURN(BinaryPerceptron sub,
                        BinaryPerceptron::Train(data.features, binary,
                                                config));
    model.models_.push_back(std::move(sub));
  }
  return model;
}

int MulticlassPerceptron::PredictRow(const double* row) const {
  int best = 0;
  double best_score = models_[0].Score(row);
  for (size_t c = 1; c < models_.size(); ++c) {
    double score = models_[c].Score(row);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(c);
    }
  }
  return best;
}

StatusOr<std::vector<int>> MulticlassPerceptron::Predict(
    const Matrix& features) const {
  if (features.cols() != num_features_) {
    return Status::InvalidArgument("perceptron: feature width mismatch");
  }
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = PredictRow(features.RowPtr(r));
  }
  return out;
}

}  // namespace hypermine::ml
