#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace hypermine::ml {

namespace {

void Softmax(std::vector<double>* scores) {
  double peak = *std::max_element(scores->begin(), scores->end());
  double total = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - peak);
    total += s;
  }
  for (double& s : *scores) s /= total;
}

}  // namespace

StatusOr<LogisticRegression> LogisticRegression::Train(
    const Dataset& data, const LogisticRegressionConfig& config) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("logreg: empty training set");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("logreg: need >= 2 classes");
  }
  const size_t m = data.num_rows();
  const size_t d = data.num_features();
  const size_t k = data.num_classes;

  LogisticRegression model;
  model.weights_ = Matrix(k, d, 0.0);
  Matrix gradient(k, d, 0.0);
  std::vector<double> proba(k);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // L2 term contributes lambda * w to the gradient.
    for (size_t c = 0; c < k; ++c) {
      for (size_t f = 0; f < d; ++f) {
        gradient.At(c, f) = config.l2 * model.weights_.At(c, f);
      }
    }
    for (size_t r = 0; r < m; ++r) {
      const double* row = data.features.RowPtr(r);
      for (size_t c = 0; c < k; ++c) {
        double acc = 0.0;
        const double* w = model.weights_.RowPtr(c);
        for (size_t f = 0; f < d; ++f) acc += w[f] * row[f];
        proba[c] = acc;
      }
      Softmax(&proba);
      for (size_t c = 0; c < k; ++c) {
        double err =
            proba[c] - (data.labels[r] == static_cast<int>(c) ? 1.0 : 0.0);
        if (err == 0.0) continue;
        double* g = gradient.RowPtr(c);
        for (size_t f = 0; f < d; ++f) g[f] += err * row[f];
      }
    }
    double step = config.learning_rate / static_cast<double>(m);
    for (size_t c = 0; c < k; ++c) {
      double* w = model.weights_.RowPtr(c);
      const double* g = gradient.RowPtr(c);
      for (size_t f = 0; f < d; ++f) w[f] -= step * g[f];
    }
  }
  return model;
}

std::vector<double> LogisticRegression::PredictProba(
    const double* row) const {
  std::vector<double> proba(weights_.rows());
  for (size_t c = 0; c < weights_.rows(); ++c) {
    double acc = 0.0;
    const double* w = weights_.RowPtr(c);
    for (size_t f = 0; f < weights_.cols(); ++f) acc += w[f] * row[f];
    proba[c] = acc;
  }
  Softmax(&proba);
  return proba;
}

int LogisticRegression::PredictRow(const double* row) const {
  std::vector<double> proba = PredictProba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

StatusOr<std::vector<int>> LogisticRegression::Predict(
    const Matrix& features) const {
  if (features.cols() != weights_.cols()) {
    return Status::InvalidArgument("logreg: feature width mismatch");
  }
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = PredictRow(features.RowPtr(r));
  }
  return out;
}

}  // namespace hypermine::ml
