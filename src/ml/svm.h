#ifndef HYPERMINE_ML_SVM_H_
#define HYPERMINE_ML_SVM_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

struct SvmConfig {
  /// Regularization strength lambda of the Pegasos objective.
  double lambda = 1e-3;
  /// Number of stochastic epochs over the data.
  size_t epochs = 20;
  uint64_t seed = 7;
};

/// Linear support vector machine trained with Pegasos (stochastic
/// sub-gradient descent on the hinge loss); the "SVM" baseline of
/// Tables 5.3/5.4. Multiclass via one-vs-rest on raw margins.
class LinearSvm {
 public:
  static StatusOr<LinearSvm> Train(const Dataset& data,
                                   const SvmConfig& config = {});

  int PredictRow(const double* row) const;
  StatusOr<std::vector<int>> Predict(const Matrix& features) const;

  /// Raw margin of class c on a row.
  double Margin(size_t c, const double* row) const;

  size_t num_classes() const { return weights_.rows(); }

 private:
  Matrix weights_;  // (class, feature)
};

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_SVM_H_
