#ifndef HYPERMINE_ML_LINEAR_REGRESSION_H_
#define HYPERMINE_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

struct LinearRegressionConfig {
  /// Tiny ridge keeps one-hot designs (which are rank deficient) solvable.
  double ridge = 1e-8;
};

/// Ordinary least squares via the normal equations (the linear-regression
/// classifier reviewed in Section 2.3.1): fits w minimizing
/// sum_i (y_i - w . x_i)^2.
class LinearRegression {
 public:
  static StatusOr<LinearRegression> Fit(
      const Matrix& features, const std::vector<double>& targets,
      const LinearRegressionConfig& config = {});

  double PredictRow(const double* row) const;
  StatusOr<std::vector<double>> Predict(const Matrix& features) const;

  const std::vector<double>& weights() const { return weights_; }

  /// Mean squared error over a data set.
  StatusOr<double> MeanSquaredError(const Matrix& features,
                                    const std::vector<double>& targets) const;

 private:
  std::vector<double> weights_;
};

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_LINEAR_REGRESSION_H_
