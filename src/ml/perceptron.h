#ifndef HYPERMINE_ML_PERCEPTRON_H_
#define HYPERMINE_ML_PERCEPTRON_H_

#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace hypermine::ml {

struct PerceptronConfig {
  /// Upper bound on full passes (the forced-termination safeguard of
  /// Section 2.3.1 for non-separable data).
  size_t max_epochs = 100;
};

/// The perceptron learning rule of Algorithm 3 (Rosenblatt'58): a binary
/// linear classifier whose weights are incremented by misclassified
/// positive rows and decremented by misclassified negative ones. Features
/// should include a bias column (see MakeClassificationDataset).
class BinaryPerceptron {
 public:
  /// Trains on rows whose labels are 0 (second class) or 1 (first class).
  /// Returns the trained classifier; converged() reports whether an epoch
  /// finished with zero mistakes.
  static StatusOr<BinaryPerceptron> Train(const Matrix& features,
                                          const std::vector<int>& labels,
                                          const PerceptronConfig& config = {});

  /// Classifies as the first class iff w . x > 0.
  bool PredictRow(const double* row) const;
  double Score(const double* row) const;

  bool converged() const { return converged_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  bool converged_ = false;
};

/// One-vs-rest multiclass wrapper: one binary perceptron per class, the
/// highest raw score wins (the multiclass reduction used to compare against
/// Algorithm 9 on k-valued targets).
class MulticlassPerceptron {
 public:
  static StatusOr<MulticlassPerceptron> Train(
      const Dataset& data, const PerceptronConfig& config = {});

  int PredictRow(const double* row) const;
  StatusOr<std::vector<int>> Predict(const Matrix& features) const;

  size_t num_classes() const { return models_.size(); }

 private:
  std::vector<BinaryPerceptron> models_;
  size_t num_features_ = 0;
};

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_PERCEPTRON_H_
