#ifndef HYPERMINE_ML_LOGISTIC_REGRESSION_H_
#define HYPERMINE_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/dataset.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

struct LogisticRegressionConfig {
  size_t epochs = 60;
  double learning_rate = 0.2;
  double l2 = 1e-4;
};

/// Multinomial logistic regression trained by full-batch gradient descent
/// on the softmax cross-entropy (the "Logistic Regression" baseline of
/// Tables 5.3/5.4).
class LogisticRegression {
 public:
  static StatusOr<LogisticRegression> Train(
      const Dataset& data, const LogisticRegressionConfig& config = {});

  int PredictRow(const double* row) const;
  StatusOr<std::vector<int>> Predict(const Matrix& features) const;

  /// Class probabilities for one row (softmax over linear scores).
  std::vector<double> PredictProba(const double* row) const;

  size_t num_classes() const { return weights_.rows(); }

 private:
  /// weights_(c, f): per-class linear weights.
  Matrix weights_;
};

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_LOGISTIC_REGRESSION_H_
