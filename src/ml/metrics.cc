#include "ml/metrics.h"

namespace hypermine::ml {

namespace {

Status ValidateLabels(const std::vector<int>& predictions,
                      const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    return Status::InvalidArgument("metrics: size mismatch");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("metrics: empty input");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> Accuracy(const std::vector<int>& predictions,
                          const std::vector<int>& labels) {
  HM_RETURN_IF_ERROR(ValidateLabels(predictions, labels));
  size_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    hits += predictions[i] == labels[i] ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

StatusOr<std::vector<std::vector<size_t>>> ConfusionMatrix(
    const std::vector<int>& predictions, const std::vector<int>& labels,
    size_t num_classes) {
  HM_RETURN_IF_ERROR(ValidateLabels(predictions, labels));
  std::vector<std::vector<size_t>> matrix(
      num_classes, std::vector<size_t>(num_classes, 0));
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || static_cast<size_t>(labels[i]) >= num_classes ||
        predictions[i] < 0 ||
        static_cast<size_t>(predictions[i]) >= num_classes) {
      return Status::OutOfRange("metrics: class id out of range");
    }
    ++matrix[labels[i]][predictions[i]];
  }
  return matrix;
}

StatusOr<double> MacroF1(const std::vector<int>& predictions,
                         const std::vector<int>& labels, size_t num_classes) {
  HM_ASSIGN_OR_RETURN(auto matrix,
                      ConfusionMatrix(predictions, labels, num_classes));
  double f1_sum = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    size_t tp = matrix[c][c];
    size_t fp = 0;
    size_t fn = 0;
    for (size_t other = 0; other < num_classes; ++other) {
      if (other == c) continue;
      fp += matrix[other][c];
      fn += matrix[c][other];
    }
    double denom = 2.0 * tp + fp + fn;
    f1_sum += denom > 0.0 ? (2.0 * tp) / denom : 0.0;
  }
  return f1_sum / static_cast<double>(num_classes);
}

}  // namespace hypermine::ml
