#include "ml/linear_regression.h"

namespace hypermine::ml {

StatusOr<LinearRegression> LinearRegression::Fit(
    const Matrix& features, const std::vector<double>& targets,
    const LinearRegressionConfig& config) {
  if (features.rows() == 0 || features.rows() != targets.size()) {
    return Status::InvalidArgument("linreg: bad training shape");
  }
  LinearRegression model;
  HM_ASSIGN_OR_RETURN(model.weights_,
                      SolveLeastSquares(features, targets, config.ridge));
  return model;
}

double LinearRegression::PredictRow(const double* row) const {
  double acc = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) acc += weights_[c] * row[c];
  return acc;
}

StatusOr<std::vector<double>> LinearRegression::Predict(
    const Matrix& features) const {
  if (features.cols() != weights_.size()) {
    return Status::InvalidArgument("linreg: feature width mismatch");
  }
  std::vector<double> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = PredictRow(features.RowPtr(r));
  }
  return out;
}

StatusOr<double> LinearRegression::MeanSquaredError(
    const Matrix& features, const std::vector<double>& targets) const {
  if (features.rows() != targets.size() || features.rows() == 0) {
    return Status::InvalidArgument("linreg: bad evaluation shape");
  }
  HM_ASSIGN_OR_RETURN(std::vector<double> preds, Predict(features));
  double acc = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    double d = preds[i] - targets[i];
    acc += d * d;
  }
  return acc / static_cast<double>(preds.size());
}

}  // namespace hypermine::ml
