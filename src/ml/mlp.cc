#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace hypermine::ml {

StatusOr<Mlp> Mlp::Train(const Dataset& data, const MlpConfig& config) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("mlp: empty training set");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("mlp: need >= 2 classes");
  }
  if (config.hidden_units == 0) {
    return Status::InvalidArgument("mlp: need >= 1 hidden unit");
  }
  const size_t m = data.num_rows();
  const size_t d = data.num_features();
  const size_t h = config.hidden_units;
  const size_t k = data.num_classes;

  Mlp model;
  model.w1_ = Matrix(h, d);
  model.b1_.assign(h, 0.0);
  model.w2_ = Matrix(k, h);
  model.b2_.assign(k, 0.0);

  Rng rng(config.seed);
  double scale1 = 1.0 / std::sqrt(static_cast<double>(d));
  double scale2 = 1.0 / std::sqrt(static_cast<double>(h));
  for (size_t i = 0; i < h; ++i) {
    for (size_t j = 0; j < d; ++j) {
      model.w1_.At(i, j) = rng.NextGaussian() * scale1;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < h; ++i) {
      model.w2_.At(c, i) = rng.NextGaussian() * scale2;
    }
  }

  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  std::vector<double> hidden(h);
  std::vector<double> proba(k);
  std::vector<double> delta_out(k);
  std::vector<double> delta_hidden(h);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const double* row = data.features.RowPtr(idx);
      model.Forward(row, &hidden, &proba);
      for (size_t c = 0; c < k; ++c) {
        delta_out[c] =
            proba[c] - (data.labels[idx] == static_cast<int>(c) ? 1.0 : 0.0);
      }
      // Backprop through the tanh hidden layer.
      for (size_t i = 0; i < h; ++i) {
        double acc = 0.0;
        for (size_t c = 0; c < k; ++c) acc += model.w2_.At(c, i) * delta_out[c];
        delta_hidden[i] = acc * (1.0 - hidden[i] * hidden[i]);
      }
      double lr = config.learning_rate;
      for (size_t c = 0; c < k; ++c) {
        double* w = model.w2_.RowPtr(c);
        for (size_t i = 0; i < h; ++i) w[i] -= lr * delta_out[c] * hidden[i];
        model.b2_[c] -= lr * delta_out[c];
      }
      for (size_t i = 0; i < h; ++i) {
        if (delta_hidden[i] == 0.0) continue;
        double* w = model.w1_.RowPtr(i);
        for (size_t j = 0; j < d; ++j) w[j] -= lr * delta_hidden[i] * row[j];
        model.b1_[i] -= lr * delta_hidden[i];
      }
    }
  }
  return model;
}

void Mlp::Forward(const double* row, std::vector<double>* hidden,
                  std::vector<double>* proba) const {
  const size_t h = w1_.rows();
  const size_t k = w2_.rows();
  hidden->resize(h);
  proba->resize(k);
  for (size_t i = 0; i < h; ++i) {
    const double* w = w1_.RowPtr(i);
    double acc = b1_[i];
    for (size_t j = 0; j < w1_.cols(); ++j) acc += w[j] * row[j];
    (*hidden)[i] = std::tanh(acc);
  }
  double peak = -1e300;
  for (size_t c = 0; c < k; ++c) {
    const double* w = w2_.RowPtr(c);
    double acc = b2_[c];
    for (size_t i = 0; i < h; ++i) acc += w[i] * (*hidden)[i];
    (*proba)[c] = acc;
    peak = std::max(peak, acc);
  }
  double total = 0.0;
  for (size_t c = 0; c < k; ++c) {
    (*proba)[c] = std::exp((*proba)[c] - peak);
    total += (*proba)[c];
  }
  for (size_t c = 0; c < k; ++c) (*proba)[c] /= total;
}

std::vector<double> Mlp::PredictProba(const double* row) const {
  std::vector<double> hidden;
  std::vector<double> proba;
  Forward(row, &hidden, &proba);
  return proba;
}

int Mlp::PredictRow(const double* row) const {
  std::vector<double> proba = PredictProba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

StatusOr<std::vector<int>> Mlp::Predict(const Matrix& features) const {
  if (features.cols() != w1_.cols()) {
    return Status::InvalidArgument("mlp: feature width mismatch");
  }
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = PredictRow(features.RowPtr(r));
  }
  return out;
}

}  // namespace hypermine::ml
