#ifndef HYPERMINE_ML_KMEANS_H_
#define HYPERMINE_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

struct KMeansConfig {
  size_t k = 2;
  /// Forced-termination bound; Lloyd's can cycle only in degenerate
  /// floating-point cases, and its worst case is superpolynomial [AV06].
  size_t max_iterations = 200;
  uint64_t seed = 3;
};

struct KMeansResult {
  Matrix centroids;  // (k, dims)
  std::vector<size_t> assignment;
  /// Sum of squared distances to assigned centroids (the k-means objective
  /// of Definition 2.10).
  double inertia = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Lloyd's k-means (Algorithm 4): seeds centers with k distinct random
/// points, then alternates nearest-center assignment and centroid updates
/// until the assignment is stable. Fails when rows < k.
StatusOr<KMeansResult> KMeans(const Matrix& points,
                              const KMeansConfig& config = {});

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_KMEANS_H_
