#ifndef HYPERMINE_ML_MLP_H_
#define HYPERMINE_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

struct MlpConfig {
  size_t hidden_units = 16;
  size_t epochs = 30;
  double learning_rate = 0.05;
  uint64_t seed = 11;
};

/// A one-hidden-layer multilayer perceptron with tanh activations and a
/// softmax output, trained by stochastic gradient descent on cross-entropy
/// (the "Multilayer Perceptron" baseline of Tables 5.3/5.4).
class Mlp {
 public:
  static StatusOr<Mlp> Train(const Dataset& data, const MlpConfig& config = {});

  int PredictRow(const double* row) const;
  StatusOr<std::vector<int>> Predict(const Matrix& features) const;

  /// Softmax class probabilities for one input row.
  std::vector<double> PredictProba(const double* row) const;

  size_t num_classes() const { return w2_.rows(); }

 private:
  void Forward(const double* row, std::vector<double>* hidden,
               std::vector<double>* proba) const;

  Matrix w1_;                   // (hidden, input)
  std::vector<double> b1_;      // (hidden)
  Matrix w2_;                   // (classes, hidden)
  std::vector<double> b2_;      // (classes)
};

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_MLP_H_
