#ifndef HYPERMINE_ML_DATASET_H_
#define HYPERMINE_ML_DATASET_H_

#include <vector>

#include "core/database.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hypermine::ml {

/// A supervised classification data set: dense feature rows plus integer
/// class labels in [0, num_classes).
struct Dataset {
  Matrix features;
  std::vector<int> labels;
  size_t num_classes = 0;

  size_t num_rows() const { return features.rows(); }
  size_t num_features() const { return features.cols(); }
};

/// Builds a data set from a discretized database: each observation becomes
/// one row whose features are the one-hot encodings of `feature_attrs`
/// (k slots per attribute) and whose label is the value of `target`.
/// `add_bias` appends a constant-1 column (the A_0 = 1 convention of the
/// perceptron discussion in Section 2.3.1). This is how the Weka-substitute
/// baselines of Section 5.5 consume dominator values.
StatusOr<Dataset> MakeClassificationDataset(
    const core::Database& db, const std::vector<core::AttrId>& feature_attrs,
    core::AttrId target, bool add_bias = true);

}  // namespace hypermine::ml

#endif  // HYPERMINE_ML_DATASET_H_
