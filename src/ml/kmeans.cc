#include "ml/kmeans.h"

#include <limits>

#include "util/rng.h"

namespace hypermine::ml {

namespace {

double SquaredDistance(const double* a, const double* b, size_t dims) {
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const Matrix& points,
                              const KMeansConfig& config) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  if (config.k == 0) {
    return Status::InvalidArgument("kmeans: k must be > 0");
  }
  if (n < config.k) {
    return Status::InvalidArgument("kmeans: fewer points than clusters");
  }

  Rng rng(config.seed);
  std::vector<size_t> seeds = rng.SampleIndices(n, config.k);

  KMeansResult result;
  result.centroids = Matrix(config.k, dims);
  for (size_t c = 0; c < config.k; ++c) {
    const double* src = points.RowPtr(seeds[c]);
    double* dst = result.centroids.RowPtr(c);
    for (size_t d = 0; d < dims; ++d) dst[d] = src[d];
  }

  result.assignment.assign(n, 0);
  std::vector<size_t> counts(config.k, 0);
  Matrix sums(config.k, dims);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (size_t p = 0; p < n; ++p) {
      const double* row = points.RowPtr(p);
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < config.k; ++c) {
        double dist = SquaredDistance(row, result.centroids.RowPtr(c), dims);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[p] != best) {
        result.assignment[p] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      result.converged = true;
      break;
    }
    // Centroid update; empty clusters keep their previous center.
    sums.ScaleInPlace(0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t p = 0; p < n; ++p) {
      size_t c = result.assignment[p];
      const double* row = points.RowPtr(p);
      double* sum = sums.RowPtr(c);
      for (size_t d = 0; d < dims; ++d) sum[d] += row[d];
      ++counts[c];
    }
    for (size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) continue;
      double* dst = result.centroids.RowPtr(c);
      const double* sum = sums.RowPtr(c);
      for (size_t d = 0; d < dims; ++d) {
        dst[d] = sum[d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t p = 0; p < n; ++p) {
    result.inertia += SquaredDistance(
        points.RowPtr(p), result.centroids.RowPtr(result.assignment[p]),
        dims);
  }
  return result;
}

}  // namespace hypermine::ml
