#include "ml/dataset.h"

#include <set>

#include "util/string_util.h"

namespace hypermine::ml {

StatusOr<Dataset> MakeClassificationDataset(
    const core::Database& db, const std::vector<core::AttrId>& feature_attrs,
    core::AttrId target, bool add_bias) {
  if (feature_attrs.empty()) {
    return Status::InvalidArgument("dataset: no feature attributes");
  }
  if (target >= db.num_attributes()) {
    return Status::OutOfRange("dataset: target out of range");
  }
  std::set<core::AttrId> seen;
  for (core::AttrId a : feature_attrs) {
    if (a >= db.num_attributes()) {
      return Status::OutOfRange("dataset: feature attribute out of range");
    }
    if (a == target) {
      return Status::InvalidArgument("dataset: target used as feature");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("dataset: repeated feature attribute");
    }
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("dataset: empty database");
  }

  const size_t k = db.num_values();
  const size_t m = db.num_observations();
  const size_t width = feature_attrs.size() * k + (add_bias ? 1 : 0);

  Dataset out;
  out.num_classes = k;
  out.features = Matrix(m, width, 0.0);
  out.labels.resize(m);
  for (size_t o = 0; o < m; ++o) {
    double* row = out.features.RowPtr(o);
    for (size_t f = 0; f < feature_attrs.size(); ++f) {
      row[f * k + db.value(o, feature_attrs[f])] = 1.0;
    }
    if (add_bias) row[width - 1] = 1.0;
    out.labels[o] = db.value(o, target);
  }
  return out;
}

}  // namespace hypermine::ml
