#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace hypermine::ml {

StatusOr<LinearSvm> LinearSvm::Train(const Dataset& data,
                                     const SvmConfig& config) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("svm: empty training set");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("svm: need >= 2 classes");
  }
  if (config.lambda <= 0.0) {
    return Status::InvalidArgument("svm: lambda must be > 0");
  }
  const size_t m = data.num_rows();
  const size_t d = data.num_features();

  LinearSvm model;
  model.weights_ = Matrix(data.num_classes, d, 0.0);
  Rng rng(config.seed);

  for (size_t c = 0; c < data.num_classes; ++c) {
    double* w = model.weights_.RowPtr(c);
    size_t t = 0;
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      for (size_t step = 0; step < m; ++step) {
        ++t;
        size_t r = static_cast<size_t>(rng.NextBounded(m));
        const double* row = data.features.RowPtr(r);
        double y = data.labels[r] == static_cast<int>(c) ? 1.0 : -1.0;
        double margin = 0.0;
        for (size_t f = 0; f < d; ++f) margin += w[f] * row[f];
        double eta = 1.0 / (config.lambda * static_cast<double>(t));
        double decay = 1.0 - eta * config.lambda;
        if (y * margin < 1.0) {
          for (size_t f = 0; f < d; ++f) {
            w[f] = decay * w[f] + eta * y * row[f];
          }
        } else {
          for (size_t f = 0; f < d; ++f) w[f] *= decay;
        }
      }
    }
  }
  return model;
}

double LinearSvm::Margin(size_t c, const double* row) const {
  const double* w = weights_.RowPtr(c);
  double acc = 0.0;
  for (size_t f = 0; f < weights_.cols(); ++f) acc += w[f] * row[f];
  return acc;
}

int LinearSvm::PredictRow(const double* row) const {
  int best = 0;
  double best_margin = Margin(0, row);
  for (size_t c = 1; c < weights_.rows(); ++c) {
    double margin = Margin(c, row);
    if (margin > best_margin) {
      best_margin = margin;
      best = static_cast<int>(c);
    }
  }
  return best;
}

StatusOr<std::vector<int>> LinearSvm::Predict(const Matrix& features) const {
  if (features.cols() != weights_.cols()) {
    return Status::InvalidArgument("svm: feature width mismatch");
  }
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = PredictRow(features.RowPtr(r));
  }
  return out;
}

}  // namespace hypermine::ml
