#ifndef HYPERMINE_CORE_BUILDER_H_
#define HYPERMINE_CORE_BUILDER_H_

#include <string>

#include "core/database.h"
#include "core/hypergraph.h"
#include "core/value_planes.h"
#include "util/status.h"

namespace hypermine {
class ThreadPool;
}

namespace hypermine::core {

/// Parameters of association-hypergraph construction (Sections 3.2.1 and
/// 5.1.2). γ-significance (Definition 3.7): a combination (T, H) enters the
/// hypergraph iff ACV(T,H) >= γ * max_{v in T} ACV(T - {v}, H).
struct HypergraphConfig {
  /// |V| of the discretized database this config is used with.
  size_t k = 3;
  /// γ for directed edges (γ_{1→1}); the baseline is ACV(∅, {H}).
  double gamma_edge = 1.15;
  /// γ for 2-to-1 directed hyperedges (γ_{2→1}); the baseline is the best
  /// constituent directed edge.
  double gamma_hyper = 1.05;
  /// When true (default), 2-to-1 candidates are restricted to pairs of
  /// attributes that each formed a γ-significant directed edge into the
  /// head. This is the scalability choice documented in DESIGN.md; setting
  /// it false enumerates all attribute pairs (the literal reading of
  /// Section 3.2.1) at O(n^3 m) cost — see bench_ablation_candidates.
  bool restrict_pairs_to_edges = true;
  /// When true, also admits a 2-to-1 hyperedge whose constituent edges were
  /// themselves below the γ_edge bar, as long as the pair clears γ_hyper
  /// against them (only meaningful with restrict_pairs_to_edges = false).
  bool keep_pairs_without_edges = true;
  /// Worker threads for model construction; 0 = hardware concurrency,
  /// 1 = fully serial. Any value produces a bit-identical hypergraph,
  /// stats, and CSV export: workers only fill per-head candidate buffers
  /// and a serial merge inserts edges in the serial-build order (covered
  /// by tests/core/builder_parallel_test.cc).
  size_t num_threads = 0;
};

/// Configuration C1 of Section 5.1.2: k=3, γ_{1→1}=1.15, γ_{2→1}=1.05.
HypergraphConfig ConfigC1();
/// Configuration C2 of Section 5.1.2: k=5, γ_{1→1}=1.20, γ_{2→1}=1.12.
HypergraphConfig ConfigC2();

/// Number of heads per cache-blocked group of the construction hot loop:
/// large enough to amortize tail scans across the block, small enough that
/// the block's contingency tables (or head planes) stay cache-resident.
/// Exposed for bench_build_throughput, which mirrors the builder's
/// blocking in its kernel comparison.
size_t BuildHeadBlockSize(size_t k);

/// Construction statistics mirrored against Section 5.1.2's reported model
/// sizes (106,475 directed edges with mean ACV 0.436 under C1, etc.).
struct BuildStats {
  size_t edge_candidates = 0;
  size_t edges_kept = 0;
  size_t pair_candidates = 0;
  size_t pairs_kept = 0;
  double mean_edge_acv = 0.0;
  double mean_pair_acv = 0.0;
  double elapsed_seconds = 0.0;

  std::string ToString() const;
};

/// Builds the association hypergraph H for database `db` (Section 3.2.1):
/// evaluates every directed-edge combination ({A}, {B}) and the 2-to-1
/// candidates, keeping γ-significant ones weighted by their ACV. The
/// database's value count must equal config.k. `stats` is optional.
///
/// `pool` is an optional caller-provided worker pool: workloads building
/// many models back to back (year-sliced sweeps, api::Model registries)
/// pass one shared pool instead of paying thread spin-up per build. When
/// null and the build is parallel, a pool is created for the call. With a
/// pool, config.num_threads only picks serial vs parallel: 1 forces a
/// fully serial build, any other value (including explicit counts >= 2)
/// runs on the pool's full width — the pool owner sized it, so the pool,
/// not the config, is the resource contract. The result is bit-identical
/// in every case.
///
/// `planes` optionally supplies pre-packed value planes (PackDatabasePlanes
/// or a serve::PlaneCache hit) so γ-sweeps over one database skip the
/// per-build packing pass. The artifact must Match the database —
/// kInvalidArgument otherwise, reuse of stale planes is never silent. Only
/// consulted on the small-k plane path (k <= kMaxPlaneKernelValues);
/// ignored on the byte-kernel path. Passing planes never changes the
/// result: packed planes are a pure re-coding of the columns.
StatusOr<DirectedHypergraph> BuildAssociationHypergraph(
    const Database& db, const HypergraphConfig& config,
    BuildStats* stats = nullptr, ThreadPool* pool = nullptr,
    const ValuePlanes* planes = nullptr);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_BUILDER_H_
