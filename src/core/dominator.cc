#include "core/dominator.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

namespace {

Status ValidateS(const DirectedHypergraph& graph, std::vector<VertexId>* s) {
  for (VertexId v : *s) {
    if (v >= graph.num_vertices()) {
      return Status::OutOfRange("dominator: S member out of range");
    }
  }
  std::sort(s->begin(), s->end());
  s->erase(std::unique(s->begin(), s->end()), s->end());
  return Status::OK();
}

std::vector<VertexId> AllVertices(const DirectedHypergraph& graph) {
  std::vector<VertexId> s(graph.num_vertices());
  for (size_t v = 0; v < s.size(); ++v) s[v] = static_cast<VertexId>(v);
  return s;
}

/// Marks every S-member reachable from the dominator: v ∈ DomSet, or some
/// edge with tail ⊆ DomSet heads into v.
void RecomputeCoverage(const DirectedHypergraph& graph,
                       const std::vector<char>& in_s,
                       const std::vector<char>& in_dom,
                       std::vector<char>* covered) {
  for (size_t v = 0; v < covered->size(); ++v) {
    (*covered)[v] = in_dom[v];
  }
  for (const Hyperedge& e : graph.edges()) {
    if (!in_s[e.head] || (*covered)[e.head]) continue;
    bool tail_in_dom = true;
    for (VertexId u : e.TailSpan()) {
      if (!in_dom[u]) {
        tail_in_dom = false;
        break;
      }
    }
    if (tail_in_dom) (*covered)[e.head] = 1;
  }
}

DominatorResult FinishResult(const std::vector<VertexId>& s,
                             std::vector<char> in_dom,
                             std::vector<char> covered, size_t iterations) {
  DominatorResult result;
  for (size_t v = 0; v < in_dom.size(); ++v) {
    if (in_dom[v]) result.dominator.push_back(static_cast<VertexId>(v));
  }
  result.covered = std::move(covered);
  for (VertexId v : s) result.covered_in_s += result.covered[v] ? 1 : 0;
  result.fraction_covered =
      s.empty() ? 1.0
                : static_cast<double>(result.covered_in_s) /
                      static_cast<double>(s.size());
  result.iterations = iterations;
  return result;
}

}  // namespace

std::string DominatorResult::ToString() const {
  return StrFormat("dominator size %zu covering %zu (%.0f%%) after %zu iters",
                   dominator.size(), covered_in_s, fraction_covered * 100.0,
                   iterations);
}

StatusOr<DominatorResult> ComputeDominatorGreedyDS(
    const DirectedHypergraph& graph, std::vector<VertexId> s,
    const DominatorConfig& config) {
  HM_RETURN_IF_ERROR(ValidateS(graph, &s));
  if (s.empty()) s = AllVertices(graph);
  const DirectedHypergraph filtered =
      config.acv_threshold > 0.0 ? graph.FilteredByWeight(config.acv_threshold)
                                 : graph;
  const size_t n = filtered.num_vertices();

  std::vector<char> in_s(n, 0);
  for (VertexId v : s) in_s[v] = 1;
  std::vector<char> in_dom(n, 0);
  std::vector<char> covered(n, 0);
  size_t uncovered_s = s.size();

  // best[u * n + v] = best L(u, v) contribution this iteration.
  std::vector<double> best(n * n, 0.0);
  std::vector<double> alpha(n, 0.0);
  size_t iterations = 0;
  const size_t max_size = config.max_size == 0 ? n : config.max_size;

  while (uncovered_s > 0 && iterations < max_size) {
    std::fill(best.begin(), best.end(), 0.0);
    std::fill(alpha.begin(), alpha.end(), 0.0);
    // L(u, v) = max over edges u ∈ T(e), v = H(e) of w(e)/|T(e) - DomSet|.
    for (const Hyperedge& e : filtered.edges()) {
      VertexId v = e.head;
      if (!in_s[v] || covered[v]) continue;
      size_t outside = 0;
      for (VertexId u : e.TailSpan()) outside += in_dom[u] ? 0 : 1;
      if (outside == 0) continue;  // Head is covered next recompute anyway.
      double value = e.weight / static_cast<double>(outside);
      for (VertexId u : e.TailSpan()) {
        if (in_dom[u]) continue;
        double& slot = best[static_cast<size_t>(u) * n + v];
        slot = std::max(slot, value);
      }
    }
    for (size_t u = 0; u < n; ++u) {
      if (in_dom[u]) continue;
      double a = (in_s[u] && !covered[u]) ? 1.0 : 0.0;
      const double* row = best.data() + u * n;
      for (size_t v = 0; v < n; ++v) a += row[v];
      alpha[u] = a;
    }
    size_t u0 = n;
    double best_alpha = 0.0;
    for (size_t u = 0; u < n; ++u) {
      if (in_dom[u]) continue;
      if (alpha[u] > best_alpha + 1e-12) {
        best_alpha = alpha[u];
        u0 = u;
      }
    }
    if (u0 == n) break;  // No candidate helps at all.
    if (config.stop_when_only_self_gain && best_alpha <= 1.0 + 1e-9) {
      // The best pick would only cover itself: the remaining vertices have
      // no incoming associative structure worth a dominator slot.
      break;
    }
    in_dom[u0] = 1;
    ++iterations;
    RecomputeCoverage(filtered, in_s, in_dom, &covered);
    uncovered_s = 0;
    for (VertexId v : s) uncovered_s += covered[v] ? 0 : 1;
  }
  return FinishResult(s, std::move(in_dom), std::move(covered),
                      iterations);
}

StatusOr<DominatorResult> ComputeDominatorSetCover(
    const DirectedHypergraph& graph, std::vector<VertexId> s,
    const DominatorConfig& config) {
  HM_RETURN_IF_ERROR(ValidateS(graph, &s));
  if (s.empty()) s = AllVertices(graph);
  const DirectedHypergraph filtered =
      config.acv_threshold > 0.0 ? graph.FilteredByWeight(config.acv_threshold)
                                 : graph;
  const size_t n = filtered.num_vertices();

  std::vector<char> in_s(n, 0);
  for (VertexId v : s) in_s[v] = 1;
  std::vector<char> in_dom(n, 0);
  std::vector<char> covered(n, 0);

  // T* = distinct tail sets of hyperedges; with each candidate we keep the
  // edges whose tail is a subset of it (|t*| <= 3 keeps this cheap).
  std::map<std::vector<VertexId>, std::vector<EdgeId>> edges_by_tail;
  for (EdgeId id = 0; id < filtered.num_edges(); ++id) {
    const Hyperedge& e = filtered.edge(id);
    std::vector<VertexId> tail(e.TailSpan().begin(), e.TailSpan().end());
    edges_by_tail[tail].push_back(id);
  }
  struct Candidate {
    std::vector<VertexId> tail;
    std::vector<EdgeId> covering_edges;  // edges with T(e) ⊆ tail
    bool active = true;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(edges_by_tail.size());
  for (const auto& [tail, ids] : edges_by_tail) {
    Candidate c;
    c.tail = tail;
    // All non-empty subsets of the tail contribute their exact-tail edges.
    const size_t sz = tail.size();
    for (uint32_t mask = 1; mask < (1u << sz); ++mask) {
      std::vector<VertexId> subset;
      for (size_t i = 0; i < sz; ++i) {
        if (mask & (1u << i)) subset.push_back(tail[i]);
      }
      auto it = edges_by_tail.find(subset);
      if (it != edges_by_tail.end()) {
        c.covering_edges.insert(c.covering_edges.end(), it->second.begin(),
                                it->second.end());
      }
    }
    candidates.push_back(std::move(c));
  }

  size_t uncovered_s = s.size();
  size_t iterations = 0;
  const size_t max_size = config.max_size == 0 ? n : config.max_size;
  size_t dom_size = 0;

  while (uncovered_s > 0 && dom_size < max_size) {
    // Effectiveness of each active candidate (Lines 6-19 of Algorithm 6).
    size_t best_index = candidates.size();
    size_t best_alpha = 0;
    size_t best_head_gain = 0;
    size_t best_new_vertices = 0;
    std::set<VertexId> head_seen;  // Used only with dedupe_heads_in_gain.
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      Candidate& c = candidates[ci];
      if (!c.active) continue;
      size_t alpha = 0;
      for (VertexId u : c.tail) {
        if (in_s[u] && !covered[u]) ++alpha;
      }
      size_t head_gain = 0;
      if (config.dedupe_heads_in_gain) head_seen.clear();
      for (EdgeId id : c.covering_edges) {
        VertexId h = filtered.edge(id).head;
        if (!in_s[h] || covered[h]) continue;
        if (config.dedupe_heads_in_gain && !head_seen.insert(h).second) {
          continue;
        }
        ++head_gain;
      }
      alpha += head_gain;
      if (alpha == 0) {
        // Line 18: zero-effectiveness candidates never become useful again.
        c.active = false;
        continue;
      }
      size_t new_vertices = 0;
      for (VertexId u : c.tail) new_vertices += in_dom[u] ? 0 : 1;
      bool better = alpha > best_alpha;
      if (config.enhancement1 && alpha == best_alpha &&
          best_index != candidates.size()) {
        // Enhancement 1: equal effectiveness — prefer fewer new vertices.
        better = new_vertices < best_new_vertices;
      }
      if (better) {
        best_index = ci;
        best_alpha = alpha;
        best_head_gain = head_gain;
        best_new_vertices = new_vertices;
      }
    }
    if (best_index == candidates.size()) break;  // T* exhausted.
    if (config.stop_when_only_self_gain && best_head_gain == 0) {
      // Only self-inclusion gains remain: no associative coverage left.
      break;
    }
    const Candidate& chosen = candidates[best_index];
    for (VertexId u : chosen.tail) {
      if (!in_dom[u]) {
        in_dom[u] = 1;
        ++dom_size;
      }
    }
    ++iterations;
    RecomputeCoverage(filtered, in_s, in_dom, &covered);
    uncovered_s = 0;
    for (VertexId v : s) uncovered_s += covered[v] ? 0 : 1;
    if (config.enhancement2) {
      // Enhancement 2: discard tail sets fully inside the dominator.
      for (Candidate& c : candidates) {
        if (!c.active) continue;
        bool inside = true;
        for (VertexId u : c.tail) {
          if (!in_dom[u]) {
            inside = false;
            break;
          }
        }
        if (inside) c.active = false;
      }
    }
  }
  return FinishResult(s, std::move(in_dom), std::move(covered),
                      iterations);
}

double VerifyDominatorCoverage(const DirectedHypergraph& graph,
                               const std::vector<VertexId>& s,
                               const std::vector<VertexId>& dominator) {
  std::vector<VertexId> members = s;
  if (members.empty()) members = AllVertices(graph);
  std::vector<char> in_s(graph.num_vertices(), 0);
  for (VertexId v : members) in_s[v] = 1;
  std::vector<char> in_dom(graph.num_vertices(), 0);
  for (VertexId v : dominator) {
    HM_CHECK_LT(v, graph.num_vertices());
    in_dom[v] = 1;
  }
  std::vector<char> covered(graph.num_vertices(), 0);
  RecomputeCoverage(graph, in_s, in_dom, &covered);
  size_t hits = 0;
  for (VertexId v : members) hits += covered[v] ? 1 : 0;
  return members.empty()
             ? 1.0
             : static_cast<double>(hits) / static_cast<double>(members.size());
}

}  // namespace hypermine::core
