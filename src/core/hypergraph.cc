#include "core/hypergraph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

DirectedHypergraph::DirectedHypergraph(std::vector<std::string> names)
    : names_(std::move(names)),
      in_edges_(names_.size()),
      out_edges_(names_.size()) {}

StatusOr<DirectedHypergraph> DirectedHypergraph::Create(
    std::vector<std::string> names) {
  if (names.empty()) {
    return Status::InvalidArgument("hypergraph: need at least one vertex");
  }
  if (names.size() > kMaxVertices) {
    return Status::InvalidArgument("hypergraph: too many vertices");
  }
  return DirectedHypergraph(std::move(names));
}

StatusOr<DirectedHypergraph> DirectedHypergraph::CreateAnonymous(
    size_t num_vertices) {
  std::vector<std::string> names;
  names.reserve(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    names.push_back(StrFormat("v%zu", v));
  }
  return Create(std::move(names));
}

const std::string& DirectedHypergraph::vertex_name(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return names_[v];
}

DirectedHypergraph::EdgeKey DirectedHypergraph::MakeEdgeKey(
    const VertexId tail[kMaxTailSize], VertexId head) {
  // Four full-width 32-bit fields — no truncation, so no id below the
  // kNoVertex sentinel can alias another (the old 16-bit packing capped
  // the universe at 0xFFFE vertices).
  EdgeKey key;
  key.hi = (static_cast<uint64_t>(tail[0]) << 32) |
           static_cast<uint64_t>(tail[1]);
  key.lo = (static_cast<uint64_t>(tail[2]) << 32) |
           static_cast<uint64_t>(head);
  return key;
}

size_t DirectedHypergraph::EdgeKeyHasher::operator()(
    const EdgeKey& key) const noexcept {
  // splitmix64-style mix of each half, combined with an odd multiplier —
  // cheap, and spreads the low-entropy packed ids across the whole hash
  // range.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  return static_cast<size_t>(mix(key.hi) * 0x9ddfea08eb382d69ull +
                             mix(key.lo));
}

StatusOr<EdgeId> DirectedHypergraph::AddEdge(std::vector<VertexId> tail,
                                             VertexId head, double weight) {
  if (tail.empty() || tail.size() > kMaxTailSize) {
    return Status::InvalidArgument(
        StrFormat("hypergraph: |T| must be in [1, %zu]", kMaxTailSize));
  }
  if (head >= names_.size()) {
    return Status::OutOfRange("hypergraph: head vertex out of range");
  }
  for (VertexId v : tail) {
    if (v >= names_.size()) {
      return Status::OutOfRange("hypergraph: tail vertex out of range");
    }
    if (v == head) {
      return Status::InvalidArgument(
          "hypergraph: T and H must be disjoint (Definition 2.9)");
    }
  }
  std::sort(tail.begin(), tail.end());
  if (std::adjacent_find(tail.begin(), tail.end()) != tail.end()) {
    return Status::InvalidArgument("hypergraph: repeated tail vertex");
  }
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("hypergraph: weight outside [0, 1]");
  }

  Hyperedge edge;
  for (size_t i = 0; i < tail.size(); ++i) edge.tail[i] = tail[i];
  edge.head = head;
  edge.weight = weight;

  EdgeKey key = MakeEdgeKey(edge.tail, head);
  if (index_.count(key) > 0) {
    return Status::AlreadyExists("hypergraph: duplicate (T, H) combination");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(edge);
  index_.emplace(key, id);
  in_edges_[head].push_back(id);
  for (VertexId v : tail) out_edges_[v].push_back(id);
  ++num_by_tail_size_[tail.size() - 1];
  return id;
}

const Hyperedge& DirectedHypergraph::edge(EdgeId id) const {
  HM_CHECK_LT(id, edges_.size());
  return edges_[id];
}

const std::vector<EdgeId>& DirectedHypergraph::InEdgeIds(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return in_edges_[v];
}

const std::vector<EdgeId>& DirectedHypergraph::OutEdgeIds(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return out_edges_[v];
}

std::optional<EdgeId> DirectedHypergraph::FindEdge(
    std::span<const VertexId> tail, VertexId head) const {
  if (tail.empty() || tail.size() > kMaxTailSize) return std::nullopt;
  // Out-of-range ids miss immediately: keys are full-width so they could
  // never alias a real vertex, but probing the index for ids no edge can
  // contain would be wasted work.
  if (head >= names_.size()) return std::nullopt;
  VertexId sorted[kMaxTailSize] = {kNoVertex, kNoVertex, kNoVertex};
  for (size_t i = 0; i < tail.size(); ++i) {
    if (tail[i] >= names_.size()) return std::nullopt;
    sorted[i] = tail[i];
  }
  std::sort(sorted, sorted + tail.size());
  auto it = index_.find(MakeEdgeKey(sorted, head));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

double DirectedHypergraph::WeightedInDegree(VertexId v) const {
  double acc = 0.0;
  for (EdgeId id : InEdgeIds(v)) acc += edges_[id].weight;
  return acc;
}

double DirectedHypergraph::WeightedOutDegree(VertexId v) const {
  double acc = 0.0;
  for (EdgeId id : OutEdgeIds(v)) {
    acc += edges_[id].weight / static_cast<double>(edges_[id].tail_size());
  }
  return acc;
}

double DirectedHypergraph::MeanDirectedEdgeWeight() const {
  if (NumDirectedEdges() == 0) return 0.0;
  double acc = 0.0;
  for (const Hyperedge& e : edges_) {
    if (e.tail_size() == 1) acc += e.weight;
  }
  return acc / static_cast<double>(NumDirectedEdges());
}

double DirectedHypergraph::MeanPairEdgeWeight() const {
  if (NumPairEdges() == 0) return 0.0;
  double acc = 0.0;
  for (const Hyperedge& e : edges_) {
    if (e.tail_size() == 2) acc += e.weight;
  }
  return acc / static_cast<double>(NumPairEdges());
}

DirectedHypergraph DirectedHypergraph::FilteredByWeight(
    double threshold) const {
  DirectedHypergraph out(names_);
  for (const Hyperedge& e : edges_) {
    if (e.weight < threshold) continue;
    std::vector<VertexId> tail(e.TailSpan().begin(), e.TailSpan().end());
    HM_CHECK_OK(out.AddEdge(std::move(tail), e.head, e.weight).status());
  }
  return out;
}

StatusOr<double> DirectedHypergraph::WeightQuantileThreshold(
    double fraction) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  if (edges_.empty()) {
    return Status::FailedPrecondition("hypergraph has no edges");
  }
  std::vector<double> weights;
  weights.reserve(edges_.size());
  for (const Hyperedge& e : edges_) weights.push_back(e.weight);
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(weights.size())));
  return weights[keep - 1];
}

std::string DirectedHypergraph::EdgeToString(EdgeId id, int precision) const {
  const Hyperedge& e = edge(id);
  std::string out;
  for (size_t i = 0; i < e.tail_size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[e.tail[i]];
  }
  out += " -> " + names_[e.head];
  out += " (" + FormatDouble(e.weight, precision) + ")";
  return out;
}

}  // namespace hypermine::core
