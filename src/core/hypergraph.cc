#include "core/hypergraph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

DirectedHypergraph::DirectedHypergraph(std::vector<std::string> names)
    : names_(std::move(names)),
      in_edges_(names_.size()),
      out_edges_(names_.size()) {}

StatusOr<DirectedHypergraph> DirectedHypergraph::Create(
    std::vector<std::string> names) {
  if (names.empty()) {
    return Status::InvalidArgument("hypergraph: need at least one vertex");
  }
  if (names.size() > kMaxVertices) {
    return Status::InvalidArgument("hypergraph: too many vertices");
  }
  return DirectedHypergraph(std::move(names));
}

StatusOr<DirectedHypergraph> DirectedHypergraph::CreateAnonymous(
    size_t num_vertices) {
  std::vector<std::string> names;
  names.reserve(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    names.push_back(StrFormat("v%zu", v));
  }
  return Create(std::move(names));
}

const std::string& DirectedHypergraph::vertex_name(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return names_[v];
}

uint64_t DirectedHypergraph::EdgeKey(const VertexId tail[kMaxTailSize],
                                     VertexId head) {
  // Four 16-bit fields; kNoVertex truncates to 0xFFFF, which no real vertex
  // can use because kMaxVertices = 0xFFFE.
  return ((static_cast<uint64_t>(tail[0]) & 0xFFFF) << 48) |
         ((static_cast<uint64_t>(tail[1]) & 0xFFFF) << 32) |
         ((static_cast<uint64_t>(tail[2]) & 0xFFFF) << 16) |
         (static_cast<uint64_t>(head) & 0xFFFF);
}

StatusOr<EdgeId> DirectedHypergraph::AddEdge(std::vector<VertexId> tail,
                                             VertexId head, double weight) {
  if (tail.empty() || tail.size() > kMaxTailSize) {
    return Status::InvalidArgument(
        StrFormat("hypergraph: |T| must be in [1, %zu]", kMaxTailSize));
  }
  if (head >= names_.size()) {
    return Status::OutOfRange("hypergraph: head vertex out of range");
  }
  for (VertexId v : tail) {
    if (v >= names_.size()) {
      return Status::OutOfRange("hypergraph: tail vertex out of range");
    }
    if (v == head) {
      return Status::InvalidArgument(
          "hypergraph: T and H must be disjoint (Definition 2.9)");
    }
  }
  std::sort(tail.begin(), tail.end());
  if (std::adjacent_find(tail.begin(), tail.end()) != tail.end()) {
    return Status::InvalidArgument("hypergraph: repeated tail vertex");
  }
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("hypergraph: weight outside [0, 1]");
  }

  Hyperedge edge;
  for (size_t i = 0; i < tail.size(); ++i) edge.tail[i] = tail[i];
  edge.head = head;
  edge.weight = weight;

  uint64_t key = EdgeKey(edge.tail, head);
  if (index_.count(key) > 0) {
    return Status::AlreadyExists("hypergraph: duplicate (T, H) combination");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(edge);
  index_.emplace(key, id);
  in_edges_[head].push_back(id);
  for (VertexId v : tail) out_edges_[v].push_back(id);
  ++num_by_tail_size_[tail.size() - 1];
  return id;
}

const Hyperedge& DirectedHypergraph::edge(EdgeId id) const {
  HM_CHECK_LT(id, edges_.size());
  return edges_[id];
}

const std::vector<EdgeId>& DirectedHypergraph::InEdgeIds(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return in_edges_[v];
}

const std::vector<EdgeId>& DirectedHypergraph::OutEdgeIds(VertexId v) const {
  HM_CHECK_LT(v, names_.size());
  return out_edges_[v];
}

std::optional<EdgeId> DirectedHypergraph::FindEdge(
    std::span<const VertexId> tail, VertexId head) const {
  if (tail.empty() || tail.size() > kMaxTailSize) return std::nullopt;
  // Out-of-range ids must miss rather than alias a real vertex: EdgeKey
  // keeps only the low 16 bits, so e.g. 0x10000 would otherwise collide
  // with vertex 0.
  if (head >= names_.size()) return std::nullopt;
  VertexId sorted[kMaxTailSize] = {kNoVertex, kNoVertex, kNoVertex};
  for (size_t i = 0; i < tail.size(); ++i) {
    if (tail[i] >= names_.size()) return std::nullopt;
    sorted[i] = tail[i];
  }
  std::sort(sorted, sorted + tail.size());
  auto it = index_.find(EdgeKey(sorted, head));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

double DirectedHypergraph::WeightedInDegree(VertexId v) const {
  double acc = 0.0;
  for (EdgeId id : InEdgeIds(v)) acc += edges_[id].weight;
  return acc;
}

double DirectedHypergraph::WeightedOutDegree(VertexId v) const {
  double acc = 0.0;
  for (EdgeId id : OutEdgeIds(v)) {
    acc += edges_[id].weight / static_cast<double>(edges_[id].tail_size());
  }
  return acc;
}

double DirectedHypergraph::MeanDirectedEdgeWeight() const {
  if (NumDirectedEdges() == 0) return 0.0;
  double acc = 0.0;
  for (const Hyperedge& e : edges_) {
    if (e.tail_size() == 1) acc += e.weight;
  }
  return acc / static_cast<double>(NumDirectedEdges());
}

double DirectedHypergraph::MeanPairEdgeWeight() const {
  if (NumPairEdges() == 0) return 0.0;
  double acc = 0.0;
  for (const Hyperedge& e : edges_) {
    if (e.tail_size() == 2) acc += e.weight;
  }
  return acc / static_cast<double>(NumPairEdges());
}

DirectedHypergraph DirectedHypergraph::FilteredByWeight(
    double threshold) const {
  DirectedHypergraph out(names_);
  for (const Hyperedge& e : edges_) {
    if (e.weight < threshold) continue;
    std::vector<VertexId> tail(e.TailSpan().begin(), e.TailSpan().end());
    HM_CHECK_OK(out.AddEdge(std::move(tail), e.head, e.weight).status());
  }
  return out;
}

StatusOr<double> DirectedHypergraph::WeightQuantileThreshold(
    double fraction) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  if (edges_.empty()) {
    return Status::FailedPrecondition("hypergraph has no edges");
  }
  std::vector<double> weights;
  weights.reserve(edges_.size());
  for (const Hyperedge& e : edges_) weights.push_back(e.weight);
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(weights.size())));
  return weights[keep - 1];
}

std::string DirectedHypergraph::EdgeToString(EdgeId id, int precision) const {
  const Hyperedge& e = edge(id);
  std::string out;
  for (size_t i = 0; i < e.tail_size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[e.tail[i]];
  }
  out += " -> " + names_[e.head];
  out += " (" + FormatDouble(e.weight, precision) + ")";
  return out;
}

}  // namespace hypermine::core
