#include "core/pipeline.h"

#include <utility>

#include "core/discretize.h"
#include "market/series.h"

namespace hypermine::core {

StatusOr<Database> DiscretizePanelWindow(const market::MarketPanel& panel,
                                         size_t k, size_t day_begin,
                                         size_t day_end) {
  if (panel.num_series() == 0) {
    return Status::InvalidArgument("DiscretizePanelWindow: empty panel");
  }
  if (day_begin >= day_end || day_end > panel.num_days()) {
    return Status::OutOfRange("DiscretizePanelWindow: bad day window");
  }
  // Delta day d uses closes d and d+1; the last panel day has no delta.
  size_t delta_end = std::min(day_end, panel.num_days() - 1);
  if (delta_end <= day_begin) {
    return Status::InvalidArgument(
        "DiscretizePanelWindow: window has no delta entries");
  }

  std::vector<std::string> names;
  names.reserve(panel.num_series());
  for (const market::Ticker& t : panel.tickers) names.push_back(t.symbol);

  std::vector<std::vector<ValueId>> columns(panel.num_series());
  for (size_t i = 0; i < panel.num_series(); ++i) {
    HM_ASSIGN_OR_RETURN(
        std::vector<double> deltas,
        market::DeltaSeriesWindow(panel.series[i].closes, day_begin,
                                  delta_end));
    HM_ASSIGN_OR_RETURN(columns[i], EquiDepthDiscretize(deltas, k));
  }
  return DatabaseFromColumns(std::move(names), k, columns);
}

StatusOr<Database> DiscretizePanel(const market::MarketPanel& panel,
                                   size_t k) {
  return DiscretizePanelWindow(panel, k, 0, panel.num_days());
}

StatusOr<TrainTestSplit> DiscretizeTrainTest(const market::MarketPanel& panel,
                                             size_t k, int train_begin_year,
                                             int train_end_year,
                                             int test_begin_year,
                                             int test_end_year) {
  HM_ASSIGN_OR_RETURN(
      auto train_range,
      panel.calendar.DayRangeForYears(train_begin_year, train_end_year));
  HM_ASSIGN_OR_RETURN(
      auto test_range,
      panel.calendar.DayRangeForYears(test_begin_year, test_end_year));
  TrainTestSplit split{
      Database::Create({"placeholder"}, 2).value(),
      Database::Create({"placeholder"}, 2).value(),
  };
  HM_ASSIGN_OR_RETURN(
      split.train,
      DiscretizePanelWindow(panel, k, train_range.first, train_range.second));
  HM_ASSIGN_OR_RETURN(
      split.test,
      DiscretizePanelWindow(panel, k, test_range.first, test_range.second));
  return split;
}

StatusOr<MarketExperiment> SetUpMarketExperiment(
    const market::MarketConfig& market_config,
    const HypergraphConfig& model_config) {
  HM_ASSIGN_OR_RETURN(market::MarketPanel panel,
                      market::SimulateMarket(market_config));
  HM_ASSIGN_OR_RETURN(Database db, DiscretizePanel(panel, model_config.k));
  BuildStats stats;
  HM_ASSIGN_OR_RETURN(DirectedHypergraph graph,
                      BuildAssociationHypergraph(db, model_config, &stats));
  return MarketExperiment{std::move(panel), std::move(db), std::move(graph),
                          stats};
}

}  // namespace hypermine::core
