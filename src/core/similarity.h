#ifndef HYPERMINE_CORE_SIMILARITY_H_
#define HYPERMINE_CORE_SIMILARITY_H_

#include <vector>

#include "approx/gonzalez.h"
#include "core/hypergraph.h"
#include "util/status.h"

namespace hypermine::core {

/// Tail substitution e|T: from -> to of Notation 3.9(3): the tail becomes
/// (T - {from}) ∪ {to} (set semantics; the result can shrink when `to` was
/// already present). The head is unchanged.
std::vector<VertexId> SubstituteTail(std::span<const VertexId> tail,
                                     VertexId from, VertexId to);

/// out-sim_H(a1, a2) of Definition 3.11(1): the ACV-weighted fraction of
/// matched directed-hyperedge pairs under tail substitution,
///   sum over (e,f) in out(a1)⊗out(a2) of min(w(e), w(f))
///   / sum over (e,f) in out(a1)⊕out(a2) of max(w(e), w(f)),
/// where unmatched edges pair with the empty hyperedge (weight 0).
/// Returns 1 when a1 == a2 and 0 when both vertices have no out-edges.
double OutSimilarity(const DirectedHypergraph& graph, VertexId a1,
                     VertexId a2);

/// in-sim_H(a1, a2) of Definition 3.11(2), the head-substitution analogue.
double InSimilarity(const DirectedHypergraph& graph, VertexId a1,
                    VertexId a2);

/// The similarity graph SG_S of Definition 3.13: an undirected complete
/// graph over a vertex subset S with edge weight
///   d(A1, A2) = 1 - (in-sim(A1, A2) + out-sim(A1, A2)) / 2.
class SimilarityGraph {
 public:
  /// Builds SG_S over `members` (hypergraph vertex ids; empty = all
  /// vertices). O(|S|^2 * average degree).
  static StatusOr<SimilarityGraph> Build(const DirectedHypergraph& graph,
                                         std::vector<VertexId> members = {});

  size_t size() const { return members_.size(); }
  const std::vector<VertexId>& members() const { return members_; }

  /// Distance between the i'th and j'th member (indices into members()).
  double Distance(size_t i, size_t j) const;

  /// Mean pairwise distance over all member pairs.
  double MeanDistance() const;

  /// Distance callback usable with approx::GonzalezTClustering.
  approx::DistanceFn DistanceFn() const;

 private:
  SimilarityGraph() = default;

  std::vector<VertexId> members_;
  /// Upper-triangular row-major distances, diag implicit 0.
  std::vector<double> dist_;
  size_t TriIndex(size_t i, size_t j) const;
};

/// Clusters the similarity graph with the Gonzalez t-clustering 2-approx
/// (Section 3.3.2); `first_center` indexes members().
StatusOr<approx::Clustering> ClusterSimilarAttributes(
    const SimilarityGraph& graph, size_t t, size_t first_center = 0);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_SIMILARITY_H_
