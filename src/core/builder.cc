#include "core/builder.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/assoc_table.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hypermine::core {

namespace {

/// A γ-significant 2-to-1 candidate held in a per-head buffer until the
/// serial merge.
struct PairVerdict {
  VertexId a = 0;
  VertexId b = 0;
  double acv = 0.0;
};

/// Everything one head contributes to the hypergraph, computed by a worker
/// without touching shared state. The merge step replays these buffers in
/// head order, reproducing the serial build's edge-insertion and
/// stat-accumulation order exactly.
struct HeadVerdicts {
  /// Kept directed edges (tail id ascending, the serial scan order).
  std::vector<std::pair<VertexId, double>> kept_edges;
  /// Kept 2-to-1 hyperedges in the serial enumeration order.
  std::vector<PairVerdict> kept_pairs;
  size_t pair_candidates = 0;
};

}  // namespace

// Heads are evaluated in cache-blocked groups: AcvEdgeBlockKernel scans
// one tail column (or its planes) while filling a whole block's k×k
// contingency tables, so the block's scratch must stay L1-resident.
// ~32 KiB of counts.
size_t BuildHeadBlockSize(size_t k) {
  const size_t budget = (32 * 1024) / sizeof(size_t);
  return std::clamp<size_t>(budget / (k * k), 1, 16);
}

HypergraphConfig ConfigC1() {
  HypergraphConfig config;
  config.k = 3;
  config.gamma_edge = 1.15;
  config.gamma_hyper = 1.05;
  return config;
}

HypergraphConfig ConfigC2() {
  HypergraphConfig config;
  config.k = 5;
  config.gamma_edge = 1.20;
  config.gamma_hyper = 1.12;
  return config;
}

std::string BuildStats::ToString() const {
  return StrFormat(
      "edges: %zu kept of %zu candidates (mean ACV %.3f); "
      "2-to-1: %zu kept of %zu candidates (mean ACV %.3f); %.2fs",
      edges_kept, edge_candidates, mean_edge_acv, pairs_kept,
      pair_candidates, mean_pair_acv, elapsed_seconds);
}

StatusOr<DirectedHypergraph> BuildAssociationHypergraph(
    const Database& db, const HypergraphConfig& config, BuildStats* stats,
    ThreadPool* pool, const ValuePlanes* planes) {
  if (db.num_values() != config.k) {
    return Status::InvalidArgument(
        StrFormat("builder: database has k=%zu but config expects k=%zu",
                  db.num_values(), config.k));
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("builder: empty database");
  }
  if (config.gamma_edge < 1.0 || config.gamma_hyper < 1.0) {
    return Status::InvalidArgument("builder: gamma must be >= 1");
  }
  const size_t n = db.num_attributes();
  const size_t m = db.num_observations();
  const size_t k = db.num_values();

  Stopwatch timer;
  BuildStats local;
  HM_ASSIGN_OR_RETURN(DirectedHypergraph graph,
                      DirectedHypergraph::Create(db.attribute_names()));

  // Phase 1 (parallel): heads are partitioned into cache-blocked groups and
  // each group's candidates — all n-1 directed edges per head (Stage 1) and
  // the head's 2-to-1 candidates (Stage 2) — are judged into per-head
  // buffers. A head's verdicts depend only on the database and config, never
  // on scheduling, so any thread count yields identical buffers. The ACV
  // column of a head is kept for the whole block (not just kept edges)
  // because Definition 3.7 compares 2-to-1 candidates against
  // constituent-edge ACVs regardless of whether those edges were themselves
  // significant.
  const size_t block = BuildHeadBlockSize(k);
  const size_t num_blocks = (n + block - 1) / block;
  std::vector<HeadVerdicts> per_head(n);

  // For small k, every column is re-coded once as bit planes and both
  // stages count via AND+popcount (~k² word passes per candidate instead
  // of m byte increments); large k keeps the byte kernels. Both paths are
  // exact-integer, hence interchangeable bit for bit. A caller-provided
  // `planes` artifact (γ-sweeps, serve::PlaneCache) replaces the packing
  // pass after a content check; the packed words are identical either way.
  const bool use_planes = k <= kMaxPlaneKernelValues;
  const size_t words = PlaneWords(m);
  ValuePlanes local_planes;
  const ValuePlanes* packed = nullptr;
  if (use_planes) {
    if (planes != nullptr) {
      if (!planes->Matches(db)) {
        return Status::InvalidArgument(
            "builder: supplied ValuePlanes do not match the database "
            "(stale or foreign artifact)");
      }
      packed = planes;
    } else {
      local_planes = PackDatabasePlanes(db);
      packed = &local_planes;
    }
  }
  auto planes_of = [&](size_t a) { return packed->planes_of(a); };

  auto process_block = [&](size_t block_index) {
    const size_t h0 = block_index * block;
    const size_t h1 = std::min(n, h0 + block);
    const size_t width = h1 - h0;

    std::vector<const ValueId*> head_cols(width);
    for (size_t j = 0; j < width; ++j) {
      head_cols[j] = db.column(static_cast<AttrId>(h0 + j)).data();
    }
    // Per-head γ baseline: ACV(∅, {H}) (Definition 3.7 with |T| = 1).
    // BaseAcv cannot fail here — heads are in range and m > 0.
    std::vector<double> base(width);
    for (size_t j = 0; j < width; ++j) {
      base[j] = *BaseAcv(db, static_cast<AttrId>(h0 + j));
    }

    // Stage 1, fused: one pass per tail fills the whole block's k×k
    // contingency tables; the block's head planes (or columns) stay
    // cache-resident across all n tails. acv[a * width + j] =
    // ACV({a}, {h0 + j}).
    std::vector<double> acv(n * width, 0.0);
    if (use_planes) {
      std::vector<const uint64_t*> head_planes(width);
      for (size_t j = 0; j < width; ++j) head_planes[j] = planes_of(h0 + j);
      for (size_t a = 0; a < n; ++a) {
        AcvEdgeBlockKernel(planes_of(a), head_planes.data(), width, m, k,
                           &acv[a * width]);
      }
    } else {
      std::vector<size_t> scratch(AcvEdgeBlockScratchSize(width, k));
      for (size_t a = 0; a < n; ++a) {
        AcvEdgeBlockKernel(db.column(static_cast<AttrId>(a)).data(),
                           head_cols.data(), width, m, k, scratch.data(),
                           &acv[a * width]);
      }
    }
    for (size_t j = 0; j < width; ++j) {
      const size_t h = h0 + j;
      HeadVerdicts& out = per_head[h];
      for (size_t a = 0; a < n; ++a) {
        if (a == h) continue;
        if (acv[a * width + j] >= config.gamma_edge * base[j]) {
          out.kept_edges.emplace_back(static_cast<VertexId>(a),
                                      acv[a * width + j]);
        }
      }
    }

    // Stage 2: 2-to-1 candidates per head. With the candidate restriction
    // we only pair up attributes that individually formed a significant
    // edge into the head; otherwise all unordered pairs are enumerated.
    std::vector<size_t> pair_scratch(AcvPairScratchSize(k));
    std::vector<uint64_t> word_scratch(use_planes ? words : 0);
    for (size_t j = 0; j < width; ++j) {
      const size_t h = h0 + j;
      HeadVerdicts& out = per_head[h];
      auto consider = [&](VertexId a, VertexId b) {
        ++out.pair_candidates;
        double best_edge =
            std::max(acv[a * width + j], acv[b * width + j]);
        if (!config.keep_pairs_without_edges &&
            best_edge < config.gamma_edge * base[j]) {
          return;
        }
        double pair_acv =
            use_planes
                ? AcvPairKernel(planes_of(a), planes_of(b), planes_of(h),
                                m, k, word_scratch.data())
                : AcvPairKernel(db.column(a).data(), db.column(b).data(),
                                head_cols[j], m, k, pair_scratch.data());
        if (pair_acv >= config.gamma_hyper * best_edge) {
          out.kept_pairs.push_back(PairVerdict{a, b, pair_acv});
        }
      };
      if (config.restrict_pairs_to_edges) {
        const std::vector<std::pair<VertexId, double>>& sources =
            out.kept_edges;
        for (size_t i = 0; i < sources.size(); ++i) {
          for (size_t l = i + 1; l < sources.size(); ++l) {
            consider(sources[i].first, sources[l].first);
          }
        }
      } else {
        for (size_t a = 0; a < n; ++a) {
          if (a == h) continue;
          for (size_t b = a + 1; b < n; ++b) {
            if (b == h) continue;
            consider(static_cast<VertexId>(a), static_cast<VertexId>(b));
          }
        }
      }
    }
  };

  const size_t threads =
      config.num_threads == 0
          ? (pool != nullptr ? pool->num_threads() + 1
                             : ThreadPool::HardwareThreads())
          : config.num_threads;
  if (threads <= 1 || num_blocks <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) process_block(b);
  } else if (pool != nullptr) {
    // Caller-provided pool: no per-build thread spin-up. The calling
    // thread participates in ParallelFor alongside the pool's workers.
    pool->ParallelFor(num_blocks, process_block);
  } else {
    // The calling thread participates in ParallelFor, so a build with
    // `threads` workers runs on a pool of threads - 1.
    ThreadPool local_pool(threads - 1);
    local_pool.ParallelFor(num_blocks, process_block);
  }

  // Phase 2 (serial merge): replay the per-head buffers in head order —
  // first every head's directed edges, then every head's 2-to-1 edges —
  // matching the serial build's insertion order and floating-point
  // accumulation order bit for bit.
  local.edge_candidates = n * (n - 1);
  double edge_acv_sum = 0.0;
  for (size_t h = 0; h < n; ++h) {
    for (const auto& [a, acv] : per_head[h].kept_edges) {
      HM_ASSIGN_OR_RETURN(
          EdgeId id, graph.AddEdge({a}, static_cast<VertexId>(h), acv));
      (void)id;
      edge_acv_sum += acv;
      ++local.edges_kept;
    }
  }
  double pair_acv_sum = 0.0;
  for (size_t h = 0; h < n; ++h) {
    local.pair_candidates += per_head[h].pair_candidates;
    for (const PairVerdict& p : per_head[h].kept_pairs) {
      HM_RETURN_IF_ERROR(
          graph.AddEdge({p.a, p.b}, static_cast<VertexId>(h), p.acv)
              .status());
      pair_acv_sum += p.acv;
      ++local.pairs_kept;
    }
  }

  local.mean_edge_acv = local.edges_kept == 0
                            ? 0.0
                            : edge_acv_sum / static_cast<double>(
                                                 local.edges_kept);
  local.mean_pair_acv =
      local.pairs_kept == 0
          ? 0.0
          : pair_acv_sum / static_cast<double>(local.pairs_kept);
  local.elapsed_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return graph;
}

}  // namespace hypermine::core
