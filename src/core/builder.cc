#include "core/builder.h"

#include <algorithm>

#include "core/assoc_table.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypermine::core {

HypergraphConfig ConfigC1() {
  HypergraphConfig config;
  config.k = 3;
  config.gamma_edge = 1.15;
  config.gamma_hyper = 1.05;
  return config;
}

HypergraphConfig ConfigC2() {
  HypergraphConfig config;
  config.k = 5;
  config.gamma_edge = 1.20;
  config.gamma_hyper = 1.12;
  return config;
}

std::string BuildStats::ToString() const {
  return StrFormat(
      "edges: %zu kept of %zu candidates (mean ACV %.3f); "
      "2-to-1: %zu kept of %zu candidates (mean ACV %.3f); %.2fs",
      edges_kept, edge_candidates, mean_edge_acv, pairs_kept,
      pair_candidates, mean_pair_acv, elapsed_seconds);
}

StatusOr<DirectedHypergraph> BuildAssociationHypergraph(
    const Database& db, const HypergraphConfig& config, BuildStats* stats) {
  if (db.num_values() != config.k) {
    return Status::InvalidArgument(
        StrFormat("builder: database has k=%zu but config expects k=%zu",
                  db.num_values(), config.k));
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("builder: empty database");
  }
  if (config.gamma_edge < 1.0 || config.gamma_hyper < 1.0) {
    return Status::InvalidArgument("builder: gamma must be >= 1");
  }
  const size_t n = db.num_attributes();
  const size_t m = db.num_observations();
  const size_t k = db.num_values();

  Stopwatch timer;
  BuildStats local;
  HM_ASSIGN_OR_RETURN(DirectedHypergraph graph,
                      DirectedHypergraph::Create(db.attribute_names()));

  // Per-head γ baseline: ACV(∅, {H}) (Definition 3.7 with |T| = 1).
  std::vector<double> base_acv(n, 0.0);
  for (size_t h = 0; h < n; ++h) {
    HM_ASSIGN_OR_RETURN(base_acv[h],
                        BaseAcv(db, static_cast<AttrId>(h)));
  }

  // Stage 1: all n(n-1) directed-edge combinations. The full ACV matrix is
  // retained (not just the retained edges) because Definition 3.7 compares
  // 2-to-1 candidates against constituent-edge ACVs regardless of whether
  // those edges were themselves significant.
  std::vector<double> edge_acv(n * n, 0.0);
  std::vector<std::vector<VertexId>> sources_of(n);
  double edge_acv_sum = 0.0;
  for (size_t h = 0; h < n; ++h) {
    const ValueId* head_col = db.column(static_cast<AttrId>(h)).data();
    for (size_t a = 0; a < n; ++a) {
      if (a == h) continue;
      ++local.edge_candidates;
      double acv = AcvEdgeKernel(db.column(static_cast<AttrId>(a)).data(),
                                 head_col, m, k);
      edge_acv[a * n + h] = acv;
      if (acv >= config.gamma_edge * base_acv[h]) {
        HM_ASSIGN_OR_RETURN(
            EdgeId id,
            graph.AddEdge({static_cast<VertexId>(a)},
                          static_cast<VertexId>(h), acv));
        (void)id;
        sources_of[h].push_back(static_cast<VertexId>(a));
        edge_acv_sum += acv;
        ++local.edges_kept;
      }
    }
  }

  // Stage 2: 2-to-1 candidates per head. With the candidate restriction we
  // only pair up attributes that individually formed a significant edge
  // into the head; otherwise all unordered pairs are enumerated.
  double pair_acv_sum = 0.0;
  for (size_t h = 0; h < n; ++h) {
    const ValueId* head_col = db.column(static_cast<AttrId>(h)).data();
    auto consider = [&](VertexId a, VertexId b) -> Status {
      ++local.pair_candidates;
      double best_edge =
          std::max(edge_acv[a * n + h], edge_acv[b * n + h]);
      if (!config.keep_pairs_without_edges &&
          best_edge < config.gamma_edge * base_acv[h]) {
        return Status::OK();
      }
      double acv =
          AcvPairKernel(db.column(a).data(), db.column(b).data(), head_col,
                        m, k);
      if (acv >= config.gamma_hyper * best_edge) {
        HM_RETURN_IF_ERROR(
            graph.AddEdge({a, b}, static_cast<VertexId>(h), acv).status());
        pair_acv_sum += acv;
        ++local.pairs_kept;
      }
      return Status::OK();
    };
    if (config.restrict_pairs_to_edges) {
      const std::vector<VertexId>& sources = sources_of[h];
      for (size_t i = 0; i < sources.size(); ++i) {
        for (size_t j = i + 1; j < sources.size(); ++j) {
          HM_RETURN_IF_ERROR(consider(sources[i], sources[j]));
        }
      }
    } else {
      for (size_t a = 0; a < n; ++a) {
        if (a == h) continue;
        for (size_t b = a + 1; b < n; ++b) {
          if (b == h) continue;
          HM_RETURN_IF_ERROR(
              consider(static_cast<VertexId>(a), static_cast<VertexId>(b)));
        }
      }
    }
  }

  local.mean_edge_acv = local.edges_kept == 0
                            ? 0.0
                            : edge_acv_sum / static_cast<double>(
                                                 local.edges_kept);
  local.mean_pair_acv =
      local.pairs_kept == 0
          ? 0.0
          : pair_acv_sum / static_cast<double>(local.pairs_kept);
  local.elapsed_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return graph;
}

}  // namespace hypermine::core
