#include "core/classifier.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

AssociationClassifier::AssociationClassifier(const DirectedHypergraph* graph,
                                             const Database* train)
    : graph_(graph), train_(train) {}

StatusOr<AssociationClassifier> AssociationClassifier::Create(
    const DirectedHypergraph* graph, const Database* train) {
  if (graph == nullptr || train == nullptr) {
    return Status::InvalidArgument("classifier: null graph or database");
  }
  if (graph->num_vertices() != train->num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("classifier: %zu vertices vs %zu attributes",
                  graph->num_vertices(), train->num_attributes()));
  }
  if (train->num_observations() == 0) {
    return Status::FailedPrecondition("classifier: empty training database");
  }
  AssociationClassifier classifier(graph, train);
  // Majority values are the no-rule fallback and the vote tie seed.
  classifier.majority_.resize(train->num_attributes());
  const size_t k = train->num_values();
  std::vector<size_t> counts(k);
  for (AttrId a = 0; a < train->num_attributes(); ++a) {
    std::fill(counts.begin(), counts.end(), 0u);
    for (ValueId v : train->column(a)) ++counts[v];
    classifier.majority_[a] = static_cast<ValueId>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }
  return classifier;
}

const AssociationTable* AssociationClassifier::TableFor(EdgeId id) const {
  auto it = tables_.find(id);
  if (it != tables_.end()) return it->second.get();
  const Hyperedge& e = graph_->edge(id);
  std::vector<AttrId> tail(e.TailSpan().begin(), e.TailSpan().end());
  auto table_or = AssociationTable::Build(*train_, std::move(tail), e.head);
  HM_CHECK_OK(table_or.status());
  auto inserted = tables_.emplace(
      id, std::make_unique<AssociationTable>(std::move(table_or).value()));
  return inserted.first->second.get();
}

ValueId AssociationClassifier::MajorityValue(AttrId attribute) const {
  HM_CHECK_LT(attribute, majority_.size());
  return majority_[attribute];
}

StatusOr<AssociationClassifier::Prediction> AssociationClassifier::Predict(
    const std::vector<int16_t>& evidence, AttrId target) const {
  if (evidence.size() != train_->num_attributes()) {
    return Status::InvalidArgument(
        "classifier: evidence must have one slot per attribute");
  }
  if (target >= train_->num_attributes()) {
    return Status::OutOfRange("classifier: target out of range");
  }
  if (evidence[target] != kUnknown) {
    return Status::InvalidArgument(
        "classifier: target must not carry evidence");
  }
  const size_t k = train_->num_values();
  for (size_t a = 0; a < evidence.size(); ++a) {
    if (evidence[a] != kUnknown &&
        (evidence[a] < 0 || static_cast<size_t>(evidence[a]) >= k)) {
      return Status::OutOfRange(
          StrFormat("classifier: evidence value %d of attribute %zu",
                    evidence[a], a));
    }
  }

  // Lines 3-9 of Algorithm 9: accumulate Supp * Conf votes per value.
  std::vector<double> val(k, 0.0);
  size_t rules_used = 0;
  std::vector<ValueId> tail_values;
  for (EdgeId id : graph_->InEdgeIds(target)) {
    const Hyperedge& e = graph_->edge(id);
    bool tail_known = true;
    tail_values.clear();
    for (VertexId u : e.TailSpan()) {
      if (evidence[u] == kUnknown) {
        tail_known = false;
        break;
      }
      tail_values.push_back(static_cast<ValueId>(evidence[u]));
    }
    if (!tail_known) continue;
    const AssociationTable* table = TableFor(id);
    const AssocTableRow& row = table->RowFor(tail_values);
    if (row.tail_count == 0) continue;  // Combination unseen in training.
    val[row.best_head_value] += row.support * row.confidence;
    ++rules_used;
  }

  Prediction prediction;
  prediction.rules_used = rules_used;
  double total = 0.0;
  for (double v : val) total += v;
  if (rules_used == 0 || total <= 0.0) {
    prediction.value = majority_[target];
    prediction.confidence = 0.0;
    return prediction;
  }
  size_t best = 0;
  for (size_t y = 1; y < k; ++y) {
    if (val[y] > val[best]) best = y;
  }
  prediction.value = static_cast<ValueId>(best);
  prediction.confidence = val[best] / total;  // Line 11 normalization.
  return prediction;
}

StatusOr<ClassifierEvaluation> EvaluateAssociationClassifier(
    const DirectedHypergraph& graph, const Database& train_db,
    const Database& eval_db, const std::vector<VertexId>& dominator) {
  if (eval_db.num_attributes() != train_db.num_attributes() ||
      eval_db.num_values() != train_db.num_values()) {
    return Status::InvalidArgument(
        "evaluate: train/eval attribute layout mismatch");
  }
  if (eval_db.num_observations() == 0) {
    return Status::FailedPrecondition("evaluate: empty evaluation database");
  }
  HM_ASSIGN_OR_RETURN(AssociationClassifier classifier,
                      AssociationClassifier::Create(&graph, &train_db));

  std::vector<char> in_dom(train_db.num_attributes(), 0);
  for (VertexId v : dominator) {
    if (v >= train_db.num_attributes()) {
      return Status::OutOfRange("evaluate: dominator member out of range");
    }
    in_dom[v] = 1;
  }

  ClassifierEvaluation eval;
  eval.num_observations = eval_db.num_observations();
  size_t rule_hits = 0;
  size_t total_predictions = 0;

  std::vector<int16_t> evidence(train_db.num_attributes(),
                                AssociationClassifier::kUnknown);
  const size_t m = eval_db.num_observations();
  for (AttrId target = 0; target < train_db.num_attributes(); ++target) {
    if (in_dom[target]) continue;
    size_t correct = 0;
    for (size_t o = 0; o < m; ++o) {
      for (AttrId a = 0; a < train_db.num_attributes(); ++a) {
        evidence[a] = in_dom[a] ? eval_db.value(o, a)
                                : AssociationClassifier::kUnknown;
      }
      HM_ASSIGN_OR_RETURN(AssociationClassifier::Prediction prediction,
                          classifier.Predict(evidence, target));
      correct += prediction.value == eval_db.value(o, target) ? 1 : 0;
      rule_hits += prediction.rules_used > 0 ? 1 : 0;
      ++total_predictions;
    }
    eval.targets.push_back(target);
    eval.per_target.push_back(static_cast<double>(correct) /
                              static_cast<double>(m));
  }
  if (eval.per_target.empty()) {
    return Status::FailedPrecondition(
        "evaluate: dominator covers every attribute, nothing to predict");
  }
  double acc = 0.0;
  for (double c : eval.per_target) acc += c;
  eval.mean_confidence = acc / static_cast<double>(eval.per_target.size());
  eval.rule_coverage = total_predictions == 0
                           ? 0.0
                           : static_cast<double>(rule_hits) /
                                 static_cast<double>(total_predictions);
  return eval;
}

}  // namespace hypermine::core
