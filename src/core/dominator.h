#ifndef HYPERMINE_CORE_DOMINATOR_H_
#define HYPERMINE_CORE_DOMINATOR_H_

#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hypermine::core {

/// Options shared by both greedy dominator algorithms of Section 4.1.
struct DominatorConfig {
  /// Pre-filter: drop hyperedges with ACV below this value (Section 5.4's
  /// ACV-threshold). 0 keeps everything.
  double acv_threshold = 0.0;
  /// Stop once the best candidate no longer covers any vertex besides
  /// itself (the remaining vertices carry no predictive structure). This
  /// reproduces the paper's dominators that cover 78..99% of the series
  /// rather than degenerating into "add every isolated vertex".
  bool stop_when_only_self_gain = true;
  /// Hard cap on dominator size; 0 = no cap.
  size_t max_size = 0;

  // --- Algorithm 6 specific ---
  /// Enhancement 1 (Algorithm 7): break effectiveness ties toward the
  /// candidate tail set that adds the fewest new vertices to the dominator.
  bool enhancement1 = true;
  /// Enhancement 2 (Algorithm 8): drop tail sets already inside the
  /// dominator from the candidate pool.
  bool enhancement2 = true;
  /// When true, α(t*) counts each *distinct head* once instead of once per
  /// hyperedge (the paper's pseudocode counts per hyperedge; this flag is
  /// an ablation, default off = literal).
  bool dedupe_heads_in_gain = false;
};

/// Result of a dominator computation. `dominator` is sorted ascending.
struct DominatorResult {
  std::vector<VertexId> dominator;
  /// covered[v] for every hypergraph vertex.
  std::vector<char> covered;
  /// Number of members of S covered, and the fraction |covered ∩ S| / |S|.
  size_t covered_in_s = 0;
  double fraction_covered = 0.0;
  size_t iterations = 0;

  std::string ToString() const;
};

/// Algorithm 5: greedy dominator via the graph-dominating-set adaptation.
/// Picks, per iteration, the vertex u maximizing
///   α(u) = [u ∈ S uncovered] + Σ_{v ∈ S uncovered} max_{e: u∈T(e), v=H(e)}
///            w(e) / |T(e) - DomSet|,
/// then re-derives coverage (v covered iff v ∈ DomSet or some hyperedge
/// with tail ⊆ DomSet heads into it). `s` lists the vertices to cover
/// (empty = all vertices). O(|S| * |E|).
StatusOr<DominatorResult> ComputeDominatorGreedyDS(
    const DirectedHypergraph& graph, std::vector<VertexId> s,
    const DominatorConfig& config = {});

/// Algorithm 6 (+ Enhancements 1 and 2): greedy dominator via the set-cover
/// adaptation. Candidates are the tail sets of hyperedges; effectiveness
/// α(t*) counts uncovered S-members inside t* plus heads newly covered by
/// hyperedges whose tail fits within t*. O(|S| * |E|^2) worst case.
StatusOr<DominatorResult> ComputeDominatorSetCover(
    const DirectedHypergraph& graph, std::vector<VertexId> s,
    const DominatorConfig& config = {});

/// Recomputes coverage of `dominator` over `s` from scratch (property
/// checking): v is covered iff v ∈ dominator or some hyperedge with
/// T(e) ⊆ dominator has head v. Returns the covered fraction of S.
double VerifyDominatorCoverage(const DirectedHypergraph& graph,
                               const std::vector<VertexId>& s,
                               const std::vector<VertexId>& dominator);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_DOMINATOR_H_
