#include "core/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace hypermine::core {

std::vector<VertexId> SubstituteTail(std::span<const VertexId> tail,
                                     VertexId from, VertexId to) {
  std::vector<VertexId> out;
  out.reserve(tail.size());
  for (VertexId v : tail) {
    if (v == from) continue;
    if (v != to) out.push_back(v);
  }
  out.push_back(to);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Shared implementation of Definition 3.11. For out-similarity the match
/// of f in a2's edge set is the edge with tail (T(f) - {a2}) ∪ {a1} and the
/// same head; for in-similarity it is the edge with the same tail and head
/// a1. Unmatched edges on either side pair with the empty hyperedge.
double SimilarityImpl(const DirectedHypergraph& graph, VertexId a1,
                      VertexId a2, bool out_side) {
  if (a1 == a2) return 1.0;
  const std::vector<EdgeId>& side1 =
      out_side ? graph.OutEdgeIds(a1) : graph.InEdgeIds(a1);
  const std::vector<EdgeId>& side2 =
      out_side ? graph.OutEdgeIds(a2) : graph.InEdgeIds(a2);

  double num = 0.0;
  double den = 0.0;
  std::unordered_set<EdgeId> matched_on_side1;

  for (EdgeId f_id : side2) {
    const Hyperedge& f = graph.edge(f_id);
    std::optional<EdgeId> e_id;
    if (out_side) {
      std::vector<VertexId> sub = SubstituteTail(f.TailSpan(), a2, a1);
      e_id = graph.FindEdge(sub, f.head);
    } else {
      // Head substitution f|H: a2 -> a1 (Notation 3.9(4)); heads are
      // singletons, so the substituted head is exactly a1.
      e_id = graph.FindEdge(f.TailSpan(), a1);
    }
    if (e_id.has_value()) {
      double we = graph.edge(*e_id).weight;
      double wf = f.weight;
      num += std::min(we, wf);
      den += std::max(we, wf);
      matched_on_side1.insert(*e_id);
    } else {
      // (∅, f): f has no counterpart in a1's edge set.
      den += f.weight;
    }
  }
  for (EdgeId e_id : side1) {
    if (matched_on_side1.count(e_id) == 0) {
      // (e, ∅): e has no counterpart in a2's edge set.
      den += graph.edge(e_id).weight;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double OutSimilarity(const DirectedHypergraph& graph, VertexId a1,
                     VertexId a2) {
  HM_CHECK_LT(a1, graph.num_vertices());
  HM_CHECK_LT(a2, graph.num_vertices());
  return SimilarityImpl(graph, a1, a2, /*out_side=*/true);
}

double InSimilarity(const DirectedHypergraph& graph, VertexId a1,
                    VertexId a2) {
  HM_CHECK_LT(a1, graph.num_vertices());
  HM_CHECK_LT(a2, graph.num_vertices());
  return SimilarityImpl(graph, a1, a2, /*out_side=*/false);
}

size_t SimilarityGraph::TriIndex(size_t i, size_t j) const {
  HM_CHECK_NE(i, j);
  if (i > j) std::swap(i, j);
  const size_t n = members_.size();
  // Row-major upper triangle: offset of row i plus (j - i - 1).
  return i * n - (i * (i + 1)) / 2 + (j - i - 1);
}

StatusOr<SimilarityGraph> SimilarityGraph::Build(
    const DirectedHypergraph& graph, std::vector<VertexId> members) {
  if (members.empty()) {
    members.resize(graph.num_vertices());
    for (size_t v = 0; v < members.size(); ++v) {
      members[v] = static_cast<VertexId>(v);
    }
  }
  for (VertexId v : members) {
    if (v >= graph.num_vertices()) {
      return Status::OutOfRange("SimilarityGraph: member out of range");
    }
  }
  if (members.size() < 2) {
    return Status::InvalidArgument("SimilarityGraph: need >= 2 members");
  }
  SimilarityGraph out;
  out.members_ = std::move(members);
  const size_t n = out.members_.size();
  out.dist_.resize(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double in_sim = InSimilarity(graph, out.members_[i], out.members_[j]);
      double out_sim = OutSimilarity(graph, out.members_[i], out.members_[j]);
      out.dist_[out.TriIndex(i, j)] = 1.0 - (in_sim + out_sim) / 2.0;
    }
  }
  return out;
}

double SimilarityGraph::Distance(size_t i, size_t j) const {
  HM_CHECK_LT(i, members_.size());
  HM_CHECK_LT(j, members_.size());
  if (i == j) return 0.0;
  return dist_[TriIndex(i, j)];
}

double SimilarityGraph::MeanDistance() const {
  if (dist_.empty()) return 0.0;
  double acc = 0.0;
  for (double d : dist_) acc += d;
  return acc / static_cast<double>(dist_.size());
}

approx::DistanceFn SimilarityGraph::DistanceFn() const {
  return [this](size_t i, size_t j) { return Distance(i, j); };
}

StatusOr<approx::Clustering> ClusterSimilarAttributes(
    const SimilarityGraph& graph, size_t t, size_t first_center) {
  return approx::GonzalezTClustering(graph.size(), t, graph.DistanceFn(),
                                     first_center);
}

}  // namespace hypermine::core
