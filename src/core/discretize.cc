#include "core/discretize.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

StatusOr<std::vector<double>> KThresholdVector(std::vector<double> series,
                                               size_t k) {
  if (series.empty()) {
    return Status::InvalidArgument("KThresholdVector: empty series");
  }
  if (k < 2 || k > kMaxValues) {
    return Status::InvalidArgument(
        StrFormat("KThresholdVector: k=%zu outside [2, %zu]", k, kMaxValues));
  }
  std::sort(series.begin(), series.end());
  const size_t n = series.size();
  std::vector<double> thresholds;
  thresholds.reserve(k - 1);
  for (size_t i = 1; i < k; ++i) {
    size_t idx = (i * n) / k;  // floor((i/k) * N)
    if (idx >= n) idx = n - 1;
    thresholds.push_back(series[idx]);
  }
  return thresholds;
}

std::vector<ValueId> DiscretizeWithThresholds(
    const std::vector<double>& series,
    const std::vector<double>& thresholds) {
  HM_CHECK(std::is_sorted(thresholds.begin(), thresholds.end()));
  HM_CHECK_LT(thresholds.size(), kMaxValues);
  std::vector<ValueId> out;
  out.reserve(series.size());
  for (double x : series) {
    // Bucket i covers [a_i, a_{i+1}); upper_bound yields the first threshold
    // strictly greater than x, whose index is exactly the bucket id.
    size_t bucket = static_cast<size_t>(
        std::upper_bound(thresholds.begin(), thresholds.end(), x) -
        thresholds.begin());
    out.push_back(static_cast<ValueId>(bucket));
  }
  return out;
}

StatusOr<std::vector<ValueId>> EquiDepthDiscretize(
    const std::vector<double>& series, size_t k) {
  HM_ASSIGN_OR_RETURN(std::vector<double> thresholds,
                      KThresholdVector(series, k));
  return DiscretizeWithThresholds(series, thresholds);
}

StatusOr<std::vector<ValueId>> RangeBucketDiscretize(
    const std::vector<double>& series,
    const std::vector<double>& boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument("RangeBucketDiscretize: need >=2 bounds");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end()) ||
      std::adjacent_find(boundaries.begin(), boundaries.end()) !=
          boundaries.end()) {
    return Status::InvalidArgument(
        "RangeBucketDiscretize: boundaries must be strictly increasing");
  }
  if (boundaries.size() - 1 > kMaxValues) {
    return Status::InvalidArgument("RangeBucketDiscretize: too many buckets");
  }
  std::vector<ValueId> out;
  out.reserve(series.size());
  for (double x : series) {
    if (x < boundaries.front() || x >= boundaries.back()) {
      return Status::OutOfRange(
          StrFormat("RangeBucketDiscretize: %g outside [%g, %g)", x,
                    boundaries.front(), boundaries.back()));
    }
    size_t bucket = static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), x) -
        boundaries.begin() - 1);
    out.push_back(static_cast<ValueId>(bucket));
  }
  return out;
}

StatusOr<std::vector<ValueId>> FloorDivDiscretize(
    const std::vector<double>& series, double divisor) {
  if (divisor <= 0.0) {
    return Status::InvalidArgument("FloorDivDiscretize: divisor must be > 0");
  }
  std::vector<ValueId> out;
  out.reserve(series.size());
  for (double x : series) {
    double bucket = std::floor(x / divisor);
    if (bucket < 0.0 || bucket >= static_cast<double>(kMaxValues)) {
      return Status::OutOfRange(
          StrFormat("FloorDivDiscretize: floor(%g / %g) outside [0, %zu)", x,
                    divisor, kMaxValues));
    }
    out.push_back(static_cast<ValueId>(bucket));
  }
  return out;
}

StatusOr<Database> DatabaseFromColumns(
    std::vector<std::string> attribute_names, size_t num_values,
    const std::vector<std::vector<ValueId>>& columns) {
  HM_ASSIGN_OR_RETURN(Database db,
                      Database::Create(std::move(attribute_names), num_values));
  HM_RETURN_IF_ERROR(db.AddColumns(columns));
  return db;
}

}  // namespace hypermine::core
