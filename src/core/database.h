#ifndef HYPERMINE_CORE_DATABASE_H_
#define HYPERMINE_CORE_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hypermine::core {

/// Value identifier within the fixed finite value set V = {0, ..., k-1}.
/// (The thesis writes values 1..k; this library is 0-based internally and
/// presentation code adds 1 when mirroring the paper's tables.)
using ValueId = uint8_t;

/// Attribute index within a database.
using AttrId = uint32_t;

/// Largest supported |V|; bounded so pair value codes fit in 16 bits.
inline constexpr size_t kMaxValues = 64;

/// A database D(A, O, V) of Section 3.1: m observations (rows) over n
/// multi-valued attributes (columns), each cell holding a value from the
/// fixed finite set V = {0, ..., num_values-1}. Storage is column-major:
/// every association-mining kernel scans whole attribute columns.
class Database {
 public:
  /// Creates an empty database with named attributes over k values.
  /// Fails when names are empty/duplicated or k is not in [2, kMaxValues].
  static StatusOr<Database> Create(std::vector<std::string> attribute_names,
                                   size_t num_values);

  /// Appends one observation; `values` must have one entry per attribute,
  /// each < num_values().
  Status AddObservation(const std::vector<ValueId>& values);

  /// Appends a whole column-major data set: columns[a][o] is the value of
  /// attribute a in observation o. All columns must have equal lengths.
  Status AddColumns(const std::vector<std::vector<ValueId>>& columns);

  size_t num_attributes() const { return names_.size(); }
  size_t num_observations() const { return num_observations_; }
  size_t num_values() const { return num_values_; }

  ValueId value(size_t observation, AttrId attribute) const;
  const std::vector<ValueId>& column(AttrId attribute) const;

  const std::string& attribute_name(AttrId attribute) const;
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Index of a named attribute; fails when unknown.
  StatusOr<AttrId> AttributeIndex(std::string_view name) const;

  /// Row-restricted copy containing observations [begin, end).
  StatusOr<Database> Slice(size_t begin, size_t end) const;

 private:
  Database(std::vector<std::string> names, size_t num_values)
      : names_(std::move(names)), num_values_(num_values) {}

  std::vector<std::string> names_;
  size_t num_values_;
  size_t num_observations_ = 0;
  /// columns_[a][o] = value of attribute a in observation o.
  std::vector<std::vector<ValueId>> columns_;
};

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_DATABASE_H_
