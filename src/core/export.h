#ifndef HYPERMINE_CORE_EXPORT_H_
#define HYPERMINE_CORE_EXPORT_H_

#include <string>
#include <vector>

#include "approx/gonzalez.h"
#include "core/hypergraph.h"
#include "core/similarity.h"
#include "util/status.h"

namespace hypermine::core {

/// Serializes a hypergraph to CSV: a leading "vertices" record listing all
/// vertex names ('|'-separated), then one record per hyperedge with the
/// tail ('|'-separated names), head name, and weight. Round-trips through
/// ReadHypergraphCsv, including isolated vertices. For the serving path,
/// serve/snapshot.h provides an equivalent (and interconvertible) binary
/// format that loads without parsing; serve::LoadHypergraph accepts both.
Status WriteHypergraphCsv(const DirectedHypergraph& graph,
                          const std::string& path);

/// Reads a hypergraph written by WriteHypergraphCsv.
StatusOr<DirectedHypergraph> ReadHypergraphCsv(const std::string& path);

/// Parses WriteHypergraphCsv output from an in-memory buffer (the
/// file-reading half of ReadHypergraphCsv split out, so callers that
/// already hold the bytes — e.g. serve::LoadHypergraph's format sniffing —
/// do not re-read the file).
StatusOr<DirectedHypergraph> ParseHypergraphCsv(const std::string& text);

/// One display node of a Figure 5.3-style cluster drawing.
struct ClusterNode {
  std::string label;
  /// Display group (the paper colors by sector); same group = same color.
  std::string group;
};

/// Writes a Graphviz DOT rendering of a clustering over a similarity graph
/// in the layout of Figure 5.3: cluster centers as boxed nodes, members
/// attached to their center, centers interconnected. `nodes` must be
/// index-aligned with the similarity graph's members; clusters smaller
/// than `min_cluster_size` are omitted (the paper shows size > 6).
Status WriteClustersDot(const SimilarityGraph& graph,
                        const approx::Clustering& clustering,
                        const std::vector<ClusterNode>& nodes,
                        size_t min_cluster_size, const std::string& path);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_EXPORT_H_
