#include "core/value_planes.h"

#include <cstring>

#include "core/assoc_table.h"

namespace hypermine::core {

uint64_t ChunkedFnv1a(const void* data, size_t size, uint64_t seed) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, bytes + i, sizeof(chunk));
    hash ^= chunk;
    hash *= kPrime;
  }
  for (; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t DatabaseFingerprint(const Database& db) {
  uint64_t dims[3] = {db.num_attributes(), db.num_observations(),
                      db.num_values()};
  uint64_t hash = ChunkedFnv1a(dims, sizeof(dims));
  for (size_t a = 0; a < db.num_attributes(); ++a) {
    const auto& column = db.column(static_cast<AttrId>(a));
    hash = ChunkedFnv1a(column.data(), column.size() * sizeof(ValueId), hash);
  }
  return hash;
}

bool ValuePlanes::Matches(const Database& db) const {
  return num_attributes == db.num_attributes() &&
         num_observations == db.num_observations() &&
         num_values == db.num_values() &&
         words_per_plane == PlaneWords(db.num_observations()) &&
         words.size() == num_attributes * words_per_column() &&
         fingerprint == DatabaseFingerprint(db);
}

ValuePlanes PackDatabasePlanes(const Database& db) {
  ValuePlanes planes;
  planes.num_attributes = db.num_attributes();
  planes.num_observations = db.num_observations();
  planes.num_values = db.num_values();
  planes.words_per_plane = PlaneWords(db.num_observations());
  planes.fingerprint = DatabaseFingerprint(db);
  planes.words.resize(planes.num_attributes * planes.words_per_column());
  for (size_t a = 0; a < planes.num_attributes; ++a) {
    PackValuePlanes(db.column(static_cast<AttrId>(a)).data(),
                    planes.num_observations, planes.num_values,
                    &planes.words[a * planes.words_per_column()]);
  }
  return planes;
}

}  // namespace hypermine::core
