#ifndef HYPERMINE_CORE_DISCRETIZE_H_
#define HYPERMINE_CORE_DISCRETIZE_H_

#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace hypermine::core {

/// Computes the k-threshold vector of Section 5.1.1: a (k-1)-tuple
/// <a_1, ..., a_{k-1}> such that a_i is the floor((i/k)*N)'th entry of the
/// non-decreasingly sorted series, giving an equi-depth partition into k
/// buckets. Requires k >= 2 and a non-empty series.
StatusOr<std::vector<double>> KThresholdVector(std::vector<double> series,
                                               size_t k);

/// Assigns each entry its bucket: value i iff entry lies in [a_i, a_{i+1})
/// with a_0 = -inf and a_k = +inf (0-based bucket ids 0..k-1; the thesis
/// writes 1..k). Thresholds must be sorted.
std::vector<ValueId> DiscretizeWithThresholds(
    const std::vector<double>& series, const std::vector<double>& thresholds);

/// One-shot equi-depth discretization: KThresholdVector + bucket assignment.
StatusOr<std::vector<ValueId>> EquiDepthDiscretize(
    const std::vector<double>& series, size_t k);

/// Range-bucket discretization used by the Chapter 3 examples (gene and
/// personal-interest databases): value i iff entry lies in
/// [boundaries[i], boundaries[i+1]); entries outside [front, back) fail.
/// boundaries must be strictly increasing with >= 2 entries; the bucket
/// count is boundaries.size() - 1.
StatusOr<std::vector<ValueId>> RangeBucketDiscretize(
    const std::vector<double>& series, const std::vector<double>& boundaries);

/// floor(a / divisor) discretization of the patient database example
/// (Table 3.2). Results must land in [0, kMaxValues); divisor must be > 0.
StatusOr<std::vector<ValueId>> FloorDivDiscretize(
    const std::vector<double>& series, double divisor);

/// Builds a Database from already-discretized per-attribute columns.
StatusOr<Database> DatabaseFromColumns(
    std::vector<std::string> attribute_names, size_t num_values,
    const std::vector<std::vector<ValueId>>& columns);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_DISCRETIZE_H_
