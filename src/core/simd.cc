#include "core/simd.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

// The ONLY translation unit allowed to include ISA headers
// (tools/lint_invariants.py enforces this): every other file talks to the
// dispatch table, so ISA-specific code cannot leak past this seam. The
// vector bodies carry __attribute__((target(...))) instead of the build
// using global -mavx* flags — the binary stays runnable on any x86-64 and
// picks its tier at startup from cpuid.
#if defined(__x86_64__) && defined(__GNUC__)
#define HYPERMINE_SIMD_X86 1
#include <immintrin.h>
#else
#define HYPERMINE_SIMD_X86 0
#endif

namespace hypermine::core::simd {
namespace {

size_t ScalarPopcount(const uint64_t* a, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w]));
  }
  return count;
}

size_t ScalarPopcountAnd(const uint64_t* a, const uint64_t* b, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

size_t ScalarAndStorePopcount(const uint64_t* a, const uint64_t* b,
                              uint64_t* out, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    out[w] = a[w] & b[w];
    count += static_cast<size_t>(std::popcount(out[w]));
  }
  return count;
}

#if HYPERMINE_SIMD_X86

/// Per-64-bit-lane popcount of a 256-bit vector (Mula's vpshufb method):
/// each byte is split into nibbles, a 16-entry LUT gives each nibble's
/// popcount, and _mm256_sad_epu8 horizontally sums bytes into the four
/// 64-bit lanes. Exact for every input, like all the tiers.
__attribute__((target("avx2"))) inline __m256i Popcount64x4(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3,  //
                                       1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3,  //
                                       1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  __m256i lo = _mm256_and_si256(v, mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
  __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                   _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline size_t Sum64x4(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) size_t Avx2Popcount(const uint64_t* a,
                                                    size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    acc = _mm256_add_epi64(acc, Popcount64x4(v));
  }
  size_t count = Sum64x4(acc);
  for (; w < words; ++w) count += static_cast<size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((target("avx2"))) size_t Avx2PopcountAnd(const uint64_t* a,
                                                       const uint64_t* b,
                                                       size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, Popcount64x4(v));
  }
  size_t count = Sum64x4(acc);
  for (; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

__attribute__((target("avx2"))) size_t Avx2AndStorePopcount(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), v);
    acc = _mm256_add_epi64(acc, Popcount64x4(v));
  }
  size_t count = Sum64x4(acc);
  for (; w < words; ++w) {
    out[w] = a[w] & b[w];
    count += static_cast<size_t>(std::popcount(out[w]));
  }
  return count;
}

#define HYPERMINE_AVX512_TARGET target("avx512f,avx512vpopcntdq")

__attribute__((HYPERMINE_AVX512_TARGET)) size_t Avx512Popcount(
    const uint64_t* a, size_t words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(
                                    static_cast<const void*>(a + w))));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) count += static_cast<size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((HYPERMINE_AVX512_TARGET)) size_t Avx512PopcountAnd(
    const uint64_t* a, const uint64_t* b, size_t words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    __m512i v = _mm512_and_si512(
        _mm512_loadu_si512(static_cast<const void*>(a + w)),
        _mm512_loadu_si512(static_cast<const void*>(b + w)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

__attribute__((HYPERMINE_AVX512_TARGET)) size_t Avx512AndStorePopcount(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    __m512i v = _mm512_and_si512(
        _mm512_loadu_si512(static_cast<const void*>(a + w)),
        _mm512_loadu_si512(static_cast<const void*>(b + w)));
    _mm512_storeu_si512(static_cast<void*>(out + w), v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) {
    out[w] = a[w] & b[w];
    count += static_cast<size_t>(std::popcount(out[w]));
  }
  return count;
}

#endif  // HYPERMINE_SIMD_X86

constexpr Ops kScalarOps = {Tier::kScalar, "scalar", ScalarPopcount,
                            ScalarPopcountAnd, ScalarAndStorePopcount};
#if HYPERMINE_SIMD_X86
constexpr Ops kAvx2Ops = {Tier::kAvx2, "avx2", Avx2Popcount, Avx2PopcountAnd,
                          Avx2AndStorePopcount};
constexpr Ops kAvx512Ops = {Tier::kAvx512, "avx512", Avx512Popcount,
                            Avx512PopcountAnd, Avx512AndStorePopcount};
#endif

/// ForceActiveTier override; null until the first Force. ActiveOps checks
/// this before the once-resolved environment choice, so a Force always
/// wins and never races the lazy env resolution.
std::atomic<const Ops*> g_forced_ops{nullptr};

const Ops& ResolveFromEnvironment() {
  std::optional<Tier> requested;
  const char* env = std::getenv("HYPERMINE_SIMD");
  if (env != nullptr && *env != '\0') {
    requested = ParseTier(env);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "hypermine: HYPERMINE_SIMD=%s is not scalar|avx2|avx512; "
                   "using best supported tier\n",
                   env);
    }
  }
  return OpsForTier(ResolveRequestedTier(requested, BestSupportedTier()));
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Tier> ParseTier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  return std::nullopt;
}

bool TierSupported(Tier tier) {
#if HYPERMINE_SIMD_X86
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      // vpopcntq needs the VPOPCNTDQ extension on top of the AVX-512
      // foundation; __builtin_cpu_supports folds in the OS XSAVE state.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return tier == Tier::kScalar;
#endif
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx512)) return Tier::kAvx512;
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (TierSupported(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (TierSupported(Tier::kAvx512)) tiers.push_back(Tier::kAvx512);
  return tiers;
}

const Ops& OpsForTier(Tier tier) {
  HM_CHECK(TierSupported(tier));
#if HYPERMINE_SIMD_X86
  switch (tier) {
    case Tier::kScalar:
      return kScalarOps;
    case Tier::kAvx2:
      return kAvx2Ops;
    case Tier::kAvx512:
      return kAvx512Ops;
  }
#endif
  return kScalarOps;
}

const Ops& ActiveOps() {
  const Ops* forced = g_forced_ops.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const Ops& env_resolved = ResolveFromEnvironment();
  return env_resolved;
}

void ForceActiveTier(Tier tier) {
  const Ops& ops =
      OpsForTier(ResolveRequestedTier(tier, BestSupportedTier()));
  g_forced_ops.store(&ops, std::memory_order_release);
}

Tier ResolveRequestedTier(std::optional<Tier> requested, Tier best) {
  if (!requested.has_value()) return best;
  if (*requested <= best && TierSupported(*requested)) return *requested;
  return best;
}

}  // namespace hypermine::core::simd
