#ifndef HYPERMINE_CORE_HYPERGRAPH_H_
#define HYPERMINE_CORE_HYPERGRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace hypermine::core {

/// Vertex identifier within a hypergraph.
using VertexId = uint32_t;
/// Hyperedge identifier (index into edges()).
using EdgeId = uint32_t;

/// Sentinel for absent tail slots.
inline constexpr VertexId kNoVertex = 0xFFFFFFFFu;
/// Maximum tail size supported by the structure. Association hypergraphs
/// (Definition 3.6) restrict |T| <= 2; the structure itself allows 3 so the
/// general notions of Chapter 3 (e.g. Example 3.12) are expressible.
inline constexpr size_t kMaxTailSize = 3;
/// Maximum supported vertex count. Lookup keys pack four 32-bit ids into a
/// 128-bit key, so any id below the kNoVertex sentinel is addressable —
/// the 10⁵–10⁶-vertex regime of mined hypergraphs fits with room to spare.
inline constexpr size_t kMaxVertices = 0xFFFFFFFE;

/// A directed hyperedge (T, H) with 1 <= |T| <= 3 and |H| = 1. `tail` is
/// sorted ascending with kNoVertex padding. `weight` carries ACV(T, H).
struct Hyperedge {
  VertexId tail[kMaxTailSize] = {kNoVertex, kNoVertex, kNoVertex};
  VertexId head = kNoVertex;
  double weight = 0.0;

  size_t tail_size() const {
    if (tail[1] == kNoVertex) return 1;
    return tail[2] == kNoVertex ? 2 : 3;
  }
  bool is_pair() const { return tail_size() == 2; }
  bool TailContains(VertexId v) const {
    return tail[0] == v || tail[1] == v || tail[2] == v;
  }
  std::span<const VertexId> TailSpan() const {
    return {tail, tail_size()};
  }
};

/// A directed hypergraph over named vertices with small tail sets and
/// singleton heads — the association hypergraph of Definition 3.6.
/// Maintains in/out incidence lists and an exact-edge lookup index (needed
/// by the similarity measures of Definition 3.11).
class DirectedHypergraph {
 public:
  /// Creates a hypergraph with `names.size()` vertices. Fails when names is
  /// empty or larger than kMaxVertices.
  static StatusOr<DirectedHypergraph> Create(std::vector<std::string> names);

  /// Convenience with synthetic vertex names "v0", "v1", ...
  static StatusOr<DirectedHypergraph> CreateAnonymous(size_t num_vertices);

  size_t num_vertices() const { return names_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::string& vertex_name(VertexId v) const;
  const std::vector<std::string>& vertex_names() const { return names_; }

  /// Adds a hyperedge; tail must hold 1..3 distinct in-range vertices, none
  /// equal to head; weight in [0, 1]. Duplicate (T, H) combinations are
  /// rejected with kAlreadyExists.
  StatusOr<EdgeId> AddEdge(std::vector<VertexId> tail, VertexId head,
                           double weight);

  const Hyperedge& edge(EdgeId id) const;
  const std::vector<Hyperedge>& edges() const { return edges_; }

  /// Edge ids whose head is v (in_H(v), Notation 3.9(2)).
  const std::vector<EdgeId>& InEdgeIds(VertexId v) const;
  /// Edge ids whose tail contains v (out_H(v), Notation 3.9(1)).
  const std::vector<EdgeId>& OutEdgeIds(VertexId v) const;

  /// Exact lookup of a (T, H) combination; tail order does not matter.
  std::optional<EdgeId> FindEdge(std::span<const VertexId> tail,
                                 VertexId head) const;

  /// Weighted in-degree of Section 5.2: sum of w(e) over e with head v.
  double WeightedInDegree(VertexId v) const;
  /// Weighted out-degree of Section 5.2: sum of w(e)/|T(e)| over e with v
  /// in the tail.
  double WeightedOutDegree(VertexId v) const;

  /// Counts of |T|=1 directed edges and |T|=2 directed hyperedges.
  size_t NumDirectedEdges() const { return num_by_tail_size_[0]; }
  size_t NumPairEdges() const { return num_by_tail_size_[1]; }

  /// Mean weight of directed edges / 2-to-1 hyperedges (0 when none).
  double MeanDirectedEdgeWeight() const;
  double MeanPairEdgeWeight() const;

  /// Copy containing only edges with weight >= threshold (the
  /// ACV-threshold pruning of Section 5.4).
  DirectedHypergraph FilteredByWeight(double threshold) const;

  /// Weight value such that the top `fraction` of edges (by weight) are
  /// >= the returned threshold; fraction in (0, 1]. Mirrors the paper's
  /// "top 40/30/20% directed hyperedges w.r.t. ACVs" thresholds.
  StatusOr<double> WeightQuantileThreshold(double fraction) const;

  /// Human-readable rendering of one edge, e.g. "HES, SLB -> XOM (0.58)".
  std::string EdgeToString(EdgeId id, int precision = 2) const;

 private:
  /// Exact-lookup key of a (T, H) combination: four 32-bit vertex ids
  /// (sorted tail, kNoVertex padding, head) packed into 128 bits, so the
  /// full VertexId range below the sentinel is addressable without
  /// truncation.
  struct EdgeKey {
    uint64_t hi = 0;  ///< tail[0] << 32 | tail[1]
    uint64_t lo = 0;  ///< tail[2] << 32 | head
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHasher {
    size_t operator()(const EdgeKey& key) const noexcept;
  };

  explicit DirectedHypergraph(std::vector<std::string> names);

  static EdgeKey MakeEdgeKey(const VertexId tail[kMaxTailSize],
                             VertexId head);

  std::vector<std::string> names_;
  std::vector<Hyperedge> edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::unordered_map<EdgeKey, EdgeId, EdgeKeyHasher> index_;
  size_t num_by_tail_size_[kMaxTailSize] = {0, 0, 0};
};

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_HYPERGRAPH_H_
