#ifndef HYPERMINE_CORE_ASSOC_TABLE_H_
#define HYPERMINE_CORE_ASSOC_TABLE_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/simd.h"
#include "util/status.h"

namespace hypermine::core {

/// One row of an association table (Definition 3.6(2), Table 3.7): the
/// support of a tail value combination, the most frequent head value v*
/// under it, and the confidence of the induced mva-type rule.
struct AssocTableRow {
  double support = 0.0;
  ValueId best_head_value = 0;
  double confidence = 0.0;
  /// Absolute observation count of the tail combination.
  size_t tail_count = 0;
};

/// The association table AT(T, H) of a directed hyperedge (T, {H}) with
/// |T| in {1, 2}: one row per tail value combination, plus the derived
/// association confidence value
///   ACV(T, H) = sum_rows Supp(row) * Conf(row)  (Definition 3.6(1)).
class AssociationTable {
 public:
  /// Builds the table by one counting pass over the database. `tail` must
  /// hold 1 or 2 distinct attributes, all different from `head`; the
  /// database must be non-empty.
  static StatusOr<AssociationTable> Build(const Database& db,
                                          std::vector<AttrId> tail,
                                          AttrId head);

  const std::vector<AttrId>& tail() const { return tail_; }
  AttrId head() const { return head_; }
  size_t num_values() const { return k_; }

  /// Number of rows: k for |T|=1, k^2 for |T|=2 (rows with zero support are
  /// materialized with support 0).
  size_t num_rows() const { return rows_.size(); }

  /// Row of a tail value combination; for |T|=2 the order matches tail().
  const AssocTableRow& RowFor(const std::vector<ValueId>& tail_values) const;
  const AssocTableRow& row(size_t index) const { return rows_[index]; }
  /// All rows in tail-combination order, for consumers that need to walk
  /// the whole table rather than look up single combinations.
  const std::vector<AssocTableRow>& rows() const { return rows_; }

  /// ACV(T, H) in [0, 1].
  double acv() const { return acv_; }

  /// Renders the table in the layout of Table 3.7 (values shown 1-based).
  std::string ToString(const Database& db) const;

 private:
  AssociationTable() = default;

  std::vector<AttrId> tail_;
  AttrId head_ = 0;
  size_t k_ = 0;
  std::vector<AssocTableRow> rows_;
  double acv_ = 0.0;
};

/// ACV(∅, {H}) — the frequency of the most frequent value of H. This is the
/// γ-significance baseline for directed edges (Definition 3.7 with
/// T - {v} = ∅) and the lower bound of Theorem 3.8(1).
StatusOr<double> BaseAcv(const Database& db, AttrId head);

/// --- Low-level counting kernels (hot path of the hypergraph builder) ---
/// These avoid AssociationTable's row materialization; they only produce
/// the ACV. Columns must have length m with values < k. All kernels count
/// in integers and divide once, so a given (tail, head, m, k) input yields
/// a bit-identical double regardless of which kernel computed it.

/// ACV({tail}, {head}) by a single counting pass.
double AcvEdgeKernel(const ValueId* tail, const ValueId* head, size_t m,
                     size_t k);

/// Scratch length (in size_t elements) required by the fused multi-head
/// edge kernel: one k×k contingency table per head in the block.
constexpr size_t AcvEdgeBlockScratchSize(size_t num_heads, size_t k) {
  return num_heads * k * k;
}

/// Fused multi-head edge kernel: computes ACV({tail}, {heads[j]}) for all
/// j in [0, num_heads) while scanning the tail column ONCE, accumulating
/// the block's k×k contingency tables side by side in `scratch`
/// (>= AcvEdgeBlockScratchSize(num_heads, k) elements, caller-owned so the
/// hot loop never allocates). This amortizes the dominant memory traffic
/// of model construction — the per-candidate column scan — across a whole
/// block of heads; out_acv[j] is bit-identical to
/// AcvEdgeKernel(tail, heads[j], m, k).
void AcvEdgeBlockKernel(const ValueId* tail, const ValueId* const* heads,
                        size_t num_heads, size_t m, size_t k,
                        size_t* scratch, double* out_acv);

/// Scratch length (in size_t elements) required by the scratch-buffer pair
/// kernel: the k²×k contingency table of a 2-to-1 candidate.
constexpr size_t AcvPairScratchSize(size_t k) { return k * k * k; }

/// ACV({tail1, tail2}, {head}); tail value pairs are coded as v1*k+v2.
/// `scratch` must hold >= AcvPairScratchSize(k) elements; passing it in
/// lets the builder evaluate millions of candidates without a heap
/// allocation per call.
double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k,
                     size_t* scratch);

/// Compatibility wrapper allocating its own scratch; prefer the
/// scratch-buffer overload on hot paths.
double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k);

/// --- Bit-plane ACV kernels (the builder's fast path for small k) ---
/// A column over k values is re-coded as k bit planes of m bits each;
/// a contingency-table cell is then popcount(tail_plane & head_plane), so
/// one (tail, head) candidate costs ~k² passes over m/64 words instead of
/// m byte-at-a-time increments. Counting stays exact-integer, so plane
/// kernels are bit-identical to the byte kernels. The representation pays
/// off while k(k-1) word passes beat m byte scans; the builder switches
/// paths at kMaxPlaneKernelValues.

/// Largest k for which the builder uses the bit-plane kernels. Beyond
/// this, k² popcount passes per candidate outgrow the byte kernels' single
/// m-byte scan (and the packed planes outgrow the raw columns).
inline constexpr size_t kMaxPlaneKernelValues = 8;

/// 64-bit words per m-bit value plane.
constexpr size_t PlaneWords(size_t m) { return (m + 63) / 64; }

/// Total words of a column's packed planes: k planes of PlaneWords(m).
constexpr size_t ValuePlanesSize(size_t k, size_t m) {
  return k * PlaneWords(m);
}

/// Packs a column into k value planes: bit o of plane v is set iff
/// col[o] == v. `planes` must hold ValuePlanesSize(k, m) words; padding
/// bits are cleared (popcounts over whole planes are exact).
void PackValuePlanes(const ValueId* col, size_t m, size_t k,
                     uint64_t* planes);

/// Fused multi-head edge kernel over packed planes: out_acv[j] =
/// ACV({tail}, {heads[j]}) for a block of heads, bit-identical to
/// AcvEdgeKernel on the original columns. The tail's plane popcounts are
/// computed once per call and each row's last head-value count is inferred
/// from the row total, so a block of B heads costs ~B·k(k-1) word passes.
/// The builder keeps a block's head planes L1-resident while streaming
/// every tail through this kernel — the cache-blocked core of model
/// construction.
void AcvEdgeBlockKernel(const uint64_t* tail_planes,
                        const uint64_t* const* head_planes, size_t num_heads,
                        size_t m, size_t k, double* out_acv);

/// ACV({tail1, tail2}, {head}) over packed planes, bit-identical to the
/// byte AcvPairKernel. `scratch` must hold PlaneWords(m) words for the
/// tail-pair intersection, reused across the head's value planes.
double AcvPairKernel(const uint64_t* tail1_planes,
                     const uint64_t* tail2_planes,
                     const uint64_t* head_planes, size_t m, size_t k,
                     uint64_t* scratch);

/// --- Tier-explicit plane kernels ---
/// The plane kernels above run on simd::ActiveOps() — the best tier the
/// host supports, or the HYPERMINE_SIMD override. These overloads take the
/// dispatch table explicitly so tests and benches can pin a specific tier
/// (and fuzz every supported tier against the byte-kernel oracle). All
/// tiers count in exact integers, so outputs are bit-identical across
/// tiers by construction.
void AcvEdgeBlockKernel(const uint64_t* tail_planes,
                        const uint64_t* const* head_planes, size_t num_heads,
                        size_t m, size_t k, const simd::Ops& ops,
                        double* out_acv);
double AcvPairKernel(const uint64_t* tail1_planes,
                     const uint64_t* tail2_planes,
                     const uint64_t* head_planes, size_t m, size_t k,
                     const simd::Ops& ops, uint64_t* scratch);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_ASSOC_TABLE_H_
