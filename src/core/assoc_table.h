#ifndef HYPERMINE_CORE_ASSOC_TABLE_H_
#define HYPERMINE_CORE_ASSOC_TABLE_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace hypermine::core {

/// One row of an association table (Definition 3.6(2), Table 3.7): the
/// support of a tail value combination, the most frequent head value v*
/// under it, and the confidence of the induced mva-type rule.
struct AssocTableRow {
  double support = 0.0;
  ValueId best_head_value = 0;
  double confidence = 0.0;
  /// Absolute observation count of the tail combination.
  size_t tail_count = 0;
};

/// The association table AT(T, H) of a directed hyperedge (T, {H}) with
/// |T| in {1, 2}: one row per tail value combination, plus the derived
/// association confidence value
///   ACV(T, H) = sum_rows Supp(row) * Conf(row)  (Definition 3.6(1)).
class AssociationTable {
 public:
  /// Builds the table by one counting pass over the database. `tail` must
  /// hold 1 or 2 distinct attributes, all different from `head`; the
  /// database must be non-empty.
  static StatusOr<AssociationTable> Build(const Database& db,
                                          std::vector<AttrId> tail,
                                          AttrId head);

  const std::vector<AttrId>& tail() const { return tail_; }
  AttrId head() const { return head_; }
  size_t num_values() const { return k_; }

  /// Number of rows: k for |T|=1, k^2 for |T|=2 (rows with zero support are
  /// materialized with support 0).
  size_t num_rows() const { return rows_.size(); }

  /// Row of a tail value combination; for |T|=2 the order matches tail().
  const AssocTableRow& RowFor(const std::vector<ValueId>& tail_values) const;
  const AssocTableRow& row(size_t index) const { return rows_[index]; }
  /// All rows in tail-combination order, for consumers that need to walk
  /// the whole table rather than look up single combinations.
  const std::vector<AssocTableRow>& rows() const { return rows_; }

  /// ACV(T, H) in [0, 1].
  double acv() const { return acv_; }

  /// Renders the table in the layout of Table 3.7 (values shown 1-based).
  std::string ToString(const Database& db) const;

 private:
  AssociationTable() = default;

  std::vector<AttrId> tail_;
  AttrId head_ = 0;
  size_t k_ = 0;
  std::vector<AssocTableRow> rows_;
  double acv_ = 0.0;
};

/// ACV(∅, {H}) — the frequency of the most frequent value of H. This is the
/// γ-significance baseline for directed edges (Definition 3.7 with
/// T - {v} = ∅) and the lower bound of Theorem 3.8(1).
StatusOr<double> BaseAcv(const Database& db, AttrId head);

/// --- Low-level counting kernels (hot path of the hypergraph builder) ---
/// These avoid AssociationTable's row materialization; they only produce
/// the ACV. Columns must have length m with values < k.

/// ACV({tail}, {head}) by a single counting pass.
double AcvEdgeKernel(const ValueId* tail, const ValueId* head, size_t m,
                     size_t k);

/// ACV({tail1, tail2}, {head}); tail value pairs are coded as v1*k+v2.
double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_ASSOC_TABLE_H_
