#ifndef HYPERMINE_CORE_PIPELINE_H_
#define HYPERMINE_CORE_PIPELINE_H_

#include "core/builder.h"
#include "core/database.h"
#include "market/market_sim.h"
#include "util/status.h"

namespace hypermine::core {

/// Discretizes a market panel into a Database over V = {0..k-1} following
/// Section 5.1.1: per series, take the delta time-series of the day window
/// [day_begin, day_end) (day_end < num_days because delta day d consumes
/// closes d and d+1), compute its k-threshold vector, and bucket equi-depth.
/// Each resulting observation is one trading day's vector of bucket ids.
StatusOr<Database> DiscretizePanelWindow(const market::MarketPanel& panel,
                                         size_t k, size_t day_begin,
                                         size_t day_end);

/// Whole-panel convenience (window = all days).
StatusOr<Database> DiscretizePanel(const market::MarketPanel& panel,
                                   size_t k);

/// Year-sliced discretization: train and test windows as in Section 5.5.1
/// (train Jan 1 `train_begin` .. Dec 31 `train_end`, test the span
/// `test_begin`..`test_end`). Both windows are discretized independently
/// with their own k-threshold vectors, per the test-set methodology of
/// Section 5.5.
struct TrainTestSplit {
  Database train;
  Database test;
};
StatusOr<TrainTestSplit> DiscretizeTrainTest(const market::MarketPanel& panel,
                                             size_t k, int train_begin_year,
                                             int train_end_year,
                                             int test_begin_year,
                                             int test_end_year);

/// End-to-end experiment setup shared by benches and examples: simulate the
/// market, discretize the full window, and build the association hypergraph.
struct MarketExperiment {
  market::MarketPanel panel;
  Database database;
  DirectedHypergraph graph;
  BuildStats stats;
};
StatusOr<MarketExperiment> SetUpMarketExperiment(
    const market::MarketConfig& market_config,
    const HypergraphConfig& model_config);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_PIPELINE_H_
