#include "core/database.h"

#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

StatusOr<Database> Database::Create(std::vector<std::string> attribute_names,
                                    size_t num_values) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument("Database: need at least one attribute");
  }
  if (num_values < 2 || num_values > kMaxValues) {
    return Status::InvalidArgument(
        StrFormat("Database: num_values %zu outside [2, %zu]", num_values,
                  kMaxValues));
  }
  std::set<std::string_view> seen;
  for (const std::string& name : attribute_names) {
    if (name.empty()) {
      return Status::InvalidArgument("Database: empty attribute name");
    }
    if (!seen.insert(name).second) {
      return Status::AlreadyExists("Database: duplicate attribute: " + name);
    }
  }
  Database db(std::move(attribute_names), num_values);
  db.columns_.resize(db.names_.size());
  return db;
}

Status Database::AddObservation(const std::vector<ValueId>& values) {
  if (values.size() != names_.size()) {
    return Status::InvalidArgument(
        StrFormat("AddObservation: got %zu values for %zu attributes",
                  values.size(), names_.size()));
  }
  for (size_t a = 0; a < values.size(); ++a) {
    if (values[a] >= num_values_) {
      return Status::OutOfRange(
          StrFormat("AddObservation: value %u of attribute %zu >= k=%zu",
                    values[a], a, num_values_));
    }
  }
  for (size_t a = 0; a < values.size(); ++a) {
    columns_[a].push_back(values[a]);
  }
  ++num_observations_;
  return Status::OK();
}

Status Database::AddColumns(const std::vector<std::vector<ValueId>>& columns) {
  if (columns.size() != names_.size()) {
    return Status::InvalidArgument(
        StrFormat("AddColumns: got %zu columns for %zu attributes",
                  columns.size(), names_.size()));
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t a = 0; a < columns.size(); ++a) {
    if (columns[a].size() != rows) {
      return Status::InvalidArgument("AddColumns: ragged columns");
    }
    for (ValueId v : columns[a]) {
      if (v >= num_values_) {
        return Status::OutOfRange(
            StrFormat("AddColumns: value %u of attribute %zu >= k=%zu", v, a,
                      num_values_));
      }
    }
  }
  for (size_t a = 0; a < columns.size(); ++a) {
    columns_[a].insert(columns_[a].end(), columns[a].begin(),
                       columns[a].end());
  }
  num_observations_ += rows;
  return Status::OK();
}

ValueId Database::value(size_t observation, AttrId attribute) const {
  HM_CHECK_LT(observation, num_observations_);
  HM_CHECK_LT(attribute, names_.size());
  return columns_[attribute][observation];
}

const std::vector<ValueId>& Database::column(AttrId attribute) const {
  HM_CHECK_LT(attribute, names_.size());
  return columns_[attribute];
}

const std::string& Database::attribute_name(AttrId attribute) const {
  HM_CHECK_LT(attribute, names_.size());
  return names_[attribute];
}

StatusOr<AttrId> Database::AttributeIndex(std::string_view name) const {
  for (size_t a = 0; a < names_.size(); ++a) {
    if (names_[a] == name) return static_cast<AttrId>(a);
  }
  return Status::NotFound("unknown attribute: " + std::string(name));
}

StatusOr<Database> Database::Slice(size_t begin, size_t end) const {
  if (begin > end || end > num_observations_) {
    return Status::OutOfRange(
        StrFormat("Slice: bad range [%zu, %zu) of %zu", begin, end,
                  num_observations_));
  }
  Database out(names_, num_values_);
  out.columns_.resize(names_.size());
  for (size_t a = 0; a < names_.size(); ++a) {
    out.columns_[a].assign(columns_[a].begin() + begin,
                           columns_[a].begin() + end);
  }
  out.num_observations_ = end - begin;
  return out;
}

}  // namespace hypermine::core
