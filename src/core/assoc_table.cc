#include "core/assoc_table.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

namespace {

Status ValidateTailHead(const Database& db, const std::vector<AttrId>& tail,
                        AttrId head) {
  if (tail.empty() || tail.size() > 2) {
    return Status::InvalidArgument(
        "AssociationTable: |T| must be 1 or 2 (the restricted model of "
        "Section 3.2)");
  }
  if (head >= db.num_attributes()) {
    return Status::OutOfRange("AssociationTable: head out of range");
  }
  for (AttrId a : tail) {
    if (a >= db.num_attributes()) {
      return Status::OutOfRange("AssociationTable: tail attr out of range");
    }
    if (a == head) {
      return Status::InvalidArgument(
          "AssociationTable: T and H must be disjoint");
    }
  }
  if (tail.size() == 2 && tail[0] == tail[1]) {
    return Status::InvalidArgument("AssociationTable: repeated tail attr");
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("AssociationTable: empty database");
  }
  return Status::OK();
}

}  // namespace

StatusOr<AssociationTable> AssociationTable::Build(const Database& db,
                                                   std::vector<AttrId> tail,
                                                   AttrId head) {
  HM_RETURN_IF_ERROR(ValidateTailHead(db, tail, head));
  const size_t k = db.num_values();
  const size_t m = db.num_observations();
  const size_t num_rows = tail.size() == 1 ? k : k * k;

  // counts[row * k + h] = #observations with this tail combo and head h.
  std::vector<size_t> counts(num_rows * k, 0);
  const ValueId* head_col = db.column(head).data();
  if (tail.size() == 1) {
    const ValueId* t0 = db.column(tail[0]).data();
    for (size_t o = 0; o < m; ++o) {
      ++counts[static_cast<size_t>(t0[o]) * k + head_col[o]];
    }
  } else {
    const ValueId* t0 = db.column(tail[0]).data();
    const ValueId* t1 = db.column(tail[1]).data();
    for (size_t o = 0; o < m; ++o) {
      size_t row = (static_cast<size_t>(t0[o]) * k + t1[o]);
      ++counts[row * k + head_col[o]];
    }
  }

  AssociationTable table;
  table.tail_ = std::move(tail);
  table.head_ = head;
  table.k_ = k;
  table.rows_.resize(num_rows);
  double acv = 0.0;
  for (size_t row = 0; row < num_rows; ++row) {
    size_t total = 0;
    size_t best_count = 0;
    ValueId best_value = 0;
    for (size_t h = 0; h < k; ++h) {
      size_t c = counts[row * k + h];
      total += c;
      if (c > best_count) {
        best_count = c;
        best_value = static_cast<ValueId>(h);
      }
    }
    AssocTableRow& out = table.rows_[row];
    out.tail_count = total;
    out.support = static_cast<double>(total) / static_cast<double>(m);
    out.best_head_value = best_value;
    out.confidence =
        total == 0 ? 0.0
                   : static_cast<double>(best_count) / static_cast<double>(total);
    // Supp * Conf telescopes to best_count / m, summed over rows.
    acv += static_cast<double>(best_count) / static_cast<double>(m);
  }
  table.acv_ = acv;
  return table;
}

const AssocTableRow& AssociationTable::RowFor(
    const std::vector<ValueId>& tail_values) const {
  HM_CHECK_EQ(tail_values.size(), tail_.size());
  size_t row = 0;
  for (ValueId v : tail_values) {
    HM_CHECK_LT(v, k_);
    row = row * k_ + v;
  }
  return rows_[row];
}

std::string AssociationTable::ToString(const Database& db) const {
  std::ostringstream os;
  os << "AT(T={";
  for (size_t i = 0; i < tail_.size(); ++i) {
    if (i > 0) os << ", ";
    os << db.attribute_name(tail_[i]);
  }
  os << "}, H={" << db.attribute_name(head_) << "}), ACV="
     << FormatDouble(acv_, 3) << "\n";
  os << "index | values | support | v* | confidence\n";
  for (size_t row = 0; row < rows_.size(); ++row) {
    os << row + 1 << " | <";
    if (tail_.size() == 1) {
      os << row + 1;
    } else {
      os << row / k_ + 1 << ", " << row % k_ + 1;
    }
    os << "> | " << FormatDouble(rows_[row].support, 3) << " | "
       << static_cast<int>(rows_[row].best_head_value) + 1 << " | "
       << FormatDouble(rows_[row].confidence, 3) << "\n";
  }
  return os.str();
}

StatusOr<double> BaseAcv(const Database& db, AttrId head) {
  if (head >= db.num_attributes()) {
    return Status::OutOfRange("BaseAcv: head out of range");
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("BaseAcv: empty database");
  }
  const size_t k = db.num_values();
  std::vector<size_t> counts(k, 0);
  for (ValueId v : db.column(head)) ++counts[v];
  size_t best = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(best) /
         static_cast<double>(db.num_observations());
}

namespace {

/// Sum over rows of the row maximum, divided by m — the shared reduction of
/// every ACV kernel (the Supp * Conf sum telescopes to it).
double ReduceAcv(const size_t* counts, size_t num_rows, size_t k, size_t m) {
  size_t acc = 0;
  for (size_t row = 0; row < num_rows; ++row) {
    size_t best = 0;
    for (size_t h = 0; h < k; ++h) {
      best = std::max(best, counts[row * k + h]);
    }
    acc += best;
  }
  return static_cast<double>(acc) / static_cast<double>(m);
}

}  // namespace

double AcvEdgeKernel(const ValueId* tail, const ValueId* head, size_t m,
                     size_t k) {
  // counts[v_t * k + v_h]; k <= kMaxValues keeps this on the stack-ish side.
  size_t counts[kMaxValues * kMaxValues];
  std::fill(counts, counts + k * k, size_t{0});
  for (size_t o = 0; o < m; ++o) {
    ++counts[static_cast<size_t>(tail[o]) * k + head[o]];
  }
  return ReduceAcv(counts, k, k, m);
}

void AcvEdgeBlockKernel(const ValueId* tail, const ValueId* const* heads,
                        size_t num_heads, size_t m, size_t k,
                        size_t* scratch, double* out_acv) {
  const size_t table = k * k;
  std::fill(scratch, scratch + num_heads * table, size_t{0});
  for (size_t o = 0; o < m; ++o) {
    // One tail load feeds every head's table; `cell` walks the tables at a
    // fixed row offset so the inner loop is add + increment only.
    size_t* cell = scratch + static_cast<size_t>(tail[o]) * k;
    for (size_t j = 0; j < num_heads; ++j, cell += table) {
      ++cell[heads[j][o]];
    }
  }
  for (size_t j = 0; j < num_heads; ++j) {
    out_acv[j] = ReduceAcv(scratch + j * table, k, k, m);
  }
}

double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k,
                     size_t* scratch) {
  std::fill(scratch, scratch + AcvPairScratchSize(k), size_t{0});
  for (size_t o = 0; o < m; ++o) {
    size_t row = (static_cast<size_t>(tail1[o]) * k + tail2[o]);
    ++scratch[row * k + head[o]];
  }
  return ReduceAcv(scratch, k * k, k, m);
}

double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k) {
  std::vector<size_t> counts(AcvPairScratchSize(k), 0);
  return AcvPairKernel(tail1, tail2, head, m, k, counts.data());
}

void PackValuePlanes(const ValueId* col, size_t m, size_t k,
                     uint64_t* planes) {
  const size_t words = PlaneWords(m);
  std::fill(planes, planes + k * words, uint64_t{0});
  for (size_t o = 0; o < m; ++o) {
    planes[static_cast<size_t>(col[o]) * words + (o >> 6)] |=
        uint64_t{1} << (o & 63);
  }
}

void AcvEdgeBlockKernel(const uint64_t* tail_planes,
                        const uint64_t* const* head_planes, size_t num_heads,
                        size_t m, size_t k, const simd::Ops& ops,
                        double* out_acv) {
  const size_t words = PlaneWords(m);
  // Row totals: #observations with tail value v, shared by every head in
  // the block; the last head value's cell is row_total - sum(previous),
  // saving one popcount pass per row.
  size_t row_total[kMaxValues];
  for (size_t v = 0; v < k; ++v) {
    row_total[v] = ops.popcount(tail_planes + v * words, words);
  }
  for (size_t j = 0; j < num_heads; ++j) {
    const uint64_t* head = head_planes[j];
    size_t acc = 0;
    for (size_t v = 0; v < k; ++v) {
      const uint64_t* tail_plane = tail_planes + v * words;
      size_t best = 0;
      size_t seen = 0;
      for (size_t h = 0; h + 1 < k; ++h) {
        size_t c = ops.popcount_and(tail_plane, head + h * words, words);
        seen += c;
        best = std::max(best, c);
      }
      best = std::max(best, row_total[v] - seen);
      acc += best;
    }
    out_acv[j] = static_cast<double>(acc) / static_cast<double>(m);
  }
}

void AcvEdgeBlockKernel(const uint64_t* tail_planes,
                        const uint64_t* const* head_planes, size_t num_heads,
                        size_t m, size_t k, double* out_acv) {
  AcvEdgeBlockKernel(tail_planes, head_planes, num_heads, m, k,
                     simd::ActiveOps(), out_acv);
}

double AcvPairKernel(const uint64_t* tail1_planes,
                     const uint64_t* tail2_planes,
                     const uint64_t* head_planes, size_t m, size_t k,
                     const simd::Ops& ops, uint64_t* scratch) {
  const size_t words = PlaneWords(m);
  size_t acc = 0;
  for (size_t v1 = 0; v1 < k; ++v1) {
    const uint64_t* p1 = tail1_planes + v1 * words;
    for (size_t v2 = 0; v2 < k; ++v2) {
      const uint64_t* p2 = tail2_planes + v2 * words;
      size_t row_total = ops.and_store_popcount(p1, p2, scratch, words);
      if (row_total == 0) continue;  // empty tail combination, max is 0
      size_t best = 0;
      size_t seen = 0;
      for (size_t h = 0; h + 1 < k; ++h) {
        size_t c = ops.popcount_and(scratch, head_planes + h * words, words);
        seen += c;
        best = std::max(best, c);
      }
      best = std::max(best, row_total - seen);
      acc += best;
    }
  }
  return static_cast<double>(acc) / static_cast<double>(m);
}

double AcvPairKernel(const uint64_t* tail1_planes,
                     const uint64_t* tail2_planes,
                     const uint64_t* head_planes, size_t m, size_t k,
                     uint64_t* scratch) {
  return AcvPairKernel(tail1_planes, tail2_planes, head_planes, m, k,
                       simd::ActiveOps(), scratch);
}

}  // namespace hypermine::core
