#include "core/assoc_table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::core {

namespace {

Status ValidateTailHead(const Database& db, const std::vector<AttrId>& tail,
                        AttrId head) {
  if (tail.empty() || tail.size() > 2) {
    return Status::InvalidArgument(
        "AssociationTable: |T| must be 1 or 2 (the restricted model of "
        "Section 3.2)");
  }
  if (head >= db.num_attributes()) {
    return Status::OutOfRange("AssociationTable: head out of range");
  }
  for (AttrId a : tail) {
    if (a >= db.num_attributes()) {
      return Status::OutOfRange("AssociationTable: tail attr out of range");
    }
    if (a == head) {
      return Status::InvalidArgument(
          "AssociationTable: T and H must be disjoint");
    }
  }
  if (tail.size() == 2 && tail[0] == tail[1]) {
    return Status::InvalidArgument("AssociationTable: repeated tail attr");
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("AssociationTable: empty database");
  }
  return Status::OK();
}

}  // namespace

StatusOr<AssociationTable> AssociationTable::Build(const Database& db,
                                                   std::vector<AttrId> tail,
                                                   AttrId head) {
  HM_RETURN_IF_ERROR(ValidateTailHead(db, tail, head));
  const size_t k = db.num_values();
  const size_t m = db.num_observations();
  const size_t num_rows = tail.size() == 1 ? k : k * k;

  // counts[row * k + h] = #observations with this tail combo and head h.
  std::vector<size_t> counts(num_rows * k, 0);
  const ValueId* head_col = db.column(head).data();
  if (tail.size() == 1) {
    const ValueId* t0 = db.column(tail[0]).data();
    for (size_t o = 0; o < m; ++o) {
      ++counts[static_cast<size_t>(t0[o]) * k + head_col[o]];
    }
  } else {
    const ValueId* t0 = db.column(tail[0]).data();
    const ValueId* t1 = db.column(tail[1]).data();
    for (size_t o = 0; o < m; ++o) {
      size_t row = (static_cast<size_t>(t0[o]) * k + t1[o]);
      ++counts[row * k + head_col[o]];
    }
  }

  AssociationTable table;
  table.tail_ = std::move(tail);
  table.head_ = head;
  table.k_ = k;
  table.rows_.resize(num_rows);
  double acv = 0.0;
  for (size_t row = 0; row < num_rows; ++row) {
    size_t total = 0;
    size_t best_count = 0;
    ValueId best_value = 0;
    for (size_t h = 0; h < k; ++h) {
      size_t c = counts[row * k + h];
      total += c;
      if (c > best_count) {
        best_count = c;
        best_value = static_cast<ValueId>(h);
      }
    }
    AssocTableRow& out = table.rows_[row];
    out.tail_count = total;
    out.support = static_cast<double>(total) / static_cast<double>(m);
    out.best_head_value = best_value;
    out.confidence =
        total == 0 ? 0.0
                   : static_cast<double>(best_count) / static_cast<double>(total);
    // Supp * Conf telescopes to best_count / m, summed over rows.
    acv += static_cast<double>(best_count) / static_cast<double>(m);
  }
  table.acv_ = acv;
  return table;
}

const AssocTableRow& AssociationTable::RowFor(
    const std::vector<ValueId>& tail_values) const {
  HM_CHECK_EQ(tail_values.size(), tail_.size());
  size_t row = 0;
  for (ValueId v : tail_values) {
    HM_CHECK_LT(v, k_);
    row = row * k_ + v;
  }
  return rows_[row];
}

std::string AssociationTable::ToString(const Database& db) const {
  std::ostringstream os;
  os << "AT(T={";
  for (size_t i = 0; i < tail_.size(); ++i) {
    if (i > 0) os << ", ";
    os << db.attribute_name(tail_[i]);
  }
  os << "}, H={" << db.attribute_name(head_) << "}), ACV="
     << FormatDouble(acv_, 3) << "\n";
  os << "index | values | support | v* | confidence\n";
  for (size_t row = 0; row < rows_.size(); ++row) {
    os << row + 1 << " | <";
    if (tail_.size() == 1) {
      os << row + 1;
    } else {
      os << row / k_ + 1 << ", " << row % k_ + 1;
    }
    os << "> | " << FormatDouble(rows_[row].support, 3) << " | "
       << static_cast<int>(rows_[row].best_head_value) + 1 << " | "
       << FormatDouble(rows_[row].confidence, 3) << "\n";
  }
  return os.str();
}

StatusOr<double> BaseAcv(const Database& db, AttrId head) {
  if (head >= db.num_attributes()) {
    return Status::OutOfRange("BaseAcv: head out of range");
  }
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("BaseAcv: empty database");
  }
  const size_t k = db.num_values();
  std::vector<size_t> counts(k, 0);
  for (ValueId v : db.column(head)) ++counts[v];
  size_t best = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(best) /
         static_cast<double>(db.num_observations());
}

double AcvEdgeKernel(const ValueId* tail, const ValueId* head, size_t m,
                     size_t k) {
  // counts[v_t * k + v_h]; k <= kMaxValues keeps this on the stack-ish side.
  size_t counts[kMaxValues * kMaxValues];
  std::fill(counts, counts + k * k, size_t{0});
  for (size_t o = 0; o < m; ++o) {
    ++counts[static_cast<size_t>(tail[o]) * k + head[o]];
  }
  size_t acc = 0;
  for (size_t row = 0; row < k; ++row) {
    size_t best = 0;
    for (size_t h = 0; h < k; ++h) {
      best = std::max(best, counts[row * k + h]);
    }
    acc += best;
  }
  return static_cast<double>(acc) / static_cast<double>(m);
}

double AcvPairKernel(const ValueId* tail1, const ValueId* tail2,
                     const ValueId* head, size_t m, size_t k) {
  std::vector<size_t> counts(k * k * k, 0);
  for (size_t o = 0; o < m; ++o) {
    size_t row = (static_cast<size_t>(tail1[o]) * k + tail2[o]);
    ++counts[row * k + head[o]];
  }
  size_t acc = 0;
  for (size_t row = 0; row < k * k; ++row) {
    size_t best = 0;
    for (size_t h = 0; h < k; ++h) {
      best = std::max(best, counts[row * k + h]);
    }
    acc += best;
  }
  return static_cast<double>(acc) / static_cast<double>(m);
}

}  // namespace hypermine::core
