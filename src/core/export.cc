#include "core/export.h"

#include <map>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace hypermine::core {

Status WriteHypergraphCsv(const DirectedHypergraph& graph,
                          const std::string& path) {
  CsvDocument doc;
  doc.header = {"tail", "head", "weight"};
  doc.rows.push_back(
      {"vertices", Join(graph.vertex_names(), "|"), ""});
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const Hyperedge& e = graph.edge(id);
    std::vector<std::string> tail_names;
    for (VertexId v : e.TailSpan()) {
      tail_names.push_back(graph.vertex_name(v));
    }
    doc.rows.push_back({Join(tail_names, "|"), graph.vertex_name(e.head),
                        StrFormat("%.17g", e.weight)});
  }
  return WriteCsvFile(path, doc);
}

StatusOr<DirectedHypergraph> ReadHypergraphCsv(const std::string& path) {
  HM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseHypergraphCsv(text);
}

StatusOr<DirectedHypergraph> ParseHypergraphCsv(const std::string& text) {
  HM_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(text, /*has_header=*/true));
  if (doc.rows.empty() || doc.rows[0].size() != 3 ||
      doc.rows[0][0] != "vertices") {
    return Status::InvalidArgument(
        "hypergraph CSV: missing leading vertices record");
  }
  std::vector<std::string> names = Split(doc.rows[0][1], '|');
  HM_ASSIGN_OR_RETURN(DirectedHypergraph graph,
                      DirectedHypergraph::Create(names));
  std::map<std::string, VertexId> index;
  for (size_t v = 0; v < names.size(); ++v) {
    if (!index.emplace(names[v], static_cast<VertexId>(v)).second) {
      return Status::InvalidArgument("hypergraph CSV: duplicate vertex");
    }
  }
  auto resolve = [&index](const std::string& name) -> StatusOr<VertexId> {
    auto it = index.find(name);
    if (it == index.end()) {
      return Status::NotFound("hypergraph CSV: unknown vertex " + name);
    }
    return it->second;
  };
  for (size_t r = 1; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    std::vector<VertexId> tail;
    for (const std::string& name : Split(row[0], '|')) {
      HM_ASSIGN_OR_RETURN(VertexId v, resolve(name));
      tail.push_back(v);
    }
    HM_ASSIGN_OR_RETURN(VertexId head, resolve(row[1]));
    double weight = 0.0;
    if (!ParseDouble(row[2], &weight)) {
      return Status::InvalidArgument(
          StrFormat("hypergraph CSV: bad weight in row %zu", r));
    }
    HM_RETURN_IF_ERROR(graph.AddEdge(std::move(tail), head, weight).status());
  }
  return graph;
}

Status WriteClustersDot(const SimilarityGraph& graph,
                        const approx::Clustering& clustering,
                        const std::vector<ClusterNode>& nodes,
                        size_t min_cluster_size, const std::string& path) {
  if (nodes.size() != graph.size() ||
      clustering.assignment.size() != graph.size()) {
    return Status::InvalidArgument(
        "WriteClustersDot: nodes/clustering must align with the graph");
  }
  // Stable color per display group.
  std::set<std::string> group_names;
  for (const ClusterNode& node : nodes) group_names.insert(node.group);
  std::map<std::string, std::string> color_of;
  size_t color_index = 0;
  for (const std::string& group : group_names) {
    // Colors from Graphviz's set312 palette, cycled.
    color_of[group] = StrFormat("/set312/%zu", color_index % 12 + 1);
    ++color_index;
  }

  std::vector<std::vector<size_t>> members(clustering.centers.size());
  for (size_t i = 0; i < graph.size(); ++i) {
    members[clustering.assignment[i]].push_back(i);
  }

  std::ostringstream os;
  os << "graph clusters {\n"
     << "  layout=neato;\n  overlap=false;\n  node [style=filled];\n";
  std::vector<size_t> shown_centers;
  for (size_t c = 0; c < members.size(); ++c) {
    if (members[c].size() < min_cluster_size) continue;
    size_t center = clustering.centers[c];
    shown_centers.push_back(center);
    os << StrFormat(
        "  n%zu [label=\"%s\", shape=doublecircle, fillcolor=\"%s\", "
        "width=%.2f];\n",
        center, nodes[center].label.c_str(),
        color_of[nodes[center].group].c_str(),
        0.7 + 0.05 * static_cast<double>(members[c].size()));
    for (size_t i : members[c]) {
      if (i == center) continue;
      os << StrFormat(
          "  n%zu [label=\"%s\", shape=circle, fillcolor=\"%s\"];\n", i,
          nodes[i].label.c_str(), color_of[nodes[i].group].c_str());
      os << StrFormat("  n%zu -- n%zu [len=%.3f];\n", center, i,
                      0.5 + graph.Distance(center, i));
    }
  }
  // Interconnect the displayed cluster centers, as Figure 5.3 does.
  for (size_t a = 0; a < shown_centers.size(); ++a) {
    for (size_t b = a + 1; b < shown_centers.size(); ++b) {
      os << StrFormat("  n%zu -- n%zu [style=dashed, len=%.3f];\n",
                      shown_centers[a], shown_centers[b],
                      1.0 + graph.Distance(shown_centers[a],
                                           shown_centers[b]));
    }
  }
  os << "}\n";
  return WriteStringToFile(path, os.str());
}

}  // namespace hypermine::core
