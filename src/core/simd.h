#ifndef HYPERMINE_CORE_SIMD_H_
#define HYPERMINE_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hypermine::core::simd {

/// Vectorization tiers of the bit-plane ACV kernels, ordered from most to
/// least portable. Every tier computes the same exact integer popcounts,
/// so a given input yields bit-identical ACVs regardless of tier — the CI
/// simd-dispatch matrix asserts this end to end, and the unit fuzz in
/// tests/core/assoc_kernels_test.cc asserts it per kernel.
enum class Tier {
  kScalar = 0,  ///< std::popcount word loop; runs everywhere.
  kAvx2 = 1,    ///< 256-bit AND + vpshufb nibble-LUT popcount.
  kAvx512 = 2,  ///< 512-bit AND + native vpopcntq (AVX-512 VPOPCNTDQ).
};

/// "scalar" / "avx2" / "avx512".
const char* TierName(Tier tier);

/// Inverse of TierName; nullopt for anything else.
std::optional<Tier> ParseTier(std::string_view name);

/// The dispatch table: the three word-loop shapes the plane kernels are
/// built from. Implementations only differ in how they chew through the
/// 64-bit words; counts are exact in every tier.
struct Ops {
  Tier tier = Tier::kScalar;
  const char* name = "scalar";
  /// popcount(a[0..words)).
  size_t (*popcount)(const uint64_t* a, size_t words) = nullptr;
  /// popcount(a & b) without materializing the intersection.
  size_t (*popcount_and)(const uint64_t* a, const uint64_t* b,
                         size_t words) = nullptr;
  /// out = a & b, returning popcount(out) — the pair kernel's fused
  /// intersection step.
  size_t (*and_store_popcount)(const uint64_t* a, const uint64_t* b,
                               uint64_t* out, size_t words) = nullptr;
};

/// True when this process may execute `tier` (cpuid + OS state via
/// __builtin_cpu_supports); kScalar is always supported.
bool TierSupported(Tier tier);

/// The highest supported tier on this machine.
Tier BestSupportedTier();

/// All supported tiers, ascending (always starts with kScalar). Tests and
/// benches iterate this to fuzz/time every tier the host can run.
std::vector<Tier> SupportedTiers();

/// Ops table of a specific tier; `tier` must be supported (HM_CHECK).
const Ops& OpsForTier(Tier tier);

/// The process-wide active tier: the HYPERMINE_SIMD environment override
/// ("scalar" | "avx2" | "avx512", clamped down to what the host supports,
/// resolved once) unless ForceActiveTier was called; otherwise the best
/// supported tier. This is what the builder's kernels run on.
const Ops& ActiveOps();

/// Overrides the active tier (clamped to availability), e.g. for the
/// bench's --simd= flag. Not intended to race in-flight builds: call it
/// before kernels run.
void ForceActiveTier(Tier tier);

/// Resolution rule shared by the env override and ForceActiveTier, exposed
/// pure for unit tests: the requested tier clamped down to `best`
/// (requesting an unavailable tier degrades, it never crashes);
/// nullopt — no/unparseable request — resolves to `best`.
Tier ResolveRequestedTier(std::optional<Tier> requested, Tier best);

}  // namespace hypermine::core::simd

#endif  // HYPERMINE_CORE_SIMD_H_
