#include "core/assoc_rule.h"

#include <set>
#include <sstream>

#include "util/string_util.h"

namespace hypermine::core {

std::string MvaRule::ToString(const Database& db) const {
  auto side = [&db](const std::vector<AttributeValue>& items) {
    std::ostringstream os;
    os << "{";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) os << ", ";
      os << "(" << db.attribute_name(items[i].attribute) << ", "
         << static_cast<int>(items[i].value) + 1 << ")";
    }
    os << "}";
    return os.str();
  };
  return side(antecedent) + " ==> " + side(consequent);
}

Status ValidateItemSet(const Database& db,
                       const std::vector<AttributeValue>& items) {
  std::set<AttrId> seen;
  for (const AttributeValue& item : items) {
    if (item.attribute >= db.num_attributes()) {
      return Status::OutOfRange(
          StrFormat("item set: attribute %u out of range", item.attribute));
    }
    if (item.value >= db.num_values()) {
      return Status::OutOfRange(
          StrFormat("item set: value %u >= k=%zu", item.value,
                    db.num_values()));
    }
    if (!seen.insert(item.attribute).second) {
      return Status::InvalidArgument(
          StrFormat("item set: attribute %u repeated", item.attribute));
    }
  }
  return Status::OK();
}

Status ValidateRule(const Database& db, const MvaRule& rule) {
  HM_RETURN_IF_ERROR(ValidateItemSet(db, rule.antecedent));
  HM_RETURN_IF_ERROR(ValidateItemSet(db, rule.consequent));
  std::set<AttrId> left;
  for (const AttributeValue& item : rule.antecedent) {
    left.insert(item.attribute);
  }
  for (const AttributeValue& item : rule.consequent) {
    if (left.count(item.attribute) > 0) {
      return Status::InvalidArgument(StrFormat(
          "rule: attribute %u on both sides (pi_1(X) and pi_1(Y) must be "
          "disjoint)",
          item.attribute));
    }
  }
  return Status::OK();
}

StatusOr<size_t> SupportCount(const Database& db,
                              const std::vector<AttributeValue>& items) {
  HM_RETURN_IF_ERROR(ValidateItemSet(db, items));
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("Support: empty database");
  }
  if (items.empty()) return db.num_observations();
  size_t count = 0;
  const size_t m = db.num_observations();
  for (size_t o = 0; o < m; ++o) {
    bool all = true;
    for (const AttributeValue& item : items) {
      if (db.column(item.attribute)[o] != item.value) {
        all = false;
        break;
      }
    }
    count += all ? 1 : 0;
  }
  return count;
}

StatusOr<double> Support(const Database& db,
                         const std::vector<AttributeValue>& items) {
  HM_ASSIGN_OR_RETURN(size_t count, SupportCount(db, items));
  return static_cast<double>(count) /
         static_cast<double>(db.num_observations());
}

StatusOr<double> Confidence(const Database& db, const MvaRule& rule) {
  HM_RETURN_IF_ERROR(ValidateRule(db, rule));
  HM_ASSIGN_OR_RETURN(size_t x_count, SupportCount(db, rule.antecedent));
  if (x_count == 0) {
    return Status::FailedPrecondition(
        "Confidence: Supp(X) = 0, confidence undefined");
  }
  std::vector<AttributeValue> both = rule.antecedent;
  both.insert(both.end(), rule.consequent.begin(), rule.consequent.end());
  HM_ASSIGN_OR_RETURN(size_t xy_count, SupportCount(db, both));
  return static_cast<double>(xy_count) / static_cast<double>(x_count);
}

}  // namespace hypermine::core
