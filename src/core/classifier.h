#ifndef HYPERMINE_CORE_CLASSIFIER_H_
#define HYPERMINE_CORE_CLASSIFIER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/assoc_table.h"
#include "core/database.h"
#include "core/hypergraph.h"
#include "util/status.h"

namespace hypermine::core {

/// The association-based classifier of Algorithm 9. Given an association
/// hypergraph H built from a training database, it assigns a value to a
/// target attribute Y from the known values of a set S of attributes
/// (normally a dominator, Section 4.2): every hyperedge e = (T, {Y}) with
/// T ⊆ S contributes Supp(T = values) * Conf(T = values => Y = y) to the
/// vote val[y] of the row's most frequent value y; the winner y* is
/// returned with normalized confidence val[y*] / Σ val[y].
class AssociationClassifier {
 public:
  /// The hypergraph's vertices must correspond 1:1 to the training
  /// database's attributes (same indices). Association tables are built
  /// lazily per hyperedge and cached.
  static StatusOr<AssociationClassifier> Create(
      const DirectedHypergraph* graph, const Database* train);

  struct Prediction {
    ValueId value = 0;
    /// Normalized vote share of the winning value, in [0, 1].
    double confidence = 0.0;
    /// Number of hyperedges that contributed votes; 0 means no tail fit
    /// inside the evidence and `value` fell back to the training majority.
    size_t rules_used = 0;
  };

  /// Predicts attribute `target`. `evidence[a]` is the known value of
  /// attribute a, or kUnknown when a is outside S. The target must not
  /// carry evidence.
  static constexpr int16_t kUnknown = -1;
  StatusOr<Prediction> Predict(const std::vector<int16_t>& evidence,
                               AttrId target) const;

  /// Training-majority value of an attribute (the no-rule fallback).
  ValueId MajorityValue(AttrId attribute) const;

  size_t num_cached_tables() const { return tables_.size(); }

 private:
  AssociationClassifier(const DirectedHypergraph* graph,
                        const Database* train);

  const AssociationTable* TableFor(EdgeId id) const;

  const DirectedHypergraph* graph_;
  const Database* train_;
  std::vector<ValueId> majority_;
  mutable std::unordered_map<EdgeId, std::unique_ptr<AssociationTable>>
      tables_;
};

/// Outcome of evaluating the classifier over a database window
/// (Section 5.5.1's "classification confidence": the fraction of
/// observations where the assigned value matches the discretized truth).
struct ClassifierEvaluation {
  /// Mean of per-target classification confidence.
  double mean_confidence = 0.0;
  /// Classification confidence per evaluated target (index-aligned with
  /// `targets`).
  std::vector<double> per_target;
  std::vector<AttrId> targets;
  size_t num_observations = 0;
  /// Fraction of (observation, target) predictions that used >= 1 rule.
  double rule_coverage = 0.0;
};

/// Evaluates Algorithm 9 on `eval_db`: for every attribute outside
/// `dominator`, predict its value on each observation from the dominator
/// attributes' values and score against the stored value. `graph` and
/// `train_db` are the model; `eval_db` must share the attribute layout.
StatusOr<ClassifierEvaluation> EvaluateAssociationClassifier(
    const DirectedHypergraph& graph, const Database& train_db,
    const Database& eval_db, const std::vector<VertexId>& dominator);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_CLASSIFIER_H_
