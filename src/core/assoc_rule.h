#ifndef HYPERMINE_CORE_ASSOC_RULE_H_
#define HYPERMINE_CORE_ASSOC_RULE_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace hypermine::core {

/// An (attribute, value) pair — one conjunct of an mva-type rule side.
struct AttributeValue {
  AttrId attribute;
  ValueId value;

  friend bool operator==(const AttributeValue& a, const AttributeValue& b) {
    return a.attribute == b.attribute && a.value == b.value;
  }
};

/// An mva-type association rule X ==> Y (Definition 3.1): X and Y are sets
/// of (attribute, value) pairs whose attribute projections are disjoint.
struct MvaRule {
  std::vector<AttributeValue> antecedent;  // X
  std::vector<AttributeValue> consequent;  // Y

  std::string ToString(const Database& db) const;
};

/// Validates an item set against a database: known attributes, values < k,
/// and no attribute repeated.
Status ValidateItemSet(const Database& db,
                       const std::vector<AttributeValue>& items);

/// Validates both sides of a rule plus attribute-disjointness of pi_1(X)
/// and pi_1(Y) (Definition 3.1).
Status ValidateRule(const Database& db, const MvaRule& rule);

/// Supp(X) (Definition 3.2(1)): fraction of observations where every
/// (attribute, value) in X holds. Supp of the empty set is 1. Fails on an
/// invalid item set or an empty database.
StatusOr<double> Support(const Database& db,
                         const std::vector<AttributeValue>& items);

/// Absolute support count (numerator of Supp).
StatusOr<size_t> SupportCount(const Database& db,
                              const std::vector<AttributeValue>& items);

/// Conf(X ==> Y) = Supp(X ∪ Y) / Supp(X) (Definition 3.2(2)). Fails when
/// the rule is invalid or Supp(X) = 0 (confidence undefined).
StatusOr<double> Confidence(const Database& db, const MvaRule& rule);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_ASSOC_RULE_H_
