#ifndef HYPERMINE_CORE_VALUE_PLANES_H_
#define HYPERMINE_CORE_VALUE_PLANES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/database.h"

namespace hypermine::core {

/// 64-bit FNV-1a over `size` bytes, consumed eight bytes per step (one
/// xor+multiply per word instead of per byte) with a byte-at-a-time tail.
/// Shared by the database fingerprint and the serve-layer plane-artifact
/// checksum; NOT interchangeable with the per-byte FNV-1a of the snapshot
/// format.
uint64_t ChunkedFnv1a(const void* data, size_t size,
                      uint64_t seed = 0xcbf29ce484222325ull);

/// Content fingerprint of a discretized database: dimensions plus every
/// column's bytes (attribute names excluded — packed planes do not depend
/// on them). Keys the plane cache and guards reuse: two databases share a
/// fingerprint iff PackDatabasePlanes would emit the same words.
uint64_t DatabaseFingerprint(const Database& db);

/// Every column of a database re-coded as bit planes (see the bit-plane
/// kernel notes in assoc_table.h): the reusable artifact behind repeated
/// γ-sweeps. Pack once, then hand the same ValuePlanes to any number of
/// BuildAssociationHypergraph calls over the same database — or serialize
/// it via serve/plane_artifact.h and skip packing across processes.
struct ValuePlanes {
  size_t num_attributes = 0;
  size_t num_observations = 0;
  size_t num_values = 0;
  /// PlaneWords(num_observations), denormalized for consumers of `words`.
  size_t words_per_plane = 0;
  /// DatabaseFingerprint of the source database.
  uint64_t fingerprint = 0;
  /// num_attributes x num_values x words_per_plane, column-major like the
  /// database itself.
  std::vector<uint64_t> words;

  size_t words_per_column() const { return num_values * words_per_plane; }
  const uint64_t* planes_of(size_t attr) const {
    return words.data() + attr * words_per_column();
  }

  /// True when this artifact was packed from a database with `db`'s exact
  /// content (dimensions and fingerprint) — the reuse precondition the
  /// builder enforces.
  bool Matches(const Database& db) const;
};

/// Packs all columns of `db` (one pass; the builder does the same lazily
/// when no pre-packed planes are supplied).
ValuePlanes PackDatabasePlanes(const Database& db);

}  // namespace hypermine::core

#endif  // HYPERMINE_CORE_VALUE_PLANES_H_
