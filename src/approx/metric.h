#ifndef HYPERMINE_APPROX_METRIC_H_
#define HYPERMINE_APPROX_METRIC_H_

#include <cstddef>
#include <string>

#include "approx/gonzalez.h"

namespace hypermine::approx {

/// Outcome of checking the four metric properties of Section 2.1.3 on a
/// finite point set. The paper verifies these experimentally for the
/// similarity-graph distance (Section 5.3.2) before invoking the Gonzalez
/// 2-approximation guarantee.
struct MetricCheck {
  bool non_negative = true;
  bool identity_of_indiscernibles = true;
  bool symmetric = true;
  bool triangle_inequality = true;
  size_t triangle_violations = 0;
  /// Worst observed d(a,b) - (d(a,c) + d(c,b)) excess; <= tolerance if the
  /// triangle inequality holds.
  double worst_triangle_excess = 0.0;

  bool IsMetric() const {
    return non_negative && identity_of_indiscernibles && symmetric &&
           triangle_inequality;
  }
  std::string ToString() const;
};

/// Exhaustively checks metric properties over all (ordered) triples.
/// `tolerance` absorbs floating-point noise. O(n^3).
MetricCheck CheckMetricProperties(size_t num_points, const DistanceFn& dist,
                                  double tolerance = 1e-9);

}  // namespace hypermine::approx

#endif  // HYPERMINE_APPROX_METRIC_H_
