#ifndef HYPERMINE_APPROX_SET_COVER_H_
#define HYPERMINE_APPROX_SET_COVER_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace hypermine::approx {

/// A set-cover instance: a universe {0, ..., universe_size-1} and a
/// collection of subsets. `costs` is optional; when empty every set costs 1
/// (the unit-cost case of the paper's Algorithm 1).
struct SetCoverInstance {
  size_t universe_size = 0;
  std::vector<std::vector<size_t>> sets;
  std::vector<double> costs;
};

struct SetCoverResult {
  /// Indices into `instance.sets`, in greedy pick order.
  std::vector<size_t> chosen;
  /// Total cost of the chosen sets (== chosen.size() for unit costs).
  double total_cost = 0.0;
  /// price(u) paid per universe element, in the sense of Theorem 2.3.
  std::vector<double> prices;
};

/// Greedy O(log n)-approximation for set cover (Algorithm 1, Chvátal'79):
/// repeatedly picks the set minimizing cost / |newly covered| until the
/// universe is covered. Fails with kFailedPrecondition when some element is
/// in no set (the instance has no cover).
StatusOr<SetCoverResult> GreedySetCover(const SetCoverInstance& instance);

/// Exhaustive minimum-cardinality cover for tiny instances (used by tests to
/// check the O(log n) guarantee). Fails when sets.size() > 24 or no cover
/// exists.
StatusOr<std::vector<size_t>> BruteForceMinSetCover(
    const SetCoverInstance& instance);

}  // namespace hypermine::approx

#endif  // HYPERMINE_APPROX_SET_COVER_H_
