#ifndef HYPERMINE_APPROX_GONZALEZ_H_
#define HYPERMINE_APPROX_GONZALEZ_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/status.h"

namespace hypermine::approx {

/// Pairwise distance callback over points {0, ..., n-1}. Must behave like a
/// metric for the 2-approximation guarantee (Theorem 2.7) to hold.
using DistanceFn = std::function<double(size_t, size_t)>;

struct Clustering {
  /// Chosen center point index per cluster, in pick order.
  std::vector<size_t> centers;
  /// assignment[p] = cluster index (into centers) of point p.
  std::vector<size_t> assignment;
  /// max over clusters of the max intra-cluster pairwise distance.
  double diameter = 0.0;
  /// max over points of the distance to the assigned center.
  double radius = 0.0;
};

/// Gonzalez's farthest-point t-clustering (Algorithm 2): seeds with
/// `first_center`, then repeatedly designates the point farthest from all
/// existing centers until `t` centers exist; each point joins its closest
/// center. 2-approximation for minimum clustering diameter under metric
/// distances. Requires 1 <= t <= num_points and first_center < num_points.
StatusOr<Clustering> GonzalezTClustering(size_t num_points, size_t t,
                                         const DistanceFn& dist,
                                         size_t first_center = 0);

/// Recomputes the diameter of an assignment (max intra-cluster distance).
double ClusteringDiameter(size_t num_points, size_t num_clusters,
                          const std::vector<size_t>& assignment,
                          const DistanceFn& dist);

/// Exhaustive minimum-diameter t-clustering for tiny inputs (tests); fails
/// for num_points > 12.
StatusOr<double> BruteForceOptimalDiameter(size_t num_points, size_t t,
                                           const DistanceFn& dist);

}  // namespace hypermine::approx

#endif  // HYPERMINE_APPROX_GONZALEZ_H_
