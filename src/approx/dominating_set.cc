#include "approx/dominating_set.h"

#include <algorithm>

#include "approx/set_cover.h"
#include "util/string_util.h"

namespace hypermine::approx {

namespace {

StatusOr<std::vector<std::vector<size_t>>> AdjacencyList(const Graph& graph) {
  std::vector<std::vector<size_t>> adj(graph.num_vertices);
  for (const auto& [a, b] : graph.edges) {
    if (a >= graph.num_vertices || b >= graph.num_vertices) {
      return Status::InvalidArgument(
          StrFormat("graph edge (%zu, %zu) outside vertex range %zu", a, b,
                    graph.num_vertices));
    }
    if (a == b) continue;  // Self-loops add nothing to domination.
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

}  // namespace

StatusOr<std::vector<size_t>> GreedyDominatingSet(const Graph& graph) {
  HM_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> adj,
                      AdjacencyList(graph));
  // Set-cover reduction: choosing vertex v covers {v} ∪ N(v).
  SetCoverInstance instance;
  instance.universe_size = graph.num_vertices;
  instance.sets.resize(graph.num_vertices);
  for (size_t v = 0; v < graph.num_vertices; ++v) {
    instance.sets[v] = adj[v];
    instance.sets[v].push_back(v);
  }
  HM_ASSIGN_OR_RETURN(SetCoverResult cover, GreedySetCover(instance));
  std::sort(cover.chosen.begin(), cover.chosen.end());
  return cover.chosen;
}

bool IsDominatingSet(const Graph& graph, const std::vector<size_t>& dom) {
  auto adj_or = AdjacencyList(graph);
  if (!adj_or.ok()) return false;
  const auto& adj = adj_or.value();
  std::vector<char> dominated(graph.num_vertices, 0);
  for (size_t v : dom) {
    if (v >= graph.num_vertices) return false;
    dominated[v] = 1;
    for (size_t u : adj[v]) dominated[u] = 1;
  }
  return std::all_of(dominated.begin(), dominated.end(),
                     [](char c) { return c != 0; });
}

StatusOr<std::vector<size_t>> BruteForceMinDominatingSet(const Graph& graph) {
  const size_t n = graph.num_vertices;
  if (n > 24) {
    return Status::InvalidArgument("brute force dominating set: graph too big");
  }
  HM_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> adj,
                      AdjacencyList(graph));
  std::vector<uint32_t> closed(n, 0);
  for (size_t v = 0; v < n; ++v) {
    closed[v] = uint32_t{1} << v;
    for (size_t u : adj[v]) closed[v] |= uint32_t{1} << u;
  }
  uint32_t full = n == 32 ? ~uint32_t{0} : ((uint32_t{1} << n) - 1);
  size_t best_size = n + 1;
  uint32_t best = 0;
  for (uint32_t subset = 0; subset < (uint32_t{1} << n); ++subset) {
    size_t size = static_cast<size_t>(__builtin_popcount(subset));
    if (size >= best_size) continue;
    uint32_t covered = 0;
    for (size_t v = 0; v < n; ++v) {
      if (subset & (uint32_t{1} << v)) covered |= closed[v];
    }
    if (covered == full) {
      best_size = size;
      best = subset;
    }
  }
  std::vector<size_t> out;
  for (size_t v = 0; v < n; ++v) {
    if (best & (uint32_t{1} << v)) out.push_back(v);
  }
  return out;
}

}  // namespace hypermine::approx
