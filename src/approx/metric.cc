#include "approx/metric.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hypermine::approx {

std::string MetricCheck::ToString() const {
  std::ostringstream os;
  os << "non_negative=" << (non_negative ? "yes" : "no")
     << " identity=" << (identity_of_indiscernibles ? "yes" : "no")
     << " symmetric=" << (symmetric ? "yes" : "no")
     << " triangle=" << (triangle_inequality ? "yes" : "no")
     << " (violations=" << triangle_violations
     << ", worst_excess=" << worst_triangle_excess << ")";
  return os.str();
}

MetricCheck CheckMetricProperties(size_t num_points, const DistanceFn& dist,
                                  double tolerance) {
  MetricCheck check;
  for (size_t a = 0; a < num_points; ++a) {
    if (std::fabs(dist(a, a)) > tolerance) {
      check.identity_of_indiscernibles = false;
    }
    for (size_t b = 0; b < num_points; ++b) {
      double dab = dist(a, b);
      if (dab < -tolerance) check.non_negative = false;
      if (a != b && std::fabs(dab) <= tolerance) {
        // Distinct points at distance zero violate d(x,y)=0 <=> x=y.
        check.identity_of_indiscernibles = false;
      }
      if (std::fabs(dab - dist(b, a)) > tolerance) check.symmetric = false;
    }
  }
  for (size_t a = 0; a < num_points; ++a) {
    for (size_t b = 0; b < num_points; ++b) {
      if (a == b) continue;
      double dab = dist(a, b);
      for (size_t c = 0; c < num_points; ++c) {
        if (c == a || c == b) continue;
        double excess = dab - (dist(a, c) + dist(c, b));
        if (excess > tolerance) {
          check.triangle_inequality = false;
          ++check.triangle_violations;
          check.worst_triangle_excess =
              std::max(check.worst_triangle_excess, excess);
        }
      }
    }
  }
  return check;
}

}  // namespace hypermine::approx
