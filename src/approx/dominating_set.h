#ifndef HYPERMINE_APPROX_DOMINATING_SET_H_
#define HYPERMINE_APPROX_DOMINATING_SET_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hypermine::approx {

/// An undirected graph given as an edge list over vertices {0, ..., n-1}.
struct Graph {
  size_t num_vertices = 0;
  std::vector<std::pair<size_t, size_t>> edges;
};

/// Greedy O(log n)-approximation for minimum dominating set (Theorem 2.5):
/// reduces to set cover with S_i = {v_i} ∪ N(v_i) and runs Algorithm 1.
/// Always succeeds for valid graphs (every vertex covers itself).
StatusOr<std::vector<size_t>> GreedyDominatingSet(const Graph& graph);

/// True when `dom` dominates every vertex of `graph` (each vertex is in dom
/// or adjacent to a member of dom).
bool IsDominatingSet(const Graph& graph, const std::vector<size_t>& dom);

/// Exhaustive minimum dominating set for graphs with <= 24 vertices (tests).
StatusOr<std::vector<size_t>> BruteForceMinDominatingSet(const Graph& graph);

}  // namespace hypermine::approx

#endif  // HYPERMINE_APPROX_DOMINATING_SET_H_
