#include "approx/gonzalez.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace hypermine::approx {

StatusOr<Clustering> GonzalezTClustering(size_t num_points, size_t t,
                                         const DistanceFn& dist,
                                         size_t first_center) {
  if (num_points == 0) {
    return Status::InvalidArgument("t-clustering: no points");
  }
  if (t == 0 || t > num_points) {
    return Status::InvalidArgument("t-clustering: t out of range");
  }
  if (first_center >= num_points) {
    return Status::InvalidArgument("t-clustering: first center out of range");
  }

  Clustering out;
  out.centers.push_back(first_center);
  // closest_dist[p] = distance from p to its nearest chosen center so far.
  std::vector<double> closest_dist(num_points);
  std::vector<size_t> closest_center(num_points, 0);
  for (size_t p = 0; p < num_points; ++p) {
    closest_dist[p] = dist(p, first_center);
  }
  closest_dist[first_center] = 0.0;

  while (out.centers.size() < t) {
    // Farthest point from all existing centers becomes the next center.
    size_t farthest = 0;
    double best = -1.0;
    for (size_t p = 0; p < num_points; ++p) {
      if (closest_dist[p] > best) {
        best = closest_dist[p];
        farthest = p;
      }
    }
    size_t center_index = out.centers.size();
    out.centers.push_back(farthest);
    for (size_t p = 0; p < num_points; ++p) {
      double d = dist(p, farthest);
      if (d < closest_dist[p]) {
        closest_dist[p] = d;
        closest_center[p] = center_index;
      }
    }
    closest_dist[farthest] = 0.0;
    closest_center[farthest] = center_index;
  }

  out.assignment = std::move(closest_center);
  out.radius = *std::max_element(closest_dist.begin(), closest_dist.end());
  out.diameter =
      ClusteringDiameter(num_points, out.centers.size(), out.assignment, dist);
  return out;
}

double ClusteringDiameter(size_t num_points, size_t num_clusters,
                          const std::vector<size_t>& assignment,
                          const DistanceFn& dist) {
  HM_CHECK_EQ(assignment.size(), num_points);
  std::vector<std::vector<size_t>> members(num_clusters);
  for (size_t p = 0; p < num_points; ++p) {
    HM_CHECK_LT(assignment[p], num_clusters);
    members[assignment[p]].push_back(p);
  }
  double diameter = 0.0;
  for (const auto& cluster : members) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        diameter = std::max(diameter, dist(cluster[i], cluster[j]));
      }
    }
  }
  return diameter;
}

namespace {

void EnumerateAssignments(size_t point, size_t num_points, size_t t,
                          std::vector<size_t>* assignment,
                          const DistanceFn& dist, double* best) {
  if (point == num_points) {
    double d = ClusteringDiameter(num_points, t, *assignment, dist);
    *best = std::min(*best, d);
    return;
  }
  // Canonical form: point p may only open cluster c if clusters 0..c-1 are
  // already used by earlier points; this prunes label permutations.
  size_t max_used = 0;
  for (size_t p = 0; p < point; ++p) {
    max_used = std::max(max_used, (*assignment)[p] + 1);
  }
  size_t limit = std::min(t, max_used + 1);
  for (size_t c = 0; c < limit; ++c) {
    (*assignment)[point] = c;
    EnumerateAssignments(point + 1, num_points, t, assignment, dist, best);
  }
}

}  // namespace

StatusOr<double> BruteForceOptimalDiameter(size_t num_points, size_t t,
                                           const DistanceFn& dist) {
  if (num_points > 12) {
    return Status::InvalidArgument("brute force clustering: too many points");
  }
  if (t == 0 || t > num_points) {
    return Status::InvalidArgument("brute force clustering: t out of range");
  }
  std::vector<size_t> assignment(num_points, 0);
  double best = std::numeric_limits<double>::infinity();
  EnumerateAssignments(0, num_points, t, &assignment, dist, &best);
  return best;
}

}  // namespace hypermine::approx
