#include "approx/set_cover.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::approx {

StatusOr<SetCoverResult> GreedySetCover(const SetCoverInstance& instance) {
  const size_t n = instance.universe_size;
  const size_t m = instance.sets.size();
  const bool unit_cost = instance.costs.empty();
  if (!unit_cost && instance.costs.size() != m) {
    return Status::InvalidArgument("set cover: costs/sets size mismatch");
  }
  for (const auto& set : instance.sets) {
    for (size_t u : set) {
      if (u >= n) {
        return Status::InvalidArgument(
            StrFormat("set cover: element %zu outside universe of %zu", u, n));
      }
    }
  }

  std::vector<char> covered(n, 0);
  std::vector<char> used(m, 0);
  size_t num_covered = 0;
  SetCoverResult result;
  result.prices.assign(n, 0.0);

  // Cached count of uncovered elements per set; recomputed lazily because
  // counts only decrease as coverage grows.
  std::vector<size_t> fresh_count(m, 0);
  for (size_t s = 0; s < m; ++s) fresh_count[s] = instance.sets[s].size();

  auto recount = [&](size_t s) {
    size_t cnt = 0;
    for (size_t u : instance.sets[s]) cnt += covered[u] ? 0 : 1;
    fresh_count[s] = cnt;
    return cnt;
  };

  while (num_covered < n) {
    size_t best = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < m; ++s) {
      if (used[s] || fresh_count[s] == 0) continue;
      size_t cnt = recount(s);
      if (cnt == 0) continue;
      double cost = unit_cost ? 1.0 : instance.costs[s];
      double ratio = cost / static_cast<double>(cnt);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = s;
      }
    }
    if (best == m) {
      return Status::FailedPrecondition(
          "set cover: universe is not coverable by the given sets");
    }
    used[best] = 1;
    result.chosen.push_back(best);
    double cost = unit_cost ? 1.0 : instance.costs[best];
    result.total_cost += cost;
    double price = cost / static_cast<double>(fresh_count[best]);
    for (size_t u : instance.sets[best]) {
      if (!covered[u]) {
        covered[u] = 1;
        result.prices[u] = price;
        ++num_covered;
      }
    }
  }
  return result;
}

StatusOr<std::vector<size_t>> BruteForceMinSetCover(
    const SetCoverInstance& instance) {
  const size_t m = instance.sets.size();
  const size_t n = instance.universe_size;
  if (m > 24) {
    return Status::InvalidArgument("brute force set cover: too many sets");
  }
  std::vector<uint64_t> masks(m, 0);
  if (n > 64) {
    return Status::InvalidArgument(
        "brute force set cover: universe larger than 64");
  }
  for (size_t s = 0; s < m; ++s) {
    for (size_t u : instance.sets[s]) masks[s] |= (uint64_t{1} << u);
  }
  uint64_t full = n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);

  size_t best_size = m + 1;
  uint32_t best_subset = 0;
  for (uint32_t subset = 0; subset < (uint32_t{1} << m); ++subset) {
    size_t size = static_cast<size_t>(__builtin_popcount(subset));
    if (size >= best_size) continue;
    uint64_t cover = 0;
    for (size_t s = 0; s < m; ++s) {
      if (subset & (uint32_t{1} << s)) cover |= masks[s];
    }
    if (cover == full) {
      best_size = size;
      best_subset = subset;
    }
  }
  if (best_size == m + 1) {
    return Status::FailedPrecondition("brute force set cover: no cover");
  }
  std::vector<size_t> chosen;
  for (size_t s = 0; s < m; ++s) {
    if (best_subset & (uint32_t{1} << s)) chosen.push_back(s);
  }
  return chosen;
}

}  // namespace hypermine::approx
