#ifndef HYPERMINE_SERVE_ENGINE_H_
#define HYPERMINE_SERVE_ENGINE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/rule_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hypermine::serve {

/// Largest item set a single query may name. TopKWithin enumerates tail
/// subsets of size 1..3, so work grows as C(n, 3); the cap bounds one
/// query to ~40k group lookups and keeps a hostile stdin line from
/// pinning a serving worker.
inline constexpr size_t kMaxQueryItems = 64;

/// One association query: "given these items, what follows?".
struct Query {
  std::vector<core::VertexId> items;
  size_t k = 10;
  /// kTopK ranks consequents of tail subsets of `items`; kReachable
  /// computes the forward closure of `items` under min_acv.
  enum class Kind { kTopK, kReachable } kind = Kind::kTopK;
  /// Only used by kReachable.
  double min_acv = 0.0;
};

struct QueryResult {
  Status status;
  /// kTopK answers (best ACV first).
  std::vector<RankedConsequent> ranked;
  /// kReachable answer (sorted vertex ids, includes the seeds).
  std::vector<core::VertexId> closure;
  /// True when served from the engine's result cache.
  bool from_cache = false;
};

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1).
  size_t num_threads = 0;
  /// LRU result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 4096;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Concurrent batched query engine over an immutable RuleIndex. A fixed
/// util::ThreadPool drains each submitted batch (callers block until their
/// batch is complete), and an LRU cache keyed on the canonicalized query
/// memoizes results across batches. The index is read-only after
/// construction, so workers share it without locking; only the cache takes
/// a mutex.
class QueryEngine {
 public:
  QueryEngine(RuleIndex index, EngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers a batch; result i corresponds to queries[i]. Thread-safe —
  /// concurrent batches interleave on the same pool.
  std::vector<QueryResult> QueryBatch(const std::vector<Query>& queries);

  /// Answers one query (convenience wrapper over QueryBatch).
  QueryResult QueryOne(const Query& query);

  const RuleIndex& index() const { return index_; }
  size_t num_threads() const { return pool_.num_threads(); }
  CacheStats cache_stats() const;

 private:
  struct CacheEntry {
    std::string key;
    QueryResult result;
  };

  QueryResult Process(const Query& query);
  /// Canonical cache key; empty when the query is uncacheable/invalid.
  static std::string CacheKey(const Query& query);

  const RuleIndex index_;

  // LRU cache: list front = most recent; map points into the list.
  mutable std::mutex cache_mutex_;
  size_t cache_capacity_ = 0;
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
  CacheStats stats_;

  /// Runs the batch chunks. MUST be the last member: ~ThreadPool drains
  /// in-flight chunks, which still call Process() against the cache state
  /// above, so the pool has to die (and join) first.
  ThreadPool pool_;
};

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_ENGINE_H_
