#ifndef HYPERMINE_SERVE_ENGINE_H_
#define HYPERMINE_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "api/engine.h"
#include "serve/rule_index.h"
#include "util/status.h"

namespace hypermine::serve {

/// Largest item set a single query may name (see api::kMaxQueryItems).
inline constexpr size_t kMaxQueryItems = api::kMaxQueryItems;

/// One association query: "given these items, what follows?".
struct Query {
  std::vector<core::VertexId> items;
  size_t k = 10;
  /// kTopK ranks consequents of tail subsets of `items`; kReachable
  /// computes the forward closure of `items` under min_acv.
  enum class Kind { kTopK, kReachable } kind = Kind::kTopK;
  /// Only used by kReachable.
  double min_acv = 0.0;
};

struct QueryResult {
  Status status;
  /// kTopK answers (best ACV first).
  std::vector<RankedConsequent> ranked;
  /// kReachable answer (sorted vertex ids, includes the seeds).
  std::vector<core::VertexId> closure;
  /// True when served from the engine's result cache.
  bool from_cache = false;
};

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1).
  size_t num_threads = 0;
  /// LRU result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 4096;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// DEPRECATED: thin compatibility shim over api::Engine, kept while
/// existing tests and callers migrate. New code should build an
/// api::Model (Build / FromSnapshot) and serve it through api::Engine,
/// which adds hot model swap, versioned responses, and name-based
/// queries. This shim wraps a bare RuleIndex in an index-only model and
/// translates Query/QueryResult to the api types; semantics (batching,
/// canonicalized-key LRU cache, per-query validation) are unchanged.
class QueryEngine {
 public:
  explicit QueryEngine(RuleIndex index, EngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers a batch; result i corresponds to queries[i]. Thread-safe —
  /// concurrent batches interleave on the same pool.
  std::vector<QueryResult> QueryBatch(const std::vector<Query>& queries);

  /// Answers one query (convenience wrapper over the api engine).
  QueryResult QueryOne(const Query& query);

  const RuleIndex& index() const { return model_->index(); }
  size_t num_threads() const { return engine_.num_threads(); }
  CacheStats cache_stats() const;

 private:
  /// Declared before engine_: the engine keeps its own shared_ptr, but
  /// construction order needs the model first.
  std::shared_ptr<const api::Model> model_;
  api::Engine engine_;
};

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_ENGINE_H_
