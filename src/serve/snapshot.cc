#include "serve/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "core/export.h"
#include "serve/wire.h"
#include "util/csv.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace hypermine::serve {
namespace {

// The format is defined as little-endian. The project targets x86-64 (see
// the accelerator notes in ROADMAP.md); on a big-endian host the memcpy
// below would need byte swaps.
static_assert(std::endian::native == std::endian::little,
              "snapshot format requires a little-endian host");

constexpr char kMagic[8] = {'H', 'M', 'S', 'N', 'A', 'P', 'S', 'H'};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8;
// Version <= 2 narrow record: uint16 tail[3] + uint16 head + double weight.
constexpr size_t kEdgeRecordSize = 4 * 2 + 8;
// Version 3 wide record: uint32 tail[3] + uint32 head + double weight.
constexpr size_t kWideEdgeRecordSize = 4 * 4 + 8;
// 16-bit encoding of core::kNoVertex in narrow records; no real id reaches
// it because narrow records are only written for graphs within the old
// 0xFFFE-vertex universe.
constexpr uint16_t kNoVertex16 = 0xFFFF;
// Largest vertex count the narrow (version 2) records can address — the
// pre-widening core::kMaxVertices. The writer stays narrow (and
// byte-identical to older builds) up to here.
constexpr uint64_t kMaxNarrowVertices = 0xFFFE;

// Spec-trailer config flag bits (version >= 2).
constexpr uint32_t kFlagRestrictPairsToEdges = 1u << 0;
constexpr uint32_t kFlagKeepPairsWithoutEdges = 1u << 1;
constexpr uint32_t kKnownConfigFlags =
    kFlagRestrictPairsToEdges | kFlagKeepPairsWithoutEdges;

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Bounds-checked sequential reader over the snapshot body.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t length = 0;
    std::string_view bytes;
    if (!Read(&length) || !ReadBytes(length, &bytes)) return false;
    out->assign(bytes);
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::Corrupted("snapshot: " + what);
}

/// Chaos-only damage to freshly read snapshot bytes, before parsing:
/// "snapshot.truncate" drops the second half, "snapshot.corrupt" flips a
/// bit mid-body. Both must surface as kCorrupted from the deserializer
/// (the checksum covers the whole body), which is exactly what the chaos
/// harness asserts.
void MaybeInjectSnapshotFault(std::string* data) {
  if (data->empty()) return;
  if (fault::ShouldFail("snapshot.truncate")) {
    data->resize(data->size() / 2);
  }
  if (!data->empty() && fault::ShouldFail("snapshot.corrupt")) {
    (*data)[data->size() / 2] ^= 0x40;
  }
}

void AppendString(std::string* out, const std::string& value) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(value.size()));
  *out += value;
}

void AppendSpecTrailer(std::string* body, const api::ModelSpec& spec) {
  AppendPod<uint32_t>(body, static_cast<uint32_t>(spec.config.k));
  AppendPod<double>(body, spec.config.gamma_edge);
  AppendPod<double>(body, spec.config.gamma_hyper);
  uint32_t flags = 0;
  if (spec.config.restrict_pairs_to_edges) flags |= kFlagRestrictPairsToEdges;
  if (spec.config.keep_pairs_without_edges) {
    flags |= kFlagKeepPairsWithoutEdges;
  }
  AppendPod<uint32_t>(body, flags);
  AppendPod<uint64_t>(body, spec.provenance.created_unix);
  AppendString(body, spec.discretization);
  AppendString(body, spec.provenance.source);
  AppendString(body, spec.provenance.git_sha);
  AppendString(body, spec.provenance.note);
}

StatusOr<api::ModelSpec> ParseSpecTrailer(Reader* reader) {
  api::ModelSpec spec;
  uint32_t k = 0;
  uint32_t flags = 0;
  if (!reader->Read(&k) || !reader->Read(&spec.config.gamma_edge) ||
      !reader->Read(&spec.config.gamma_hyper) || !reader->Read(&flags) ||
      !reader->Read(&spec.provenance.created_unix)) {
    return Corrupt("truncated spec trailer");
  }
  if ((flags & ~kKnownConfigFlags) != 0) {
    return Corrupt("unknown spec config flags");
  }
  spec.config.k = k;
  spec.config.restrict_pairs_to_edges =
      (flags & kFlagRestrictPairsToEdges) != 0;
  spec.config.keep_pairs_without_edges =
      (flags & kFlagKeepPairsWithoutEdges) != 0;
  if (!reader->ReadString(&spec.discretization) ||
      !reader->ReadString(&spec.provenance.source) ||
      !reader->ReadString(&spec.provenance.git_sha) ||
      !reader->ReadString(&spec.provenance.note)) {
    return Corrupt("truncated spec strings");
  }
  return spec;
}

/// Splits a buffer into (version, body) after magic/checksum verification.
StatusOr<std::pair<uint32_t, std::string_view>> CheckEnvelope(
    std::string_view data, bool verify_checksum) {
  if (data.size() < kHeaderSize) return Corrupt("file shorter than header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a hypermine snapshot)");
  }
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, data.data() + 8, sizeof(version));
  std::memcpy(&flags, data.data() + 12, sizeof(flags));
  std::memcpy(&checksum, data.data() + 16, sizeof(checksum));
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("snapshot: unsupported version %u (supported %u..%u)",
                  version, kMinSnapshotVersion, kSnapshotVersion));
  }
  if (flags != 0) return Corrupt("nonzero reserved flags");
  std::string_view body = data.substr(kHeaderSize);
  if (verify_checksum && Fnv1a(body) != checksum) {
    return Corrupt("body checksum mismatch");
  }
  return std::make_pair(version, body);
}

}  // namespace

std::string SerializeSnapshot(const core::DirectedHypergraph& graph,
                              const api::ModelSpec& spec) {
  // Narrowest representation that fits: version 2 (16-bit ids,
  // byte-identical to pre-widening builds) unless the graph actually uses
  // the widened id space.
  const bool wide = graph.num_vertices() > kMaxNarrowVertices;
  const uint32_t version = wide ? kSnapshotVersion : kNarrowSnapshotVersion;
  std::string body;
  body.reserve(128 + 16 * graph.num_vertices() +
               (wide ? kWideEdgeRecordSize : kEdgeRecordSize) *
                   graph.num_edges());
  AppendPod<uint64_t>(&body, graph.num_vertices());
  AppendPod<uint64_t>(&body, graph.num_edges());
  for (const std::string& name : graph.vertex_names()) {
    AppendPod<uint32_t>(&body, static_cast<uint32_t>(name.size()));
  }
  for (const std::string& name : graph.vertex_names()) body += name;
  for (core::EdgeId id = 0; id < graph.num_edges(); ++id) {
    const core::Hyperedge& e = graph.edge(id);
    if (wide) {
      for (core::VertexId v : e.tail) AppendPod<uint32_t>(&body, v);
      AppendPod<uint32_t>(&body, e.head);
    } else {
      for (core::VertexId v : e.tail) {
        AppendPod<uint16_t>(&body, v == core::kNoVertex
                                       ? kNoVertex16
                                       : static_cast<uint16_t>(v));
      }
      AppendPod<uint16_t>(&body, static_cast<uint16_t>(e.head));
    }
    AppendPod<double>(&body, e.weight);
  }
  AppendSpecTrailer(&body, spec);

  std::string out;
  out.reserve(kHeaderSize + body.size());
  out.append(kMagic, sizeof(kMagic));
  AppendPod<uint32_t>(&out, version);
  AppendPod<uint32_t>(&out, 0);  // flags
  AppendPod<uint64_t>(&out, Fnv1a(body));
  out += body;
  return out;
}

StatusOr<LoadedSnapshot> DeserializeSnapshotFull(std::string_view data) {
  HM_ASSIGN_OR_RETURN(auto envelope,
                      CheckEnvelope(data, /*verify_checksum=*/true));
  const uint32_t version = envelope.first;
  Reader reader(envelope.second);

  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  if (!reader.Read(&num_vertices) || !reader.Read(&num_edges)) {
    return Corrupt("truncated counts");
  }
  if (num_vertices == 0 || num_vertices > core::kMaxVertices) {
    return Corrupt("vertex count out of range");
  }
  // Each vertex needs at least a 4-byte name-length entry, so a count
  // beyond body_size/4 is corrupt — checked before the name-table resize
  // so a damaged count cannot trigger a giant allocation (kMaxVertices is
  // no longer a tight bound now that ids are 32-bit).
  if (num_vertices > envelope.second.size() / sizeof(uint32_t)) {
    return Corrupt("vertex count exceeds snapshot size");
  }
  if (version < 3 && num_vertices > kMaxNarrowVertices) {
    return Corrupt("narrow snapshot claims more vertices than 16-bit "
                   "records can address");
  }

  std::vector<uint32_t> name_lengths(num_vertices);
  for (uint32_t& len : name_lengths) {
    if (!reader.Read(&len)) return Corrupt("truncated name table");
  }
  std::vector<std::string> names;
  names.reserve(num_vertices);
  for (uint32_t len : name_lengths) {
    std::string_view bytes;
    if (!reader.ReadBytes(len, &bytes)) return Corrupt("truncated names");
    names.emplace_back(bytes);
  }

  auto graph_or = core::DirectedHypergraph::Create(std::move(names));
  if (!graph_or.ok()) return Corrupt(graph_or.status().message());
  core::DirectedHypergraph graph = std::move(graph_or).value();

  const bool wide = version >= 3;
  for (uint64_t i = 0; i < num_edges; ++i) {
    std::vector<core::VertexId> tail;
    core::VertexId head = core::kNoVertex;
    double weight = 0.0;
    bool ok = true;
    if (wide) {
      uint32_t tail32[core::kMaxTailSize];
      for (uint32_t& t : tail32) ok = ok && reader.Read(&t);
      uint32_t head32 = 0;
      ok = ok && reader.Read(&head32) && reader.Read(&weight);
      if (ok) {
        for (uint32_t t : tail32) {
          if (t != core::kNoVertex) tail.push_back(t);
        }
        head = head32;
      }
    } else {
      uint16_t tail16[core::kMaxTailSize];
      for (uint16_t& t : tail16) ok = ok && reader.Read(&t);
      uint16_t head16 = 0;
      ok = ok && reader.Read(&head16) && reader.Read(&weight);
      if (ok) {
        for (uint16_t t : tail16) {
          if (t != kNoVertex16) tail.push_back(t);
        }
        head = head16;
      }
    }
    if (!ok) {
      return Corrupt(StrFormat("truncated edge record %llu",
                               static_cast<unsigned long long>(i)));
    }
    auto added = graph.AddEdge(std::move(tail), head, weight);
    if (!added.ok()) {
      return Corrupt(StrFormat("invalid edge record %llu: %s",
                               static_cast<unsigned long long>(i),
                               added.status().message().c_str()));
    }
  }

  LoadedSnapshot loaded{std::move(graph), api::ModelSpec{}, false};
  if (version >= 2) {
    HM_ASSIGN_OR_RETURN(loaded.spec, ParseSpecTrailer(&reader));
    loaded.has_spec = true;
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes after snapshot body");
  return loaded;
}

StatusOr<core::DirectedHypergraph> DeserializeSnapshot(std::string_view data) {
  HM_ASSIGN_OR_RETURN(LoadedSnapshot loaded, DeserializeSnapshotFull(data));
  return std::move(loaded.graph);
}

Status WriteSnapshot(const core::DirectedHypergraph& graph,
                     const std::string& path) {
  return WriteStringToFile(path, SerializeSnapshot(graph));
}

Status WriteSnapshot(const core::DirectedHypergraph& graph,
                     const api::ModelSpec& spec, const std::string& path) {
  return WriteStringToFile(path, SerializeSnapshot(graph, spec));
}

StatusOr<core::DirectedHypergraph> ReadSnapshot(const std::string& path) {
  HM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  MaybeInjectSnapshotFault(&data);
  return DeserializeSnapshot(data);
}

StatusOr<LoadedSnapshot> ReadSnapshotFull(const std::string& path) {
  HM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  MaybeInjectSnapshotFault(&data);
  return DeserializeSnapshotFull(data);
}

StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  // A peek must stay cheap on multi-GB models: read only the header plus
  // the two count fields, never the whole file.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string data(kHeaderSize + 2 * sizeof(uint64_t), '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  data.resize(static_cast<size_t>(in.gcount()));
  HM_ASSIGN_OR_RETURN(auto envelope,
                      CheckEnvelope(data, /*verify_checksum=*/false));
  SnapshotInfo info;
  info.version = envelope.first;
  Reader reader(envelope.second);
  if (!reader.Read(&info.num_vertices) || !reader.Read(&info.num_edges)) {
    return Corrupt("truncated counts");
  }
  return info;
}

bool LooksLikeSnapshot(std::string_view data) {
  return data.size() >= sizeof(kMagic) &&
         std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

StatusOr<core::DirectedHypergraph> LoadHypergraph(const std::string& path) {
  HM_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadModelFile(path));
  return std::move(loaded.graph);
}

StatusOr<LoadedSnapshot> LoadModelFile(const std::string& path) {
  HM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  MaybeInjectSnapshotFault(&data);
  if (LooksLikeSnapshot(data)) return DeserializeSnapshotFull(data);
  HM_ASSIGN_OR_RETURN(core::DirectedHypergraph graph,
                      core::ParseHypergraphCsv(data));
  return LoadedSnapshot{std::move(graph), api::ModelSpec{}, false};
}

}  // namespace hypermine::serve
