#ifndef HYPERMINE_SERVE_PLANE_ARTIFACT_H_
#define HYPERMINE_SERVE_PLANE_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/value_planes.h"
#include "util/mutex.h"
#include "util/status.h"

namespace hypermine::serve {

/// Snapshot-style wire format for a packed core::ValuePlanes — the
/// reusable artifact behind repeated γ-sweeps and tune_market runs.
/// Layout (little-endian, same x86 assumption as the model snapshot):
///
///   magic    8 bytes  "HMPLANES"
///   version  uint32   kPlaneArtifactVersion
///   flags    uint32   reserved, 0
///   checksum uint64   chunked FNV-1a over the body (core::ChunkedFnv1a)
///   body:
///     fingerprint     uint64  DatabaseFingerprint of the source database
///     num_attributes  uint64
///     num_observations uint64
///     num_values      uint64
///     words_per_plane uint64  must equal PlaneWords(num_observations)
///     plane words     uint64 x (num_attributes * num_values *
///                               words_per_plane)
///
/// The fingerprint rides inside the checksummed body, so a loaded artifact
/// can be matched against a database without repacking; the builder
/// re-verifies via ValuePlanes::Matches before any reuse.
inline constexpr uint32_t kPlaneArtifactVersion = 1;

/// Serializes packed planes. Infallible: every ValuePlanes from
/// PackDatabasePlanes is representable.
std::string SerializePlaneArtifact(const core::ValuePlanes& planes);

/// Parses an artifact buffer. Corrupted, truncated, or
/// checksum-mismatching input yields kCorrupted; an unsupported version
/// yields kInvalidArgument.
StatusOr<core::ValuePlanes> DeserializePlaneArtifact(std::string_view data);

/// File variants; kIoError on filesystem trouble.
Status WritePlaneArtifact(const core::ValuePlanes& planes,
                          const std::string& path);
StatusOr<core::ValuePlanes> ReadPlaneArtifact(const std::string& path);

/// True when the buffer starts with the plane-artifact magic.
bool LooksLikePlaneArtifact(std::string_view data);

struct PlaneCacheStats {
  size_t memory_hits = 0;
  size_t disk_hits = 0;
  size_t packs = 0;
};

/// Per-database cache of packed planes, keyed by DatabaseFingerprint:
/// γ-sweeps and repeated tune_market windows pack each distinct database
/// once. Optionally file-backed — with a cache_dir, misses look for
/// `<dir>/<fingerprint hex>.planes` before packing and persist fresh packs
/// there (best effort: an unwritable or corrupt cache file degrades to
/// packing, never to an error). Thread-safe; entries are shared_ptr so a
/// returned artifact outlives any cache churn.
class PlaneCache {
 public:
  PlaneCache() = default;
  explicit PlaneCache(std::string cache_dir)
      : cache_dir_(std::move(cache_dir)) {}

  /// Returns the packed planes for `db`, packing (and caching) on miss.
  std::shared_ptr<const core::ValuePlanes> GetOrPack(
      const core::Database& db);

  PlaneCacheStats stats() const;

 private:
  std::string ArtifactPath(uint64_t fingerprint) const;

  const std::string cache_dir_;
  mutable Mutex mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<const core::ValuePlanes>>
      entries_ HM_GUARDED_BY(mutex_);
  PlaneCacheStats stats_ HM_GUARDED_BY(mutex_);
};

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_PLANE_ARTIFACT_H_
