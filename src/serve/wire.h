#ifndef HYPERMINE_SERVE_WIRE_H_
#define HYPERMINE_SERVE_WIRE_H_

#include <cstring>
#include <string>

namespace hypermine::serve {

/// Appends the raw little-endian bytes of a POD value to a buffer. Shared
/// by the snapshot writer and the engine's cache-key builder so any future
/// encoding change happens in one place.
template <typename T>
void AppendPod(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_WIRE_H_
