#ifndef HYPERMINE_SERVE_WIRE_H_
#define HYPERMINE_SERVE_WIRE_H_

#include <cstring>
#include <string>
#include <string_view>

namespace hypermine::serve {

/// Appends the raw little-endian bytes of a POD value to a buffer. Shared
/// by the snapshot writer, the engine's cache-key builder, and the net
/// protocol encoder so any future encoding change happens in one place.
template <typename T>
void AppendPod(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Bounds-checked sequential reader over a wire buffer — the decode-side
/// twin of AppendPod. Never throws and never reads past the end: every
/// Read* returns false on underrun and leaves the cursor unchanged, so a
/// decoder can simply propagate `false` as "truncated frame".
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  /// Reads one little-endian POD value; false on underrun.
  template <typename T>
  bool ReadPod(T* out) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads `len` raw bytes as a view into the underlying buffer (valid
  /// only while that buffer lives); false on underrun.
  bool ReadBytes(size_t len, std::string_view* out) {
    if (remaining() < len) return false;
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_WIRE_H_
