#include "serve/engine.h"

#include <utility>

namespace hypermine::serve {

namespace {

api::EngineOptions Convert(const EngineOptions& options) {
  api::EngineOptions converted;
  converted.num_threads = options.num_threads;
  converted.cache_capacity = options.cache_capacity;
  return converted;
}

api::QueryRequest Convert(const Query& query) {
  api::QueryRequest request;
  request.items = query.items;
  request.k = query.k;
  request.kind = query.kind == Query::Kind::kTopK
                     ? api::QueryRequest::Kind::kTopK
                     : api::QueryRequest::Kind::kReachable;
  request.min_acv = query.min_acv;
  return request;
}

QueryResult Convert(StatusOr<api::QueryResponse> response) {
  QueryResult result;
  if (!response.ok()) {
    result.status = response.status();
    return result;
  }
  result.ranked = std::move(response->ranked);
  result.closure = std::move(response->closure);
  result.from_cache = response->from_cache;
  return result;
}

}  // namespace

QueryEngine::QueryEngine(RuleIndex index, EngineOptions options)
    : model_(api::Model::FromIndex(std::move(index))),
      engine_(model_, Convert(options)) {}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<Query>& queries) {
  std::vector<api::QueryRequest> requests;
  requests.reserve(queries.size());
  for (const Query& query : queries) requests.push_back(Convert(query));
  std::vector<StatusOr<api::QueryResponse>> responses =
      engine_.QueryBatch(requests);
  std::vector<QueryResult> results;
  results.reserve(responses.size());
  for (StatusOr<api::QueryResponse>& response : responses) {
    results.push_back(Convert(std::move(response)));
  }
  return results;
}

QueryResult QueryEngine::QueryOne(const Query& query) {
  return Convert(engine_.Query(Convert(query)));
}

CacheStats QueryEngine::cache_stats() const {
  api::CacheStats stats = engine_.cache_stats();
  return CacheStats{stats.hits, stats.misses, stats.evictions};
}

}  // namespace hypermine::serve
