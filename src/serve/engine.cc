#include "serve/engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>

#include "serve/wire.h"

namespace hypermine::serve {

QueryEngine::QueryEngine(RuleIndex index, EngineOptions options)
    : index_(std::move(index)),
      cache_capacity_(options.cache_capacity),
      pool_(options.num_threads) {}

std::string QueryEngine::CacheKey(const Query& query) {
  if (query.items.empty()) return {};
  // TopKWithin and Reachable are both insensitive to item order and
  // duplicates, so the canonical form is the sorted unique item set.
  std::vector<core::VertexId> items = query.items;
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  std::string key;
  key.reserve(16 + 4 * items.size());
  AppendPod<uint8_t>(&key, query.kind == Query::Kind::kTopK ? 0 : 1);
  AppendPod<uint64_t>(&key, query.kind == Query::Kind::kTopK ? query.k : 0);
  double min_acv = query.kind == Query::Kind::kReachable ? query.min_acv : 0;
  AppendPod<double>(&key, min_acv);
  for (core::VertexId v : items) AppendPod<uint32_t>(&key, v);
  return key;
}

QueryResult QueryEngine::Process(const Query& query) {
  QueryResult result;
  if (query.items.empty()) {
    result.status = Status::InvalidArgument("query: empty item set");
    return result;
  }
  if (query.items.size() > kMaxQueryItems) {
    result.status = Status::InvalidArgument(
        "query: item set larger than kMaxQueryItems");
    return result;
  }

  // Only pay for key canonicalization when a cache exists: the no-cache
  // configuration is the serving hot path benchmarks measure.
  std::string key;
  if (cache_capacity_ > 0) {
    key = CacheKey(query);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      QueryResult hit = it->second->result;
      hit.from_cache = true;
      return hit;
    }
    ++stats_.misses;
  }

  switch (query.kind) {
    case Query::Kind::kTopK:
      result.ranked = index_.TopKWithin(query.items, query.k);
      break;
    case Query::Kind::kReachable:
      result.closure = index_.Reachable(query.items, query.min_acv);
      break;
  }

  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      lru_.push_front(CacheEntry{key, result});
      cache_.emplace(lru_.front().key, lru_.begin());
      if (lru_.size() > cache_capacity_) {
        cache_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }
  return result;
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<Query>& queries) {
  const size_t n = queries.size();
  if (n == 0) return {};

  // Shared batch state: workers steal indices off an atomic cursor. Tasks
  // hold shared ownership because a queued task can outlive the batch when
  // its siblings drained every index first.
  struct BatchState {
    const std::vector<Query>* queries = nullptr;
    std::vector<QueryResult> results;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    bool complete = false;
  };
  auto state = std::make_shared<BatchState>();
  state->queries = &queries;
  state->results.resize(n);

  auto run_chunk = [this, state, n] {
    size_t i;
    while ((i = state->next.fetch_add(1)) < n) {
      state->results[i] = Process((*state->queries)[i]);
      if (state->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->complete = true;
        state->cv.notify_all();
      }
    }
  };

  const size_t chunks = std::min(pool_.num_threads(), n);
  std::vector<std::function<void()>> tasks(chunks, run_chunk);
  pool_.SubmitAll(std::move(tasks));

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state] { return state->complete; });
  return std::move(state->results);
}

QueryResult QueryEngine::QueryOne(const Query& query) {
  return QueryBatch({query})[0];
}

CacheStats QueryEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return stats_;
}

}  // namespace hypermine::serve
