#include "serve/plane_artifact.h"

#include <bit>
#include <cstring>
#include <utility>

#include "core/assoc_table.h"
#include "serve/wire.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace hypermine::serve {
namespace {

// Same little-endian contract as the model snapshot (see snapshot.cc).
static_assert(std::endian::native == std::endian::little,
              "plane artifact format requires a little-endian host");

constexpr char kMagic[8] = {'H', 'M', 'P', 'L', 'A', 'N', 'E', 'S'};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8;
// fingerprint + num_attributes + num_observations + num_values +
// words_per_plane.
constexpr size_t kBodyFixedSize = 5 * 8;

Status Corrupt(const std::string& what) {
  return Status::Corrupted("plane artifact: " + what);
}

}  // namespace

std::string SerializePlaneArtifact(const core::ValuePlanes& planes) {
  std::string body;
  body.reserve(kBodyFixedSize + planes.words.size() * sizeof(uint64_t));
  AppendPod<uint64_t>(&body, planes.fingerprint);
  AppendPod<uint64_t>(&body, planes.num_attributes);
  AppendPod<uint64_t>(&body, planes.num_observations);
  AppendPod<uint64_t>(&body, planes.num_values);
  AppendPod<uint64_t>(&body, planes.words_per_plane);
  body.append(reinterpret_cast<const char*>(planes.words.data()),
              planes.words.size() * sizeof(uint64_t));

  std::string out;
  out.reserve(kHeaderSize + body.size());
  out.append(kMagic, sizeof(kMagic));
  AppendPod<uint32_t>(&out, kPlaneArtifactVersion);
  AppendPod<uint32_t>(&out, 0);  // flags
  AppendPod<uint64_t>(&out, core::ChunkedFnv1a(body.data(), body.size()));
  out += body;
  return out;
}

StatusOr<core::ValuePlanes> DeserializePlaneArtifact(std::string_view data) {
  if (data.size() < kHeaderSize) return Corrupt("shorter than header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a hypermine plane artifact)");
  }
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, data.data() + 8, sizeof(version));
  std::memcpy(&flags, data.data() + 12, sizeof(flags));
  std::memcpy(&checksum, data.data() + 16, sizeof(checksum));
  if (version != kPlaneArtifactVersion) {
    return Status::InvalidArgument(
        StrFormat("plane artifact: unsupported version %u (supported %u)",
                  version, kPlaneArtifactVersion));
  }
  if (flags != 0) return Corrupt("nonzero reserved flags");
  std::string_view body = data.substr(kHeaderSize);
  if (core::ChunkedFnv1a(body.data(), body.size()) != checksum) {
    return Corrupt("body checksum mismatch");
  }
  if (body.size() < kBodyFixedSize) return Corrupt("truncated body");

  core::ValuePlanes planes;
  uint64_t fields[5];
  std::memcpy(fields, body.data(), sizeof(fields));
  planes.fingerprint = fields[0];
  planes.num_attributes = fields[1];
  planes.num_observations = fields[2];
  planes.num_values = fields[3];
  planes.words_per_plane = fields[4];

  // Dimension plausibility, checked against the actual payload size before
  // any allocation; every bound is relative to the buffer so corrupt giant
  // dimensions cannot trigger a giant resize.
  const size_t payload = body.size() - kBodyFixedSize;
  if (payload % sizeof(uint64_t) != 0) {
    return Corrupt("payload is not a whole number of words");
  }
  const size_t total_words = payload / sizeof(uint64_t);
  if (planes.num_attributes == 0 || planes.num_values == 0 ||
      planes.num_values > core::kMaxValues || planes.num_observations == 0 ||
      planes.words_per_plane == 0 || planes.words_per_plane > total_words ||
      planes.num_observations > planes.words_per_plane * 64 ||
      planes.words_per_plane !=
          core::PlaneWords(planes.num_observations)) {
    return Corrupt("dimensions out of range");
  }
  if (planes.num_values > total_words / planes.words_per_plane ||
      planes.num_attributes != total_words / planes.words_per_column() ||
      planes.num_attributes * planes.words_per_column() != total_words) {
    return Corrupt("dimensions do not match payload size");
  }

  planes.words.resize(total_words);
  std::memcpy(planes.words.data(), body.data() + kBodyFixedSize, payload);
  return planes;
}

Status WritePlaneArtifact(const core::ValuePlanes& planes,
                          const std::string& path) {
  return WriteStringToFile(path, SerializePlaneArtifact(planes));
}

StatusOr<core::ValuePlanes> ReadPlaneArtifact(const std::string& path) {
  HM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DeserializePlaneArtifact(data);
}

bool LooksLikePlaneArtifact(std::string_view data) {
  return data.size() >= sizeof(kMagic) &&
         std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

std::string PlaneCache::ArtifactPath(uint64_t fingerprint) const {
  return StrFormat("%s/%016llx.planes", cache_dir_.c_str(),
                   static_cast<unsigned long long>(fingerprint));
}

std::shared_ptr<const core::ValuePlanes> PlaneCache::GetOrPack(
    const core::Database& db) {
  const uint64_t fingerprint = core::DatabaseFingerprint(db);
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }

  // Disk probe and packing run unlocked: packing a wide database takes
  // real time and must not stall unrelated lookups. A racing pack of the
  // same database is harmless — emplace keeps the first entry.
  std::shared_ptr<const core::ValuePlanes> packed;
  bool from_disk = false;
  if (!cache_dir_.empty()) {
    StatusOr<core::ValuePlanes> loaded =
        ReadPlaneArtifact(ArtifactPath(fingerprint));
    // A stale or corrupt cache file degrades to packing; Matches re-checks
    // content against the database, not just the file's own claim.
    if (loaded.ok() && loaded->fingerprint == fingerprint &&
        loaded->Matches(db)) {
      packed = std::make_shared<core::ValuePlanes>(std::move(loaded).value());
      from_disk = true;
    }
  }
  if (packed == nullptr) {
    packed =
        std::make_shared<core::ValuePlanes>(core::PackDatabasePlanes(db));
    if (!cache_dir_.empty()) {
      // Best effort: an unwritable cache dir only costs future repacks.
      (void)WritePlaneArtifact(*packed, ArtifactPath(fingerprint));
    }
  }

  MutexLock lock(mutex_);
  auto [it, inserted] = entries_.emplace(fingerprint, std::move(packed));
  if (inserted) {
    if (from_disk) {
      ++stats_.disk_hits;
    } else {
      ++stats_.packs;
    }
  } else {
    ++stats_.memory_hits;
  }
  return it->second;
}

PlaneCacheStats PlaneCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace hypermine::serve
