#ifndef HYPERMINE_SERVE_RULE_INDEX_H_
#define HYPERMINE_SERVE_RULE_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/hypergraph.h"

namespace hypermine::serve {

/// One ranked answer to "given these items, what follows?": a consequent
/// vertex with the ACV of the hyperedge that produced it.
struct RankedConsequent {
  core::VertexId head = core::kNoVertex;
  double acv = 0.0;
  core::EdgeId edge = 0;

  friend bool operator==(const RankedConsequent&,
                         const RankedConsequent&) = default;
};

/// Read-optimized index over a built association hypergraph. Construction
/// groups hyperedges by canonicalized tail set and pre-sorts each group's
/// consequents by descending ACV, so serving a TopK query is a hash lookup
/// plus a slice — no per-query sorting. The index copies what it needs and
/// does not retain a reference to the source graph.
class RuleIndex {
 public:
  /// Builds the index in O(E log E).
  static RuleIndex Build(const core::DirectedHypergraph& graph);

  /// Consequents of the *exact* tail set (order-insensitive), best ACV
  /// first, at most k entries. Unknown or invalid tails yield an empty
  /// result — absence of rules is not an error on the serving path.
  std::vector<RankedConsequent> TopK(std::span<const core::VertexId> tail,
                                     size_t k) const;

  /// Consequents of every hyperedge whose tail is a subset of `items`
  /// (the paper's association query: "given items {A, B}, what are the
  /// top-k consequents?"). A head reachable through several tails is
  /// reported once with its best ACV.
  std::vector<RankedConsequent> TopKWithin(
      std::span<const core::VertexId> items, size_t k) const;

  /// Forward closure under B-reachability: starting from `seeds`, a
  /// hyperedge fires when its whole tail is already reachable and its ACV
  /// is >= min_acv, making its head reachable. Returns the closure
  /// (including the seeds), sorted ascending. Mirrors SCC/reachability
  /// notions on directed hypergraphs (Allamigeon, arXiv:1112.1444).
  std::vector<core::VertexId> Reachable(std::span<const core::VertexId> seeds,
                                        double min_acv) const;

  size_t num_tail_sets() const { return groups_.size(); }
  size_t num_entries() const { return entries_.size(); }
  size_t num_vertices() const { return num_vertices_; }

  /// Canonical key of a tail set: three full-width 32-bit ids (sorted,
  /// kNoVertex-padded) packed into 128 bits, so no two distinct tails can
  /// collide — same scheme as DirectedHypergraph's edge index key.
  struct Key {
    uint64_t hi = 0;
    uint64_t lo = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHasher {
    size_t operator()(const Key& key) const noexcept;
  };

  /// Canonical key of a tail set; kInvalidTailKey for tails that no
  /// hyperedge can have (empty, too large, out of range, duplicates).
  static Key TailKey(std::span<const core::VertexId> tail);
  /// Unreachable by real tails: the low half of a real key always has its
  /// bottom 32 bits clear (no head field), never all-ones.
  static constexpr Key kInvalidTailKey{~0ull, ~0ull};

 private:
  struct Group {
    uint32_t begin = 0;
    uint32_t size = 0;
  };

  struct Edge {
    core::VertexId tail[core::kMaxTailSize];
    uint8_t tail_size = 0;
    core::VertexId head = core::kNoVertex;
    double weight = 0.0;
  };

  size_t num_vertices_ = 0;
  /// Consequents, grouped by tail key, each group sorted by ACV desc.
  std::vector<RankedConsequent> entries_;
  std::unordered_map<Key, Group, KeyHasher> groups_;
  /// Compact edge copies + per-vertex incidence for Reachable().
  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> out_edges_;
};

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_RULE_INDEX_H_
