#include "serve/rule_index.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace hypermine::serve {

RuleIndex::Key RuleIndex::TailKey(std::span<const core::VertexId> tail) {
  if (tail.empty() || tail.size() > core::kMaxTailSize) {
    return kInvalidTailKey;
  }
  core::VertexId sorted[core::kMaxTailSize] = {core::kNoVertex,
                                               core::kNoVertex,
                                               core::kNoVertex};
  for (size_t i = 0; i < tail.size(); ++i) {
    if (tail[i] >= core::kMaxVertices) return kInvalidTailKey;
    sorted[i] = tail[i];
  }
  std::sort(sorted, sorted + tail.size());
  if (tail.size() > 1 &&
      std::adjacent_find(sorted, sorted + tail.size()) !=
          sorted + tail.size()) {
    return kInvalidTailKey;
  }
  // Three full-width 32-bit fields, same packing as
  // DirectedHypergraph::EdgeKey minus the head; kNoVertex pads the unused
  // slots and the low 32 bits of `lo` stay clear, which is what keeps
  // kInvalidTailKey out of reach.
  Key key;
  key.hi = (static_cast<uint64_t>(sorted[0]) << 32) |
           static_cast<uint64_t>(sorted[1]);
  key.lo = static_cast<uint64_t>(sorted[2]) << 32;
  return key;
}

size_t RuleIndex::KeyHasher::operator()(const Key& key) const noexcept {
  // splitmix64-style mix of each half; matches the spirit of
  // DirectedHypergraph::EdgeKeyHasher.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  return static_cast<size_t>(mix(key.hi) * 0x9ddfea08eb382d69ull +
                             mix(key.lo));
}

RuleIndex RuleIndex::Build(const core::DirectedHypergraph& graph) {
  RuleIndex index;
  index.num_vertices_ = graph.num_vertices();
  index.out_edges_.resize(graph.num_vertices());

  // Copy the edges compactly and bucket entry positions by tail key.
  const size_t num_edges = graph.num_edges();
  index.edges_.reserve(num_edges);
  std::vector<std::pair<Key, core::EdgeId>> keyed;
  keyed.reserve(num_edges);
  for (core::EdgeId id = 0; id < num_edges; ++id) {
    const core::Hyperedge& e = graph.edge(id);
    Edge copy;
    size_t n = e.tail_size();
    copy.tail_size = static_cast<uint8_t>(n);
    for (size_t i = 0; i < core::kMaxTailSize; ++i) copy.tail[i] = e.tail[i];
    copy.head = e.head;
    copy.weight = e.weight;
    index.edges_.push_back(copy);
    for (size_t i = 0; i < n; ++i) {
      index.out_edges_[e.tail[i]].push_back(id);
    }
    keyed.emplace_back(TailKey(e.TailSpan()), id);
  }

  // Group by key; within a group order by ACV desc (ties: smaller head id
  // first, for deterministic serving).
  std::sort(keyed.begin(), keyed.end(),
            [&index](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return std::tie(a.first.hi, a.first.lo) <
                       std::tie(b.first.hi, b.first.lo);
              }
              const Edge& ea = index.edges_[a.second];
              const Edge& eb = index.edges_[b.second];
              if (ea.weight != eb.weight) return ea.weight > eb.weight;
              return ea.head < eb.head;
            });
  index.entries_.reserve(num_edges);
  for (size_t i = 0; i < keyed.size();) {
    size_t j = i;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    Group group;
    group.begin = static_cast<uint32_t>(index.entries_.size());
    group.size = static_cast<uint32_t>(j - i);
    index.groups_.emplace(keyed[i].first, group);
    for (size_t p = i; p < j; ++p) {
      const Edge& e = index.edges_[keyed[p].second];
      index.entries_.push_back({e.head, e.weight, keyed[p].second});
    }
    i = j;
  }
  return index;
}

std::vector<RankedConsequent> RuleIndex::TopK(
    std::span<const core::VertexId> tail, size_t k) const {
  std::vector<RankedConsequent> out;
  if (k == 0) return out;
  auto it = groups_.find(TailKey(tail));
  if (it == groups_.end()) return out;
  const Group& group = it->second;
  size_t take = std::min<size_t>(k, group.size);
  out.assign(entries_.begin() + group.begin,
             entries_.begin() + group.begin + take);
  return out;
}

std::vector<RankedConsequent> RuleIndex::TopKWithin(
    std::span<const core::VertexId> items, size_t k) const {
  std::vector<RankedConsequent> out;
  if (k == 0 || items.empty()) return out;

  // Deduplicated, in-range item set.
  std::vector<core::VertexId> set(items.begin(), items.end());
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  while (!set.empty() && set.back() >= num_vertices_) set.pop_back();

  // Best ACV per head over all tail subsets of size 1..3.
  std::unordered_map<core::VertexId, RankedConsequent> best;
  auto consider = [this, &best](std::span<const core::VertexId> tail) {
    auto it = groups_.find(TailKey(tail));
    if (it == groups_.end()) return;
    const Group& group = it->second;
    for (uint32_t p = group.begin; p < group.begin + group.size; ++p) {
      const RankedConsequent& entry = entries_[p];
      auto [slot, inserted] = best.emplace(entry.head, entry);
      if (!inserted && entry.acv > slot->second.acv) slot->second = entry;
    }
  };
  const size_t n = set.size();
  for (size_t a = 0; a < n; ++a) {
    consider({&set[a], 1});
    for (size_t b = a + 1; b < n; ++b) {
      core::VertexId pair[2] = {set[a], set[b]};
      consider(pair);
      for (size_t c = b + 1; c < n; ++c) {
        core::VertexId triple[3] = {set[a], set[b], set[c]};
        consider(triple);
      }
    }
  }

  out.reserve(best.size());
  for (const auto& [head, entry] : best) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const RankedConsequent& a, const RankedConsequent& b) {
              if (a.acv != b.acv) return a.acv > b.acv;
              return a.head < b.head;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<core::VertexId> RuleIndex::Reachable(
    std::span<const core::VertexId> seeds, double min_acv) const {
  std::vector<char> in_closure(num_vertices_, 0);
  // Tail vertices still missing before each edge can fire.
  std::vector<uint8_t> missing(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) missing[e] = edges_[e].tail_size;

  std::queue<core::VertexId> frontier;
  for (core::VertexId v : seeds) {
    if (v < num_vertices_ && !in_closure[v]) {
      in_closure[v] = 1;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    core::VertexId v = frontier.front();
    frontier.pop();
    for (uint32_t e : out_edges_[v]) {
      if (edges_[e].weight < min_acv) continue;
      if (--missing[e] != 0) continue;
      core::VertexId head = edges_[e].head;
      if (!in_closure[head]) {
        in_closure[head] = 1;
        frontier.push(head);
      }
    }
  }

  std::vector<core::VertexId> out;
  for (core::VertexId v = 0; v < num_vertices_; ++v) {
    if (in_closure[v]) out.push_back(v);
  }
  return out;
}

}  // namespace hypermine::serve
