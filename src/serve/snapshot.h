#ifndef HYPERMINE_SERVE_SNAPSHOT_H_
#define HYPERMINE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hypermine::serve {

/// Binary snapshot of a built association hypergraph — the servable artifact
/// of the read path. Layout (little-endian, x86 assumption documented in
/// snapshot.cc):
///
///   magic    8 bytes  "HMSNAPSH"
///   version  uint32   kSnapshotVersion
///   flags    uint32   reserved, 0
///   checksum uint64   FNV-1a over the body
///   body:
///     num_vertices uint64
///     num_edges    uint64
///     name lengths uint32 x num_vertices
///     name bytes   concatenated, no terminators
///     edge records 16 bytes x num_edges:
///       tail uint16 x 3 (0xFFFF = empty slot), head uint16, weight double
///
/// Round-trips everything WriteHypergraphCsv covers (vertex names including
/// isolated vertices, tails of size 1..3, exact weights) at ~10x smaller
/// size, and load is a single pass over the file with no re-mining.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Parsed header summary (cheap peek; does not verify the body checksum).
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
};

/// Serializes the graph to the snapshot wire format.
std::string SerializeSnapshot(const core::DirectedHypergraph& graph);

/// Parses a snapshot buffer. Corrupted, truncated, or checksum-mismatching
/// input yields kCorrupted; an unsupported version yields kInvalidArgument.
StatusOr<core::DirectedHypergraph> DeserializeSnapshot(std::string_view data);

/// Writes / reads a snapshot file.
Status WriteSnapshot(const core::DirectedHypergraph& graph,
                     const std::string& path);
StatusOr<core::DirectedHypergraph> ReadSnapshot(const std::string& path);

/// Reads only the header + counts of a snapshot file.
StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// True when the buffer starts with the snapshot magic.
bool LooksLikeSnapshot(std::string_view data);

/// Loads a hypergraph from either a snapshot or a WriteHypergraphCsv file,
/// sniffing the format from the leading bytes.
StatusOr<core::DirectedHypergraph> LoadHypergraph(const std::string& path);

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_SNAPSHOT_H_
