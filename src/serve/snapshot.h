#ifndef HYPERMINE_SERVE_SNAPSHOT_H_
#define HYPERMINE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "api/model_spec.h"
#include "core/hypergraph.h"
#include "util/status.h"

namespace hypermine::serve {

/// Binary snapshot of a built association hypergraph — the servable artifact
/// of the read path. Layout (little-endian, x86 assumption documented in
/// snapshot.cc):
///
///   magic    8 bytes  "HMSNAPSH"
///   version  uint32   2 (narrow ids) or 3 (wide ids); see below
///   flags    uint32   reserved, 0
///   checksum uint64   FNV-1a over the body
///   body:
///     num_vertices uint64
///     num_edges    uint64
///     name lengths uint32 x num_vertices
///     name bytes   concatenated, no terminators
///     edge records, version <= 2 (16 bytes x num_edges):
///       tail uint16 x 3 (0xFFFF = empty slot), head uint16, weight double
///     edge records, version 3 (24 bytes x num_edges):
///       tail uint32 x 3 (0xFFFFFFFF = empty slot), head uint32,
///       weight double
///     spec trailer (version >= 2 only; checksummed with the body):
///       k uint32, gamma_edge double, gamma_hyper double,
///       config flags uint32 (bit 0 restrict_pairs_to_edges,
///                            bit 1 keep_pairs_without_edges),
///       created_unix uint64,
///       4 length-prefixed strings (uint32 + bytes):
///         discretization, source, git_sha, note
///
/// The writer picks the narrowest representation that fits: graphs within
/// the old 0xFFFE-vertex universe serialize as version 2, byte-identical
/// to what earlier builds wrote, so existing snapshots, goldens, and
/// readers are unaffected; only graphs that actually use the widened
/// 32-bit id space (> 0xFFFE vertices) emit version-3 wide records.
///
/// Round-trips everything WriteHypergraphCsv covers (vertex names including
/// isolated vertices, tails of size 1..3, exact weights) at ~10x smaller
/// size, plus the api::ModelSpec that produced the graph; load is a single
/// pass over the file with no re-mining. Version 1 files (no spec trailer)
/// still load, reporting has_spec = false.
inline constexpr uint32_t kSnapshotVersion = 3;
/// Newest version using 16-bit edge records; also what the writer emits
/// for any graph small enough to fit them.
inline constexpr uint32_t kNarrowSnapshotVersion = 2;
/// Oldest version the loader still accepts.
inline constexpr uint32_t kMinSnapshotVersion = 1;

/// Parsed header summary (cheap peek; does not verify the body checksum).
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  /// Version >= 2 files carry a ModelSpec trailer.
  bool has_spec() const { return version >= 2; }
};

/// A fully parsed snapshot (or CSV) file: the graph plus the ModelSpec that
/// built it. `has_spec` is false for v1 snapshots and CSV files, whose
/// `spec` is default-constructed.
struct LoadedSnapshot {
  core::DirectedHypergraph graph;
  api::ModelSpec spec;
  bool has_spec = false;
};

/// Serializes the graph (and its spec) to the snapshot wire format.
/// Infallible — every DirectedHypergraph is representable. All functions
/// in this header are stateless and thread-safe on distinct arguments.
std::string SerializeSnapshot(const core::DirectedHypergraph& graph,
                              const api::ModelSpec& spec = {});

/// Parses a snapshot buffer. Corrupted, truncated, or checksum-mismatching
/// input yields kCorrupted; an unsupported version yields kInvalidArgument.
StatusOr<core::DirectedHypergraph> DeserializeSnapshot(std::string_view data);

/// Parses a snapshot buffer including its ModelSpec trailer when present.
StatusOr<LoadedSnapshot> DeserializeSnapshotFull(std::string_view data);

/// Writes a snapshot file (truncating). kIoError when the path cannot be
/// created or written.
Status WriteSnapshot(const core::DirectedHypergraph& graph,
                     const std::string& path);
Status WriteSnapshot(const core::DirectedHypergraph& graph,
                     const api::ModelSpec& spec, const std::string& path);
/// Reads a snapshot file. kIoError when the file cannot be read; the
/// Deserialize errors (kCorrupted / kInvalidArgument) when it parses
/// badly.
StatusOr<core::DirectedHypergraph> ReadSnapshot(const std::string& path);
StatusOr<LoadedSnapshot> ReadSnapshotFull(const std::string& path);

/// Reads only the header + counts of a snapshot file — a cheap peek that
/// does NOT verify the body checksum (tooling that must trust the bytes
/// should do a full read).
StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// True when the buffer starts with the snapshot magic.
bool LooksLikeSnapshot(std::string_view data);

/// Loads a hypergraph from either a snapshot or a WriteHypergraphCsv file,
/// sniffing the format from the leading bytes.
StatusOr<core::DirectedHypergraph> LoadHypergraph(const std::string& path);

/// Format-sniffing load that also surfaces the ModelSpec trailer of v2
/// snapshots (CSV and v1 snapshots yield has_spec = false). This is the
/// loader api::Model::FromFile builds on.
StatusOr<LoadedSnapshot> LoadModelFile(const std::string& path);

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_SNAPSHOT_H_
