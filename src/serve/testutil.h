#ifndef HYPERMINE_SERVE_TESTUTIL_H_
#define HYPERMINE_SERVE_TESTUTIL_H_

#include <vector>

#include "serve/engine.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::serve {

/// Deterministic random association graph for tests and benchmarks:
/// `edges` distinct single/pair-tail hyperedges (pair with probability
/// `pair_prob`) over `vertices` vertices with uniform weights.
inline core::DirectedHypergraph RandomServeGraph(size_t vertices,
                                                 size_t edges, uint64_t seed,
                                                 double pair_prob = 0.4) {
  auto graph = core::DirectedHypergraph::CreateAnonymous(vertices);
  HM_CHECK_OK(graph.status());
  Rng rng(seed);
  size_t added = 0;
  while (added < edges) {
    core::VertexId head =
        static_cast<core::VertexId>(rng.NextBounded(vertices));
    std::vector<core::VertexId> tail;
    tail.push_back(static_cast<core::VertexId>(rng.NextBounded(vertices)));
    if (rng.NextBernoulli(pair_prob)) {
      tail.push_back(static_cast<core::VertexId>(rng.NextBounded(vertices)));
    }
    if (graph->AddEdge(tail, head, rng.NextDouble()).ok()) ++added;
  }
  return std::move(graph).value();
}

/// Deterministic query mix: 1-3 random items each, every `reach_every`-th
/// query a forward-closure query at `reach_min_acv`, the rest top-k.
inline std::vector<Query> RandomServeQueries(size_t n, size_t vertices,
                                             uint64_t seed, size_t k,
                                             size_t reach_every,
                                             double reach_min_acv) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q;
    size_t items = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < items; ++j) {
      q.items.push_back(
          static_cast<core::VertexId>(rng.NextBounded(vertices)));
    }
    q.k = k;
    if (reach_every > 0 && i % reach_every == 0) {
      q.kind = Query::Kind::kReachable;
      q.min_acv = reach_min_acv;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace hypermine::serve

#endif  // HYPERMINE_SERVE_TESTUTIL_H_
