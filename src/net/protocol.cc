#include "net/protocol.h"

#include <algorithm>

#include "serve/wire.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

using serve::AppendPod;
using serve::WireReader;

Status Truncated(const char* what) {
  return Status::Corrupted(StrFormat("truncated frame body: %s", what));
}

/// Length-prefixed string (uint16 length + raw bytes).
Status AppendString(std::string* out, std::string_view s, const char* what) {
  if (s.size() > kMaxStringBytes) {
    return Status::InvalidArgument(
        StrFormat("%s longer than %zu bytes", what, kMaxStringBytes));
  }
  AppendPod<uint16_t>(out, static_cast<uint16_t>(s.size()));
  out->append(s);
  return Status::OK();
}

bool ReadString(WireReader* reader, std::string* out) {
  uint16_t len = 0;
  std::string_view bytes;
  if (!reader->ReadPod(&len) || !reader->ReadBytes(len, &bytes)) return false;
  out->assign(bytes);
  return true;
}

/// Wraps a finished body in its frame header.
std::string Frame(uint64_t request_id, FrameType type, std::string body,
                  uint16_t version) {
  FrameHeader header;
  header.version = version;
  header.type = static_cast<uint16_t>(type);
  header.request_id = request_id;
  header.body_len = static_cast<uint32_t>(body.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  EncodeFrameHeader(header, &out);
  out += body;
  return out;
}

}  // namespace

void EncodeFrameHeader(const FrameHeader& header, std::string* out) {
  AppendPod<uint32_t>(out, header.magic);
  AppendPod<uint16_t>(out, header.version);
  AppendPod<uint16_t>(out, header.type);
  AppendPod<uint64_t>(out, header.request_id);
  AppendPod<uint32_t>(out, header.body_len);
  AppendPod<uint32_t>(out, header.reserved);
}

Status DecodeFrameHeader(std::string_view data, FrameHeader* header) {
  WireReader reader(data);
  if (!reader.ReadPod(&header->magic) || !reader.ReadPod(&header->version) ||
      !reader.ReadPod(&header->type) ||
      !reader.ReadPod(&header->request_id) ||
      !reader.ReadPod(&header->body_len) ||
      !reader.ReadPod(&header->reserved)) {
    return Status::Corrupted("truncated frame header");
  }
  if (header->magic != kFrameMagic) {
    return Status::Corrupted("bad frame magic (not a hypermine peer?)");
  }
  if (header->reserved != 0) {
    return Status::Corrupted("nonzero reserved header bits");
  }
  if (header->body_len > kMaxBodyBytes) {
    return Status::Corrupted(
        StrFormat("frame body of %u bytes exceeds the protocol cap (%u)",
                  header->body_len, kMaxBodyBytes));
  }
  return Status::OK();
}

Status EncodeQueryFrame(uint64_t request_id, const api::QueryRequest& request,
                        std::string* out) {
  if (request.names.empty()) {
    return Status::InvalidArgument(
        "net queries must carry vertex names (ids are per-model)");
  }
  if (request.names.size() > api::kMaxQueryItems) {
    return Status::InvalidArgument(
        StrFormat("query names %zu exceed kMaxQueryItems (%zu)",
                  request.names.size(), api::kMaxQueryItems));
  }
  std::string body;
  AppendPod<uint8_t>(
      &body, request.kind == api::QueryRequest::Kind::kTopK ? 0 : 1);
  AppendPod<uint32_t>(&body, static_cast<uint32_t>(request.k));
  AppendPod<double>(&body, request.min_acv);
  AppendPod<uint16_t>(&body, static_cast<uint16_t>(request.names.size()));
  for (const std::string& name : request.names) {
    HM_RETURN_IF_ERROR(AppendString(&body, name, "vertex name"));
  }
  *out = Frame(request_id, FrameType::kQuery, std::move(body),
               kProtocolVersion);
  return Status::OK();
}

Status DecodeQueryBody(std::string_view body, api::QueryRequest* request) {
  WireReader reader(body);
  uint8_t kind = 0;
  uint32_t k = 0;
  uint16_t num_names = 0;
  if (!reader.ReadPod(&kind) || !reader.ReadPod(&k) ||
      !reader.ReadPod(&request->min_acv) || !reader.ReadPod(&num_names)) {
    return Truncated("query preamble");
  }
  if (kind > 1) {
    return Status::InvalidArgument(
        StrFormat("unknown query kind %u", unsigned{kind}));
  }
  request->kind = kind == 0 ? api::QueryRequest::Kind::kTopK
                            : api::QueryRequest::Kind::kReachable;
  request->k = k;
  request->items.clear();
  request->names.clear();
  request->names.reserve(num_names);
  for (uint16_t i = 0; i < num_names; ++i) {
    std::string name;
    if (!ReadString(&reader, &name)) return Truncated("vertex name");
    request->names.push_back(std::move(name));
  }
  if (!reader.empty()) {
    return Status::Corrupted("trailing bytes after query body");
  }
  return Status::OK();
}

Status EncodeResponseFrame(uint64_t request_id, const WireResponse& response,
                           std::string* out, uint16_t version) {
  std::string body;
  AppendPod<uint16_t>(&body, static_cast<uint16_t>(response.code));
  AppendPod<uint8_t>(&body, response.from_cache ? 1 : 0);
  AppendPod<uint8_t>(
      &body, response.kind == api::QueryRequest::Kind::kTopK ? 0 : 1);
  HM_RETURN_IF_ERROR(AppendString(&body, response.message, "error message"));
  AppendPod<uint64_t>(&body, response.model_version);
  if (response.kind == api::QueryRequest::Kind::kTopK) {
    AppendPod<uint32_t>(&body,
                        static_cast<uint32_t>(response.ranked.size()));
    for (const WireConsequent& c : response.ranked) {
      HM_RETURN_IF_ERROR(AppendString(&body, c.name, "consequent name"));
      AppendPod<double>(&body, c.acv);
    }
  } else {
    AppendPod<uint32_t>(&body,
                        static_cast<uint32_t>(response.closure.size()));
    for (const std::string& name : response.closure) {
      HM_RETURN_IF_ERROR(AppendString(&body, name, "closure vertex name"));
    }
  }
  *out = Frame(request_id, FrameType::kResponse, std::move(body), version);
  return Status::OK();
}

Status DecodeResponseBody(std::string_view body, WireResponse* response) {
  WireReader reader(body);
  uint16_t code = 0;
  uint8_t from_cache = 0;
  uint8_t kind = 0;
  if (!reader.ReadPod(&code) || !reader.ReadPod(&from_cache) ||
      !reader.ReadPod(&kind) || !ReadString(&reader, &response->message) ||
      !reader.ReadPod(&response->model_version)) {
    return Truncated("response preamble");
  }
  response->code = static_cast<StatusCode>(code);
  response->from_cache = from_cache != 0;
  response->kind = kind == 0 ? api::QueryRequest::Kind::kTopK
                             : api::QueryRequest::Kind::kReachable;
  uint32_t count = 0;
  if (!reader.ReadPod(&count)) return Truncated("result count");
  response->ranked.clear();
  response->closure.clear();
  if (response->kind == api::QueryRequest::Kind::kTopK) {
    response->ranked.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WireConsequent c;
      if (!ReadString(&reader, &c.name) || !reader.ReadPod(&c.acv)) {
        return Truncated("ranked consequent");
      }
      response->ranked.push_back(std::move(c));
    }
  } else {
    response->closure.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      if (!ReadString(&reader, &name)) return Truncated("closure vertex");
      response->closure.push_back(std::move(name));
    }
  }
  if (!reader.empty()) {
    return Status::Corrupted("trailing bytes after response body");
  }
  return Status::OK();
}

Status ReadFrame(Socket* socket, FrameHeader* header, std::string* body,
                 uint32_t max_body) {
  char raw[kFrameHeaderBytes];
  HM_RETURN_IF_ERROR(socket->ReadFull(raw, sizeof(raw)));
  HM_RETURN_IF_ERROR(
      DecodeFrameHeader(std::string_view(raw, sizeof(raw)), header));
  if (header->body_len > max_body) {
    return Status::InvalidArgument(
        StrFormat("frame body of %u bytes exceeds the limit (%u)",
                  header->body_len, max_body));
  }
  body->resize(header->body_len);
  if (header->body_len > 0) {
    HM_RETURN_IF_ERROR(socket->ReadFull(body->data(), header->body_len));
  }
  return Status::OK();
}

}  // namespace hypermine::net
