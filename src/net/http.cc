#include "net/http.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

/// Finds the end of the head: the first blank line, tolerating both CRLF
/// and bare-LF line endings ("\n\r\n" covers CRLF CRLF too, since the
/// preceding line's terminator supplies the leading '\n'). Returns the
/// index one past the blank line, or npos when the head is incomplete.
/// `*head_end` receives where the head text (to be parsed) stops.
size_t FindHeadTerminator(std::string_view buffer, size_t from,
                          size_t* head_end) {
  for (size_t i = from; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    if (i + 1 < buffer.size() && buffer[i + 1] == '\n') {
      *head_end = i;
      return i + 2;
    }
    if (i + 2 < buffer.size() && buffer[i + 1] == '\r' &&
        buffer[i + 2] == '\n') {
      *head_end = i;
      return i + 3;
    }
  }
  return std::string_view::npos;
}

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    std::string_view name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) return &value;
  }
  return nullptr;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string EncodeHttpResponse(const HttpResponse& response,
                               bool keep_alive) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              std::string(HttpReasonPhrase(response.status))
                                  .c_str());
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpConnection::HttpConnection(Options options) : options_(options) {}

void HttpConnection::Ingest(std::string_view data) {
  if (corrupt()) return;  // bytes after a violation are ignored
  buffer_.append(data);
  Advance();
}

void HttpConnection::OnPeerClosed() {
  peer_closed_ = true;
  if (!corrupt() && !buffer_.empty()) {
    error_ = Status::Corrupted("connection closed mid-request");
  }
}

void HttpConnection::Advance() {
  while (!corrupt()) {
    size_t head_end = 0;
    // Rescan from one shy of the previous frontier: a terminator can span
    // the old buffer end ("...\r\n" + "\r\n" arriving split).
    const size_t from = scanned_ > 2 ? scanned_ - 2 : 0;
    const size_t next = FindHeadTerminator(buffer_, from, &head_end);
    if (next == std::string_view::npos) {
      // The cap applies to one incomplete head, not to pipelined complete
      // requests (those were parsed and erased on earlier iterations).
      if (buffer_.size() > options_.max_head_bytes) {
        error_ = Status::InvalidArgument(StrFormat(
            "request head exceeds %zu bytes", options_.max_head_bytes));
      }
      scanned_ = buffer_.size();
      return;
    }
    if (!ParseHead(std::string_view(buffer_).substr(0, head_end))) return;
    buffer_.erase(0, next);
    scanned_ = 0;
  }
}

bool HttpConnection::ParseHead(std::string_view head) {
  HttpRequest request;
  size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find('\n', line_start);
    std::string_view line =
        StripCr(head.substr(line_start, line_end == std::string_view::npos
                                            ? std::string_view::npos
                                            : line_end - line_start));
    line_start =
        line_end == std::string_view::npos ? head.size() + 1 : line_end + 1;
    if (first) {
      // RFC 9112 §2.2: tolerate (blank) lines before the request line —
      // some clients send a stray CRLF after a previous request's body.
      if (line.empty()) continue;
      // METHOD SP TARGET SP HTTP/x.y — exactly three tokens.
      std::vector<std::string> parts = SplitWhitespace(line);
      if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
        error_ = Status::InvalidArgument("malformed request line");
        return false;
      }
      request.method = std::move(parts[0]);
      request.target = std::move(parts[1]);
      request.version = std::move(parts[2]);
      if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
        error_ = Status::InvalidArgument("unsupported HTTP version " +
                                         request.version);
        return false;
      }
      first = false;
      continue;
    }
    if (line.empty()) continue;  // tolerated stray blank before terminator
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      error_ = Status::InvalidArgument("malformed header line");
      return false;
    }
    std::string name = ToLower(TrimView(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name.empty()) {
      error_ = Status::InvalidArgument("empty header name");
      return false;
    }
    request.headers.emplace_back(std::move(name), std::move(value));
  }
  if (first) {
    error_ = Status::InvalidArgument("empty request head");
    return false;
  }

  // GET-only plane: any request announcing a body would desynchronize the
  // next head, so it is connection-fatal rather than skippable.
  const std::string* content_length = request.FindHeader("content-length");
  if ((content_length != nullptr && *content_length != "0") ||
      request.FindHeader("transfer-encoding") != nullptr) {
    error_ = Status::InvalidArgument("request bodies are not supported");
    return false;
  }

  request.keep_alive = request.version == "HTTP/1.1";
  if (const std::string* connection = request.FindHeader("connection")) {
    const std::string value = ToLower(*connection);
    if (value == "close") request.keep_alive = false;
    if (value == "keep-alive") request.keep_alive = true;
  }

  const size_t query = request.target.find('?');
  request.path = query == std::string::npos
                     ? request.target
                     : request.target.substr(0, query);
  pending_.push_back(std::move(request));
  return true;
}

bool HttpConnection::TakeRequest(HttpRequest* out) {
  if (pending_.empty()) return false;
  *out = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

bool HttpConnection::wants_read() const {
  if (corrupt() || peer_closed_ || close_requested_) return false;
  if (options_.max_pending_requests != 0 &&
      pending_.size() >= options_.max_pending_requests) {
    return false;
  }
  if (options_.write_high_water != 0 &&
      write_queued_ >= options_.write_high_water) {
    return false;
  }
  return true;
}

void HttpConnection::QueueWrite(std::string bytes) {
  if (bytes.empty()) return;
  write_queued_ += bytes.size();
  write_queue_.push_back(std::move(bytes));
}

std::string_view HttpConnection::write_head() const {
  if (write_queue_.empty()) return {};
  return std::string_view(write_queue_.front()).substr(write_offset_);
}

void HttpConnection::ConsumeWrite(size_t n) {
  HM_CHECK_LE(n, write_head().size());
  write_offset_ += n;
  write_queued_ -= n;
  if (write_offset_ == write_queue_.front().size()) {
    write_queue_.pop_front();
    write_offset_ = 0;
  }
}

}  // namespace hypermine::net
