#ifndef HYPERMINE_NET_REACTOR_H_
#define HYPERMINE_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/socket.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hypermine::net {

struct Reactor;

/// Per-connection reactor state. The `machine` (framing + write queue),
/// the flags, and `last_activity` belong to the owning reactor thread
/// alone — a connection is pinned to one reactor for its whole life.
/// `served` is written only by the pool worker running this connection's
/// single in-flight batch; the completion-queue mutex and the pool's task
/// queue order batch N's write before batch N+1's read.
struct ReactorConn {
  uint64_t id = 0;
  /// The reactor this connection is pinned to (set at registration, never
  /// changed): pool workers route the finished batch back through it.
  Reactor* reactor = nullptr;
  Socket socket;
  Connection machine;
  uint64_t served = 0;

  /// Admin-plane connection: `http` replaces `machine` as the protocol
  /// state machine (machine stays default-constructed and unused).
  bool admin = false;
  std::unique_ptr<HttpConnection> http;

  /// Write-drain timing (query conns): set when the write queue goes
  /// non-empty, observed into the drain histogram when it empties.
  bool write_timing = false;
  std::chrono::steady_clock::time_point write_start;

  /// Stall detection (query conns): set with a timestamp when a read
  /// leaves the machine mid-frame; re-anchored whenever frames_parsed()
  /// moves (completing frames is progress even when the machine is
  /// always midway through the NEXT one). The clock must NOT reset on
  /// mere activity — a slow-loris peer is active, a byte at a time.
  bool in_frame = false;
  uint64_t frames_at_stall_start = 0;
  std::chrono::steady_clock::time_point frame_start;

  bool batch_in_flight = false;
  /// A transport error or full hangup: close without flushing.
  bool dead = false;
  /// Set by the reactor when it drops the connection, so a completion
  /// that arrives later knows its bytes have nowhere to go.
  bool closed = false;
  bool want_read = true;
  bool want_write = false;
  std::chrono::steady_clock::time_point last_activity;

  explicit ReactorConn(Connection::Options options) : machine(options) {}
};

/// One finished engine batch on its way back to its connection's reactor.
struct BatchCompletion {
  std::shared_ptr<ReactorConn> conn;
  std::string bytes;
  size_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
};

/// Point-in-time counters of one reactor, for ServerStats::per_reactor
/// and the labeled hypermine_net_reactor_* series. Individually monotonic
/// except the two occupancy values.
struct ReactorStats {
  size_t index = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t connections_reaped = 0;
  uint64_t connections_stalled = 0;
  /// Engine batches applied back to connections owned by this reactor.
  uint64_t batches = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Connections currently owned (admin plane included, reactor 0 only).
  size_t open_connections = 0;
  /// Batches handed to the pool and not yet applied back here.
  size_t outstanding_batches = 0;
};

/// One reactor: an event loop, the thread that runs it, and everything
/// that thread owns. net::Server runs `num_reactors` of these; every
/// connection lives and dies on exactly one, so the `HM_CAPABILITY
/// ("reactor")` on EventLoop holds per-loop exactly as it did when there
/// was only one. The members below split three ways:
///
///  - loop-guarded state (conns, drain bookkeeping): reactor thread only,
///    or Stop() after the join — same ownership story as before, now per
///    reactor;
///  - the completion queue + outstanding count: the rendezvous between
///    pool workers finishing batches and this reactor applying them;
///  - the handoff inbox: in kHandoff accept mode, reactor 0 accepts and
///    pushes sockets here round-robin; the owner adopts them on its next
///    wakeup. Unused in kReusePort mode (the kernel does the spreading).
///
/// The small cross-thread methods live in reactor.cc; all protocol and
/// policy logic stays in Server methods parameterized by `Reactor&` and
/// annotated HM_REQUIRES(r.loop).
struct Reactor {
  size_t index = 0;
  EventLoop loop;
  /// This reactor's own listener: every reactor has one in kReusePort
  /// mode; only reactor 0's is valid in kHandoff mode (and with one
  /// reactor). Invalid listeners never enter the loop.
  Listener listener;
  std::thread thread;

  // --- reactor-thread state, guarded by the "reactor" capability ---
  std::unordered_map<uint64_t, std::shared_ptr<ReactorConn>> conns
      HM_GUARDED_BY(loop);
  /// This reactor's record that the drain request was applied here.
  bool drain_applied HM_GUARDED_BY(loop) = false;
  /// Admin-plane subset of conns (reactor 0 only; exempt from
  /// max_connections but capped separately).
  size_t admin_conns HM_GUARDED_BY(loop) = 0;
  /// Connection ids double as event-loop tags, so a per-reactor namespace
  /// is enough — tags never cross loops.
  uint64_t next_connection_id HM_GUARDED_BY(loop) = 1;
  std::vector<char> read_scratch HM_GUARDED_BY(loop);

  // --- pool-worker rendezvous ---
  mutable Mutex completion_mutex;
  CondVar outstanding_cv;
  std::vector<BatchCompletion> completions HM_GUARDED_BY(completion_mutex);
  size_t outstanding_batches HM_GUARDED_BY(completion_mutex) = 0;

  // --- handoff inbox (kHandoff mode only) ---
  Mutex inbox_mutex;
  std::vector<Socket> inbox HM_GUARDED_BY(inbox_mutex);
  /// Lets the owner skip the inbox lock on the (common) empty case.
  std::atomic<bool> inbox_nonempty{false};

  // --- counters (owner writes, stats()/collector read cross-thread) ---
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> reaped{0};
  std::atomic<uint64_t> stalled{0};
  std::atomic<uint64_t> batches_applied{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  /// conns.size() mirrored for readers off the reactor thread.
  std::atomic<size_t> open{0};

  Reactor(size_t reactor_index, EventLoop reactor_loop);

  /// Queues one finished batch for this reactor (pool worker side). The
  /// caller wakes the loop separately — see Server::ExecuteBatch for the
  /// push / wakeup / FinishBatch ordering that Stop() relies on.
  void PushCompletion(BatchCompletion done);
  /// Takes everything queued (reactor side).
  std::vector<BatchCompletion> TakeCompletions();
  /// Accounts one batch handed to the pool / applied back.
  void BeginBatch();
  void FinishBatch();
  /// Blocks until no batch is outstanding, then returns the completions
  /// that piled up after the loop exited. Stop()-only: the reactor thread
  /// must already be joined.
  std::vector<BatchCompletion> WaitIdleAndCollect();

  /// Hands an accepted socket to this reactor and wakes its loop.
  void PushHandoff(Socket socket);
  std::vector<Socket> TakeHandoffs();

  ReactorStats snapshot() const;
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_REACTOR_H_
