#ifndef HYPERMINE_NET_SERVER_H_
#define HYPERMINE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/protocol.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hypermine::net {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// Server::port() — tests and CI use this to avoid collisions).
  uint16_t port = 0;
  /// Reactor threads, one EventLoop each; every connection is pinned to
  /// one reactor for its whole life. 1 (the default) reproduces the
  /// single-reactor server exactly; 0 means one per hardware thread.
  size_t num_reactors = 1;
  /// How connections reach reactors when num_reactors > 1 (ignored for
  /// one reactor). kReusePort gives every reactor its own SO_REUSEPORT
  /// listener and lets the kernel spread accepts; when a sharing bind
  /// fails, the server falls back to kHandoff. kHandoff accepts
  /// everything on reactor 0 and hands sockets off round-robin — the
  /// deterministic mode tests use to assert distribution.
  enum class AcceptMode { kReusePort, kHandoff };
  AcceptMode accept_mode = AcceptMode::kReusePort;
  /// Concurrent connections; further accepts are closed immediately.
  /// Independent of any pool size: connections are multiplexed on the
  /// reactor threads, so an idle connection costs a descriptor and a
  /// little state, not a worker — thousands are fine by default.
  size_t max_connections = 4096;
  /// Most frames coalesced into one api::Engine::QueryBatch. Frames that
  /// arrive while a connection's previous batch is executing coalesce
  /// into the next one, so pipelined clients get large batches without
  /// the server ever waiting for more input.
  size_t max_batch = 64;
  /// Per-frame body limit (tighter than the protocol's kMaxBodyBytes).
  /// Oversized frames are rejected with kInvalidArgument but the body is
  /// skipped as it streams in, so the connection survives.
  uint32_t max_query_bytes = 64u << 10;
  /// Per-connection lifetime query quota; queries past it are rejected
  /// with kResourceExhausted (the connection stays open — the client is
  /// told, not stalled). 0 = unlimited.
  uint64_t max_queries_per_connection = 0;
  /// Global cap on queries admitted but not yet answered, across all
  /// connections. Excess queries are rejected with kResourceExhausted
  /// instead of queueing unboundedly. 0 = unlimited.
  size_t max_queue_depth = 4096;
  /// Connections with no traffic for this long are closed by their
  /// reactor's reap timer. 0 = never reap. A connection with an
  /// executing batch, undelivered frames, or unflushed responses is
  /// never considered idle.
  int idle_timeout_ms = 0;
  /// Load shedding: a query that already waited longer than this between
  /// arrival and its engine batch is answered kUnavailable instead of
  /// occupying a worker — under overload, answering a few queries in
  /// time beats answering all of them late. 0 = never shed.
  int max_queue_wait_ms = 0;
  /// Slow-loris defense: a connection stuck in the middle of one frame
  /// (header or body partially received) for this long is closed. The
  /// idle reaper cannot catch this peer — a byte per reap interval
  /// resets last_activity forever — so the stall clock runs from the
  /// moment the current frame started, not from the last byte.
  /// 0 = never.
  int stall_timeout_ms = 0;
  /// Response bytes queued per connection before the reactor stops
  /// reading from it (EPOLLOUT backpressure): a client that stops
  /// reading its responses stops being read from. 0 = no limit, like
  /// the other 0-able knobs here (the kernel socket buffer still
  /// pushes back on the wire, but the server-side queue can grow).
  size_t write_high_water = 1u << 20;
  /// Worker pool for engine batch execution (the ONLY thing workers do —
  /// connections themselves live on their reactor). MUST NOT be the pool
  /// the engine runs QueryBatch chunks on: batch tasks block inside
  /// QueryBatch, and if they occupy every thread of the engine's pool
  /// the chunk tasks can never run (deadlock). Leave null (the default)
  /// to let the server own a private pool of `num_threads` workers. A
  /// shared pool may be ANY size — unlike the old thread-per-connection
  /// server, max_connections no longer implies a per-connection worker.
  ThreadPool* pool = nullptr;
  /// Owned-pool size when `pool` is null; 0 = max(4, hardware threads).
  size_t num_threads = 0;
  /// Admin HTTP plane (GET /metrics, /healthz, /statusz — contract in
  /// docs/observability.md) on a SECOND loopback port, always multiplexed
  /// on reactor 0: no extra thread, and a scrape observes a real serving
  /// loop. -1 disables; 0 binds an ephemeral port (read back with
  /// Server::admin_port()).
  int admin_port = -1;
  /// Registry the server publishes its metrics into (and /metrics
  /// renders). Null = metrics::DefaultRegistry(). Must outlive the
  /// server; tests pass a private registry for isolated counters.
  metrics::Registry* registry = nullptr;
};

/// Counters for smoke tests and ops visibility. The aggregate fields sum
/// over reactors; `per_reactor` breaks the connection-plane ones down by
/// reactor (ReactorStats, one entry per reactor, index-ordered).
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Accepts closed because max_connections was reached (or draining).
  uint64_t connections_rejected = 0;
  /// Connections closed by the idle-timeout reap timer.
  uint64_t connections_reaped = 0;
  /// Connections closed by the mid-frame stall timer (slow loris).
  uint64_t connections_stalled = 0;
  /// Queries answered kUnavailable because they out-waited
  /// max_queue_wait_ms (load shedding) or arrived while draining.
  uint64_t queries_shed = 0;
  uint64_t batches = 0;
  /// Queries answered by the engine (including per-query errors such as
  /// unknown vertex names — the engine did run them).
  uint64_t queries_answered = 0;
  /// Queries rejected before reaching the engine (quota, queue depth,
  /// malformed or foreign-version frames).
  uint64_t queries_rejected = 0;
  /// Frames that shared an engine batch with at least one earlier frame —
  /// i.e. syscalls and batch dispatches saved by pipelining. A batch of n
  /// frames adds n-1.
  uint64_t frames_coalesced = 0;
  /// Payload bytes moved on query connections (admin-plane bytes are not
  /// counted here; the registry's admin counters cover those).
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Queries admitted but not yet answered, right now / at the worst
  /// moment so far (high-water mark).
  size_t queue_depth = 0;
  size_t queue_depth_peak = 0;
  /// HTTP requests answered on the admin plane.
  uint64_t admin_requests = 0;
  /// One entry per reactor (index-ordered); connection-plane counters
  /// above are the sums of these.
  std::vector<ReactorStats> per_reactor;
};

/// TCP front-end over api::Engine: `num_reactors` epoll (fallback: poll)
/// event loops, each on its own reactor thread, own the listeners and
/// every connection socket; a util::ThreadPool runs only engine batches.
/// The framed protocol of net/protocol.h rides the wire unchanged from
/// the single-reactor server this generalizes — answers are byte-
/// identical whatever the reactor count.
///
/// Reactors: each accepted connection is pinned to one reactor for its
/// whole life (net/reactor.h), so per-connection state needs no locks and
/// the EventLoop's "reactor" capability holds per loop. With SO_REUSEPORT
/// (the default for num_reactors > 1) every reactor runs its own
/// listener on the shared port and the kernel spreads accepts; where
/// sharing is unavailable the server falls back to accepting on reactor 0
/// and handing sockets off round-robin through per-reactor inboxes.
///
/// Within a reactor, nonblocking reads feed each connection's
/// net::Connection state machine (read buffer → frame decode); complete
/// frames are handed to a pool worker as one api::Engine::QueryBatch (at
/// most one executing batch per connection, so responses stay in request
/// order); encoded responses come back through the owning reactor's
/// completion queue + eventfd wakeup and drain through a per-connection
/// write queue under EPOLLOUT backpressure. Frames arriving while a batch
/// executes coalesce into the next batch. Because idle connections cost
/// no worker, `max_connections` is decoupled from pool size and defaults
/// to thousands.
///
/// Admission control rejects rather than stalls: per-connection quota,
/// global queue depth, and per-frame size limits all answer with a status
/// frame (kResourceExhausted / kInvalidArgument) while well-formed framing
/// keeps the connection usable. Only unrecoverable streams (bad magic,
/// truncated header, a close mid-frame) drop the connection — after the
/// frames decoded before the violation are answered and flushed.
///
/// Hot swap: the server holds only the Engine*, never a Model, so
/// api::Engine::Swap under live connections is safe by construction —
/// in-flight batches finish on the model they acquired and later batches
/// see the new one; responses carry model_version so clients observe the
/// flip without a reconnect.
///
/// Thread-safety: Start/Stop/port/stats may be called from any thread;
/// Stop is idempotent and the destructor calls it. The Engine must
/// outlive the Server.
class Server {
 public:
  /// Binds, spawns the reactors, and returns a running server. The
  /// engine pointer is borrowed. kIoError when the port cannot be bound;
  /// kInvalidArgument for out-of-range options.
  static StatusOr<std::unique_ptr<Server>> Start(api::Engine* engine,
                                                 ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the real one when options.port was 0). All reuse-
  /// port listeners share it.
  uint16_t port() const { return port_; }

  /// The bound admin-plane port; 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_listener_.port(); }

  /// Reactor threads actually running (options.num_reactors resolved).
  size_t num_reactors() const { return reactors_.size(); }

  /// Stops accepting, joins every reactor, waits for in-flight engine
  /// batches, makes one best-effort nonblocking flush of finished
  /// responses, and closes every connection. Prompt even with thousands
  /// of idle connections open (the reactors own all of them; there is no
  /// per-connection thread to unwind). Idempotent. The one sacrifice for
  /// promptness: a client too slow to drain its responses may observe a
  /// close mid-frame.
  void Stop();

  /// Enters the drain state (idempotent, any thread): /healthz flips to
  /// 503 "draining" so rolling-restart orchestration stops routing here,
  /// new query-plane connections are refused, idle query connections are
  /// closed, and busy ones are closed as soon as their in-flight work is
  /// answered and flushed. The admin plane stays up — the orchestrator
  /// must keep observing the drain it requested. Serving still works for
  /// whatever remains connected; call Stop() for the actual shutdown.
  void Drain();

  /// True once Drain() was called.
  bool draining() const { return draining_.load(); }

  ServerStats stats() const;

 private:
  Server(api::Engine* engine, ServerOptions options, bool handoff_mode,
         std::vector<std::unique_ptr<Reactor>> reactors,
         Listener admin_listener);

  // Every method below marked HM_REQUIRES(r.loop) runs only with that
  // reactor's capability held: on its reactor thread (ReactorLoop
  // establishes it via AssertOnLoopThread) or, for teardown, in Stop()
  // after that reactor joined and unbound.
  void ReactorLoop(Reactor* r);
  /// Drains one listener's accept backlog; `admin` selects the admin
  /// plane (HTTP personality, its own connection cap, reactor 0 only).
  void AcceptPending(Reactor& r, bool admin) HM_REQUIRES(r.loop);
  /// Registers an accepted socket with this reactor (the connection's
  /// home for life). The max_connections reservation was already taken
  /// at accept time; failure paths here release it.
  void RegisterAccepted(Reactor& r, Socket socket, bool admin)
      HM_REQUIRES(r.loop);
  /// Adopts sockets handed off by reactor 0 (kHandoff mode).
  void AdoptHandoffs(Reactor& r) HM_REQUIRES(r.loop);
  void HandleConnEvent(Reactor& r, const EventLoop::Event& event)
      HM_REQUIRES(r.loop);
  void ReadFromConn(Reactor& r, ReactorConn* conn) HM_REQUIRES(r.loop);
  void FlushWrites(Reactor& r, ReactorConn* conn) HM_REQUIRES(r.loop);
  /// Submits a batch if one is ready, closes the connection if it is
  /// finished, refreshes event-loop interest otherwise.
  void AfterEvent(Reactor& r, ReactorConn* conn) HM_REQUIRES(r.loop);
  /// Answers every parsed admin request queued on `conn` (and the one 400
  /// a corrupt stream earns before it is closed).
  void ServeAdminRequests(Reactor& r, ReactorConn* conn)
      HM_REQUIRES(r.loop);
  /// Routes one admin request to /metrics, /healthz, or /statusz.
  /// Touches only cross-thread-safe state, so no reactor requirement.
  HttpResponse RouteAdmin(const HttpRequest& request);
  void SubmitBatch(Reactor& r, ReactorConn* conn) HM_REQUIRES(r.loop);
  void CloseConn(Reactor& r, ReactorConn* conn) HM_REQUIRES(r.loop);
  void ReapIdle(Reactor& r) HM_REQUIRES(r.loop);
  /// Closes query connections stuck mid-frame past stall_timeout_ms.
  void CheckStalls(Reactor& r) HM_REQUIRES(r.loop);
  /// Reactor-side drain entry: mutes this reactor's listener and closes
  /// its query connections with no in-flight work. Runs once per reactor
  /// per Drain().
  void ApplyDrain(Reactor& r) HM_REQUIRES(r.loop);
  /// Applies completed batches: stats, write queues, next batches.
  void DrainCompletions(Reactor& r) HM_REQUIRES(r.loop);
  /// Post-join teardown of one reactor (claims its capability itself).
  void TeardownReactor(Reactor& r);
  /// Runs on a pool worker: admission + engine batch + response encode;
  /// routes the completion back through the connection's own reactor.
  /// `submitted` is when the reactor handed the batch over (queue-wait
  /// histogram).
  void ExecuteBatch(std::shared_ptr<ReactorConn> conn,
                    std::vector<PendingFrame> frames,
                    std::chrono::steady_clock::time_point submitted);
  /// Admission checks and engine execution for one batch; appends the
  /// encoded response frames to `*out`.
  void BuildResponses(std::vector<PendingFrame>* frames, uint64_t* served,
                      std::string* out, size_t* admitted_out,
                      uint64_t* rejected_out, uint64_t* shed_out);
  /// Folds one completion into the batch-plane stats (mutex_).
  void ApplyBatchStats(const BatchCompletion& done);
  void WakeAllReactors();

  api::Engine* const engine_;
  const ServerOptions options_;
  /// Resolved listener port (all reuse-port listeners share it).
  uint16_t port_ = 0;
  /// True when accepts happen only on reactor 0 and sockets are handed
  /// off (requested, or the reuse-port binds fell back).
  const bool handoff_mode_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  /// Invalid (port() == 0) when the admin plane is disabled. Registered
  /// in reactor 0's loop.
  Listener admin_listener_;

  // --- observability (docs/observability.md) ---
  metrics::Registry* registry_ = nullptr;
  /// Per-stage latency histograms, observed directly on the hot path
  /// (two relaxed atomic adds each).
  metrics::Histogram* h_queue_wait_ = nullptr;
  metrics::Histogram* h_engine_batch_ = nullptr;
  metrics::Histogram* h_write_drain_ = nullptr;
  /// The scrape-time collector bridging ServerStats + engine counters
  /// into registry_; removed in Stop (it captures `this`).
  uint64_t collector_id_ = 0;
  bool collector_registered_ = false;
  /// The currently-set hypermine_model_info{model_version="N"} gauge, so
  /// the collector can zero the stale label series after a swap. Only
  /// touched by collectors (serialized by the registry).
  metrics::Gauge* model_info_gauge_ = nullptr;

  /// Owned batch-execution pool when options.pool was null.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  std::atomic<bool> stopping_{false};
  /// Set by Drain() (any thread); each reactor applies it once.
  std::atomic<bool> draining_{false};
  /// Queries admitted but not yet answered, across all connections.
  std::atomic<size_t> in_flight_{0};
  /// High-water mark of in_flight_ (ServerStats::queue_depth_peak).
  std::atomic<size_t> queue_depth_peak_{0};
  std::atomic<uint64_t> admin_requests_{0};
  /// Open query-plane connections across all reactors, reserved at
  /// accept time (before any handoff) so max_connections is enforced
  /// globally, not per reactor.
  std::atomic<size_t> open_query_conns_{0};
  /// Round-robin cursor for kHandoff socket distribution.
  std::atomic<size_t> next_handoff_{0};

  // --- cross-thread state ---
  mutable Mutex mutex_;
  ServerStats stats_ HM_GUARDED_BY(mutex_);

  Mutex stop_mutex_;  // serializes concurrent Stop calls
};

/// The /statusz document (also what `hypermine_serve`'s `!stats` prints):
/// model version + ModelSpec + provenance, build info, uptime, and — when
/// `server` is non-null — its ServerStats (per-reactor breakdown
/// included) and the registry's histogram percentiles. `engine` must be
/// non-null; `registry` null means metrics::DefaultRegistry().
std::string StatuszJson(api::Engine* engine, const Server* server,
                        metrics::Registry* registry);

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_SERVER_H_
