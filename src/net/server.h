#ifndef HYPERMINE_NET_SERVER_H_
#define HYPERMINE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "api/engine.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hypermine::net {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// Server::port() — tests and CI use this to avoid collisions).
  uint16_t port = 0;
  /// Concurrent connections; further accepts are closed immediately.
  /// Liveness: each live connection occupies one worker slot. An owned
  /// pool is sized to at least this value automatically; a *shared*
  /// `pool` with fewer threads than this is rejected by Server::Start,
  /// because accepted clients would stall unanswered.
  size_t max_connections = 16;
  /// Most frames coalesced into one api::Engine::QueryBatch. Requests
  /// that have already arrived on a connection are drained into a single
  /// batch; the first frame is read blocking, so an idle connection
  /// costs nothing.
  size_t max_batch = 64;
  /// Per-frame body limit (tighter than the protocol's kMaxBodyBytes).
  /// Oversized frames are rejected with kInvalidArgument but the body is
  /// skipped, so the connection survives.
  uint32_t max_query_bytes = 64u << 10;
  /// Per-connection lifetime query quota; queries past it are rejected
  /// with kResourceExhausted (the connection stays open — the client is
  /// told, not stalled). 0 = unlimited.
  uint64_t max_queries_per_connection = 0;
  /// Global cap on queries admitted but not yet answered, across all
  /// connections. Excess queries are rejected with kResourceExhausted
  /// instead of queueing unboundedly. 0 = unlimited.
  size_t max_queue_depth = 4096;
  /// Worker pool for connection handlers. MUST NOT be the pool the
  /// engine runs QueryBatch chunks on: connection workers block inside
  /// QueryBatch, and if they occupy every thread of the engine's pool the
  /// chunk tasks can never run (deadlock). Leave null (the default) to
  /// let the server own a private pool of `num_threads` workers.
  ThreadPool* pool = nullptr;
  /// Owned-pool size when `pool` is null; 0 = max(4, hardware threads).
  /// Either way the owned pool is floored at max_connections (see
  /// there); extra workers cost only parked threads.
  size_t num_threads = 0;
};

/// Counters for smoke tests and ops visibility. Snapshot semantics: read
/// under the server's mutex, individually monotonic.
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Accepts closed because max_connections was reached.
  uint64_t connections_rejected = 0;
  uint64_t batches = 0;
  /// Queries answered by the engine (including per-query errors such as
  /// unknown vertex names — the engine did run them).
  uint64_t queries_answered = 0;
  /// Queries rejected before reaching the engine (quota, queue depth,
  /// malformed or foreign-version frames).
  uint64_t queries_rejected = 0;
};

/// TCP front-end over api::Engine: one listener thread accepting
/// loopback connections, connection handlers on a util::ThreadPool, and
/// the framed protocol of net/protocol.h on the wire.
///
/// Each handler drains the frames already buffered on its connection into
/// one engine batch (api::Engine::QueryBatch), so concurrently-arriving
/// pipelined requests share the engine's per-batch model acquisition and
/// pool fan-out. Responses are written back in request order, each echoing
/// its request id.
///
/// Admission control rejects rather than stalls: per-connection quota,
/// global queue depth, and per-frame size limits all answer with a status
/// frame (kResourceExhausted / kInvalidArgument) while well-formed framing
/// keeps the connection usable. Only unrecoverable streams (bad magic,
/// truncated header, a body the server refused to even skip) drop the
/// connection.
///
/// Hot swap: the server holds only the Engine*, never a Model, so
/// api::Engine::Swap under live connections is safe by construction —
/// in-flight batches finish on the model they acquired and later batches
/// see the new one; responses carry model_version so clients observe the
/// flip without a reconnect.
///
/// Thread-safety: Start/Stop/port/stats may be called from any thread;
/// Stop is idempotent and the destructor calls it. The Engine must
/// outlive the Server.
class Server {
 public:
  /// Binds, spawns the listener, and returns a running server. The
  /// engine pointer is borrowed. kIoError when the port cannot be bound;
  /// kInvalidArgument for out-of-range options.
  static StatusOr<std::unique_ptr<Server>> Start(api::Engine* engine,
                                                 ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the real one when options.port was 0).
  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, shuts down live connections, and joins every
  /// handler. Idempotent; safe to race with active traffic — clients see
  /// a closed connection, never a half-written frame (handlers finish
  /// the batch they are writing before exiting).
  void Stop();

  ServerStats stats() const;

 private:
  /// One frame read off a connection, waiting for its batch (defined in
  /// server.cc).
  struct PendingFrame;

  Server(api::Engine* engine, ServerOptions options, Listener listener);

  void AcceptLoop();
  /// Runs one connection to completion. `socket` stays owned by the
  /// accept-side shared_ptr (and registered in live_) so Stop() can shut
  /// down the real descriptor while this handler is blocked reading.
  void ServeConnection(Socket* socket);
  /// Handles one coalesced batch of frames; false when the connection
  /// must be dropped (unrecoverable stream state). `served` counts
  /// admitted queries across the connection's lifetime (quota input).
  bool HandleBatch(Socket* socket, std::vector<PendingFrame>* frames,
                   uint64_t* served);

  api::Engine* const engine_;
  const ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;

  /// Owned handler pool when options.pool was null.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  std::atomic<bool> stopping_{false};
  /// Queries admitted but not yet answered, across all connections.
  std::atomic<size_t> in_flight_{0};

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  size_t active_connections_ = 0;
  /// Live connection sockets by id, for Stop() to shut down blocked
  /// readers. Entries are owned by their handler; the map only borrows.
  std::unordered_map<uint64_t, Socket*> live_;
  uint64_t next_connection_id_ = 0;
  ServerStats stats_;
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_SERVER_H_
