#include "net/server.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/model.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::net {

/// One frame read off a connection, waiting for its batch. `pre` non-OK
/// means admission already rejected it (e.g. oversized body, which was
/// skipped, not materialized) and the engine never sees it.
struct Server::PendingFrame {
  FrameHeader header;
  std::string body;
  Status pre;
};

namespace {

WireResponse ErrorResponse(const Status& status) {
  WireResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

/// Flattens one engine answer into its wire form, resolving vertex ids to
/// names against the model that produced them (guaranteed by QueryBatch's
/// model_out — NOT the engine's current model, which a racing Swap may
/// already have replaced).
WireResponse ToWire(const StatusOr<api::QueryResponse>& result,
                    const api::Model& model,
                    api::QueryRequest::Kind kind) {
  if (!result.ok()) return ErrorResponse(result.status());
  WireResponse response;
  response.kind = kind;
  response.model_version = result->model_version;
  response.from_cache = result->from_cache;
  if (!model.has_graph()) {
    return ErrorResponse(
        Status::Internal("served model has no graph to resolve names"));
  }
  const core::DirectedHypergraph& graph = model.graph();
  response.ranked.reserve(result->ranked.size());
  for (const serve::RankedConsequent& r : result->ranked) {
    response.ranked.push_back(WireConsequent{graph.vertex_name(r.head),
                                             r.acv});
  }
  response.closure.reserve(result->closure.size());
  for (core::VertexId v : result->closure) {
    response.closure.push_back(graph.vertex_name(v));
  }
  return response;
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(api::Engine* engine,
                                                ServerOptions options) {
  HM_CHECK(engine != nullptr);
  if (options.max_batch == 0) {
    return Status::InvalidArgument("ServerOptions::max_batch must be >= 1");
  }
  if (options.max_query_bytes > kMaxBodyBytes) {
    return Status::InvalidArgument(
        "ServerOptions::max_query_bytes exceeds the protocol cap");
  }
  if (options.pool != nullptr &&
      options.pool->num_threads() < options.max_connections) {
    // Each live connection occupies one worker for its lifetime; with
    // fewer workers than allowed connections, accepted clients would
    // hang unanswered — the opposite of "reject rather than stall".
    return Status::InvalidArgument(
        "ServerOptions::pool has fewer threads than max_connections; "
        "late connections would stall instead of being rejected");
  }
  HM_ASSIGN_OR_RETURN(Listener listener, Listener::Bind(options.port));
  // Not make_unique: the constructor is private.
  std::unique_ptr<Server> server(
      new Server(engine, options, std::move(listener)));
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

Server::Server(api::Engine* engine, ServerOptions options, Listener listener)
    : engine_(engine),
      options_(options),
      listener_(std::move(listener)) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    // Floor at max_connections: every admissible connection must be able
    // to hold a worker concurrently, or accepted clients would stall
    // (Start rejects undersized *shared* pools for the same reason).
    // Workers beyond the live connection count just sleep on the queue.
    const size_t requested =
        options_.num_threads != 0
            ? options_.num_threads
            : std::max<size_t>(4, ThreadPool::HardwareThreads());
    owned_pool_ = std::make_unique<ThreadPool>(
        std::max(requested, options_.max_connections));
    pool_ = owned_pool_.get();
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  stopping_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Wakes handlers blocked in ReadFrame; their next read fails and the
    // handler unregisters itself. Handlers mid-batch finish writing first.
    for (auto& [id, socket] : live_) socket->Shutdown();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return active_connections_ == 0; });
  listener_.Close();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    // Poll rather than block: shutdown() does not reliably wake accept()
    // on Linux, so Stop() is observed through the flag within ~100 ms.
    if (!listener_.AcceptReady(/*timeout_ms=*/100)) continue;
    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // FailedPrecondition is the Shutdown() wake-up; anything else
      // (EMFILE, transient network failure) should not kill the server.
      if (stopping_.load() ||
          accepted.status().code() == StatusCode::kFailedPrecondition) {
        return;
      }
      continue;
    }
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (active_connections_ >= options_.max_connections) {
        ++stats_.connections_rejected;
        continue;  // socket closes as the shared_ptr dies
      }
      ++stats_.connections_accepted;
      ++active_connections_;
      id = next_connection_id_++;
      // Registered before the handler runs so Stop() can shut the socket
      // down even while the task is still queued behind busy workers.
      live_.emplace(id, socket.get());
    }
    pool_->Submit([this, socket, id] {
      ServeConnection(socket.get());
      std::lock_guard<std::mutex> lock(mutex_);
      live_.erase(id);
      --active_connections_;
      idle_cv_.notify_all();
    });
  }
}

void Server::ServeConnection(Socket* socket) {
  uint64_t served = 0;
  std::vector<PendingFrame> frames;
  bool alive = true;
  while (alive && !stopping_.load()) {
    frames.clear();
    // Reads one frame; 1 = got a frame (possibly pre-rejected), 0 = clean
    // close, -1 = unrecoverable stream (drop after flushing the batch).
    auto read_one = [this, socket, &frames]() -> int {
      PendingFrame frame;
      Status status = ReadFrame(socket, &frame.header, &frame.body,
                                options_.max_query_bytes);
      if (status.code() == StatusCode::kNotFound) return 0;
      if (status.code() == StatusCode::kInvalidArgument) {
        // Oversized body: the header is sound, so skip the body to keep
        // the stream framed and reject just this request.
        if (!DiscardBody(socket, frame.header.body_len).ok()) return -1;
        frame.body.clear();
        frame.pre = status;
        frames.push_back(std::move(frame));
        return 1;
      }
      if (!status.ok()) return -1;
      frames.push_back(std::move(frame));
      return 1;
    };

    int first = read_one();
    if (first <= 0) break;
    // Coalesce whatever has already arrived — pipelined clients get one
    // engine batch instead of max_batch model acquisitions.
    while (frames.size() < options_.max_batch && socket->Readable(0)) {
      int more = read_one();
      if (more < 0) alive = false;
      if (more <= 0) break;
    }
    if (!HandleBatch(socket, &frames, &served)) break;
  }
}

bool Server::HandleBatch(Socket* socket, std::vector<PendingFrame>* frames,
                         uint64_t* served) {
  std::vector<WireResponse> responses(frames->size());
  std::vector<api::QueryRequest> admitted;
  std::vector<size_t> admitted_slot;
  uint64_t rejected = 0;

  for (size_t i = 0; i < frames->size(); ++i) {
    PendingFrame& frame = (*frames)[i];
    if (!frame.pre.ok()) {
      responses[i] = ErrorResponse(frame.pre);
      ++rejected;
      continue;
    }
    if (frame.header.version != kProtocolVersion) {
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("protocol version %u not supported (server speaks %u)",
                    unsigned{frame.header.version},
                    unsigned{kProtocolVersion})));
      ++rejected;
      continue;
    }
    if (frame.header.type != static_cast<uint16_t>(FrameType::kQuery)) {
      // kUnimplemented, matching the spec's §5 table: a frame type this
      // server does not speak is a capability gap (a future protocol
      // feature), not a malformed request that can never succeed.
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("frame type %u not supported here (want QUERY)",
                    unsigned{frame.header.type})));
      ++rejected;
      continue;
    }
    api::QueryRequest request;
    Status decoded = DecodeQueryBody(frame.body, &request);
    if (!decoded.ok()) {
      responses[i] = ErrorResponse(decoded);
      ++rejected;
      continue;
    }
    if (options_.max_queries_per_connection != 0 &&
        *served >= options_.max_queries_per_connection) {
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("per-connection query quota (%llu) exhausted",
                    static_cast<unsigned long long>(
                        options_.max_queries_per_connection))));
      ++rejected;
      continue;
    }
    if (options_.max_queue_depth != 0 &&
        in_flight_.fetch_add(1) >= options_.max_queue_depth) {
      in_flight_.fetch_sub(1);
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("server queue depth (%zu) exceeded; retry later",
                    options_.max_queue_depth)));
      ++rejected;
      continue;
    }
    ++*served;
    admitted_slot.push_back(i);
    admitted.push_back(std::move(request));
  }

  if (!admitted.empty()) {
    std::shared_ptr<const api::Model> model;
    std::vector<StatusOr<api::QueryResponse>> results =
        engine_->QueryBatch(admitted, &model);
    if (options_.max_queue_depth != 0) in_flight_.fetch_sub(admitted.size());
    for (size_t j = 0; j < results.size(); ++j) {
      responses[admitted_slot[j]] =
          ToWire(results[j], *model, admitted[j].kind);
    }
  }

  // Responses go back in request order, one contiguous write per batch.
  std::string out;
  for (size_t i = 0; i < frames->size(); ++i) {
    std::string encoded;
    Status status = EncodeResponseFrame((*frames)[i].header.request_id,
                                        responses[i], &encoded);
    if (!status.ok()) {
      // A name/message too long for the wire; strip the payload rather
      // than abort — the encode of a bare error cannot fail.
      encoded.clear();
      HM_CHECK_OK(EncodeResponseFrame(
          (*frames)[i].header.request_id,
          ErrorResponse(Status::Internal("response exceeds wire limits")),
          &encoded));
    }
    out += encoded;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches;
    stats_.queries_answered += admitted.size();
    stats_.queries_rejected += rejected;
  }
  return socket->WriteAll(out.data(), out.size()).ok();
}

}  // namespace hypermine::net
